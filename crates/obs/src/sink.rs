//! Output sinks: Chrome `trace_event` JSON, JSONL, and helpers shared
//! by the ASCII summary renderer in `syncperf-core`.
//!
//! The Chrome format follows the Trace Event Format spec's JSON object
//! flavor: a top-level object with a `traceEvents` array of events,
//! each carrying `name`, `cat`, `ph` (phase), `ts`/`dur` in
//! *microseconds*, and `pid`/`tid`. Spans use phase `"X"` (complete
//! events), instants phase `"i"` with scope `"t"`, counters phase
//! `"C"`, and process metadata phase `"M"` — all loadable in
//! `chrome://tracing` and Perfetto.

use crate::{ArgValue, Event, Snapshot};

/// The pid all events carry (one simulated process).
pub const TRACE_PID: u64 = 1;

/// Escapes `s` into a JSON string body (no surrounding quotes).
#[must_use]
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders a finite float the JSON grammar accepts (NaN/∞ → null).
fn json_number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn args_object(args: &[(&'static str, ArgValue)]) -> String {
    let mut out = String::from("{");
    for (i, (key, value)) in args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{}\":", json_escape(key)));
        match value {
            ArgValue::U64(v) => out.push_str(&v.to_string()),
            ArgValue::I64(v) => out.push_str(&v.to_string()),
            ArgValue::F64(v) => out.push_str(&json_number(*v)),
            ArgValue::Str(s) => out.push_str(&format!("\"{}\"", json_escape(s))),
        }
    }
    out.push('}');
    out
}

fn event_json(e: &Event) -> String {
    let ts_us = e.ts_ns as f64 / 1e3;
    match e.dur_ns {
        Some(dur) => format!(
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
             \"pid\":{TRACE_PID},\"tid\":{},\"args\":{}}}",
            json_escape(&e.name),
            json_escape(e.cat),
            json_number(ts_us),
            json_number(dur as f64 / 1e3),
            e.tid,
            args_object(&e.args),
        ),
        None => format!(
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\
             \"pid\":{TRACE_PID},\"tid\":{},\"args\":{}}}",
            json_escape(&e.name),
            json_escape(e.cat),
            json_number(ts_us),
            e.tid,
            args_object(&e.args),
        ),
    }
}

/// Serializes events and counters as a Chrome `trace_event` JSON
/// document.
#[must_use]
pub fn chrome_trace_json(events: &[Event], snapshot: &Snapshot) -> String {
    let last_ts_us = events.iter().map(|e| e.ts_ns).max().unwrap_or(0) as f64 / 1e3;
    let mut entries: Vec<String> = Vec::with_capacity(events.len() + 8);
    entries.push(format!(
        "{{\"name\":\"process_name\",\"ph\":\"M\",\"ts\":0,\"pid\":{TRACE_PID},\"tid\":0,\
         \"args\":{{\"name\":\"syncperf\"}}}}"
    ));
    entries.extend(events.iter().map(event_json));
    for (name, value) in &snapshot.counters {
        entries.push(format!(
            "{{\"name\":\"{}\",\"ph\":\"C\",\"ts\":{},\"pid\":{TRACE_PID},\"tid\":0,\
             \"args\":{{\"value\":{value}}}}}",
            json_escape(name),
            json_number(last_ts_us),
        ));
    }
    for (name, value) in &snapshot.gauges {
        entries.push(format!(
            "{{\"name\":\"{}\",\"ph\":\"C\",\"ts\":{},\"pid\":{TRACE_PID},\"tid\":0,\
             \"args\":{{\"value\":{value}}}}}",
            json_escape(name),
            json_number(last_ts_us),
        ));
    }
    format!(
        "{{\"traceEvents\":[{}],\"displayTimeUnit\":\"ns\",\"otherData\":{{\
         \"droppedEvents\":{}}}}}",
        entries.join(","),
        snapshot.dropped_events,
    )
}

/// Serializes events as JSON Lines: one self-contained JSON object per
/// line, streaming-friendly.
#[must_use]
pub fn jsonl(events: &[Event]) -> String {
    let mut out = String::new();
    for e in events {
        out.push_str(&format!(
            "{{\"ts_ns\":{},{}\"cat\":\"{}\",\"name\":\"{}\",\"tid\":{},\"args\":{}}}\n",
            e.ts_ns,
            match e.dur_ns {
                Some(d) => format!("\"dur_ns\":{d},"),
                None => String::new(),
            },
            json_escape(e.cat),
            json_escape(&e.name),
            e.tid,
            args_object(&e.args),
        ));
    }
    out
}

/// Serializes a counter/gauge snapshot as one JSON object (used as the
/// trailing line of a JSONL export).
#[must_use]
pub fn snapshot_json(snapshot: &Snapshot) -> String {
    let mut out = String::from("{\"counters\":{");
    for (i, (name, value)) in snapshot.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{}\":{value}", json_escape(name)));
    }
    out.push_str("},\"gauges\":{");
    for (i, (name, value)) in snapshot.gauges.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{}\":{value}", json_escape(name)));
    }
    out.push_str("},\"histograms\":{");
    for (i, (name, h)) in snapshot.histograms.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\"{}\":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p90\":{},\"p99\":{}}}",
            json_escape(name),
            h.count(),
            h.sum,
            h.min(),
            h.max(),
            h.quantile(0.50),
            h.quantile(0.90),
            h.quantile(0.99),
        ));
    }
    out.push_str(&format!(
        "}},\"dropped_events\":{}}}",
        snapshot.dropped_events
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{parse, Value};
    use crate::Recorder;

    fn sample() -> (Vec<Event>, Snapshot) {
        let rec = Recorder::enabled();
        let c = rec.counter("proto.attempts");
        c.add(3);
        rec.gauge("cpu.queue_depth").record(7);
        {
            let mut s = rec.span("protocol", "measure");
            s.push_arg("kernel", "omp_barrier");
            s.push_arg("runs", 9u64);
            rec.instant_args(
                "protocol",
                "attempt_rejected",
                vec![
                    ("attempt", ArgValue::U64(2)),
                    ("delta", ArgValue::F64(-1.5e-9)),
                ],
            );
        }
        (rec.drain_events(), rec.snapshot())
    }

    /// The acceptance-criteria schema check: the Chrome export must be
    /// valid JSON whose traceEvents all carry the required fields with
    /// the right types, and phase-specific fields where mandated.
    #[test]
    fn chrome_trace_validates_against_trace_event_schema() {
        let (events, snap) = sample();
        let doc = parse(&chrome_trace_json(&events, &snap)).expect("sink must emit valid JSON");

        let list = doc
            .get("traceEvents")
            .expect("traceEvents key")
            .as_array()
            .unwrap();
        assert!(!list.is_empty());
        for entry in list {
            let name = entry
                .get("name")
                .and_then(Value::as_str)
                .expect("name: string");
            assert!(!name.is_empty());
            let ph = entry.get("ph").and_then(Value::as_str).expect("ph: string");
            assert!(
                matches!(ph, "X" | "i" | "C" | "M"),
                "unexpected phase {ph:?}"
            );
            let ts = entry.get("ts").and_then(Value::as_f64).expect("ts: number");
            assert!(ts >= 0.0);
            entry
                .get("pid")
                .and_then(Value::as_f64)
                .expect("pid: number");
            match ph {
                "X" => {
                    let dur = entry
                        .get("dur")
                        .and_then(Value::as_f64)
                        .expect("X needs dur");
                    assert!(dur >= 0.0);
                    entry
                        .get("tid")
                        .and_then(Value::as_f64)
                        .expect("X needs tid");
                    entry
                        .get("cat")
                        .and_then(Value::as_str)
                        .expect("X needs cat");
                }
                "i" => {
                    assert_eq!(
                        entry.get("s").and_then(Value::as_str),
                        Some("t"),
                        "instant scope"
                    );
                    entry
                        .get("tid")
                        .and_then(Value::as_f64)
                        .expect("i needs tid");
                }
                "C" => {
                    entry
                        .get("args")
                        .and_then(|a| a.get("value"))
                        .and_then(Value::as_f64)
                        .expect("C needs args.value");
                }
                _ => {}
            }
        }
        // Both counters and gauges surface as counter events.
        let counter_names: Vec<&str> = list
            .iter()
            .filter(|e| e.get("ph").and_then(Value::as_str) == Some("C"))
            .filter_map(|e| e.get("name").and_then(Value::as_str))
            .collect();
        assert!(counter_names.contains(&"proto.attempts"));
        assert!(counter_names.contains(&"cpu.queue_depth"));
    }

    #[test]
    fn span_args_survive_the_round_trip() {
        let (events, snap) = sample();
        let doc = parse(&chrome_trace_json(&events, &snap)).unwrap();
        let span = doc
            .get("traceEvents")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .find(|e| e.get("name").and_then(Value::as_str) == Some("measure"))
            .expect("span present");
        let args = span.get("args").unwrap();
        assert_eq!(
            args.get("kernel").and_then(Value::as_str),
            Some("omp_barrier")
        );
        assert_eq!(args.get("runs").and_then(Value::as_f64), Some(9.0));
    }

    #[test]
    fn jsonl_lines_parse_independently() {
        let (events, _) = sample();
        let text = jsonl(&events);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), events.len());
        for line in lines {
            let v = parse(line).expect("each JSONL line is standalone JSON");
            v.get("ts_ns").and_then(Value::as_f64).expect("ts_ns");
            v.get("name").and_then(Value::as_str).expect("name");
        }
    }

    #[test]
    fn snapshot_json_parses() {
        let (_, snap) = sample();
        let v = parse(&snapshot_json(&snap)).unwrap();
        assert_eq!(
            v.get("counters")
                .and_then(|c| c.get("proto.attempts"))
                .and_then(Value::as_f64),
            Some(3.0)
        );
        assert_eq!(
            v.get("gauges")
                .and_then(|g| g.get("cpu.queue_depth"))
                .and_then(Value::as_f64),
            Some(7.0)
        );
    }

    #[test]
    fn escaping_handles_quotes_and_control_chars() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
        // A name with quotes must still produce parseable output.
        let rec = Recorder::enabled();
        rec.instant("cat", "name \"with\" quotes");
        let events = rec.drain_events();
        parse(&chrome_trace_json(&events, &rec.snapshot())).unwrap();
        parse(jsonl(&events).lines().next().unwrap()).unwrap();
    }

    #[test]
    fn empty_trace_still_valid() {
        let doc = parse(&chrome_trace_json(&[], &Snapshot::default())).unwrap();
        assert!(doc.get("traceEvents").unwrap().as_array().unwrap().len() == 1);
        // metadata only
    }
}
