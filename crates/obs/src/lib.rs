//! # syncperf-obs
//!
//! Zero-dependency observability for the syncperf stack: structured
//! trace events, counters/gauges, and exportable sinks.
//!
//! The design centers on a cheap [`Recorder`] handle that every
//! instrumented component holds (or reaches via [`global()`]). A
//! disabled recorder is a `None` — every recording call is a single
//! branch and the instrumented hot paths cost nothing measurable.
//! An enabled recorder writes [`Event`]s into per-thread ring buffers
//! (each thread appends under its own uncontended mutex; buffers are
//! bounded and count drops instead of blocking) and bumps shared
//! [`Counter`]/[`Gauge`] cells.
//!
//! At the end of a run, [`Recorder::drain_events`] merges the rings
//! into one time-ordered stream and [`Recorder::snapshot`] freezes the
//! counter registry; [`sink`] turns either into JSONL, Chrome
//! `trace_event` JSON (loadable in `chrome://tracing` or Perfetto), or
//! feeds the ASCII summary rendered by `syncperf-core`.
//!
//! ## Example
//!
//! ```
//! use syncperf_obs::{sink, Recorder};
//!
//! let rec = Recorder::enabled();
//! let attempts = rec.counter("protocol.attempts");
//! {
//!     let _span = rec.span("protocol", "measure");
//!     attempts.inc();
//!     rec.instant("protocol", "attempt_rejected");
//! }
//! let events = rec.drain_events();
//! assert_eq!(events.len(), 2);
//! let json = sink::chrome_trace_json(&events, &rec.snapshot());
//! assert!(json.contains("\"traceEvents\""));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod flight;
pub mod hist;
pub mod json;
pub mod metrics;
pub mod sink;

pub use flight::{FlightEntry, FlightRecorder};
pub use hist::{Histogram, HistogramSnapshot};

use std::borrow::Cow;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};
use std::time::Instant;

/// Default per-thread event capacity (events beyond it are dropped and
/// counted, never blocking the instrumented thread).
pub const DEFAULT_RING_CAPACITY: usize = 1 << 16;

/// One argument value attached to an event.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float.
    F64(f64),
    /// String.
    Str(Cow<'static, str>),
}

impl fmt::Display for ArgValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgValue::U64(v) => write!(f, "{v}"),
            ArgValue::I64(v) => write!(f, "{v}"),
            ArgValue::F64(v) => write!(f, "{v}"),
            ArgValue::Str(s) => f.write_str(s),
        }
    }
}

impl From<u64> for ArgValue {
    fn from(v: u64) -> Self {
        ArgValue::U64(v)
    }
}

impl From<u32> for ArgValue {
    fn from(v: u32) -> Self {
        ArgValue::U64(u64::from(v))
    }
}

impl From<usize> for ArgValue {
    fn from(v: usize) -> Self {
        ArgValue::U64(v as u64)
    }
}

impl From<i64> for ArgValue {
    fn from(v: i64) -> Self {
        ArgValue::I64(v)
    }
}

impl From<f64> for ArgValue {
    fn from(v: f64) -> Self {
        ArgValue::F64(v)
    }
}

impl From<&'static str> for ArgValue {
    fn from(v: &'static str) -> Self {
        ArgValue::Str(Cow::Borrowed(v))
    }
}

impl From<String> for ArgValue {
    fn from(v: String) -> Self {
        ArgValue::Str(Cow::Owned(v))
    }
}

/// One recorded trace event.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Nanoseconds since the recorder was created.
    pub ts_ns: u64,
    /// `Some(duration)` for a completed span, `None` for an instant.
    pub dur_ns: Option<u64>,
    /// Category (e.g. `"protocol"`, `"cpu_sim"`).
    pub cat: &'static str,
    /// Event name.
    pub name: Cow<'static, str>,
    /// Recorder-assigned thread id (dense, starting at 0).
    pub tid: u64,
    /// Structured arguments.
    pub args: Vec<(&'static str, ArgValue)>,
}

/// Per-thread bounded event buffer.
#[derive(Debug)]
struct ThreadRing {
    tid: u64,
    events: Mutex<Vec<Event>>,
    dropped: AtomicU64,
    capacity: usize,
}

impl ThreadRing {
    fn push(&self, event: Event) {
        let mut buf = self.events.lock().unwrap_or_else(PoisonError::into_inner);
        if buf.len() < self.capacity {
            buf.push(event);
        } else {
            drop(buf);
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Shared state behind an enabled recorder.
#[derive(Debug)]
struct Inner {
    /// Process-unique recorder id — the TLS ring-cache key. A pointer
    /// would be ambiguous: a new recorder's allocation can reuse a
    /// dropped recorder's address and inherit its stale cache entry.
    id: u64,
    start: Instant,
    capacity: usize,
    next_tid: AtomicU64,
    rings: Mutex<Vec<Arc<ThreadRing>>>,
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<String, (Arc<AtomicU64>, GaugeMode)>>,
    histograms: Mutex<BTreeMap<String, Arc<hist::HistCells>>>,
}

/// Source of process-unique recorder ids.
static NEXT_RECORDER_ID: AtomicU64 = AtomicU64::new(0);

/// One TLS ring-cache entry: recorder id, liveness probe, ring.
type RingCacheEntry = (u64, std::sync::Weak<Inner>, Arc<ThreadRing>);

thread_local! {
    /// Cache of (recorder id → this thread's ring), so the hot path
    /// avoids the registry lock after the first event. Entries whose
    /// recorder has been dropped are pruned on the next cache miss.
    static TLS_RINGS: RefCell<Vec<RingCacheEntry>> = const { RefCell::new(Vec::new()) };
}

/// A cheap, cloneable handle to a recording session.
///
/// `Recorder::disabled()` (also the `Default`) is a no-op whose every
/// method is one branch on a `None`; `Recorder::enabled()` records.
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    inner: Option<Arc<Inner>>,
}

impl Recorder {
    /// The no-op recorder.
    #[must_use]
    pub fn disabled() -> Self {
        Recorder { inner: None }
    }

    /// An enabled recorder with the default per-thread capacity.
    #[must_use]
    pub fn enabled() -> Self {
        Self::with_capacity(DEFAULT_RING_CAPACITY)
    }

    /// An enabled recorder whose per-thread rings hold `capacity`
    /// events (further events are dropped and counted).
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Recorder {
            inner: Some(Arc::new(Inner {
                id: NEXT_RECORDER_ID.fetch_add(1, Ordering::Relaxed),
                start: Instant::now(),
                capacity: capacity.max(1),
                next_tid: AtomicU64::new(0),
                rings: Mutex::new(Vec::new()),
                counters: Mutex::new(BTreeMap::new()),
                gauges: Mutex::new(BTreeMap::new()),
                histograms: Mutex::new(BTreeMap::new()),
            })),
        }
    }

    /// Whether this handle records anything.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Nanoseconds since this recorder was created (0 when disabled).
    #[must_use]
    pub fn now_ns(&self) -> u64 {
        match &self.inner {
            Some(inner) => inner.start.elapsed().as_nanos() as u64,
            None => 0,
        }
    }

    /// This thread's ring, creating and registering it on first use.
    fn ring(inner: &Arc<Inner>) -> Arc<ThreadRing> {
        let key = inner.id;
        TLS_RINGS.with(|cache| {
            let mut cache = cache.borrow_mut();
            if let Some((_, _, ring)) = cache.iter().find(|(k, _, _)| *k == key) {
                return ring.clone();
            }
            cache.retain(|(_, weak, _)| weak.strong_count() > 0);
            let ring = Arc::new(ThreadRing {
                tid: inner.next_tid.fetch_add(1, Ordering::Relaxed),
                events: Mutex::new(Vec::new()),
                dropped: AtomicU64::new(0),
                capacity: inner.capacity,
            });
            inner
                .rings
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push(ring.clone());
            cache.push((key, Arc::downgrade(inner), ring.clone()));
            ring
        })
    }

    /// Records an instant event with no arguments.
    pub fn instant(&self, cat: &'static str, name: impl Into<Cow<'static, str>>) {
        self.instant_args(cat, name, Vec::new());
    }

    /// Records an instant event with arguments.
    pub fn instant_args(
        &self,
        cat: &'static str,
        name: impl Into<Cow<'static, str>>,
        args: Vec<(&'static str, ArgValue)>,
    ) {
        if let Some(inner) = &self.inner {
            let ring = Self::ring(inner);
            ring.push(Event {
                ts_ns: inner.start.elapsed().as_nanos() as u64,
                dur_ns: None,
                cat,
                name: name.into(),
                tid: ring.tid,
                args,
            });
        }
    }

    /// Opens a span; the event is recorded when the guard drops.
    #[must_use = "the span is recorded when the guard drops"]
    pub fn span(&self, cat: &'static str, name: impl Into<Cow<'static, str>>) -> Span {
        self.span_args(cat, name, Vec::new())
    }

    /// Opens a span with arguments attached up front.
    #[must_use = "the span is recorded when the guard drops"]
    pub fn span_args(
        &self,
        cat: &'static str,
        name: impl Into<Cow<'static, str>>,
        args: Vec<(&'static str, ArgValue)>,
    ) -> Span {
        Span {
            rec: self.clone(),
            cat,
            name: name.into(),
            start_ns: self.now_ns(),
            args,
        }
    }

    /// A handle to the named counter (a no-op handle when disabled).
    #[must_use]
    pub fn counter(&self, name: &str) -> Counter {
        Counter {
            cell: self.inner.as_ref().map(|inner| {
                inner
                    .counters
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .entry(name.to_string())
                    .or_insert_with(|| Arc::new(AtomicU64::new(0)))
                    .clone()
            }),
        }
    }

    /// A handle to the named high-water-mark gauge (no-op when
    /// disabled). The first registration of a name fixes its mode;
    /// later handles inherit it.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Gauge {
        self.gauge_with_mode(name, GaugeMode::Max)
    }

    /// A handle to the named current-value gauge (no-op when
    /// disabled): [`Gauge::set`] overwrites, [`Gauge::add`] /
    /// [`Gauge::sub`] adjust — for live quantities like queue depth
    /// or inflight requests, where the high-water mark is not enough.
    #[must_use]
    pub fn gauge_set(&self, name: &str) -> Gauge {
        self.gauge_with_mode(name, GaugeMode::Set)
    }

    fn gauge_with_mode(&self, name: &str, want: GaugeMode) -> Gauge {
        match &self.inner {
            Some(inner) => {
                let (cell, mode) = inner
                    .gauges
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .entry(name.to_string())
                    .or_insert_with(|| (Arc::new(AtomicU64::new(0)), want))
                    .clone();
                Gauge {
                    cell: Some(cell),
                    mode,
                }
            }
            None => Gauge {
                cell: None,
                mode: want,
            },
        }
    }

    /// A handle to the named latency histogram (no-op when disabled).
    #[must_use]
    pub fn histogram(&self, name: &str) -> Histogram {
        Histogram {
            cells: self.inner.as_ref().map(|inner| {
                inner
                    .histograms
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .entry(name.to_string())
                    .or_insert_with(|| Arc::new(hist::HistCells::new()))
                    .clone()
            }),
        }
    }

    /// Freezes the current counter and gauge values.
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        let mut snap = Snapshot::default();
        if let Some(inner) = &self.inner {
            for (name, cell) in inner
                .counters
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .iter()
            {
                snap.counters
                    .insert(name.clone(), cell.load(Ordering::Relaxed));
            }
            for (name, (cell, mode)) in inner
                .gauges
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .iter()
            {
                snap.gauges
                    .insert(name.clone(), cell.load(Ordering::Relaxed));
                snap.gauge_modes.insert(name.clone(), *mode);
            }
            for (name, cells) in inner
                .histograms
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .iter()
            {
                snap.histograms.insert(name.clone(), cells.snapshot());
            }
            for ring in inner
                .rings
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .iter()
            {
                let dropped = ring.dropped.load(Ordering::Relaxed);
                if dropped > 0 {
                    snap.dropped_by_thread.insert(ring.tid, dropped);
                }
            }
            snap.dropped_events = snap.dropped_by_thread.values().sum();
        }
        snap
    }

    /// Merges and clears every thread's ring, returning all events in
    /// timestamp order.
    #[must_use]
    pub fn drain_events(&self) -> Vec<Event> {
        let mut all = Vec::new();
        if let Some(inner) = &self.inner {
            for ring in inner
                .rings
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .iter()
            {
                all.append(&mut ring.events.lock().unwrap_or_else(PoisonError::into_inner));
            }
        }
        all.sort_by_key(|e| e.ts_ns);
        all
    }

    /// Total events dropped because a ring was full.
    #[must_use]
    pub fn dropped_events(&self) -> u64 {
        match &self.inner {
            Some(inner) => inner
                .rings
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .iter()
                .map(|r| r.dropped.load(Ordering::Relaxed))
                .sum(),
            None => 0,
        }
    }
}

/// RAII guard recording a complete (`ph: "X"`) event on drop.
#[derive(Debug)]
pub struct Span {
    rec: Recorder,
    cat: &'static str,
    name: Cow<'static, str>,
    start_ns: u64,
    args: Vec<(&'static str, ArgValue)>,
}

impl Span {
    /// Attaches an argument to the span before it closes.
    pub fn push_arg(&mut self, key: &'static str, value: impl Into<ArgValue>) {
        if self.rec.is_enabled() {
            self.args.push((key, value.into()));
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(inner) = &self.rec.inner {
            let end = inner.start.elapsed().as_nanos() as u64;
            let ring = Recorder::ring(inner);
            ring.push(Event {
                ts_ns: self.start_ns,
                dur_ns: Some(end.saturating_sub(self.start_ns)),
                cat: self.cat,
                name: std::mem::replace(&mut self.name, Cow::Borrowed("")),
                tid: ring.tid,
                args: std::mem::take(&mut self.args),
            });
        }
    }
}

/// A monotonically increasing event counter.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    cell: Option<Arc<AtomicU64>>,
}

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.cell {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value (0 when disabled).
    #[must_use]
    pub fn get(&self) -> u64 {
        self.cell.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// How a [`Gauge`] folds recorded values into its cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GaugeMode {
    /// High-water mark: [`Gauge::record`] keeps the maximum.
    #[default]
    Max,
    /// Current value: [`Gauge::set`] overwrites; [`Gauge::add`] and
    /// [`Gauge::sub`] adjust (for queue depths, inflight counts).
    Set,
}

impl GaugeMode {
    /// Stable lowercase label (used in summaries and exposition).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            GaugeMode::Max => "max",
            GaugeMode::Set => "set",
        }
    }
}

/// A gauge handle; semantics depend on its [`GaugeMode`] (the mode the
/// name was first registered with).
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    cell: Option<Arc<AtomicU64>>,
    mode: GaugeMode,
}

impl Gauge {
    /// Records `v` per the gauge's mode: maximum for
    /// [`GaugeMode::Max`], overwrite for [`GaugeMode::Set`].
    pub fn record(&self, v: u64) {
        if let Some(cell) = &self.cell {
            match self.mode {
                GaugeMode::Max => {
                    cell.fetch_max(v, Ordering::Relaxed);
                }
                GaugeMode::Set => cell.store(v, Ordering::Relaxed),
            }
        }
    }

    /// Overwrites the current value (any mode).
    pub fn set(&self, v: u64) {
        if let Some(cell) = &self.cell {
            cell.store(v, Ordering::Relaxed);
        }
    }

    /// Adds `n` to the current value.
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.cell {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Subtracts `n` from the current value (saturating at 0).
    pub fn sub(&self, n: u64) {
        if let Some(cell) = &self.cell {
            let mut cur = cell.load(Ordering::Relaxed);
            loop {
                let next = cur.saturating_sub(n);
                match cell.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
                    Ok(_) => break,
                    Err(seen) => cur = seen,
                }
            }
        }
    }

    /// The mode this gauge was registered with.
    #[must_use]
    pub fn mode(&self) -> GaugeMode {
        self.mode
    }

    /// Current value (0 when disabled).
    #[must_use]
    pub fn get(&self) -> u64 {
        self.cell.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// Frozen counter/gauge/histogram values.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name (high-water mark or current value,
    /// depending on the mode in [`Snapshot::gauge_modes`]).
    pub gauges: BTreeMap<String, u64>,
    /// Each gauge's registered [`GaugeMode`].
    pub gauge_modes: BTreeMap<String, GaugeMode>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Events dropped because a per-thread ring filled up.
    pub dropped_events: u64,
    /// Drop counts by recorder-assigned thread id (only threads that
    /// dropped anything appear).
    pub dropped_by_thread: BTreeMap<u64, u64>,
}

impl Snapshot {
    /// Convenience lookup (0 when the counter never fired).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Convenience lookup (0 when the gauge never fired).
    #[must_use]
    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// Convenience lookup (empty snapshot when the histogram never
    /// fired).
    #[must_use]
    pub fn histogram(&self, name: &str) -> HistogramSnapshot {
        self.histograms.get(name).cloned().unwrap_or_default()
    }

    /// Folds `other` into `self`: counters add, `Max` gauges take the
    /// maximum, `Set` gauges add (current values of distinct workers
    /// stack), histograms merge bucket-wise, drop counts add.
    pub fn merge(&mut self, other: &Snapshot) {
        for (name, v) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += v;
        }
        for (name, v) in &other.gauges {
            let mode = other.gauge_modes.get(name).copied().unwrap_or_default();
            let mode = *self.gauge_modes.entry(name.clone()).or_insert(mode);
            let cell = self.gauges.entry(name.clone()).or_insert(0);
            match mode {
                GaugeMode::Max => *cell = (*cell).max(*v),
                GaugeMode::Set => *cell += v,
            }
        }
        for (name, h) in &other.histograms {
            self.histograms.entry(name.clone()).or_default().merge(h);
        }
        self.dropped_events += other.dropped_events;
        for (tid, v) in &other.dropped_by_thread {
            *self.dropped_by_thread.entry(*tid).or_insert(0) += v;
        }
    }
}

static GLOBAL: OnceLock<Recorder> = OnceLock::new();

/// Installs `rec` as the process-global recorder consulted by
/// components that were not handed an explicit one. Returns `false` if
/// a global recorder was already installed (the existing one stays).
pub fn install(rec: Recorder) -> bool {
    GLOBAL.set(rec).is_ok()
}

/// The process-global recorder (disabled unless [`install`]ed).
#[must_use]
pub fn global() -> &'static Recorder {
    static DISABLED: Recorder = Recorder { inner: None };
    GLOBAL.get().unwrap_or(&DISABLED)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_is_inert() {
        let rec = Recorder::disabled();
        assert!(!rec.is_enabled());
        rec.instant("t", "x");
        let c = rec.counter("n");
        c.inc();
        assert_eq!(c.get(), 0);
        let g = rec.gauge("g");
        g.record(9);
        assert_eq!(g.get(), 0);
        {
            let _s = rec.span("t", "s");
        }
        assert!(rec.drain_events().is_empty());
        assert_eq!(rec.snapshot(), Snapshot::default());
    }

    #[test]
    fn events_merge_in_timestamp_order() {
        let rec = Recorder::enabled();
        rec.instant("a", "first");
        {
            let mut s = rec.span("a", "mid");
            s.push_arg("k", 3u64);
            rec.instant("a", "inside");
        }
        let events = rec.drain_events();
        assert_eq!(events.len(), 3);
        assert!(events.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
        let span = events.iter().find(|e| e.name == "mid").unwrap();
        assert!(span.dur_ns.is_some());
        assert_eq!(span.args, vec![("k", ArgValue::U64(3))]);
        // Draining clears the rings.
        assert!(rec.drain_events().is_empty());
    }

    #[test]
    fn counters_shared_across_handles_and_threads() {
        let rec = Recorder::enabled();
        let c = rec.counter("shared.count");
        std::thread::scope(|s| {
            for _ in 0..4 {
                let rec = rec.clone();
                s.spawn(move || {
                    let c = rec.counter("shared.count");
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 4000);
        assert_eq!(rec.snapshot().counter("shared.count"), 4000);
    }

    #[test]
    fn gauge_keeps_maximum() {
        let rec = Recorder::enabled();
        let g = rec.gauge("depth");
        g.record(3);
        g.record(7);
        g.record(5);
        assert_eq!(g.get(), 7);
        assert_eq!(rec.snapshot().gauge("depth"), 7);
    }

    #[test]
    fn per_thread_rings_get_distinct_tids() {
        let rec = Recorder::enabled();
        std::thread::scope(|s| {
            for _ in 0..3 {
                let rec = rec.clone();
                s.spawn(move || rec.instant("t", "hello"));
            }
        });
        let events = rec.drain_events();
        let mut tids: Vec<u64> = events.iter().map(|e| e.tid).collect();
        tids.sort_unstable();
        tids.dedup();
        assert_eq!(tids.len(), 3, "each thread has its own tid");
    }

    #[test]
    fn full_ring_drops_and_counts() {
        let rec = Recorder::with_capacity(8);
        for _ in 0..20 {
            rec.instant("t", "e");
        }
        assert_eq!(rec.drain_events().len(), 8);
        assert_eq!(rec.dropped_events(), 12);
        assert_eq!(rec.snapshot().dropped_events, 12);
    }

    #[test]
    fn global_defaults_to_disabled() {
        // Never install in this test binary; other tests rely on the
        // default too.
        assert!(!global().is_enabled());
    }

    #[test]
    fn successive_recorders_on_one_thread_each_capture_their_events() {
        // Regression: the TLS ring cache was keyed by the recorder's
        // allocation address, so a recorder allocated at a dropped
        // recorder's address inherited its stale (unregistered) ring
        // and silently lost every event.
        for i in 0..64 {
            let rec = Recorder::enabled();
            rec.instant("t", "e");
            assert_eq!(rec.drain_events().len(), 1, "iteration {i} lost its event");
        }
    }

    #[test]
    fn set_gauge_tracks_current_value() {
        let rec = Recorder::enabled();
        let g = rec.gauge_set("queue.depth");
        g.add(5);
        g.sub(2);
        assert_eq!(g.get(), 3);
        g.record(9);
        g.record(1);
        assert_eq!(g.get(), 1, "set mode overwrites instead of keeping max");
        g.sub(10);
        assert_eq!(g.get(), 0, "sub saturates at zero");
        let snap = rec.snapshot();
        assert_eq!(snap.gauge("queue.depth"), 0);
        assert_eq!(snap.gauge_modes["queue.depth"], GaugeMode::Set);
    }

    #[test]
    fn gauge_mode_fixed_by_first_registration() {
        let rec = Recorder::enabled();
        let first = rec.gauge("depth");
        let second = rec.gauge_set("depth");
        assert_eq!(second.mode(), GaugeMode::Max, "first registration wins");
        first.record(7);
        second.record(3);
        assert_eq!(first.get(), 7);
    }

    #[test]
    fn histograms_appear_in_snapshot() {
        let rec = Recorder::enabled();
        let h = rec.histogram("lat_us");
        h.observe(10);
        h.observe(20);
        let snap = rec.snapshot();
        assert_eq!(snap.histogram("lat_us").count(), 2);
        assert_eq!(snap.histogram("lat_us").sum, 30);
        assert_eq!(snap.histogram("absent").count(), 0);
        // Disabled recorders hand out inert histograms.
        let off = Recorder::disabled().histogram("lat_us");
        off.observe(5);
        assert_eq!(off.snapshot().count(), 0);
    }

    #[test]
    fn snapshot_merge_folds_all_sections() {
        let a = Recorder::enabled();
        let b = Recorder::enabled();
        a.counter("c").add(2);
        b.counter("c").add(3);
        a.gauge("hw").record(5);
        b.gauge("hw").record(9);
        a.gauge_set("depth").set(4);
        b.gauge_set("depth").set(6);
        a.histogram("h").observe(1);
        b.histogram("h").observe(100);
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged.counter("c"), 5);
        assert_eq!(merged.gauge("hw"), 9, "max gauges take the maximum");
        assert_eq!(merged.gauge("depth"), 10, "set gauges stack");
        assert_eq!(merged.histogram("h").count(), 2);
        assert_eq!(merged.histogram("h").max(), 100);
    }

    #[test]
    fn snapshot_reports_drops_per_thread() {
        let rec = Recorder::with_capacity(4);
        for _ in 0..10 {
            rec.instant("t", "e");
        }
        let snap = rec.snapshot();
        assert_eq!(snap.dropped_events, 6);
        assert_eq!(snap.dropped_by_thread.values().sum::<u64>(), 6);
        assert_eq!(snap.dropped_by_thread.len(), 1);
    }

    #[test]
    fn two_recorders_do_not_share_state() {
        let a = Recorder::enabled();
        let b = Recorder::enabled();
        a.counter("x").inc();
        a.instant("t", "only-a");
        assert_eq!(b.snapshot().counter("x"), 0);
        assert!(b.drain_events().is_empty());
        assert_eq!(a.drain_events().len(), 1);
    }
}
