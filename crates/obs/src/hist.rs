//! First-class latency histograms: lock-free log-bucketed atomics
//! with mergeable snapshots and quantile estimation.
//!
//! A [`Histogram`] is a fixed array of 65 power-of-two buckets (bucket
//! 0 holds the value 0; bucket `b` holds `[2^(b-1), 2^b - 1]`), plus
//! running sum/min/max cells. Recording a value is four relaxed
//! atomic operations — no locks, no allocation — so a histogram can
//! sit on a request hot path. Snapshots are plain data: they merge by
//! bucket-wise addition, and quantiles are estimated by walking the
//! cumulative distribution with linear interpolation inside the
//! landing bucket, clamped to the observed `[min, max]`. The estimate
//! is exact at bucket boundaries and never off by more than one
//! log-bucket (a factor of two) anywhere — the property test in
//! `tests/telemetry_consistency.rs` holds it to a sorted-vec oracle.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Number of buckets: one for zero plus one per power of two.
pub const BUCKETS: usize = 65;

/// The bucket index a value lands in: 0 for 0, else
/// `64 - leading_zeros(v)` (so bucket `b` covers `[2^(b-1), 2^b - 1]`).
#[must_use]
pub fn bucket_of(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

/// The inclusive upper bound of bucket `b` (`u64::MAX` for the last).
#[must_use]
pub fn bucket_upper(b: usize) -> u64 {
    if b == 0 {
        0
    } else if b >= 64 {
        u64::MAX
    } else {
        (1u64 << b) - 1
    }
}

/// The inclusive lower bound of bucket `b`.
#[must_use]
pub fn bucket_lower(b: usize) -> u64 {
    if b == 0 {
        0
    } else {
        1u64 << (b - 1)
    }
}

/// The shared atomic cells behind a [`Histogram`] handle.
#[derive(Debug)]
pub(crate) struct HistCells {
    counts: [AtomicU64; BUCKETS],
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl HistCells {
    pub(crate) fn new() -> Self {
        HistCells {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    pub(crate) fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            counts: self
                .counts
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            sum: self.sum.load(Ordering::Relaxed),
            min_seen: self.min.load(Ordering::Relaxed),
            max_seen: self.max.load(Ordering::Relaxed),
        }
    }
}

/// A lock-free log-bucketed histogram handle (a no-op when obtained
/// from a disabled [`Recorder`](crate::Recorder)).
///
/// Cheap to clone; all clones for one name share cells.
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    pub(crate) cells: Option<Arc<HistCells>>,
}

impl Histogram {
    /// A standalone always-recording histogram, not registered in any
    /// recorder — for components (like the sweep scheduler) that keep
    /// their own profile and export it into a
    /// [`Snapshot`](crate::Snapshot) on demand.
    #[must_use]
    pub fn standalone() -> Self {
        Histogram {
            cells: Some(Arc::new(HistCells::new())),
        }
    }

    /// Records one observation (four relaxed atomics; a single branch
    /// when disabled).
    pub fn observe(&self, v: u64) {
        if let Some(cells) = &self.cells {
            cells.counts[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
            cells.sum.fetch_add(v, Ordering::Relaxed);
            cells.min.fetch_min(v, Ordering::Relaxed);
            cells.max.fetch_max(v, Ordering::Relaxed);
        }
    }

    /// Records a [`std::time::Duration`] in microseconds.
    pub fn observe_duration_us(&self, d: std::time::Duration) {
        self.observe(d.as_micros() as u64);
    }

    /// Whether this handle records anything.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.cells.is_some()
    }

    /// Freezes the current bucket counts (empty when disabled).
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        self.cells
            .as_ref()
            .map_or_else(HistogramSnapshot::default, |c| c.snapshot())
    }
}

/// Frozen histogram contents: plain mergeable data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts ([`BUCKETS`] entries).
    pub counts: Vec<u64>,
    /// Sum of all observed values (wrapping on overflow).
    pub sum: u64,
    /// Smallest observed value (`u64::MAX` when empty).
    pub min_seen: u64,
    /// Largest observed value (0 when empty).
    pub max_seen: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            counts: vec![0; BUCKETS],
            sum: 0,
            min_seen: u64::MAX,
            max_seen: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Total observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Smallest observed value (0 when empty).
    #[must_use]
    pub fn min(&self) -> u64 {
        if self.count() == 0 {
            0
        } else {
            self.min_seen
        }
    }

    /// Largest observed value (0 when empty).
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max_seen
    }

    /// Mean observed value (0.0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum as f64 / n as f64
        }
    }

    /// Estimates the `q`-quantile (`q` in `[0, 1]`): walks the
    /// cumulative bucket counts to the landing bucket and linearly
    /// interpolates inside it, clamping to the observed `[min, max]`.
    /// The estimate is within one log-bucket of the exact
    /// rank-statistic.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // 1-based target rank, matching `sorted[ceil(q*n) - 1]`.
        let target = ((q * n as f64).ceil() as u64).clamp(1, n);
        let mut cum = 0u64;
        for (b, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if cum + c >= target {
                let lower = bucket_lower(b);
                let upper = bucket_upper(b);
                let frac = (target - cum) as f64 / c as f64;
                let est = lower + ((upper - lower) as f64 * frac) as u64;
                return est.clamp(self.min(), self.max());
            }
            cum += c;
        }
        self.max()
    }

    /// Adds `other`'s observations into `self` (bucket-wise).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.sum = self.sum.wrapping_add(other.sum);
        self.min_seen = self.min_seen.min(other.min_seen);
        self.max_seen = self.max_seen.max(other.max_seen);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        for b in 1..64 {
            assert_eq!(bucket_of(bucket_lower(b)), b);
            assert_eq!(bucket_of(bucket_upper(b)), b);
        }
        assert_eq!(bucket_upper(64), u64::MAX);
    }

    #[test]
    fn disabled_histogram_is_inert() {
        let h = Histogram::default();
        h.observe(7);
        assert!(!h.is_enabled());
        let s = h.snapshot();
        assert_eq!(s.count(), 0);
        assert_eq!(s.quantile(0.5), 0);
        assert_eq!((s.min(), s.max()), (0, 0));
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn observations_land_and_quantiles_clamp() {
        let h = Histogram::standalone();
        for v in [1u64, 2, 3, 100, 1000] {
            h.observe(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 5);
        assert_eq!(s.sum, 1106);
        assert_eq!((s.min(), s.max()), (1, 1000));
        assert!(s.quantile(0.0) >= 1);
        assert_eq!(s.quantile(1.0), 1000);
        // p50 of [1,2,3,100,1000] is 3; the estimate must stay within
        // the value's log-bucket.
        let p50 = s.quantile(0.5);
        assert!(
            bucket_of(p50).abs_diff(bucket_of(3)) <= 1,
            "p50 estimate {p50} strays from oracle 3"
        );
    }

    #[test]
    fn merge_equals_combined_recording() {
        let a = Histogram::standalone();
        let b = Histogram::standalone();
        let both = Histogram::standalone();
        for v in 0..100u64 {
            if v % 2 == 0 {
                a.observe(v * 7);
            } else {
                b.observe(v * 7);
            }
            both.observe(v * 7);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged, both.snapshot());
    }

    #[test]
    fn concurrent_observations_are_lock_free_and_complete() {
        let h = Histogram::standalone();
        std::thread::scope(|s| {
            for t in 0..4 {
                let h = h.clone();
                s.spawn(move || {
                    for i in 0..1000u64 {
                        h.observe(t * 1000 + i);
                    }
                });
            }
        });
        assert_eq!(h.snapshot().count(), 4000);
    }

    #[test]
    fn quantile_handles_single_value() {
        let h = Histogram::standalone();
        h.observe(42);
        let s = h.snapshot();
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(s.quantile(q), 42);
        }
    }
}
