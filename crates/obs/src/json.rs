//! A minimal JSON reader used to validate the sinks' output (and by
//! downstream tests) without external dependencies. Supports the full
//! JSON grammar the sinks emit: objects, arrays, strings with escapes,
//! numbers, booleans, and null.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// String.
    String(String),
    /// Array.
    Array(Vec<Value>),
    /// Object (sorted keys).
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// The value at `key` if this is an object containing it.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The elements if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }
}

/// A parse error with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the error.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses a complete JSON document.
///
/// # Errors
///
/// Returns a [`ParseError`] for malformed input or trailing garbage.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            at: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogates are not emitted by the sinks;
                            // map unpaired ones to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let ch = s.chars().next().ok_or_else(|| self.err("bad utf8"))?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let v =
            parse(r#"{"a": [1, 2.5, -3e2], "b": {"c": "x\ny", "d": true, "e": null}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[2].as_f64(),
            Some(-300.0)
        );
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&Value::Bool(true)));
        assert_eq!(v.get("b").unwrap().get("e"), Some(&Value::Null));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{}extra").is_err());
        assert!(parse(r#"{"a" 1}"#).is_err());
    }

    #[test]
    fn unicode_escapes_round_trip() {
        let escaped = parse(r#""\u00e9A""#).unwrap();
        assert_eq!(escaped.as_str(), Some("\u{e9}A"));
        let raw = parse("\"é raw\"").unwrap();
        assert_eq!(raw.as_str(), Some("é raw"));
    }

    #[test]
    fn empty_containers() {
        assert_eq!(parse("[]").unwrap(), Value::Array(vec![]));
        assert_eq!(parse("{}").unwrap(), Value::Object(BTreeMap::new()));
    }
}
