//! Prometheus-style text exposition for [`Snapshot`]s.
//!
//! [`render`] turns any snapshot — counters, gauges, histograms, and
//! event-drop counts — into `# TYPE`-annotated exposition text, the
//! format served by `GET /metrics` and printed by
//! `trace_report --metrics`. [`parse`] is the inverse (up to log-bucket
//! resolution), so `syncperf-top` and the golden tests consume the
//! same schema the renderer produces instead of scraping ad-hoc JSON.
//!
//! Naming: snapshot keys pass through [`sanitize_name`], which maps
//! every character outside `[a-zA-Z0-9_:]` to `_` (so `serve.requests`
//! becomes `serve_requests`). Histograms expose the standard
//! cumulative `<name>_bucket{le="..."}` series (log2 boundaries, only
//! non-empty buckets plus `+Inf`) with `<name>_sum` / `<name>_count`,
//! plus `<name>_min` / `<name>_max` gauges so observed extremes
//! survive the round trip.

use crate::hist::{bucket_upper, HistogramSnapshot, BUCKETS};
use crate::{GaugeMode, Snapshot};
use std::fmt::Write as _;

/// Maps `name` into the exposition charset: every character outside
/// `[a-zA-Z0-9_:]` becomes `_`, and a leading digit gets a `_` prefix.
#[must_use]
pub fn sanitize_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            if i == 0 && c.is_ascii_digit() {
                out.push('_');
            }
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Renders `snap` in Prometheus-style text exposition format.
#[must_use]
pub fn render(snap: &Snapshot) -> String {
    let mut out = String::new();
    for (name, value) in &snap.counters {
        let name = sanitize_name(name);
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name} {value}");
    }
    for (name, value) in &snap.gauges {
        let mode = snap.gauge_modes.get(name).copied().unwrap_or_default();
        let name = sanitize_name(name);
        let _ = writeln!(out, "# TYPE {name} gauge");
        let _ = writeln!(out, "{name}{{mode=\"{}\"}} {value}", mode.label());
    }
    for (name, h) in &snap.histograms {
        let name = sanitize_name(name);
        let _ = writeln!(out, "# TYPE {name} histogram");
        let mut cum = 0u64;
        for (b, &c) in h.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            cum += c;
            let _ = writeln!(out, "{name}_bucket{{le=\"{}\"}} {cum}", bucket_upper(b));
        }
        let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cum}");
        let _ = writeln!(out, "{name}_sum {}", h.sum);
        let _ = writeln!(out, "{name}_count {cum}");
        let _ = writeln!(out, "# TYPE {name}_min gauge");
        let _ = writeln!(out, "{name}_min {}", h.min());
        let _ = writeln!(out, "# TYPE {name}_max gauge");
        let _ = writeln!(out, "{name}_max {}", h.max());
    }
    let _ = writeln!(out, "# TYPE events_dropped_total counter");
    let _ = writeln!(out, "events_dropped_total {}", snap.dropped_events);
    for (tid, dropped) in &snap.dropped_by_thread {
        let _ = writeln!(out, "events_dropped{{tid=\"{tid}\"}} {dropped}");
    }
    out
}

/// One parsed exposition sample: name, optional single label, value.
struct Sample<'a> {
    name: &'a str,
    label: Option<(&'a str, &'a str)>,
    value: u64,
}

fn parse_sample(line: &str) -> Option<Sample<'_>> {
    let (metric, value) = line.rsplit_once(' ')?;
    let value = value.trim().parse::<f64>().ok()?;
    let (name, label) = match metric.split_once('{') {
        Some((name, rest)) => {
            let body = rest.strip_suffix('}')?;
            let (key, val) = body.split_once('=')?;
            let val = val.trim_matches('"');
            (name, Some((key, val)))
        }
        None => (metric, None),
    };
    Some(Sample {
        name,
        label,
        value: value as u64,
    })
}

/// Parses exposition text produced by [`render`] back into a
/// [`Snapshot`]. Histogram bucket counts are exact; per-bucket `min`
/// and `max` come from the `_min`/`_max` companion gauges. Lines that
/// do not fit the schema are skipped (never an error), so the parser
/// tolerates exposition from other producers.
#[must_use]
pub fn parse(text: &str) -> Snapshot {
    let mut snap = Snapshot::default();
    let mut kinds: std::collections::BTreeMap<String, String> = std::collections::BTreeMap::new();
    for line in text.lines() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            if let Some((name, kind)) = rest.split_once(' ') {
                kinds.insert(name.to_string(), kind.trim().to_string());
            }
            continue;
        }
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some(sample) = parse_sample(line) else {
            continue;
        };
        // Histogram series: `<base>_bucket{le=..}`, `<base>_sum`,
        // `<base>_count`, plus `_min`/`_max` companions.
        if let Some(base) = sample.name.strip_suffix("_bucket") {
            if kinds.get(base).map(String::as_str) == Some("histogram") {
                if let Some(("le", le)) = sample.label {
                    let h = snap.histograms.entry(base.to_string()).or_default();
                    let bucket = if le == "+Inf" {
                        BUCKETS - 1
                    } else {
                        let Ok(upper) = le.parse::<u64>() else {
                            continue;
                        };
                        (0..BUCKETS)
                            .find(|&b| bucket_upper(b) >= upper)
                            .unwrap_or(BUCKETS - 1)
                    };
                    // Cumulative → per-bucket: subtract what earlier
                    // buckets already hold.
                    let prior: u64 = h.counts.iter().take(bucket + 1).sum();
                    h.counts[bucket] += sample.value.saturating_sub(prior);
                }
                continue;
            }
        }
        let mut consumed = false;
        for suffix in ["_sum", "_count", "_min", "_max"] {
            let Some(base) = sample.name.strip_suffix(suffix) else {
                continue;
            };
            if kinds.get(base).map(String::as_str) != Some("histogram") {
                continue;
            }
            let h = snap.histograms.entry(base.to_string()).or_default();
            match suffix {
                "_sum" => h.sum = sample.value,
                "_min" => h.min_seen = sample.value,
                "_max" => h.max_seen = sample.value,
                // `_count` is implied by the +Inf bucket.
                _ => {}
            }
            consumed = true;
            break;
        }
        if consumed {
            continue;
        }
        if sample.name == "events_dropped_total" {
            snap.dropped_events = sample.value;
            continue;
        }
        if sample.name == "events_dropped" {
            if let Some(("tid", tid)) = sample.label {
                if let Ok(tid) = tid.parse::<u64>() {
                    snap.dropped_by_thread.insert(tid, sample.value);
                }
            }
            continue;
        }
        match kinds.get(sample.name).map(String::as_str) {
            Some("counter") => {
                snap.counters.insert(sample.name.to_string(), sample.value);
            }
            Some("gauge") => {
                snap.gauges.insert(sample.name.to_string(), sample.value);
                let mode = match sample.label {
                    Some(("mode", "set")) => GaugeMode::Set,
                    _ => GaugeMode::Max,
                };
                snap.gauge_modes.insert(sample.name.to_string(), mode);
            }
            _ => {}
        }
    }
    // An empty-count histogram parsed from `_min 0 / _max 0` keeps the
    // canonical empty sentinel.
    for h in snap.histograms.values_mut() {
        if h.count() == 0 {
            *h = HistogramSnapshot::default();
        }
    }
    snap
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Recorder;

    #[test]
    fn sanitize_maps_dots_and_leading_digits() {
        assert_eq!(sanitize_name("serve.requests"), "serve_requests");
        assert_eq!(sanitize_name("a-b c"), "a_b_c");
        assert_eq!(sanitize_name("9lives"), "_9lives");
        assert_eq!(sanitize_name(""), "_");
    }

    #[test]
    fn render_has_type_lines_for_every_family() {
        let rec = Recorder::enabled();
        rec.counter("serve.requests").add(3);
        rec.gauge_set("sched.queue_depth").set(2);
        rec.histogram("serve.latency_us").observe(150);
        let text = render(&rec.snapshot());
        assert!(text.contains("# TYPE serve_requests counter"));
        assert!(text.contains("serve_requests 3"));
        assert!(text.contains("# TYPE sched_queue_depth gauge"));
        assert!(text.contains("sched_queue_depth{mode=\"set\"} 2"));
        assert!(text.contains("# TYPE serve_latency_us histogram"));
        assert!(text.contains("serve_latency_us_bucket{le=\"255\"} 1"));
        assert!(text.contains("serve_latency_us_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("serve_latency_us_sum 150"));
        assert!(text.contains("serve_latency_us_count 1"));
        assert!(text.contains("# TYPE events_dropped_total counter"));
    }

    #[test]
    fn parse_round_trips_render() {
        let rec = Recorder::enabled();
        rec.counter("jobs").add(17);
        rec.gauge("peak").record(9);
        rec.gauge_set("depth").set(4);
        let h = rec.histogram("wait_us");
        for v in [3u64, 3, 200, 5000, 70000] {
            h.observe(v);
        }
        let snap = rec.snapshot();
        let parsed = parse(&render(&snap));
        assert_eq!(parsed.counter("jobs"), 17);
        assert_eq!(parsed.gauge("peak"), 9);
        assert_eq!(parsed.gauge("depth"), 4);
        assert_eq!(parsed.gauge_modes["depth"], GaugeMode::Set);
        let orig = snap.histogram("wait_us");
        let back = parsed.histogram("wait_us");
        assert_eq!(back.counts, orig.counts, "bucket counts survive exactly");
        assert_eq!(back.sum, orig.sum);
        assert_eq!(back.min(), orig.min());
        assert_eq!(back.max(), orig.max());
        assert_eq!(back.quantile(0.5), orig.quantile(0.5));
    }

    #[test]
    fn parse_skips_foreign_lines() {
        let text = "# HELP something else\ngarbage line without value x\nup 1\n";
        let snap = parse(text);
        assert!(snap.counters.is_empty());
        assert!(snap.histograms.is_empty());
    }
}
