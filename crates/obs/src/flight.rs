//! Always-on flight recorder: a bounded ring of recent annotated
//! events kept for post-mortems.
//!
//! Unlike the trace [`Recorder`](crate::Recorder) — which is opt-in
//! and drains once — a [`FlightRecorder`] is cheap enough to leave on
//! in a long-running server: it holds the last `capacity` entries
//! (overwriting the oldest), can be sampled at any time via
//! [`FlightRecorder::tail`], and serializes to JSONL for
//! `GET /events` or a crash dump. [`FlightRecorder::install_panic_dump`]
//! registers a process-wide panic hook that writes every installed
//! ring to disk before the process dies, so the last seconds of
//! request history survive a crash.

use std::collections::VecDeque;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Once, OnceLock, PoisonError, Weak};
use std::time::{SystemTime, UNIX_EPOCH};

/// Default ring capacity (entries, not bytes).
pub const DEFAULT_FLIGHT_CAPACITY: usize = 1024;

/// One flight-recorder entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightEntry {
    /// Monotonically increasing sequence number (never reused, so
    /// consumers can detect how much the ring overwrote between
    /// polls).
    pub seq: u64,
    /// Microseconds since the Unix epoch at record time.
    pub unix_us: u64,
    /// Category (e.g. `"http"`, `"sched"`, `"lifecycle"`).
    pub cat: &'static str,
    /// Human-readable message.
    pub msg: String,
}

impl FlightEntry {
    /// This entry as one JSON object (one JSONL line without the
    /// trailing newline).
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\"seq\":{},\"unix_us\":{},\"cat\":\"{}\",\"msg\":\"{}\"}}",
            self.seq,
            self.unix_us,
            crate::sink::json_escape(self.cat),
            crate::sink::json_escape(&self.msg)
        )
    }
}

#[derive(Debug)]
struct FlightInner {
    capacity: usize,
    next_seq: AtomicU64,
    entries: Mutex<VecDeque<FlightEntry>>,
}

/// A bounded, overwriting ring of recent events (cheap to clone; all
/// clones share the ring).
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    inner: Arc<FlightInner>,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_FLIGHT_CAPACITY)
    }
}

/// One panic-dump registration: where to write, and which ring (weak:
/// a dropped recorder just stops being dumped).
type DumpTarget = (PathBuf, Weak<FlightInner>);

/// Rings registered for the panic-hook dump.
static DUMP_REGISTRY: OnceLock<Mutex<Vec<DumpTarget>>> = OnceLock::new();
static PANIC_HOOK: Once = Once::new();

fn dump_registry() -> &'static Mutex<Vec<DumpTarget>> {
    DUMP_REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

impl FlightRecorder {
    /// A recorder holding the last `capacity` entries.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        FlightRecorder {
            inner: Arc::new(FlightInner {
                capacity: capacity.max(1),
                next_seq: AtomicU64::new(0),
                entries: Mutex::new(VecDeque::new()),
            }),
        }
    }

    /// Appends an entry, evicting the oldest when full.
    pub fn record(&self, cat: &'static str, msg: impl Into<String>) {
        let entry = FlightEntry {
            seq: self.inner.next_seq.fetch_add(1, Ordering::Relaxed),
            unix_us: SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map_or(0, |d| d.as_micros() as u64),
            cat,
            msg: msg.into(),
        };
        let mut entries = self
            .inner
            .entries
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if entries.len() == self.inner.capacity {
            entries.pop_front();
        }
        entries.push_back(entry);
    }

    /// The last `n` entries, oldest first.
    #[must_use]
    pub fn tail(&self, n: usize) -> Vec<FlightEntry> {
        let entries = self
            .inner
            .entries
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        entries
            .iter()
            .skip(entries.len().saturating_sub(n))
            .cloned()
            .collect()
    }

    /// Entries recorded so far (including overwritten ones).
    #[must_use]
    pub fn recorded(&self) -> u64 {
        self.inner.next_seq.load(Ordering::Relaxed)
    }

    /// The whole ring as JSONL (one entry per line, oldest first).
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for entry in self.tail(usize::MAX) {
            out.push_str(&entry.to_json());
            out.push('\n');
        }
        out
    }

    /// Writes the ring to `path` as JSONL (creating parent
    /// directories).
    pub fn dump_to(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.to_jsonl())
    }

    /// Registers this ring to be dumped to `path` when the process
    /// panics (any thread). The hook chains onto the existing panic
    /// hook, fires once per registered ring, and skips rings already
    /// dropped. Call [`dump_installed`] from a signal handler path to
    /// trigger the same dump on e.g. SIGTERM.
    pub fn install_panic_dump(&self, path: impl Into<PathBuf>) {
        dump_registry()
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push((path.into(), Arc::downgrade(&self.inner)));
        PANIC_HOOK.call_once(|| {
            let prev = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                dump_installed();
                prev(info);
            }));
        });
    }
}

/// Dumps every ring registered via
/// [`FlightRecorder::install_panic_dump`] to its path now. Also what
/// the panic hook runs; call it from shutdown/SIGTERM paths to get the
/// same post-mortem artifact without a panic. Returns how many rings
/// were written.
pub fn dump_installed() -> usize {
    let mut written = 0;
    let registry = dump_registry()
        .lock()
        .unwrap_or_else(PoisonError::into_inner);
    for (path, weak) in registry.iter() {
        if let Some(inner) = weak.upgrade() {
            let rec = FlightRecorder { inner };
            if rec.dump_to(path).is_ok() {
                written += 1;
            }
        }
    }
    written
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_overwrites_oldest_and_keeps_seq() {
        let fr = FlightRecorder::with_capacity(3);
        for i in 0..5 {
            fr.record("t", format!("m{i}"));
        }
        let tail = fr.tail(10);
        assert_eq!(tail.len(), 3);
        assert_eq!(
            tail.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![2, 3, 4],
            "oldest entries evicted, sequence numbers preserved"
        );
        assert_eq!(fr.recorded(), 5);
        assert_eq!(fr.tail(2).len(), 2);
        assert_eq!(fr.tail(2)[0].msg, "m3");
    }

    #[test]
    fn jsonl_is_one_valid_object_per_line() {
        let fr = FlightRecorder::with_capacity(8);
        fr.record("http", "GET /stats 200 in 42us");
        fr.record("lifecycle", "shutdown \"requested\"");
        let jsonl = fr.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            let obj = crate::json::parse(line).expect("valid JSON");
            assert!(obj.get("seq").is_some());
            assert!(obj.get("unix_us").is_some());
            assert!(obj.get("cat").is_some());
            assert!(obj.get("msg").is_some());
        }
    }

    #[test]
    fn dump_writes_file_and_registry_survives_drop() {
        let dir = std::env::temp_dir().join(format!("syncperf-flight-{}", std::process::id()));
        let path = dir.join("dump.jsonl");
        let fr = FlightRecorder::with_capacity(4);
        fr.record("t", "before dump");
        fr.install_panic_dump(&path);
        assert!(dump_installed() >= 1);
        let written = std::fs::read_to_string(&path).expect("dump exists");
        assert!(written.contains("before dump"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
