//! The load-run result: latency quantiles, throughput, and error
//! rate, with a JSON encoding (BENCH_serve.json) and the `--check`
//! comparison against a committed baseline.

use syncperf_obs::json;

/// Aggregated result of one load run.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadReport {
    /// Concurrent keep-alive connections held.
    pub connections: u64,
    /// Measured window length in seconds.
    pub duration_s: f64,
    /// Requests completed in the window.
    pub requests: u64,
    /// Requests that failed (transport error or unexpected 5xx).
    pub errors: u64,
    /// Connections re-established mid-run (request cap, idle close).
    pub reconnects: u64,
    /// Latency quantiles over all successful requests, microseconds.
    pub p50_us: u64,
    /// 90th percentile latency, microseconds.
    pub p90_us: u64,
    /// 99th percentile latency, microseconds.
    pub p99_us: u64,
    /// Worst observed latency, microseconds.
    pub max_us: u64,
}

impl LoadReport {
    /// Requests per second over the measured window.
    #[must_use]
    pub fn rps(&self) -> f64 {
        if self.duration_s > 0.0 {
            self.requests as f64 / self.duration_s
        } else {
            0.0
        }
    }

    /// Fraction of requests that errored.
    #[must_use]
    pub fn error_rate(&self) -> f64 {
        if self.requests > 0 {
            self.errors as f64 / self.requests as f64
        } else {
            0.0
        }
    }

    /// The BENCH_serve.json encoding (stable field order; the
    /// `check_*` fields document the gate the CI lane applies).
    #[must_use]
    pub fn to_json(&self, p99_factor: f64, max_error_rate: f64) -> String {
        format!(
            "{{\n\
             \"benchmark\": \"syncperf_load mixed keep-alive traffic vs a serve replica pair\",\n\
             \"connections\": {},\n\
             \"duration_s\": {:.2},\n\
             \"requests\": {},\n\
             \"errors\": {},\n\
             \"reconnects\": {},\n\
             \"throughput_rps\": {:.1},\n\
             \"error_rate\": {:.4},\n\
             \"p50_us\": {},\n\
             \"p90_us\": {},\n\
             \"p99_us\": {},\n\
             \"max_us\": {},\n\
             \"check_p99_factor\": {:.1},\n\
             \"check_max_error_rate\": {:.3}\n\
             }}\n",
            self.connections,
            self.duration_s,
            self.requests,
            self.errors,
            self.reconnects,
            self.rps(),
            self.error_rate(),
            self.p50_us,
            self.p90_us,
            self.p99_us,
            self.max_us,
            p99_factor,
            max_error_rate,
        )
    }

    /// A human-readable run summary.
    #[must_use]
    pub fn render(&self) -> String {
        format!(
            "load: {} conns for {:.1}s -> {} requests ({:.0} rps), {} errors ({:.2}%), \
             {} reconnects\nlatency: p50 {}us  p90 {}us  p99 {}us  max {}us",
            self.connections,
            self.duration_s,
            self.requests,
            self.rps(),
            self.errors,
            self.error_rate() * 100.0,
            self.reconnects,
            self.p50_us,
            self.p90_us,
            self.p99_us,
            self.max_us,
        )
    }
}

/// The committed baseline a `--check` run gates against.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Baseline {
    /// Baseline 99th-percentile latency, microseconds.
    pub p99_us: u64,
    /// Allowed p99 growth factor before the gate fails.
    pub p99_factor: f64,
    /// Allowed error-rate ceiling before the gate fails.
    pub max_error_rate: f64,
}

impl Baseline {
    /// Parses a BENCH_serve.json body.
    ///
    /// # Errors
    ///
    /// Describes missing/malformed fields.
    pub fn from_json(text: &str) -> Result<Baseline, String> {
        let v = json::parse(text).map_err(|e| format!("bad BENCH_serve.json: {e:?}"))?;
        let num = |k: &str| -> Result<f64, String> {
            v.get(k)
                .and_then(|x| x.as_f64())
                .ok_or_else(|| format!("BENCH_serve.json missing numeric `{k}`"))
        };
        Ok(Baseline {
            p99_us: num("p99_us")? as u64,
            p99_factor: num("check_p99_factor")?,
            max_error_rate: num("check_max_error_rate")?,
        })
    }

    /// Applies the gate; `Err` carries the human-readable failure.
    ///
    /// # Errors
    ///
    /// Reports which bound regressed and by how much.
    pub fn check(&self, report: &LoadReport) -> Result<(), String> {
        let p99_limit = (self.p99_us as f64 * self.p99_factor) as u64;
        if report.p99_us > p99_limit {
            return Err(format!(
                "p99 regression: measured {}us > limit {}us (baseline {}us x {:.1})",
                report.p99_us, p99_limit, self.p99_us, self.p99_factor
            ));
        }
        if report.error_rate() > self.max_error_rate {
            return Err(format!(
                "error-rate regression: measured {:.4} > limit {:.3}",
                report.error_rate(),
                self.max_error_rate
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> LoadReport {
        LoadReport {
            connections: 1000,
            duration_s: 2.0,
            requests: 10_000,
            errors: 10,
            reconnects: 78,
            p50_us: 400,
            p90_us: 900,
            p99_us: 2_000,
            max_us: 15_000,
        }
    }

    #[test]
    fn report_round_trips_through_baseline() {
        let r = report();
        assert!((r.rps() - 5000.0).abs() < 1e-9);
        assert!((r.error_rate() - 0.001).abs() < 1e-9);
        let encoded = r.to_json(2.5, 0.02);
        let base = Baseline::from_json(&encoded).unwrap();
        assert_eq!(base.p99_us, 2_000);
        assert!((base.p99_factor - 2.5).abs() < 1e-9);
        assert!(base.check(&r).is_ok());
    }

    #[test]
    fn gate_catches_regressions() {
        let base = Baseline {
            p99_us: 1000,
            p99_factor: 2.0,
            max_error_rate: 0.01,
        };
        let mut r = report();
        r.p99_us = 1999;
        assert!(base.check(&r).is_ok());
        r.p99_us = 2001;
        assert!(base.check(&r).unwrap_err().contains("p99 regression"));
        r.p99_us = 100;
        r.errors = 500; // 5% > 1%
        assert!(base
            .check(&r)
            .unwrap_err()
            .contains("error-rate regression"));
    }

    #[test]
    fn baseline_rejects_malformed_json() {
        assert!(Baseline::from_json("not json").is_err());
        assert!(Baseline::from_json("{\"p99_us\": 5}").is_err());
    }

    #[test]
    fn empty_run_divides_safely() {
        let r = LoadReport {
            connections: 0,
            duration_s: 0.0,
            requests: 0,
            errors: 0,
            reconnects: 0,
            p50_us: 0,
            p90_us: 0,
            p99_us: 0,
            max_us: 0,
        };
        assert!((r.rps() - 0.0).abs() < 1e-9);
        assert!((r.error_rate() - 0.0).abs() < 1e-9);
    }
}
