//! # syncperf-load
//!
//! A zero-dependency HTTP load harness for the syncperf serving
//! layer — the serving twin of the compute-side `bench_report`
//! tracked benchmarks. It holds a fleet of keep-alive connections
//! ([`client::ClientConn`]) across one or more serve replicas,
//! drives a deterministic mixed traffic profile
//! ([`profile::Profile`]: hash lookups, sweep queries, figure
//! fetches, telemetry scrapes, warm computes), measures per-request
//! latency on obs histograms, and aggregates a [`report::LoadReport`]
//! with p50/p90/p99/max, throughput, and error rate. The committed
//! `BENCH_serve.json` baseline plus [`report::Baseline::check`] form
//! the CI regression gate (`syncperf_load bench --check`).
//!
//! The harness is a closed-loop generator: `workers` threads each own
//! a slice of the connection fleet and issue one request at a time
//! per thread, rotating over their connections so every connection
//! stays warm and exercised. Connections the server closes (the
//! per-connection request cap, idle eviction) are transparently
//! re-established and counted as `reconnects`.

pub mod client;
pub mod profile;
pub mod report;

pub use client::{ClientConn, Reply};
pub use profile::{Op, Profile, Rng};
pub use report::{Baseline, LoadReport};

use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use syncperf_obs::{Histogram, HistogramSnapshot};

/// Load-run parameters.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Target servers (`host:port`), connection fleet round-robins
    /// across them.
    pub targets: Vec<String>,
    /// Total keep-alive connections to hold.
    pub connections: usize,
    /// Measured window length.
    pub duration: Duration,
    /// Generator threads (each owns `connections / workers` conns).
    pub workers: usize,
    /// Per-request connect/read/write timeout.
    pub timeout: Duration,
    /// PRNG seed for the op mix.
    pub seed: u64,
}

impl LoadConfig {
    /// A config for the given targets with the defaults the CI lane
    /// uses: 1000 connections, 32 worker threads, 5 s timeout.
    #[must_use]
    pub fn new(targets: Vec<String>) -> LoadConfig {
        LoadConfig {
            targets,
            connections: 1000,
            duration: Duration::from_secs(8),
            workers: 32,
            timeout: Duration::from_secs(5),
            seed: 0x5EED,
        }
    }
}

/// One worker thread's tally.
struct WorkerResult {
    requests: u64,
    errors: u64,
    reconnects: u64,
    latency: HistogramSnapshot,
}

/// Runs the load: connect the whole fleet, drive the profile until
/// the window closes, merge per-worker tallies.
///
/// # Errors
///
/// Fails when no target is given or the fleet cannot be constructed;
/// individual request failures are counted, not propagated.
pub fn run(cfg: &LoadConfig, profile: &Profile) -> io::Result<LoadReport> {
    if cfg.targets.is_empty() {
        return Err(io::Error::new(io::ErrorKind::InvalidInput, "no targets"));
    }
    if profile.hashes.is_empty() || profile.points.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "profile not warmed (no hashes/points)",
        ));
    }
    let workers = cfg.workers.clamp(1, cfg.connections.max(1));
    let deadline = Instant::now() + cfg.duration;
    let start = Instant::now();
    // Connections failing even the initial connect (target down) are
    // visible in this shared counter so the report can't silently
    // claim a fleet it never held.
    let connect_failures = Arc::new(AtomicU64::new(0));

    let handles: Vec<_> = (0..workers)
        .map(|w| {
            // Distribute the fleet: earlier workers absorb the
            // remainder, every target gets an even share.
            let share = cfg.connections / workers + usize::from(w < cfg.connections % workers);
            let targets = cfg.targets.clone();
            let profile = profile.clone();
            let timeout = cfg.timeout;
            let seed = cfg.seed ^ (w as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let connect_failures = Arc::clone(&connect_failures);
            std::thread::spawn(move || {
                drive(
                    &targets,
                    share,
                    w,
                    &profile,
                    timeout,
                    seed,
                    deadline,
                    &connect_failures,
                )
            })
        })
        .collect();

    let mut requests = 0;
    let mut errors = 0;
    let mut reconnects = 0;
    let mut latency = Histogram::standalone().snapshot();
    for h in handles {
        let r = h.join().map_err(|_| io::Error::other("worker panicked"))?;
        requests += r.requests;
        errors += r.errors;
        reconnects += r.reconnects;
        latency.merge(&r.latency);
    }
    let failed = connect_failures.load(Ordering::Relaxed);
    Ok(LoadReport {
        connections: (cfg.connections as u64).saturating_sub(failed),
        duration_s: start.elapsed().as_secs_f64(),
        requests,
        errors: errors + failed,
        reconnects,
        p50_us: latency.quantile(0.50),
        p90_us: latency.quantile(0.90),
        p99_us: latency.quantile(0.99),
        max_us: latency.max(),
    })
}

/// The per-thread generator loop.
#[allow(clippy::too_many_arguments)]
fn drive(
    targets: &[String],
    share: usize,
    worker: usize,
    profile: &Profile,
    timeout: Duration,
    seed: u64,
    deadline: Instant,
    connect_failures: &AtomicU64,
) -> WorkerResult {
    let hist = Histogram::standalone();
    let mut rng = Rng::new(seed);
    let mut requests = 0;
    let mut errors = 0;

    // Build + eagerly connect this worker's slice of the fleet,
    // spreading it over the targets.
    let mut conns = Vec::with_capacity(share);
    for i in 0..share {
        let target = &targets[(worker + i) % targets.len()];
        match ClientConn::new(target, timeout) {
            Ok(mut conn) => {
                if conn.connect().is_err() {
                    connect_failures.fetch_add(1, Ordering::Relaxed);
                } else {
                    conns.push(conn);
                }
            }
            Err(_) => {
                connect_failures.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    let mut next = 0usize;
    while Instant::now() < deadline && !conns.is_empty() {
        let idx = next % conns.len();
        let conn = &mut conns[idx];
        next = next.wrapping_add(1);
        let op = profile.next_op(&mut rng);
        let (method, path, body) = match &op {
            Op::Job(hash) => ("GET", format!("/job/{hash}"), None),
            Op::Query(q) => ("GET", q.clone(), None),
            Op::Figure(name) => ("GET", format!("/figure/{name}.csv"), None),
            Op::Metrics => ("GET", "/metrics".to_string(), None),
            Op::Stats => ("GET", "/stats".to_string(), None),
            Op::Compute(body) => ("POST", "/compute".to_string(), Some(body.clone())),
        };
        let t0 = Instant::now();
        requests += 1;
        if let Ok(reply) = conn.request(method, &path, body.as_deref()) {
            hist.observe(t0.elapsed().as_micros() as u64);
            // A figure 404 is a correct answer (the scratch results
            // dir has no rendered figures); any other non-2xx is an
            // error for the harness.
            let figure_miss = matches!(op, Op::Figure(_)) && reply.status == 404;
            if reply.status >= 400 && !figure_miss {
                errors += 1;
            }
        } else {
            errors += 1;
        }
    }
    let reconnects = conns.iter().map(|c| c.reconnects).sum();
    WorkerResult {
        requests,
        errors,
        reconnects,
        latency: hist.snapshot(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_rejects_unusable_configs() {
        let profile = Profile {
            hashes: vec!["00112233445566aa".into()],
            points: vec![("omp_barrier".into(), 4)],
            figures: vec![],
        };
        let empty = LoadConfig::new(vec![]);
        assert!(run(&empty, &profile).is_err());

        let cold = Profile {
            hashes: vec![],
            points: vec![],
            figures: vec![],
        };
        let cfg = LoadConfig::new(vec!["127.0.0.1:1".into()]);
        assert!(run(&cfg, &cold).is_err());
    }

    #[test]
    fn unreachable_targets_count_as_connect_failures() {
        let profile = Profile {
            hashes: vec!["00112233445566aa".into()],
            points: vec![("omp_barrier".into(), 4)],
            figures: vec![],
        };
        // Port 1 is essentially never listening; every connect fails
        // fast (connection refused), the run completes with zero held
        // connections and no requests.
        let mut cfg = LoadConfig::new(vec!["127.0.0.1:1".into()]);
        cfg.connections = 4;
        cfg.workers = 2;
        cfg.duration = Duration::from_millis(50);
        cfg.timeout = Duration::from_millis(200);
        let report = run(&cfg, &profile).unwrap();
        assert_eq!(report.connections, 0);
        assert_eq!(report.requests, 0);
        assert_eq!(report.errors, 4);
    }
}
