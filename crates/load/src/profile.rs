//! The mixed traffic profile: a deterministic PRNG choosing between
//! hash lookups, sweep-point queries, figure fetches, telemetry
//! scrapes, and compute-on-miss posts — roughly the shape of a
//! figure-regeneration client fleet hitting a warm replica pair.

use std::time::Duration;

use crate::client::ClientConn;

/// `xorshift64*` — tiny, deterministic, and plenty for op mixing.
#[derive(Debug, Clone)]
pub struct Rng(u64);

impl Rng {
    /// Seeds the generator (zero is mapped to a fixed odd constant).
    #[must_use]
    pub fn new(seed: u64) -> Rng {
        Rng(if seed == 0 {
            0x9E37_79B9_7F4A_7C15
        } else {
            seed
        })
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `0..n` (`n` must be nonzero).
    pub fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

/// One request in the mix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// `GET /job/<hash>` for a known-cached hash.
    Job(String),
    /// `GET /query?...` for a known-cached sweep point.
    Query(String),
    /// `GET /figure/<name>.csv` (may 404; that is not an error for
    /// the harness — 404 on a figure is a correct server answer).
    Figure(String),
    /// `GET /metrics` telemetry scrape.
    Metrics,
    /// `GET /stats` counter snapshot.
    Stats,
    /// `POST /compute` of an already-cached job (exercises the
    /// resolver + index fast path without unbounded compute).
    Compute(String),
}

/// The workload: known-warm cache state plus the op mix.
#[derive(Debug, Clone)]
pub struct Profile {
    /// Hashes known to be cached (targets of `Job` ops).
    pub hashes: Vec<String>,
    /// Warmed `(kernel, threads)` sweep points (targets of `Query`).
    pub points: Vec<(String, u32)>,
    /// Figure names to fetch.
    pub figures: Vec<String>,
}

/// The kernels the warmup computes, all resolvable by the bench
/// resolver's CPU simulator path.
const WARM_KERNELS: [&str; 3] = [
    "omp_barrier",
    "omp_atomicadd_scalar_int",
    "omp_critical_int",
];
const WARM_THREADS: [u32; 2] = [4, 8];

impl Profile {
    /// Warms the target server's cache over HTTP (`POST /compute` of
    /// a small kernel × thread grid) and records the resulting hashes
    /// as the profile's hot set. Requires no scheduler access — the
    /// harness stays a pure HTTP client.
    ///
    /// # Errors
    ///
    /// Fails when the server is unreachable or a warmup compute does
    /// not answer 200.
    pub fn warm(target: &str, timeout: Duration) -> std::io::Result<Profile> {
        let mut conn = ClientConn::new(target, timeout)?;
        let mut hashes = Vec::new();
        let mut points = Vec::new();
        for kernel in WARM_KERNELS {
            for threads in WARM_THREADS {
                let body = format!(
                    "{{\"executor\": \"cpu-sim\", \"kernel\": \"{kernel}\", \"threads\": {threads}}}"
                );
                let reply = conn.request("POST", "/compute", Some(&body))?;
                if reply.status != 200 {
                    return Err(std::io::Error::other(format!(
                        "warmup compute of {kernel}/{threads} answered {}",
                        reply.status
                    )));
                }
                if let Some(hash) = extract_hash(&reply.body) {
                    hashes.push(hash);
                }
                points.push((kernel.to_string(), threads));
            }
        }
        Ok(Profile {
            hashes,
            points,
            figures: vec!["fig01_atomics_cpu".into(), "fig07_barrier_cpu".into()],
        })
    }

    /// Picks the next op with the fixed mix: 40% hash lookups, 25%
    /// queries, 10% figures, 10% computes (of warm jobs), 10% stats,
    /// 5% metrics.
    pub fn next_op(&self, rng: &mut Rng) -> Op {
        let roll = rng.below(100);
        match roll {
            0..=39 => Op::Job(self.hashes[rng.below(self.hashes.len())].clone()),
            40..=64 => {
                let (kernel, threads) = &self.points[rng.below(self.points.len())];
                Op::Query(format!("/query?kernel={kernel}&threads={threads}"))
            }
            65..=74 => Op::Figure(self.figures[rng.below(self.figures.len())].clone()),
            75..=84 => {
                let (kernel, threads) = &self.points[rng.below(self.points.len())];
                Op::Compute(format!(
                    "{{\"executor\": \"cpu-sim\", \"kernel\": \"{kernel}\", \"threads\": {threads}}}"
                ))
            }
            85..=94 => Op::Stats,
            _ => Op::Metrics,
        }
    }
}

/// Pulls the `"hash": "<hex16>"` field out of a measurement response
/// without a full JSON parse (the serve layer renders it first).
#[must_use]
pub fn extract_hash(body: &str) -> Option<String> {
    let idx = body.find("\"hash\"")?;
    let rest = &body[idx + 6..];
    let open = rest.find('"')? + 1;
    let close = open + rest[open..].find('"')?;
    let hash = &rest[open..close];
    (hash.len() == 16 && hash.chars().all(|c| c.is_ascii_hexdigit())).then(|| hash.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_and_bounded() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        for _ in 0..1000 {
            assert!(a.below(7) < 7);
        }
        // Zero seed must not lock up at zero.
        let mut z = Rng::new(0);
        assert_ne!(z.next_u64(), 0);
    }

    #[test]
    fn op_mix_covers_every_variant() {
        let profile = Profile {
            hashes: vec!["00112233445566aa".into()],
            points: vec![("omp_barrier".into(), 4)],
            figures: vec!["fig01".into()],
        };
        let mut rng = Rng::new(7);
        let mut seen_job = false;
        let mut seen_query = false;
        let mut seen_figure = false;
        let mut seen_metrics = false;
        let mut seen_stats = false;
        let mut seen_compute = false;
        for _ in 0..2000 {
            match profile.next_op(&mut rng) {
                Op::Job(h) => {
                    assert_eq!(h, "00112233445566aa");
                    seen_job = true;
                }
                Op::Query(q) => {
                    assert_eq!(q, "/query?kernel=omp_barrier&threads=4");
                    seen_query = true;
                }
                Op::Figure(_) => seen_figure = true,
                Op::Metrics => seen_metrics = true,
                Op::Stats => seen_stats = true,
                Op::Compute(body) => {
                    assert!(body.contains("cpu-sim"));
                    seen_compute = true;
                }
            }
        }
        assert!(
            seen_job && seen_query && seen_figure && seen_metrics && seen_stats && seen_compute
        );
    }

    #[test]
    fn hash_extraction_is_strict() {
        assert_eq!(
            extract_hash("{\n\"hash\": \"00112233445566aa\",\n\"source\": \"cache\"}"),
            Some("00112233445566aa".into())
        );
        assert_eq!(extract_hash("{\"hash\": \"xyz\"}"), None);
        assert_eq!(extract_hash("no hash here"), None);
    }
}
