//! A minimal blocking keep-alive HTTP/1.1 client.
//!
//! One [`ClientConn`] owns one TCP connection and reuses it across
//! requests, transparently reconnecting when the server closes it
//! (the serve front end forces a close every 128 requests as a
//! fairness bound, and sheds over-cap accepts with `Connection:
//! close`). Responses must carry `Content-Length` — the serve layer
//! always does — and chunked encoding is deliberately unsupported.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// One HTTP status + body answer.
#[derive(Debug, Clone)]
pub struct Reply {
    /// HTTP status code.
    pub status: u16,
    /// Response body (decoded per `Content-Length`).
    pub body: String,
}

/// A keep-alive connection to one server.
#[derive(Debug)]
pub struct ClientConn {
    addr: SocketAddr,
    stream: Option<TcpStream>,
    timeout: Duration,
    connected_once: bool,
    /// Times the connection was re-established (graceful
    /// `Connection: close` — e.g. the server's per-connection request
    /// cap — as well as error-path retries).
    pub reconnects: u64,
}

impl ClientConn {
    /// Prepares a (not yet connected) client for `host:port`.
    ///
    /// # Errors
    ///
    /// Fails when the target does not resolve to a socket address.
    pub fn new(target: &str, timeout: Duration) -> io::Result<ClientConn> {
        let addr = target
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "unresolvable target"))?;
        Ok(ClientConn {
            addr,
            stream: None,
            timeout,
            connected_once: false,
            reconnects: 0,
        })
    }

    /// The resolved server address.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Opens the connection eagerly (load harnesses connect their
    /// whole fleet before the measured window starts).
    ///
    /// # Errors
    ///
    /// Propagates connect failure.
    pub fn connect(&mut self) -> io::Result<()> {
        if self.stream.is_none() {
            let stream = TcpStream::connect_timeout(&self.addr, self.timeout)?;
            stream.set_read_timeout(Some(self.timeout))?;
            stream.set_write_timeout(Some(self.timeout))?;
            stream.set_nodelay(true)?;
            self.stream = Some(stream);
            if self.connected_once {
                self.reconnects += 1;
            }
            self.connected_once = true;
        }
        Ok(())
    }

    /// Issues one request and reads the full reply. Reuses the open
    /// connection; if the server closed it since the last exchange,
    /// reconnects and retries once.
    ///
    /// # Errors
    ///
    /// Propagates connect/IO/parse errors after the one retry.
    pub fn request(&mut self, method: &str, path: &str, body: Option<&str>) -> io::Result<Reply> {
        let had_stream = self.stream.is_some();
        match self.try_request(method, path, body) {
            Ok(reply) => Ok(reply),
            Err(e) if had_stream => {
                // A reused connection may have been closed under us
                // (request cap, idle eviction): one fresh retry.
                // connect() counts the re-establishment.
                let _ = e;
                self.stream = None;
                self.try_request(method, path, body)
            }
            Err(e) => Err(e),
        }
    }

    fn try_request(&mut self, method: &str, path: &str, body: Option<&str>) -> io::Result<Reply> {
        self.connect()?;
        let stream = self.stream.as_mut().expect("connected above");
        let body = body.unwrap_or("");
        let req = format!(
            "{method} {path} HTTP/1.1\r\nHost: syncperf\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        if let Err(e) = stream.write_all(req.as_bytes()) {
            self.stream = None;
            return Err(e);
        }
        match read_reply(stream) {
            Ok((reply, keep_alive)) => {
                if !keep_alive {
                    self.stream = None;
                }
                Ok(reply)
            }
            Err(e) => {
                self.stream = None;
                Err(e)
            }
        }
    }
}

/// Reads one `Content-Length`-framed HTTP response; returns it plus
/// whether the connection stays usable.
fn read_reply(stream: &mut TcpStream) -> io::Result<(Reply, bool)> {
    let mut head = Vec::with_capacity(256);
    let mut byte = [0u8; 1];
    while !head.ends_with(b"\r\n\r\n") {
        if head.len() > 64 * 1024 {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "head too large"));
        }
        match stream.read(&mut byte)? {
            0 => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "closed mid-head",
                ))
            }
            _ => head.push(byte[0]),
        }
    }
    let head = String::from_utf8_lossy(&head);
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap_or("");
    let status: u16 = status_line
        .split_ascii_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad status line"))?;
    let mut content_length = 0usize;
    let mut keep_alive = true;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .parse()
                .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "bad content-length"))?;
        } else if name.eq_ignore_ascii_case("connection") {
            keep_alive = !value.eq_ignore_ascii_case("close");
        }
    }
    let mut body = vec![0u8; content_length];
    stream.read_exact(&mut body)?;
    let body = String::from_utf8_lossy(&body).into_owned();
    Ok((Reply { status, body }, keep_alive))
}
