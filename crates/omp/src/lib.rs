//! # syncperf-omp
//!
//! An OpenMP-like parallel runtime on real `std::thread` threads: the
//! CPU substrate of the syncperf reproduction.
//!
//! Provides parallel regions ([`Team`]), spin barriers ([`SenseBarrier`],
//! [`TreeBarrier`]), the four typed atomics of the paper
//! ([`AtomicCell`]), named critical sections ([`Critical`]), memory
//! flushes ([`flush`]), strided shared arrays for false-sharing
//! workloads ([`StridedArray`]), and a real-thread [`OmpExecutor`] that
//! plugs into `syncperf_core`'s measurement protocol.
//!
//! ## Example
//!
//! ```
//! use syncperf_omp::{AtomicCell, Team};
//!
//! let sum = AtomicCell::new(0i32);
//! Team::new(4).parallel(|ctx| {
//!     sum.update(ctx.tid as i32);
//!     ctx.barrier();
//!     assert_eq!(sum.read(), 0 + 1 + 2 + 3);
//! });
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod affinity;
pub mod atomics;
pub mod barrier;
pub mod cacheline;
pub mod critical;
pub mod executor;
pub mod flush;
pub mod lock;
pub mod padded;
pub mod reduce;
pub mod team;

pub use atomics::{AtomicCell, Primitive};
pub use barrier::{BarrierToken, SenseBarrier, TreeBarrier};
pub use critical::Critical;
pub use executor::OmpExecutor;
pub use flush::{flush, flush_acquire, flush_release};
pub use lock::{OmpLock, OmpNestLock};
pub use padded::StridedArray;
pub use team::{Team, ThreadCtx};
