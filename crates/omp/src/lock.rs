//! OpenMP lock routines: `omp_init_lock` / `omp_set_lock` /
//! `omp_unset_lock` / `omp_test_lock`, plus the nestable variant.
//!
//! The paper notes that OpenMP implements critical sections "by having
//! each participating thread acquire and later release a shared lock"
//! (Section II-A3); this module exposes that underlying lock API
//! directly, as OpenMP itself does.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

use crate::cacheline::CachePadded;

/// How many spin iterations before yielding (same policy as the
/// barriers — required on oversubscribed machines).
const SPIN_LIMIT: u32 = 1 << 10;

/// A simple (non-nestable) OpenMP-style lock: `omp_lock_t`.
///
/// # Examples
///
/// ```
/// use syncperf_omp::OmpLock;
///
/// let lock = OmpLock::new();
/// lock.set();          // omp_set_lock
/// assert!(!lock.test()); // already held
/// lock.unset();        // omp_unset_lock
/// assert!(lock.test()); // acquired by test
/// lock.unset();
/// ```
#[derive(Debug, Default)]
pub struct OmpLock {
    held: CachePadded<AtomicBool>,
}

impl OmpLock {
    /// `omp_init_lock` — creates an unlocked lock.
    #[must_use]
    pub fn new() -> Self {
        OmpLock {
            held: CachePadded::new(AtomicBool::new(false)),
        }
    }

    /// `omp_set_lock` — blocks until the lock is acquired.
    pub fn set(&self) {
        let mut spins = 0u32;
        loop {
            // Test-and-test-and-set: spin on a read to avoid hammering
            // the line with RMWs.
            if !self.held.load(Ordering::Relaxed)
                && self
                    .held
                    .compare_exchange_weak(false, true, Ordering::Acquire, Ordering::Relaxed)
                    .is_ok()
            {
                return;
            }
            spins += 1;
            if spins > SPIN_LIMIT {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
    }

    /// `omp_test_lock` — tries to acquire without blocking; returns
    /// whether the lock was acquired.
    #[must_use]
    pub fn test(&self) -> bool {
        self.held
            .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
    }

    /// `omp_unset_lock` — releases the lock.
    ///
    /// Releasing a lock that is not held is a usage error in OpenMP;
    /// here it simply marks the lock free.
    pub fn unset(&self) {
        self.held.store(false, Ordering::Release);
    }

    /// Runs `f` while holding the lock.
    pub fn with<R>(&self, f: impl FnOnce() -> R) -> R {
        self.set();
        let r = f();
        self.unset();
        r
    }
}

/// A nestable OpenMP lock: `omp_nest_lock_t`. The owning thread may
/// re-acquire it; each `set` must be matched by an `unset`.
#[derive(Debug, Default)]
pub struct OmpNestLock {
    /// Owner thread id + 1 (0 = free).
    owner: CachePadded<AtomicU64>,
    depth: AtomicUsize,
}

fn current_thread_token() -> u64 {
    // Each OS thread gets a stable nonzero token.
    use std::sync::atomic::AtomicU64 as Counter;
    static NEXT: Counter = Counter::new(1);
    thread_local! {
        static TOKEN: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    TOKEN.with(|t| *t)
}

impl OmpNestLock {
    /// `omp_init_nest_lock`.
    #[must_use]
    pub fn new() -> Self {
        OmpNestLock {
            owner: CachePadded::new(AtomicU64::new(0)),
            depth: AtomicUsize::new(0),
        }
    }

    /// `omp_set_nest_lock` — blocks unless already owned by the caller;
    /// returns the new nesting depth.
    pub fn set(&self) -> usize {
        let me = current_thread_token();
        if self.owner.load(Ordering::Acquire) == me {
            let d = self.depth.fetch_add(1, Ordering::Relaxed) + 1;
            return d;
        }
        let mut spins = 0u32;
        loop {
            if self
                .owner
                .compare_exchange_weak(0, me, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
            {
                self.depth.store(1, Ordering::Relaxed);
                return 1;
            }
            spins += 1;
            if spins > SPIN_LIMIT {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
    }

    /// `omp_unset_nest_lock` — decrements the nesting depth, releasing
    /// the lock at zero. Returns the remaining depth.
    ///
    /// # Panics
    ///
    /// Panics if the calling thread does not own the lock.
    pub fn unset(&self) -> usize {
        let me = current_thread_token();
        assert_eq!(
            self.owner.load(Ordering::Relaxed),
            me,
            "omp_unset_nest_lock by a non-owner thread"
        );
        let d = self.depth.fetch_sub(1, Ordering::Relaxed) - 1;
        if d == 0 {
            self.owner.store(0, Ordering::Release);
        }
        d
    }

    /// `omp_test_nest_lock` — non-blocking acquire; returns the new
    /// depth on success, `None` when another thread holds the lock.
    #[must_use]
    pub fn test(&self) -> Option<usize> {
        let me = current_thread_token();
        if self.owner.load(Ordering::Acquire) == me {
            return Some(self.depth.fetch_add(1, Ordering::Relaxed) + 1);
        }
        if self
            .owner
            .compare_exchange(0, me, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
        {
            self.depth.store(1, Ordering::Relaxed);
            Some(1)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn set_unset_cycle() {
        let l = OmpLock::new();
        for _ in 0..100 {
            l.set();
            l.unset();
        }
    }

    #[test]
    fn test_lock_semantics() {
        let l = OmpLock::new();
        assert!(l.test());
        assert!(!l.test(), "second acquire must fail");
        l.unset();
        assert!(l.test());
        l.unset();
    }

    #[test]
    fn provides_mutual_exclusion() {
        let l = OmpLock::new();
        let counter = AtomicU32::new(0);
        let in_section = AtomicU32::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..2_000 {
                        l.with(|| {
                            assert_eq!(in_section.fetch_add(1, Ordering::SeqCst), 0);
                            counter.fetch_add(1, Ordering::Relaxed);
                            in_section.fetch_sub(1, Ordering::SeqCst);
                        });
                    }
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 8_000);
    }

    #[test]
    fn nest_lock_reentrant() {
        let l = OmpNestLock::new();
        assert_eq!(l.set(), 1);
        assert_eq!(l.set(), 2);
        assert_eq!(l.set(), 3);
        assert_eq!(l.unset(), 2);
        assert_eq!(l.unset(), 1);
        assert_eq!(l.unset(), 0);
        // Free again: another acquire starts at depth 1.
        assert_eq!(l.set(), 1);
        assert_eq!(l.unset(), 0);
    }

    #[test]
    fn nest_test_fails_cross_thread_when_held() {
        let l = OmpNestLock::new();
        l.set();
        std::thread::scope(|s| {
            s.spawn(|| {
                assert!(l.test().is_none(), "other thread must not acquire");
            });
        });
        l.unset();
        std::thread::scope(|s| {
            s.spawn(|| {
                assert_eq!(l.test(), Some(1));
                l.unset();
            });
        });
    }

    #[test]
    fn nest_unset_by_non_owner_panics() {
        let l = OmpNestLock::new();
        l.set();
        std::thread::scope(|s| {
            let handle = s.spawn(|| {
                let _ = l.unset(); // must panic: not the owner
            });
            let err = handle.join().expect_err("non-owner unset must panic");
            let msg = err.downcast_ref::<String>().expect("panic message");
            assert!(msg.contains("non-owner"), "unexpected message: {msg}");
        });
        l.unset();
    }

    #[test]
    fn nest_lock_mutual_exclusion() {
        let l = OmpNestLock::new();
        let counter = AtomicU32::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1_000 {
                        l.set();
                        l.set(); // nested
                        let v = counter.load(Ordering::Relaxed);
                        counter.store(v + 1, Ordering::Relaxed);
                        l.unset();
                        l.unset();
                    }
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 4_000);
    }
}
