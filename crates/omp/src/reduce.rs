//! Parallel reductions done the way the paper recommends.
//!
//! [`Team::parallel_reduce`] packages §V-A5's guidance — privatize into
//! registers, avoid false sharing and same-location atomics, merge once
//! per thread — so callers get the fast pattern without re-deriving it.
//! `parallel_reduce_naive` is the anti-pattern (one shared atomic per
//! element), kept for measurement and demonstration.

use crate::atomics::{AtomicCell, Primitive};
use crate::team::Team;

impl Team {
    /// Reduces `map(0) ⊕ map(1) ⊕ … ⊕ map(count−1)` in parallel using
    /// the recommended pattern: each thread folds its statically
    /// scheduled chunk into a register-local accumulator, then performs
    /// exactly one atomic merge.
    ///
    /// `combine` must be associative and commutative with `identity` as
    /// its identity element (the usual reduction contract; OpenMP's
    /// `reduction` clause requires the same).
    ///
    /// # Examples
    ///
    /// ```
    /// use syncperf_omp::Team;
    ///
    /// let data: Vec<u64> = (1..=1000).collect();
    /// let sum = Team::new(4).parallel_reduce(
    ///     data.len(),
    ///     |i| data[i],
    ///     0u64,
    ///     |a, b| a + b,
    /// );
    /// assert_eq!(sum, 500_500);
    /// ```
    pub fn parallel_reduce<T, M, C>(&self, count: usize, map: M, identity: T, combine: C) -> T
    where
        T: Primitive,
        M: Fn(usize) -> T + Sync,
        C: Fn(T, T) -> T + Sync,
    {
        let global = AtomicCell::new(identity);
        self.parallel(|ctx| {
            // Register-private accumulation over a contiguous chunk
            // (static schedule → no false sharing, no shared atomics in
            // the hot loop).
            let mut local = identity;
            let chunk = count.div_ceil(ctx.nthreads.max(1));
            let start = (ctx.tid * chunk).min(count);
            let end = ((ctx.tid + 1) * chunk).min(count);
            for i in start..end {
                local = combine(local, map(i));
            }
            // One merge per thread. Floats use the CAS loop under the
            // hood; integers a single RMW.
            merge(&global, local, &combine);
        });
        global.read()
    }

    /// The anti-pattern the paper's Figs. 2/5 warn about: every element
    /// goes straight into one shared atomic. Correct, portable — and
    /// slow under contention. Exists so callers can measure the gap on
    /// their own machine.
    pub fn parallel_reduce_naive<T, M, C>(&self, count: usize, map: M, identity: T, combine: C) -> T
    where
        T: Primitive,
        M: Fn(usize) -> T + Sync,
        C: Fn(T, T) -> T + Sync,
    {
        let global = AtomicCell::new(identity);
        self.parallel(|ctx| {
            let mut i = ctx.tid;
            while i < count {
                merge(&global, map(i), &combine);
                i += ctx.nthreads;
            }
        });
        global.read()
    }
}

/// Atomically folds `value` into `cell` with `combine` — a standard
/// CAS loop via [`AtomicCell::fetch_update`], valid for any
/// associative-commutative operation.
fn merge<T: Primitive, C: Fn(T, T) -> T>(cell: &AtomicCell<T>, value: T, combine: &C) {
    let _ = cell.fetch_update(|current| combine(current, value));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sums_match_serial() {
        let data: Vec<u64> = (0..10_000).map(|i| i % 97).collect();
        let expect: u64 = data.iter().sum();
        for threads in [1usize, 2, 3, 4, 7] {
            let got = Team::new(threads).parallel_reduce(data.len(), |i| data[i], 0, |a, b| a + b);
            assert_eq!(got, expect, "{threads} threads");
        }
    }

    #[test]
    fn naive_matches_recommended() {
        let data: Vec<i32> = (0..5_000).map(|i| (i % 13) - 6).collect();
        let fast = Team::new(4).parallel_reduce(data.len(), |i| data[i], 0, |a, b| a + b);
        let naive = Team::new(4).parallel_reduce_naive(data.len(), |i| data[i], 0, |a, b| a + b);
        assert_eq!(fast, naive);
        assert_eq!(fast, data.iter().sum::<i32>());
    }

    #[test]
    fn max_reduction() {
        let data: Vec<i32> = (0..10_000)
            .map(|i| ((i * 2_654_435_761u64) % 1_000_003) as i32)
            .collect();
        let expect = *data.iter().max().unwrap();
        let got = Team::new(5).parallel_reduce(data.len(), |i| data[i], i32::MIN, i32::max);
        assert_eq!(got, expect);
    }

    #[test]
    fn float_sum_exact_for_integral_values() {
        let sum = Team::new(4).parallel_reduce(2_000, |i| (i % 10) as f64, 0.0, |a, b| a + b);
        assert_eq!(sum, (0..2_000).map(|i| (i % 10) as f64).sum::<f64>());
    }

    #[test]
    fn empty_and_tiny_inputs() {
        assert_eq!(
            Team::new(4).parallel_reduce(0, |_| 1u64, 0, |a, b| a + b),
            0
        );
        assert_eq!(
            Team::new(8).parallel_reduce(3, |i| i as u64, 0, |a, b| a + b),
            3
        );
    }
}
