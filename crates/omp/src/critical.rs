//! Named critical sections, mirroring `#pragma omp critical [(name)]`.
//!
//! OpenMP critical sections are mutual-exclusion regions backed by a
//! shared lock per name (unnamed criticals all share one global lock).
//! The paper measures them as the slow path compared to atomics
//! (Fig. 5) because each entry pays a lock acquire/release.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};

/// Registry of named critical-section locks (process-global, like
/// OpenMP's named criticals which have program-wide identity).
fn registry() -> &'static Mutex<HashMap<String, Arc<Mutex<()>>>> {
    static REGISTRY: OnceLock<Mutex<HashMap<String, Arc<Mutex<()>>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

/// A handle to one critical section's lock.
///
/// # Examples
///
/// ```
/// use syncperf_omp::Critical;
///
/// let c = Critical::unnamed();
/// let mut total = 0;
/// {
///     let _guard = c.enter();
///     total += 1; // protected region
/// }
/// assert_eq!(total, 1);
/// ```
#[derive(Debug, Clone)]
pub struct Critical {
    lock: Arc<Mutex<()>>,
}

impl Critical {
    /// The unnamed critical section — all unnamed `#pragma omp
    /// critical` regions in a program share this single lock.
    #[must_use]
    pub fn unnamed() -> Self {
        Critical::named("")
    }

    /// The critical section with the given name. Repeated calls with
    /// the same name return handles to the same lock.
    #[must_use]
    pub fn named(name: &str) -> Self {
        let mut reg = registry().lock().unwrap_or_else(PoisonError::into_inner);
        let lock = reg
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(Mutex::new(())))
            .clone();
        Critical { lock }
    }

    /// A critical section with fresh, private identity — useful in
    /// tests and measurements that must not contend with other parts of
    /// the process.
    #[must_use]
    pub fn private() -> Self {
        Critical {
            lock: Arc::new(Mutex::new(())),
        }
    }

    /// Enters the critical section, blocking until the lock is held.
    /// The region ends when the returned guard drops.
    #[must_use = "dropping the guard immediately ends the critical section"]
    pub fn enter(&self) -> MutexGuard<'_, ()> {
        self.lock.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Enters the critical section and reports whether the lock was
    /// contended (another thread held it when we arrived). Used by the
    /// observability layer; the uncontended fast path is one extra
    /// `try_lock`.
    #[must_use = "dropping the guard immediately ends the critical section"]
    pub fn enter_counted(&self) -> (MutexGuard<'_, ()>, bool) {
        match self.lock.try_lock() {
            Ok(guard) => (guard, false),
            Err(std::sync::TryLockError::Poisoned(p)) => (p.into_inner(), false),
            Err(std::sync::TryLockError::WouldBlock) => (self.enter(), true),
        }
    }

    /// Runs `f` inside the critical section.
    pub fn with<R>(&self, f: impl FnOnce() -> R) -> R {
        let _guard = self.enter();
        f()
    }

    /// Whether two handles designate the same critical section.
    #[must_use]
    pub fn same_section(&self, other: &Critical) -> bool {
        Arc::ptr_eq(&self.lock, &other.lock)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    #[test]
    fn same_name_same_lock() {
        let a = Critical::named("test_same_name");
        let b = Critical::named("test_same_name");
        assert!(a.same_section(&b));
    }

    #[test]
    fn different_names_different_locks() {
        let a = Critical::named("test_name_a");
        let b = Critical::named("test_name_b");
        assert!(!a.same_section(&b));
    }

    #[test]
    fn unnamed_is_shared() {
        assert!(Critical::unnamed().same_section(&Critical::unnamed()));
    }

    #[test]
    fn private_is_unique() {
        assert!(!Critical::private().same_section(&Critical::private()));
    }

    #[test]
    fn with_returns_value() {
        let c = Critical::private();
        assert_eq!(c.with(|| 42), 42);
    }

    #[test]
    fn uncontended_enter_counted_reports_false() {
        let c = Critical::private();
        let (_g, contended) = c.enter_counted();
        assert!(!contended);
    }

    #[test]
    fn contended_enter_counted_reports_true() {
        // Deterministic collision: the main thread holds the lock until
        // the spawned thread has attempted entry (signalled via
        // `waiting`), so that attempt must observe contention.
        let c = Critical::private();
        let waiting = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|s| {
            let guard = c.enter();
            let handle = {
                let c = c.clone();
                let waiting = &waiting;
                s.spawn(move || {
                    waiting.store(true, Ordering::Release);
                    let (_g, contended) = c.enter_counted();
                    contended
                })
            };
            while !waiting.load(Ordering::Acquire) {
                std::hint::spin_loop();
            }
            // Give the spawned thread time to reach the try_lock.
            std::thread::sleep(std::time::Duration::from_millis(20));
            drop(guard);
            assert!(
                handle.join().unwrap(),
                "entry against a held lock must report contention"
            );
        });
    }

    #[test]
    fn provides_mutual_exclusion() {
        // A non-atomic counter protected only by the critical section
        // must not lose updates.
        let c = Critical::private();
        let counter = std::cell::UnsafeCell::new(0u64);
        struct Wrap(std::cell::UnsafeCell<u64>);
        unsafe impl Sync for Wrap {}
        let w = Wrap(counter);
        let threads = 8;
        let per_thread = 5_000u64;
        std::thread::scope(|s| {
            for _ in 0..threads {
                let c = c.clone();
                let w = &w;
                s.spawn(move || {
                    for _ in 0..per_thread {
                        c.with(|| {
                            // SAFETY: the critical section serializes
                            // all access to the cell.
                            unsafe { *w.0.get() += 1 };
                        });
                    }
                });
            }
        });
        assert_eq!(unsafe { *w.0.get() }, threads * per_thread);
    }

    #[test]
    fn reentrant_use_across_episodes() {
        let c = Critical::private();
        let n = AtomicU32::new(0);
        for _ in 0..100 {
            let _g = c.enter();
            n.fetch_add(1, Ordering::Relaxed);
        }
        assert_eq!(n.load(Ordering::Relaxed), 100);
    }
}
