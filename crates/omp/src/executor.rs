//! Real-thread [`Executor`]: interprets CPU kernel bodies on actual
//! `std::thread` threads with actual atomics, following the paper's
//! Listing 2 structure (warmup loop, team barrier, timed loop,
//! per-thread `gettimeofday`-style timing).

use std::collections::HashMap;
use std::hint::black_box;
use std::time::Instant;

use crate::cacheline::CachePadded;
use syncperf_core::{
    CpuOp, DType, ExecParams, Executor, Result, SyncPerfError, Target, ThreadTimes, TimeUnit,
};

use crate::atomics::{AtomicCell, Primitive};
use crate::critical::Critical;
use crate::flush::flush;
use crate::lock::OmpLock;
use crate::padded::StridedArray;
use crate::team::{Team, ThreadCtx};

/// Shared memory for one data type: two cache-padded scalars plus the
/// (up to two) strided arrays the kernel bodies reference.
#[derive(Debug)]
struct TypedMem<T: Primitive> {
    scalars: [CachePadded<AtomicCell<T>>; 2],
    arrays: HashMap<u8, StridedArray<T>>,
}

impl<T: Primitive> TypedMem<T> {
    fn new() -> Self {
        TypedMem {
            scalars: [
                CachePadded::new(AtomicCell::new(T::zero())),
                CachePadded::new(AtomicCell::new(T::zero())),
            ],
            arrays: HashMap::new(),
        }
    }

    fn cell(&self, target: Target, tid: usize) -> &AtomicCell<T> {
        match target {
            Target::SharedScalar(i) => &self.scalars[usize::from(i) % 2],
            Target::Private { array, stride: _ } => self
                .arrays
                .get(&array)
                .expect("array allocated during memory planning")
                .elem(tid),
        }
    }
}

#[derive(Debug)]
struct Memory {
    i32s: TypedMem<i32>,
    u64s: TypedMem<u64>,
    f32s: TypedMem<f32>,
    f64s: TypedMem<f64>,
}

impl Memory {
    /// Scans the body and allocates every referenced array.
    fn plan(body: &[CpuOp], threads: usize) -> Result<Self> {
        let mut mem = Memory {
            i32s: TypedMem::new(),
            u64s: TypedMem::new(),
            f32s: TypedMem::new(),
            f64s: TypedMem::new(),
        };
        for op in body {
            let (dtype, target) = match *op {
                CpuOp::AtomicUpdate { dtype, target }
                | CpuOp::AtomicCapture { dtype, target }
                | CpuOp::AtomicRead { dtype, target }
                | CpuOp::AtomicWrite { dtype, target }
                | CpuOp::Read { dtype, target }
                | CpuOp::Update { dtype, target }
                | CpuOp::CriticalAdd { dtype, target } => (dtype, target),
                CpuOp::Barrier
                | CpuOp::Flush
                | CpuOp::CriticalBegin { .. }
                | CpuOp::CriticalEnd { .. } => continue,
            };
            if let Target::Private { array, stride } = target {
                if stride == 0 {
                    return Err(SyncPerfError::InvalidParams("stride must be > 0".into()));
                }
                let stride = stride as usize;
                match dtype {
                    DType::I32 => insert_array(&mut mem.i32s.arrays, array, threads, stride)?,
                    DType::U64 => insert_array(&mut mem.u64s.arrays, array, threads, stride)?,
                    DType::F32 => insert_array(&mut mem.f32s.arrays, array, threads, stride)?,
                    DType::F64 => insert_array(&mut mem.f64s.arrays, array, threads, stride)?,
                }
            }
        }
        Ok(mem)
    }
}

fn insert_array<T: Primitive>(
    arrays: &mut HashMap<u8, StridedArray<T>>,
    array: u8,
    threads: usize,
    stride: usize,
) -> Result<()> {
    if let Some(existing) = arrays.get(&array) {
        if existing.stride() != stride {
            return Err(SyncPerfError::InvalidParams(format!(
                "array {array} referenced with conflicting strides {} and {stride}",
                existing.stride()
            )));
        }
        return Ok(());
    }
    arrays.insert(array, StridedArray::new(threads, stride));
    Ok(())
}

/// Per-thread observation tallies, flushed into the recorder's
/// `omp.*` counters after the parallel region ends (so the hot loop
/// only touches thread-private memory).
#[derive(Debug, Default, Clone, Copy)]
struct OpTallies {
    fp_cas_retries: u64,
    critical_acquisitions: u64,
    critical_contended: u64,
}

/// The run's shared mutual-exclusion objects: the unnamed critical
/// section's lock and one real lock per named critical section.
struct SyncObjects<'a> {
    critical: &'a Critical,
    locks: &'a [OmpLock],
}

/// Executes one op for thread `tid`. `sink` accumulates read results
/// so the compiler cannot remove the loads as dead code. With `record`
/// false (the default measurement path) the op lowers to exactly the
/// uninstrumented primitives; with `record` true, atomic updates count
/// CAS retries and critical sections report lock contention into the
/// thread-private `tallies`.
#[inline]
fn run_op(
    op: &CpuOp,
    mem: &Memory,
    ctx: &ThreadCtx<'_>,
    sync: &SyncObjects<'_>,
    sink: &mut f64,
    record: bool,
    tallies: &mut OpTallies,
) {
    let tid = ctx.tid;
    let critical = sync.critical;
    match *op {
        CpuOp::Barrier => ctx.barrier(),
        CpuOp::Flush => flush(),
        // Named critical sections lower to the OpenMP lock routines,
        // exactly as the spec describes (§II-A3): one shared lock per
        // section name, set on entry, unset on exit.
        CpuOp::CriticalBegin { lock } => sync.locks[usize::from(lock)].set(),
        CpuOp::CriticalEnd { lock } => sync.locks[usize::from(lock)].unset(),
        CpuOp::AtomicUpdate { dtype, target } if record => {
            let retries = match dtype {
                DType::I32 => mem.i32s.cell(target, tid).update_counting(1),
                DType::U64 => mem.u64s.cell(target, tid).update_counting(1),
                DType::F32 => mem.f32s.cell(target, tid).update_counting(1.0),
                DType::F64 => mem.f64s.cell(target, tid).update_counting(1.0),
            };
            tallies.fp_cas_retries += u64::from(retries);
        }
        CpuOp::AtomicUpdate { dtype, target } => {
            dispatch(
                mem,
                dtype,
                target,
                tid,
                |c: &AtomicCell<i32>| c.update(1),
                |c| c.update(1),
                |c| c.update(1.0),
                |c| c.update(1.0),
            );
        }
        CpuOp::AtomicCapture { dtype, target } => match dtype {
            DType::I32 => *sink += f64::from(mem.i32s.cell(target, tid).capture(1)),
            DType::U64 => *sink += mem.u64s.cell(target, tid).capture(1) as f64,
            DType::F32 => *sink += f64::from(mem.f32s.cell(target, tid).capture(1.0)),
            DType::F64 => *sink += mem.f64s.cell(target, tid).capture(1.0),
        },
        CpuOp::AtomicRead { dtype, target } => match dtype {
            DType::I32 => *sink += f64::from(mem.i32s.cell(target, tid).read()),
            DType::U64 => *sink += mem.u64s.cell(target, tid).read() as f64,
            DType::F32 => *sink += f64::from(mem.f32s.cell(target, tid).read()),
            DType::F64 => *sink += mem.f64s.cell(target, tid).read(),
        },
        CpuOp::AtomicWrite { dtype, target } => {
            let v = tid as i32 + 1;
            dispatch(
                mem,
                dtype,
                target,
                tid,
                |c: &AtomicCell<i32>| c.write(v),
                |c| c.write(v as u64),
                |c| c.write(v as f32),
                |c| c.write(f64::from(v)),
            );
        }
        CpuOp::Read { dtype, target } => match dtype {
            DType::I32 => *sink += f64::from(mem.i32s.cell(target, tid).plain_read()),
            DType::U64 => *sink += mem.u64s.cell(target, tid).plain_read() as f64,
            DType::F32 => *sink += f64::from(mem.f32s.cell(target, tid).plain_read()),
            DType::F64 => *sink += mem.f64s.cell(target, tid).plain_read(),
        },
        CpuOp::Update { dtype, target } => {
            dispatch(
                mem,
                dtype,
                target,
                tid,
                |c: &AtomicCell<i32>| c.plain_update(1),
                |c| c.plain_update(1),
                |c| c.plain_update(1.0),
                |c| c.plain_update(1.0),
            );
        }
        CpuOp::CriticalAdd { dtype, target } if record => {
            let (guard, contended) = critical.enter_counted();
            dispatch(
                mem,
                dtype,
                target,
                tid,
                |c: &AtomicCell<i32>| c.plain_update(1),
                |c| c.plain_update(1),
                |c| c.plain_update(1.0),
                |c| c.plain_update(1.0),
            );
            drop(guard);
            tallies.critical_acquisitions += 1;
            tallies.critical_contended += u64::from(contended);
        }
        CpuOp::CriticalAdd { dtype, target } => critical.with(|| {
            dispatch(
                mem,
                dtype,
                target,
                tid,
                |c: &AtomicCell<i32>| c.plain_update(1),
                |c| c.plain_update(1),
                |c| c.plain_update(1.0),
                |c| c.plain_update(1.0),
            );
        }),
    }
}

#[allow(clippy::too_many_arguments)]
#[inline]
fn dispatch(
    mem: &Memory,
    dtype: DType,
    target: Target,
    tid: usize,
    fi: impl FnOnce(&AtomicCell<i32>),
    fu: impl FnOnce(&AtomicCell<u64>),
    ff: impl FnOnce(&AtomicCell<f32>),
    fd: impl FnOnce(&AtomicCell<f64>),
) {
    match dtype {
        DType::I32 => fi(mem.i32s.cell(target, tid)),
        DType::U64 => fu(mem.u64s.cell(target, tid)),
        DType::F32 => ff(mem.f32s.cell(target, tid)),
        DType::F64 => fd(mem.f64s.cell(target, tid)),
    }
}

/// The real-thread executor.
///
/// Runs kernel bodies on genuine OS threads with genuine atomics. Times
/// are wall-clock seconds. Affinity is advisory (see
/// [`crate::affinity`]); block counts other than 1 are rejected since
/// CPUs have no thread-block concept.
///
/// # Examples
///
/// ```
/// use syncperf_core::{kernel, DType, ExecParams, Protocol};
/// use syncperf_omp::OmpExecutor;
///
/// # fn main() -> syncperf_core::Result<()> {
/// let mut exec = OmpExecutor::new();
/// let m = Protocol::SIM.measure(
///     &mut exec,
///     &kernel::omp_atomic_update_scalar(DType::I32),
///     &ExecParams::new(2).with_loops(20, 10).with_warmup(1),
/// )?;
/// assert!(m.median_test >= 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct OmpExecutor {
    recorder: syncperf_core::obs::Recorder,
}

impl Default for OmpExecutor {
    fn default() -> Self {
        Self::new()
    }
}

impl OmpExecutor {
    /// Creates a real-thread executor.
    #[must_use]
    pub fn new() -> Self {
        OmpExecutor {
            recorder: syncperf_core::obs::Recorder::disabled(),
        }
    }

    /// Attaches a [`Recorder`](syncperf_core::obs::Recorder); runs then
    /// emit `omp.*` counters (barrier rounds, FP-CAS retries, critical
    /// contention) into it. Without one, the executor falls back to the
    /// globally installed recorder.
    #[must_use]
    pub fn with_recorder(mut self, rec: syncperf_core::obs::Recorder) -> Self {
        self.recorder = rec;
        self
    }

    /// The recorder runs observe into: this executor's own if enabled,
    /// otherwise the global one.
    fn effective_recorder(&self) -> &syncperf_core::obs::Recorder {
        if self.recorder.is_enabled() {
            &self.recorder
        } else {
            syncperf_core::obs::global()
        }
    }
}

impl Executor for OmpExecutor {
    type Op = CpuOp;

    fn name(&self) -> &str {
        "omp-real-threads"
    }

    fn time_unit(&self) -> TimeUnit {
        TimeUnit::Seconds
    }

    fn execute(&mut self, body: &[CpuOp], params: &ExecParams) -> Result<ThreadTimes> {
        params.validate()?;
        if params.blocks != 1 {
            return Err(SyncPerfError::InvalidParams(
                "the CPU executor runs a single team (blocks must be 1)".into(),
            ));
        }
        let threads = params.threads as usize;
        let mem = Memory::plan(body, threads)?;
        let critical = Critical::private();
        // One real lock per named critical section in the body.
        let max_lock = body
            .iter()
            .filter_map(|op| match op {
                CpuOp::CriticalBegin { lock } | CpuOp::CriticalEnd { lock } => Some(*lock),
                _ => None,
            })
            .max();
        let locks: Vec<OmpLock> = (0..max_lock.map_or(0, |m| usize::from(m) + 1))
            .map(|_| OmpLock::new())
            .collect();
        let sync = SyncObjects {
            critical: &critical,
            locks: &locks,
        };
        let team = Team::new(threads);
        let n_warmup = params.n_warmup;
        let n_iter = params.n_iter;
        let n_unroll = params.n_unroll;
        let rec = self.effective_recorder();
        let record = rec.is_enabled();
        let mut span = rec.span("omp", "execute");
        span.push_arg("threads", params.threads);
        span.push_arg("ops", body.len());

        let per_thread = team.parallel(|ctx| {
            let mut sink = 0.0f64;
            let mut tallies = OpTallies::default();
            for _ in 0..n_warmup {
                for _ in 0..n_unroll {
                    for op in body {
                        // Warmup runs uninstrumented so the recorded
                        // tallies describe the timed region only.
                        run_op(op, &mem, ctx, &sync, &mut sink, false, &mut tallies);
                    }
                }
            }

            ctx.barrier();
            let start = Instant::now();
            for _ in 0..n_iter {
                for _ in 0..n_unroll {
                    for op in body {
                        run_op(op, &mem, ctx, &sync, &mut sink, record, &mut tallies);
                    }
                }
            }
            let elapsed = start.elapsed().as_secs_f64();
            black_box(sink);
            if record {
                rec.counter("omp.fp_cas_retries")
                    .add(tallies.fp_cas_retries);
                rec.counter("omp.critical_acquisitions")
                    .add(tallies.critical_acquisitions);
                rec.counter("omp.critical_contended")
                    .add(tallies.critical_contended);
                rec.instant_args(
                    "omp",
                    "timed_region",
                    vec![
                        ("tid", syncperf_core::obs::ArgValue::from(ctx.tid)),
                        ("seconds", syncperf_core::obs::ArgValue::from(elapsed)),
                    ],
                );
            }
            elapsed
        });

        if record {
            // Every thread participates in each round, so rounds are
            // counted once per team: the explicit barrier before the
            // timed loop plus every `CpuOp::Barrier` in both loops.
            let barrier_ops = body
                .iter()
                .filter(|op| matches!(op, CpuOp::Barrier))
                .count() as u64;
            let loop_rounds =
                barrier_ops * u64::from(n_unroll) * (u64::from(n_warmup) + u64::from(n_iter));
            rec.counter("omp.barrier_rounds").add(loop_rounds + 1);
            rec.counter("omp.executions").inc();
        }

        Ok(ThreadTimes::per_thread(per_thread))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use syncperf_core::kernel;

    fn quick_params(threads: u32) -> ExecParams {
        ExecParams::new(threads).with_loops(20, 10).with_warmup(1)
    }

    #[test]
    fn reports_one_time_per_thread() {
        let mut exec = OmpExecutor::new();
        let body = kernel::omp_barrier().baseline;
        let times = exec.execute(&body, &quick_params(4)).unwrap();
        assert_eq!(times.len(), 4);
        assert!(times.iter().all(|t| t > 0.0));
    }

    #[test]
    fn rejects_multi_block() {
        let mut exec = OmpExecutor::new();
        let body = kernel::omp_barrier().baseline;
        let err = exec
            .execute(&body, &quick_params(2).with_blocks(2))
            .unwrap_err();
        assert!(matches!(err, SyncPerfError::InvalidParams(_)));
    }

    #[test]
    fn every_cpu_op_kind_executes() {
        let mut exec = OmpExecutor::new();
        for k in [
            kernel::omp_barrier(),
            kernel::omp_atomic_update_scalar(DType::F32),
            kernel::omp_atomic_update_array(DType::U64, 8),
            kernel::omp_atomic_capture_scalar(DType::F64),
            kernel::omp_atomic_write(DType::I32),
            kernel::omp_atomic_read(DType::U64),
            kernel::omp_critical_add(DType::F64),
            kernel::omp_flush(DType::I32, 4),
        ] {
            let t = exec.execute(&k.test, &quick_params(2)).unwrap();
            assert_eq!(t.len(), 2, "{}", k.name);
        }
    }

    #[test]
    fn test_body_slower_than_baseline_for_critical() {
        // Critical sections are expensive enough that even on a noisy
        // machine the test body (2 lock pairs) beats the baseline
        // (1 lock pair) reliably in the median.
        let mut exec = OmpExecutor::new();
        let k = kernel::omp_critical_add(DType::I32);
        let p = quick_params(2);
        let mut wins = 0;
        for _ in 0..5 {
            let base = exec.execute(&k.baseline, &p).unwrap().max();
            let test = exec.execute(&k.test, &p).unwrap().max();
            if test > base {
                wins += 1;
            }
        }
        assert!(wins >= 3, "test body beat baseline only {wins}/5 times");
    }

    #[test]
    fn conflicting_strides_rejected() {
        let mut exec = OmpExecutor::new();
        let body = vec![
            CpuOp::Update {
                dtype: DType::I32,
                target: Target::Private {
                    array: 0,
                    stride: 1,
                },
            },
            CpuOp::Update {
                dtype: DType::I32,
                target: Target::Private {
                    array: 0,
                    stride: 2,
                },
            },
        ];
        assert!(exec.execute(&body, &quick_params(2)).is_err());
    }

    #[test]
    fn zero_stride_rejected() {
        let mut exec = OmpExecutor::new();
        let body = vec![CpuOp::Update {
            dtype: DType::I32,
            target: Target::Private {
                array: 0,
                stride: 0,
            },
        }];
        assert!(exec.execute(&body, &quick_params(2)).is_err());
    }

    #[test]
    fn attached_recorder_counts_barrier_rounds_exactly() {
        let rec = syncperf_core::obs::Recorder::enabled();
        let mut exec = OmpExecutor::new().with_recorder(rec.clone());
        exec.execute(&kernel::omp_barrier().test, &quick_params(2))
            .unwrap();
        let snap = rec.snapshot();
        assert_eq!(snap.counter("omp.executions"), 1);
        // omp_barrier().test has 2 Barrier ops; with_loops(20, 10) and
        // 1 warmup iter: 2×10×(1+20) loop rounds + the start barrier.
        assert_eq!(snap.counter("omp.barrier_rounds"), 420 + 1);
    }

    #[test]
    fn attached_recorder_counts_fp_cas_retries() {
        let rec = syncperf_core::obs::Recorder::enabled();
        let mut exec = OmpExecutor::new().with_recorder(rec.clone());
        // Hammer one f64 scalar from 8 threads until the float CAS loop
        // loses at least one race. Retrying many times guards against a
        // lightly loaded machine scheduling the threads serially (on a
        // single busy core a whole attempt can pass without one
        // preemption inside the load/compare-exchange window).
        let contended = ExecParams::new(8).with_loops(4000, 10).with_warmup(1);
        let update = kernel::omp_atomic_update_scalar(DType::F64);
        for _ in 0..100 {
            exec.execute(&update.test, &contended).unwrap();
            if rec.snapshot().counter("omp.fp_cas_retries") > 0 {
                break;
            }
        }
        assert!(
            rec.snapshot().counter("omp.fp_cas_retries") > 0,
            "contended f64 CAS must retry"
        );
    }

    #[test]
    fn attached_recorder_counts_critical_acquisitions() {
        let rec = syncperf_core::obs::Recorder::enabled();
        let mut exec = OmpExecutor::new().with_recorder(rec.clone());
        exec.execute(&kernel::omp_critical_add(DType::I32).test, &quick_params(2))
            .unwrap();
        // critical_add test body holds 2 CriticalAdd ops: 2 threads ×
        // 20 iters × 10 unroll × 2 ops, lock taken exactly once per op.
        assert_eq!(rec.snapshot().counter("omp.critical_acquisitions"), 800);
    }

    #[test]
    fn disabled_recorder_leaves_no_trace_state() {
        let mut exec = OmpExecutor::new();
        exec.execute(&kernel::omp_barrier().test, &quick_params(2))
            .unwrap();
        let snap = syncperf_core::obs::global().snapshot();
        assert_eq!(snap.counter("omp.executions"), 0);
    }

    #[test]
    fn measurement_protocol_runs_end_to_end() {
        let mut exec = OmpExecutor::new();
        let m = syncperf_core::Protocol::SIM
            .measure(
                &mut exec,
                &kernel::omp_atomic_update_scalar(DType::I32),
                &quick_params(2),
            )
            .unwrap();
        // A real atomic add costs something; the exact value is
        // machine-dependent but must be positive and below 100 µs.
        assert!(m.median_test > 0.0);
        assert!(m.runtime_seconds() < 1e-4);
    }
}
