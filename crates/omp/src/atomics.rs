//! Typed atomic cells covering the four data types of the paper.
//!
//! OpenMP's `#pragma omp atomic` lowers to lock-prefixed RMW
//! instructions for integer types and to compare-exchange loops for
//! floating-point types on x86; [`AtomicCell`] mirrors exactly that:
//! `i32`/`u64` use native `fetch_add`, while `f32`/`f64` loop on
//! `compare_exchange_weak` over the value's bit pattern.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

mod private {
    pub trait Sealed {}
    impl Sealed for i32 {}
    impl Sealed for u64 {}
    impl Sealed for f32 {}
    impl Sealed for f64 {}
}

/// A scalar type usable inside an [`AtomicCell`].
///
/// This trait is sealed: it is implemented exactly for `i32`, `u64`,
/// `f32`, and `f64` — the paper's `int`, `ull`, `float`, and `double`.
pub trait Primitive:
    private::Sealed + Copy + PartialEq + Send + Sync + std::fmt::Debug + 'static
{
    /// The backing atomic storage.
    #[doc(hidden)]
    type Atomic: Send + Sync + std::fmt::Debug;

    /// Creates backing storage holding `v`.
    #[doc(hidden)]
    fn new_atomic(v: Self) -> Self::Atomic;

    /// Atomic load.
    #[doc(hidden)]
    fn load(a: &Self::Atomic, order: Ordering) -> Self;

    /// Atomic store.
    #[doc(hidden)]
    fn store(a: &Self::Atomic, v: Self, order: Ordering);

    /// Atomic `+=`, returning the previous value.
    #[doc(hidden)]
    fn fetch_add(a: &Self::Atomic, v: Self, order: Ordering) -> Self;

    /// Atomic `+=` that also reports how many compare-exchange retries
    /// the operation needed. Integer types RMW in a single instruction
    /// and always report zero; float types override this with a
    /// counting CAS loop. Used by the observability layer.
    #[doc(hidden)]
    fn fetch_add_counting(a: &Self::Atomic, v: Self, order: Ordering) -> u32 {
        let _ = Self::fetch_add(a, v, order);
        0
    }

    /// Atomic swap, returning the previous value.
    #[doc(hidden)]
    fn swap(a: &Self::Atomic, v: Self, order: Ordering) -> Self;

    /// Atomic max, returning the previous value.
    #[doc(hidden)]
    fn fetch_max(a: &Self::Atomic, v: Self, order: Ordering) -> Self;

    /// Atomic compare-exchange: replaces `current` with `new`,
    /// returning `Ok(current)` on success or `Err(actual)` on failure.
    #[doc(hidden)]
    fn compare_exchange(
        a: &Self::Atomic,
        current: Self,
        new: Self,
        order: Ordering,
    ) -> std::result::Result<Self, Self>;

    /// The additive identity.
    fn zero() -> Self;

    /// The value `1`.
    fn one() -> Self;
}

impl Primitive for i32 {
    type Atomic = std::sync::atomic::AtomicI32;

    fn new_atomic(v: Self) -> Self::Atomic {
        Self::Atomic::new(v)
    }

    fn load(a: &Self::Atomic, order: Ordering) -> Self {
        a.load(order)
    }

    fn store(a: &Self::Atomic, v: Self, order: Ordering) {
        a.store(v, order);
    }

    fn fetch_add(a: &Self::Atomic, v: Self, order: Ordering) -> Self {
        a.fetch_add(v, order)
    }

    fn swap(a: &Self::Atomic, v: Self, order: Ordering) -> Self {
        a.swap(v, order)
    }

    fn fetch_max(a: &Self::Atomic, v: Self, order: Ordering) -> Self {
        a.fetch_max(v, order)
    }

    fn compare_exchange(
        a: &Self::Atomic,
        current: Self,
        new: Self,
        order: Ordering,
    ) -> std::result::Result<Self, Self> {
        a.compare_exchange(current, new, order, Ordering::Relaxed)
    }

    fn zero() -> Self {
        0
    }

    fn one() -> Self {
        1
    }
}

impl Primitive for u64 {
    type Atomic = AtomicU64;

    fn new_atomic(v: Self) -> Self::Atomic {
        AtomicU64::new(v)
    }

    fn load(a: &Self::Atomic, order: Ordering) -> Self {
        a.load(order)
    }

    fn store(a: &Self::Atomic, v: Self, order: Ordering) {
        a.store(v, order);
    }

    fn fetch_add(a: &Self::Atomic, v: Self, order: Ordering) -> Self {
        a.fetch_add(v, order)
    }

    fn swap(a: &Self::Atomic, v: Self, order: Ordering) -> Self {
        a.swap(v, order)
    }

    fn fetch_max(a: &Self::Atomic, v: Self, order: Ordering) -> Self {
        a.fetch_max(v, order)
    }

    fn compare_exchange(
        a: &Self::Atomic,
        current: Self,
        new: Self,
        order: Ordering,
    ) -> std::result::Result<Self, Self> {
        a.compare_exchange(current, new, order, Ordering::Relaxed)
    }

    fn zero() -> Self {
        0
    }

    fn one() -> Self {
        1
    }
}

/// Implements [`Primitive`] for a float type via a compare-exchange
/// loop over its bit pattern — the same lowering OpenMP uses for
/// `#pragma omp atomic update` on floating-point operands.
macro_rules! float_primitive {
    ($float:ty, $bits:ty, $atomic:ty) => {
        impl Primitive for $float {
            type Atomic = $atomic;

            fn new_atomic(v: Self) -> Self::Atomic {
                <$atomic>::new(v.to_bits())
            }

            fn load(a: &Self::Atomic, order: Ordering) -> Self {
                <$float>::from_bits(a.load(order))
            }

            fn store(a: &Self::Atomic, v: Self, order: Ordering) {
                a.store(v.to_bits(), order);
            }

            fn fetch_add(a: &Self::Atomic, v: Self, order: Ordering) -> Self {
                let mut cur = a.load(Ordering::Relaxed);
                loop {
                    let old = <$float>::from_bits(cur);
                    let new = (old + v).to_bits();
                    match a.compare_exchange_weak(cur, new, order, Ordering::Relaxed) {
                        Ok(_) => return old,
                        Err(actual) => cur = actual,
                    }
                }
            }

            fn fetch_add_counting(a: &Self::Atomic, v: Self, order: Ordering) -> u32 {
                let mut retries = 0u32;
                let mut cur = a.load(Ordering::Relaxed);
                loop {
                    let old = <$float>::from_bits(cur);
                    let new = (old + v).to_bits();
                    match a.compare_exchange_weak(cur, new, order, Ordering::Relaxed) {
                        Ok(_) => return retries,
                        Err(actual) => {
                            retries = retries.saturating_add(1);
                            cur = actual;
                        }
                    }
                }
            }

            fn swap(a: &Self::Atomic, v: Self, order: Ordering) -> Self {
                <$float>::from_bits(a.swap(v.to_bits(), order))
            }

            fn fetch_max(a: &Self::Atomic, v: Self, order: Ordering) -> Self {
                let mut cur = a.load(Ordering::Relaxed);
                loop {
                    let old = <$float>::from_bits(cur);
                    if old >= v {
                        return old;
                    }
                    match a.compare_exchange_weak(cur, v.to_bits(), order, Ordering::Relaxed) {
                        Ok(_) => return old,
                        Err(actual) => cur = actual,
                    }
                }
            }

            fn compare_exchange(
                a: &Self::Atomic,
                current: Self,
                new: Self,
                order: Ordering,
            ) -> std::result::Result<Self, Self> {
                a.compare_exchange(current.to_bits(), new.to_bits(), order, Ordering::Relaxed)
                    .map(<$float>::from_bits)
                    .map_err(<$float>::from_bits)
            }

            fn zero() -> Self {
                0.0
            }

            fn one() -> Self {
                1.0
            }
        }
    };
}

float_primitive!(f32, u32, AtomicU32);
float_primitive!(f64, u64, AtomicU64);

/// An atomic scalar supporting the OpenMP atomic flavors: update,
/// capture, read, write — plus swap and max for the CUDA-style tests.
///
/// # Examples
///
/// ```
/// use syncperf_omp::AtomicCell;
///
/// let c = AtomicCell::new(1.5f64);
/// c.update(2.0);            // atomic x += 2.0
/// let old = c.capture(0.5); // atomic v = x; x += 0.5
/// assert_eq!(old, 3.5);
/// assert_eq!(c.read(), 4.0);
/// ```
#[derive(Debug, Default)]
pub struct AtomicCell<T: Primitive> {
    inner: T::Atomic,
}

impl<T: Primitive> AtomicCell<T> {
    /// Creates a cell holding `v`.
    #[must_use]
    pub fn new(v: T) -> Self {
        AtomicCell {
            inner: T::new_atomic(v),
        }
    }

    /// `#pragma omp atomic update` — atomically adds `v`.
    pub fn update(&self, v: T) {
        let _ = T::fetch_add(&self.inner, v, Ordering::Relaxed);
    }

    /// [`update`](Self::update) that also reports how many
    /// compare-exchange retries the add needed: always 0 for integer
    /// types (single lock-prefixed RMW), the number of failed
    /// `compare_exchange_weak` rounds for float types. Used by the
    /// observability layer to measure FP-CAS contention on the real
    /// runtime.
    pub fn update_counting(&self, v: T) -> u32 {
        T::fetch_add_counting(&self.inner, v, Ordering::Relaxed)
    }

    /// `#pragma omp atomic capture` — atomically adds `v` and returns
    /// the previous value.
    pub fn capture(&self, v: T) -> T {
        T::fetch_add(&self.inner, v, Ordering::Relaxed)
    }

    /// `#pragma omp atomic read`.
    #[must_use]
    pub fn read(&self) -> T {
        T::load(&self.inner, Ordering::Relaxed)
    }

    /// `#pragma omp atomic write`.
    pub fn write(&self, v: T) {
        T::store(&self.inner, v, Ordering::Relaxed);
    }

    /// Atomic exchange (CUDA `atomicExch()` semantics).
    pub fn exchange(&self, v: T) -> T {
        T::swap(&self.inner, v, Ordering::Relaxed)
    }

    /// Atomic maximum (CUDA `atomicMax()` semantics), returning the
    /// previous value.
    pub fn max(&self, v: T) -> T {
        T::fetch_max(&self.inner, v, Ordering::Relaxed)
    }

    /// Atomically replaces the value with `f(current)`, retrying on
    /// concurrent modification (a general CAS loop, like
    /// `AtomicU64::fetch_update`). Returns the previous value.
    ///
    /// Note: floats compare by bit pattern, so the loop terminates even
    /// for NaN contents.
    pub fn fetch_update(&self, mut f: impl FnMut(T) -> T) -> T {
        let mut current = self.read();
        loop {
            let next = f(current);
            match T::compare_exchange(&self.inner, current, next, Ordering::AcqRel) {
                Ok(prev) => return prev,
                Err(actual) => current = actual,
            }
        }
    }

    /// Non-atomic-style read (still a relaxed atomic load under the
    /// hood so it is race-free in Rust; on x86 this compiles to the
    /// same plain `mov` a non-atomic read would).
    #[must_use]
    pub fn plain_read(&self) -> T {
        T::load(&self.inner, Ordering::Relaxed)
    }

    /// Plain read-modify-write (`x += v` without atomicity between the
    /// read and the write) — used by the flush-test loop bodies.
    pub fn plain_update(&self, v: T) {
        let cur = T::load(&self.inner, Ordering::Relaxed);
        let new = add(cur, v);
        T::store(&self.inner, new, Ordering::Relaxed);
    }
}

fn add<T: Primitive>(a: T, b: T) -> T {
    // Route through fetch_add on a throwaway atomic to avoid needing an
    // `Add` bound on the sealed trait.
    let tmp = T::new_atomic(a);
    T::fetch_add(&tmp, b, Ordering::Relaxed);
    T::load(&tmp, Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn update_and_read_i32() {
        let c = AtomicCell::new(5i32);
        c.update(3);
        assert_eq!(c.read(), 8);
    }

    #[test]
    fn capture_returns_previous() {
        let c = AtomicCell::new(10u64);
        assert_eq!(c.capture(5), 10);
        assert_eq!(c.read(), 15);
    }

    #[test]
    fn float_update_is_exact_for_small_ints() {
        let c = AtomicCell::new(0.0f32);
        for _ in 0..100 {
            c.update(1.0);
        }
        assert_eq!(c.read(), 100.0);
    }

    #[test]
    fn double_capture_and_write() {
        let c = AtomicCell::new(1.0f64);
        c.write(2.5);
        assert_eq!(c.capture(0.5), 2.5);
        assert_eq!(c.read(), 3.0);
    }

    #[test]
    fn exchange_swaps() {
        let c = AtomicCell::new(7i32);
        assert_eq!(c.exchange(9), 7);
        assert_eq!(c.read(), 9);
    }

    #[test]
    fn max_keeps_larger() {
        let c = AtomicCell::new(5i32);
        assert_eq!(c.max(3), 5);
        assert_eq!(c.read(), 5);
        assert_eq!(c.max(11), 5);
        assert_eq!(c.read(), 11);
    }

    #[test]
    fn float_max() {
        let c = AtomicCell::new(-1.0f64);
        c.max(3.5);
        c.max(2.0);
        assert_eq!(c.read(), 3.5);
    }

    #[test]
    fn plain_update_accumulates_single_threaded() {
        let c = AtomicCell::new(0u64);
        for _ in 0..10 {
            c.plain_update(2);
        }
        assert_eq!(c.read(), 20);
    }

    #[test]
    fn concurrent_updates_do_not_lose_increments() {
        let c = Arc::new(AtomicCell::new(0i32));
        let threads = 8;
        let per_thread = 10_000;
        std::thread::scope(|s| {
            for _ in 0..threads {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    for _ in 0..per_thread {
                        c.update(1);
                    }
                });
            }
        });
        assert_eq!(c.read(), threads * per_thread);
    }

    #[test]
    fn concurrent_float_updates_do_not_lose_increments() {
        // The CAS loop must not drop updates under contention.
        let c = Arc::new(AtomicCell::new(0.0f64));
        let threads = 4;
        let per_thread = 5_000;
        std::thread::scope(|s| {
            for _ in 0..threads {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    for _ in 0..per_thread {
                        c.update(1.0);
                    }
                });
            }
        });
        assert_eq!(c.read(), f64::from(threads * per_thread));
    }

    #[test]
    fn concurrent_max_finds_global_max() {
        let c = Arc::new(AtomicCell::new(i32::MIN));
        std::thread::scope(|s| {
            for t in 0..8 {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    for i in 0..1_000 {
                        c.max(t * 1_000 + i);
                    }
                });
            }
        });
        assert_eq!(c.read(), 7_999);
    }

    #[test]
    fn cells_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<AtomicCell<i32>>();
        assert_send_sync::<AtomicCell<u64>>();
        assert_send_sync::<AtomicCell<f32>>();
        assert_send_sync::<AtomicCell<f64>>();
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(AtomicCell::<i32>::default().read(), 0);
        assert_eq!(AtomicCell::<f64>::default().read(), 0.0);
    }
}
