//! Cache-line padding, local replacement for `crossbeam_utils::CachePadded`.
//!
//! The workspace builds fully offline, so the one crossbeam item the
//! runtime used is reimplemented here: a wrapper whose alignment keeps
//! each value on its own cache line (128 bytes covers the 64-byte lines
//! of the paper's x86 systems and the 128-byte prefetch pairs /
//! aarch64 lines).

use std::ops::{Deref, DerefMut};

/// Pads and aligns `T` to 128 bytes so two padded values never share a
/// cache line — the difference the paper's false-sharing experiments
/// (Fig. 3) measure.
///
/// # Examples
///
/// ```
/// use syncperf_omp::cacheline::CachePadded;
///
/// let a = CachePadded::new(0u64);
/// assert_eq!(std::mem::align_of_val(&a), 128);
/// assert_eq!(*a, 0);
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Wraps `value` with cache-line padding.
    #[must_use]
    pub const fn new(value: T) -> Self {
        CachePadded { value }
    }

    /// Unwraps the padded value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> Self {
        CachePadded::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_separates_lines() {
        assert_eq!(std::mem::align_of::<CachePadded<u8>>(), 128);
        assert!(std::mem::size_of::<CachePadded<u8>>() >= 128);
        let arr = [CachePadded::new(0u8), CachePadded::new(1u8)];
        let a = std::ptr::addr_of!(arr[0]) as usize;
        let b = std::ptr::addr_of!(arr[1]) as usize;
        assert!(b - a >= 128, "padded neighbours {a:#x} {b:#x} share a line");
    }

    #[test]
    fn deref_round_trip() {
        let mut p = CachePadded::new(5u32);
        *p += 1;
        assert_eq!(*p, 6);
        assert_eq!(p.into_inner(), 6);
    }
}
