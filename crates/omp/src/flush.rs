//! The OpenMP memory flush (`#pragma omp flush`).
//!
//! A flush is a full memory fence: all memory operations before it
//! complete before any memory operation after it starts (Section
//! II-A4). On x86 this is an `mfence`-class instruction; in Rust it is
//! `atomic::fence(SeqCst)`.

use std::sync::atomic::{fence, Ordering};

/// Performs an OpenMP-style flush: a sequentially consistent full
/// memory fence.
///
/// # Examples
///
/// ```
/// use syncperf_omp::{flush, AtomicCell};
///
/// let data = AtomicCell::new(0i32);
/// let ready = AtomicCell::new(0i32);
/// data.write(42);
/// flush(); // `data` is globally visible before `ready` below
/// ready.write(1);
/// ```
#[inline]
pub fn flush() {
    fence(Ordering::SeqCst);
}

/// A release-only fence (`flush` with release semantics, OpenMP 5.x's
/// `flush release`).
#[inline]
pub fn flush_release() {
    fence(Ordering::Release);
}

/// An acquire-only fence (`flush acquire`).
#[inline]
pub fn flush_acquire() {
    fence(Ordering::Acquire);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atomics::AtomicCell;
    use std::sync::atomic::{AtomicBool, Ordering as O};
    use std::sync::Arc;

    #[test]
    fn flush_functions_are_callable() {
        flush();
        flush_release();
        flush_acquire();
    }

    /// Message-passing litmus test: with a flush between the data write
    /// and the flag write (and between the flag read and the data
    /// read), the consumer must never observe the flag without the
    /// data.
    #[test]
    fn message_passing_litmus() {
        for _ in 0..200 {
            let data = Arc::new(AtomicCell::new(0u64));
            let flag = Arc::new(AtomicBool::new(false));

            let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
            let producer = std::thread::spawn(move || {
                d2.write(99);
                flush();
                f2.store(true, O::Relaxed);
            });

            let (d3, f3) = (Arc::clone(&data), Arc::clone(&flag));
            let consumer = std::thread::spawn(move || {
                while !f3.load(O::Relaxed) {
                    std::hint::spin_loop();
                }
                flush();
                assert_eq!(d3.read(), 99, "consumer saw flag before data");
            });

            producer.join().unwrap();
            consumer.join().unwrap();
        }
    }
}
