//! Strided shared arrays for the false-sharing experiments.
//!
//! The paper's array tests give each thread a private element at index
//! `tid × stride` of a shared array (Section IV). The stride controls
//! how many distinct threads' elements share a 64-byte cache line and
//! therefore how much false sharing occurs (Figs. 3, 6, 10, 12, 14).

use crate::atomics::{AtomicCell, Primitive};

/// A shared array whose element `i` belongs to thread `i / stride`
/// (with elements at non-multiple indices acting as padding).
///
/// # Examples
///
/// ```
/// use syncperf_omp::StridedArray;
///
/// // 4 threads, stride 8: thread elements 64 B apart for 8-byte types,
/// // i.e. one cache line each — no false sharing.
/// let arr = StridedArray::<u64>::new(4, 8);
/// arr.elem(2).update(5);
/// assert_eq!(arr.elem(2).read(), 5);
/// assert_eq!(arr.len(), 26);
/// ```
#[derive(Debug)]
pub struct StridedArray<T: Primitive> {
    cells: Vec<AtomicCell<T>>,
    stride: usize,
    threads: usize,
}

impl<T: Primitive> StridedArray<T> {
    /// Allocates an array for `threads` threads at the given `stride`
    /// (in elements). The allocation covers indices
    /// `0 ..= (threads-1) × stride` plus one trailing element so the
    /// last thread's element has in-bounds padding after it.
    ///
    /// # Panics
    ///
    /// Panics if `threads` or `stride` is zero.
    #[must_use]
    pub fn new(threads: usize, stride: usize) -> Self {
        assert!(threads > 0, "need at least one thread");
        assert!(stride > 0, "stride must be at least 1");
        let len = (threads - 1) * stride + 2;
        let mut cells = Vec::with_capacity(len);
        cells.resize_with(len, || AtomicCell::new(T::zero()));
        StridedArray {
            cells,
            stride,
            threads,
        }
    }

    /// The element private to thread `tid`.
    ///
    /// # Panics
    ///
    /// Panics if `tid` is out of range.
    #[must_use]
    pub fn elem(&self, tid: usize) -> &AtomicCell<T> {
        assert!(
            tid < self.threads,
            "tid {tid} out of range for {} threads",
            self.threads
        );
        &self.cells[tid * self.stride]
    }

    /// Total allocated elements (thread elements plus padding).
    #[must_use]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the array is empty (never true for a constructed array).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// The configured stride in elements.
    #[must_use]
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Number of threads the array serves.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Byte distance between consecutive threads' elements.
    #[must_use]
    pub fn element_spacing_bytes(&self) -> usize {
        self.stride * std::mem::size_of::<T>()
    }

    /// How many distinct threads' elements can fall on one cache line
    /// of `line_bytes` bytes (1 means no false sharing is possible).
    #[must_use]
    pub fn threads_per_line(&self, line_bytes: usize) -> usize {
        (line_bytes / self.element_spacing_bytes())
            .max(1)
            .min(self.threads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elements_are_independent() {
        let arr = StridedArray::<i32>::new(8, 4);
        for t in 0..8 {
            arr.elem(t).update(t as i32 + 1);
        }
        for t in 0..8 {
            assert_eq!(arr.elem(t).read(), t as i32 + 1);
        }
    }

    #[test]
    fn allocation_covers_all_threads() {
        let arr = StridedArray::<f64>::new(5, 16);
        // last element index = 4*16 = 64 must be valid
        arr.elem(4).write(1.5);
        assert_eq!(arr.elem(4).read(), 1.5);
        assert!(arr.len() > 64);
    }

    #[test]
    fn spacing_bytes() {
        assert_eq!(StridedArray::<i32>::new(2, 8).element_spacing_bytes(), 32);
        assert_eq!(StridedArray::<f64>::new(2, 8).element_spacing_bytes(), 64);
    }

    #[test]
    fn threads_per_line_matches_paper() {
        // 64 B lines. Stride 1: 16 int elements/line → up to 16 threads
        // share a line; stride 16 ints = 64 B → no sharing.
        assert_eq!(StridedArray::<i32>::new(32, 1).threads_per_line(64), 16);
        assert_eq!(StridedArray::<i32>::new(32, 16).threads_per_line(64), 1);
        // 8-byte types stop false-sharing at stride 8 (Fig. 3c).
        assert_eq!(StridedArray::<f64>::new(32, 8).threads_per_line(64), 1);
        assert_eq!(StridedArray::<f64>::new(32, 4).threads_per_line(64), 2);
    }

    #[test]
    fn threads_per_line_capped_by_thread_count() {
        assert_eq!(StridedArray::<i32>::new(2, 1).threads_per_line(64), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn elem_bounds_checked() {
        let arr = StridedArray::<u64>::new(2, 1);
        let _ = arr.elem(2);
    }

    #[test]
    #[should_panic(expected = "stride")]
    fn zero_stride_rejected() {
        let _ = StridedArray::<u64>::new(2, 0);
    }

    #[test]
    fn concurrent_disjoint_updates() {
        let arr = StridedArray::<u64>::new(4, 8);
        std::thread::scope(|s| {
            for t in 0..4 {
                let arr = &arr;
                s.spawn(move || {
                    for _ in 0..10_000 {
                        arr.elem(t).update(1);
                    }
                });
            }
        });
        for t in 0..4 {
            assert_eq!(arr.elem(t).read(), 10_000);
        }
    }
}
