//! Spin barriers in the style of OpenMP runtime libraries.
//!
//! Two implementations are provided: a centralized sense-reversing
//! barrier (what the paper's results suggest libgomp-style barriers are
//! built from — "the barrier implementation is likely based on atomic
//! operations on shared variables", Section V-A2) and a combining-tree
//! barrier for an ablation comparison (`benches/real_barrier.rs`).

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use crate::cacheline::CachePadded;

/// How many spin iterations to burn before yielding to the OS. On an
/// oversubscribed machine pure spinning can deadlock forever against
/// the scheduler; OpenMP runtimes use the same spin-then-yield policy.
const SPIN_LIMIT: u32 = 1 << 10;

/// Per-thread barrier state (the thread's current sense).
///
/// Each participating thread owns one token and passes it to every
/// `wait` call on the same barrier.
#[derive(Debug, Clone)]
pub struct BarrierToken {
    sense: bool,
}

impl BarrierToken {
    /// Creates a token for a thread that has not yet waited.
    #[must_use]
    pub fn new() -> Self {
        BarrierToken { sense: true }
    }
}

impl Default for BarrierToken {
    fn default() -> Self {
        Self::new()
    }
}

/// A centralized sense-reversing spin barrier.
///
/// All threads decrement a shared counter; the last one to arrive
/// resets the counter and flips the shared sense flag, releasing the
/// spinners. Reusable across any number of episodes.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use syncperf_omp::{BarrierToken, SenseBarrier};
///
/// let b = Arc::new(SenseBarrier::new(4));
/// std::thread::scope(|s| {
///     for _ in 0..4 {
///         let b = Arc::clone(&b);
///         s.spawn(move || {
///             let mut tok = BarrierToken::new();
///             for _ in 0..100 {
///                 b.wait(&mut tok);
///             }
///         });
///     }
/// });
/// ```
#[derive(Debug)]
pub struct SenseBarrier {
    count: CachePadded<AtomicUsize>,
    sense: CachePadded<AtomicBool>,
    n: usize,
}

impl SenseBarrier {
    /// Creates a barrier for `n` participants.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    #[must_use]
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "barrier needs at least one participant");
        SenseBarrier {
            count: CachePadded::new(AtomicUsize::new(n)),
            sense: CachePadded::new(AtomicBool::new(false)),
            n,
        }
    }

    /// Number of participants.
    #[must_use]
    pub fn participants(&self) -> usize {
        self.n
    }

    /// Blocks until all `n` participants have called `wait` for the
    /// current episode.
    pub fn wait(&self, token: &mut BarrierToken) {
        let my_sense = token.sense;
        token.sense = !my_sense;
        if self.count.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last arrival: reset and release.
            self.count.store(self.n, Ordering::Relaxed);
            self.sense.store(my_sense, Ordering::Release);
        } else {
            let mut spins = 0u32;
            while self.sense.load(Ordering::Acquire) != my_sense {
                spins += 1;
                if spins > SPIN_LIMIT {
                    std::thread::yield_now();
                } else {
                    std::hint::spin_loop();
                }
            }
        }
    }
}

/// Fan-in of each node of the [`TreeBarrier`].
const TREE_FANIN: usize = 4;

/// A combining-tree sense-reversing barrier.
///
/// Threads first synchronize within groups of [`TREE_FANIN`]; one
/// representative per group proceeds to the next level, and the root's
/// last arrival flips a global sense flag that releases everyone. This
/// trades a longer release path for far less contention on any single
/// cache line — the classic scalability alternative to the centralized
/// design, benchmarked against it in the ablation bench.
#[derive(Debug)]
pub struct TreeBarrier {
    /// Arrival counters, one per node, levels concatenated
    /// (level 0 = leaves).
    nodes: Vec<CachePadded<AtomicUsize>>,
    /// Expected arrivals per node, parallel to `nodes`.
    expected: Vec<usize>,
    /// Start index of each level within `nodes`.
    level_offsets: Vec<usize>,
    /// Global release flag.
    sense: CachePadded<AtomicBool>,
    n: usize,
}

impl TreeBarrier {
    /// Creates a tree barrier for `n` participants.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    #[must_use]
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "barrier needs at least one participant");
        let mut nodes = Vec::new();
        let mut expected = Vec::new();
        let mut level_offsets = Vec::new();
        let mut width = n;
        loop {
            level_offsets.push(nodes.len());
            let node_count = width.div_ceil(TREE_FANIN);
            for g in 0..node_count {
                let members = (width - g * TREE_FANIN).min(TREE_FANIN);
                nodes.push(CachePadded::new(AtomicUsize::new(members)));
                expected.push(members);
            }
            if node_count == 1 {
                break;
            }
            width = node_count;
        }
        TreeBarrier {
            nodes,
            expected,
            level_offsets,
            sense: CachePadded::new(AtomicBool::new(false)),
            n,
        }
    }

    /// Number of participants.
    #[must_use]
    pub fn participants(&self) -> usize {
        self.n
    }

    /// Blocks until all participants have called `wait` for the current
    /// episode. `tid` must be the caller's index in `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if `tid` is out of range.
    pub fn wait(&self, tid: usize, token: &mut BarrierToken) {
        assert!(
            tid < self.n,
            "tid {tid} out of range for {} participants",
            self.n
        );
        let my_sense = token.sense;
        token.sense = !my_sense;

        let mut index = tid;
        for level in 0..self.level_offsets.len() {
            let node = self.level_offsets[level] + index / TREE_FANIN;
            if self.nodes[node].fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last arrival at this node: reset it and move up (or
                // release everyone if this was the root).
                self.nodes[node].store(self.expected[node], Ordering::Relaxed);
                if level + 1 == self.level_offsets.len() {
                    self.sense.store(my_sense, Ordering::Release);
                    return;
                }
                index /= TREE_FANIN;
            } else {
                break;
            }
        }

        let mut spins = 0u32;
        while self.sense.load(Ordering::Acquire) != my_sense {
            spins += 1;
            if spins > SPIN_LIMIT {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    /// Checks that no thread passes episode `k+1` before all threads
    /// finished episode `k`: every thread adds its episode number to a
    /// shared sum right before the barrier; after the barrier the sum
    /// must be exactly `n * episode`.
    fn exercise_barrier(n: usize, episodes: u64, wait: impl Fn(usize, &mut BarrierToken) + Sync) {
        let sum = AtomicU64::new(0);
        std::thread::scope(|s| {
            for tid in 0..n {
                let sum = &sum;
                let wait = &wait;
                s.spawn(move || {
                    let mut tok = BarrierToken::new();
                    for ep in 1..=episodes {
                        sum.fetch_add(ep, Ordering::Relaxed);
                        wait(tid, &mut tok);
                        let expect = (1..=ep).sum::<u64>() * n as u64;
                        assert_eq!(sum.load(Ordering::Relaxed), expect, "episode {ep}");
                        wait(tid, &mut tok);
                    }
                });
            }
        });
    }

    #[test]
    fn sense_barrier_synchronizes() {
        let b = SenseBarrier::new(4);
        exercise_barrier(4, 50, |_, tok| b.wait(tok));
    }

    #[test]
    fn sense_barrier_single_thread() {
        let b = SenseBarrier::new(1);
        let mut tok = BarrierToken::new();
        for _ in 0..10 {
            b.wait(&mut tok);
        }
    }

    #[test]
    fn sense_barrier_oversubscribed() {
        // More threads than this machine has cores: the yield path must
        // keep things moving.
        let b = SenseBarrier::new(16);
        exercise_barrier(16, 20, |_, tok| b.wait(tok));
    }

    #[test]
    fn tree_barrier_synchronizes() {
        let b = TreeBarrier::new(4);
        exercise_barrier(4, 50, |tid, tok| b.wait(tid, tok));
    }

    #[test]
    fn tree_barrier_non_power_of_fanin() {
        for n in [1usize, 2, 3, 5, 7, 9, 13] {
            let b = TreeBarrier::new(n);
            exercise_barrier(n, 10, |tid, tok| b.wait(tid, tok));
        }
    }

    #[test]
    fn tree_barrier_many_threads() {
        let b = TreeBarrier::new(17);
        exercise_barrier(17, 10, |tid, tok| b.wait(tid, tok));
    }

    #[test]
    #[should_panic(expected = "at least one participant")]
    fn zero_participants_rejected() {
        let _ = SenseBarrier::new(0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn tree_rejects_bad_tid() {
        let b = TreeBarrier::new(2);
        let mut tok = BarrierToken::new();
        b.wait(5, &mut tok);
    }

    #[test]
    fn participants_reported() {
        assert_eq!(SenseBarrier::new(3).participants(), 3);
        assert_eq!(TreeBarrier::new(9).participants(), 9);
    }

    #[test]
    fn barriers_are_shareable() {
        let b = Arc::new(SenseBarrier::new(2));
        let b2 = Arc::clone(&b);
        let h = std::thread::spawn(move || {
            let mut tok = BarrierToken::new();
            b2.wait(&mut tok);
        });
        let mut tok = BarrierToken::new();
        b.wait(&mut tok);
        h.join().unwrap();
    }
}
