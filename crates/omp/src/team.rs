//! Parallel regions: the `#pragma omp parallel` equivalent.
//!
//! [`Team::parallel`] spawns `n` threads, hands each a [`ThreadCtx`]
//! (thread id, team size, team barrier), runs the given closure on all
//! of them, and joins — scoped, so the closure may borrow from the
//! caller's stack just like an OpenMP parallel region captures
//! enclosing variables.

use std::sync::atomic::{AtomicUsize, Ordering};

use crate::barrier::{BarrierToken, SenseBarrier};

/// A team of a fixed number of threads.
///
/// # Examples
///
/// ```
/// use syncperf_omp::Team;
/// use std::sync::atomic::{AtomicUsize, Ordering};
///
/// let hits = AtomicUsize::new(0);
/// let team = Team::new(4);
/// team.parallel(|ctx| {
///     hits.fetch_add(ctx.tid + 1, Ordering::Relaxed);
///     ctx.barrier();
///     assert_eq!(hits.load(Ordering::Relaxed), 1 + 2 + 3 + 4);
/// });
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Team {
    n: usize,
}

/// Per-thread context inside a parallel region.
#[derive(Debug)]
pub struct ThreadCtx<'a> {
    /// This thread's id in `0..nthreads` (like `omp_get_thread_num()`).
    pub tid: usize,
    /// Team size (like `omp_get_num_threads()`).
    pub nthreads: usize,
    barrier: &'a SenseBarrier,
    token: std::cell::RefCell<BarrierToken>,
    /// Region-wide count of `single` regions already claimed.
    singles_claimed: &'a AtomicUsize,
    /// This thread's count of `single` regions encountered.
    singles_seen: std::cell::Cell<usize>,
}

impl ThreadCtx<'_> {
    /// `#pragma omp barrier` — waits for the whole team.
    pub fn barrier(&self) {
        self.barrier.wait(&mut self.token.borrow_mut());
    }

    /// `#pragma omp master` — only thread 0 runs `f`; **no** implicit
    /// barrier (exactly like OpenMP's `master`). Returns `Some` with
    /// the result on the master thread.
    pub fn master<R>(&self, f: impl FnOnce() -> R) -> Option<R> {
        if self.tid == 0 {
            Some(f())
        } else {
            None
        }
    }

    /// `#pragma omp single` — exactly one team thread (whichever
    /// arrives first) runs `f`, then the whole team synchronizes at the
    /// construct's implicit barrier. Returns `Some` on the thread that
    /// executed the region.
    ///
    /// All team threads must reach every `single` in the same order,
    /// as OpenMP requires for work-sharing constructs.
    pub fn single<R>(&self, f: impl FnOnce() -> R) -> Option<R> {
        let n = self.singles_seen.get();
        self.singles_seen.set(n + 1);
        let won = self
            .singles_claimed
            .compare_exchange(n, n + 1, Ordering::AcqRel, Ordering::Relaxed)
            .is_ok();
        let result = if won { Some(f()) } else { None };
        self.barrier(); // implicit barrier at the end of `single`
        result
    }

    /// `#pragma omp for schedule(static)` — distributes `0..count`
    /// across the team in contiguous chunks and runs `f(i)` for this
    /// thread's share, then synchronizes at the loop's implicit
    /// barrier.
    pub fn for_static(&self, count: usize, mut f: impl FnMut(usize)) {
        let chunk = count.div_ceil(self.nthreads.max(1));
        let start = (self.tid * chunk).min(count);
        let end = ((self.tid + 1) * chunk).min(count);
        for i in start..end {
            f(i);
        }
        self.barrier(); // implicit barrier at the end of the loop
    }

    /// `#pragma omp sections` — distributes the given sections across
    /// the team round-robin and synchronizes at the implicit barrier.
    pub fn sections(&self, sections: &[&(dyn Fn() + Sync)]) {
        let mut i = self.tid;
        while i < sections.len() {
            sections[i]();
            i += self.nthreads;
        }
        self.barrier(); // implicit barrier at the end of `sections`
    }
}

impl Team {
    /// Creates a team of `n` threads.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    #[must_use]
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "team needs at least one thread");
        Team { n }
    }

    /// Team size.
    #[must_use]
    pub fn num_threads(&self) -> usize {
        self.n
    }

    /// Runs `f` on `n` threads and returns each thread's result in tid
    /// order. Blocks until the whole region completes (the implicit
    /// barrier at the end of `#pragma omp parallel`).
    ///
    /// # Panics
    ///
    /// Propagates a panic from any team thread.
    pub fn parallel<R, F>(&self, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(&ThreadCtx<'_>) -> R + Sync,
    {
        let barrier = SenseBarrier::new(self.n);
        let singles = AtomicUsize::new(0);
        let n = self.n;
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..n)
                .map(|tid| {
                    let barrier = &barrier;
                    let singles = &singles;
                    let f = &f;
                    s.spawn(move || {
                        let ctx = ThreadCtx {
                            tid,
                            nthreads: n,
                            barrier,
                            token: std::cell::RefCell::new(BarrierToken::new()),
                            singles_claimed: singles,
                            singles_seen: std::cell::Cell::new(0),
                        };
                        f(&ctx)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("team thread panicked"))
                .collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_in_tid_order() {
        let team = Team::new(6);
        let out = team.parallel(|ctx| ctx.tid * 10);
        assert_eq!(out, vec![0, 10, 20, 30, 40, 50]);
    }

    #[test]
    fn nthreads_visible_to_all() {
        let team = Team::new(3);
        let out = team.parallel(|ctx| ctx.nthreads);
        assert_eq!(out, vec![3, 3, 3]);
    }

    #[test]
    fn barrier_divides_phases() {
        let team = Team::new(4);
        let phase1 = AtomicUsize::new(0);
        team.parallel(|ctx| {
            phase1.fetch_add(1, Ordering::Relaxed);
            ctx.barrier();
            // After the barrier every thread must see all phase-1 work.
            assert_eq!(phase1.load(Ordering::Relaxed), 4);
        });
    }

    #[test]
    fn repeated_barriers() {
        let team = Team::new(4);
        let counter = AtomicUsize::new(0);
        team.parallel(|ctx| {
            for round in 1..=20 {
                counter.fetch_add(1, Ordering::Relaxed);
                ctx.barrier();
                assert_eq!(counter.load(Ordering::Relaxed), round * 4);
                ctx.barrier();
            }
        });
    }

    #[test]
    fn single_thread_team() {
        let team = Team::new(1);
        let out = team.parallel(|ctx| {
            ctx.barrier();
            ctx.tid
        });
        assert_eq!(out, vec![0]);
    }

    #[test]
    fn closure_borrows_stack_data() {
        let data = [1, 2, 3, 4];
        let team = Team::new(4);
        let out = team.parallel(|ctx| data[ctx.tid] * 2);
        assert_eq!(out, vec![2, 4, 6, 8]);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        let _ = Team::new(0);
    }

    #[test]
    fn master_runs_on_thread_zero_only() {
        let ran = AtomicUsize::new(0);
        let out = Team::new(4).parallel(|ctx| ctx.master(|| ran.fetch_add(1, Ordering::SeqCst)));
        assert_eq!(ran.load(Ordering::SeqCst), 1);
        assert!(out[0].is_some());
        assert!(out[1..].iter().all(Option::is_none));
    }

    #[test]
    fn single_runs_exactly_once_per_region() {
        let ran = AtomicUsize::new(0);
        Team::new(4).parallel(|ctx| {
            for _ in 0..10 {
                ctx.single(|| {
                    ran.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(
            ran.load(Ordering::SeqCst),
            10,
            "one execution per single region"
        );
    }

    #[test]
    fn single_has_implicit_barrier() {
        let value = AtomicUsize::new(0);
        Team::new(4).parallel(|ctx| {
            ctx.single(|| value.store(99, Ordering::SeqCst));
            // Every thread must observe the single's effect right after.
            assert_eq!(value.load(Ordering::SeqCst), 99);
        });
    }

    #[test]
    fn for_static_covers_range_exactly_once() {
        let hits: Vec<AtomicUsize> = (0..103).map(|_| AtomicUsize::new(0)).collect();
        Team::new(4).parallel(|ctx| {
            ctx.for_static(hits.len(), |i| {
                hits[i].fetch_add(1, Ordering::SeqCst);
            });
            // Implicit barrier: all iterations done for every thread.
            assert!(hits.iter().all(|h| h.load(Ordering::SeqCst) == 1));
        });
    }

    #[test]
    fn for_static_assigns_contiguous_chunks() {
        let owner: Vec<AtomicUsize> = (0..16).map(|_| AtomicUsize::new(usize::MAX)).collect();
        Team::new(4).parallel(|ctx| {
            ctx.for_static(16, |i| owner[i].store(ctx.tid, Ordering::SeqCst));
        });
        let owners: Vec<usize> = owner.iter().map(|o| o.load(Ordering::SeqCst)).collect();
        assert_eq!(owners[..4], [0, 0, 0, 0]);
        assert_eq!(owners[4..8], [1, 1, 1, 1]);
        assert_eq!(owners[12..], [3, 3, 3, 3]);
    }

    #[test]
    fn for_static_handles_small_and_empty_ranges() {
        let hits = AtomicUsize::new(0);
        Team::new(8).parallel(|ctx| {
            ctx.for_static(3, |_| {
                hits.fetch_add(1, Ordering::SeqCst);
            });
            ctx.for_static(0, |_| panic!("no iterations in an empty loop"));
        });
        assert_eq!(hits.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn sections_each_run_once() {
        let a = AtomicUsize::new(0);
        let b = AtomicUsize::new(0);
        let c = AtomicUsize::new(0);
        let fa = || {
            a.fetch_add(1, Ordering::SeqCst);
        };
        let fb = || {
            b.fetch_add(1, Ordering::SeqCst);
        };
        let fc = || {
            c.fetch_add(1, Ordering::SeqCst);
        };
        Team::new(2).parallel(|ctx| {
            ctx.sections(&[&fa, &fb, &fc]);
            // Implicit barrier: all sections complete.
            assert_eq!(a.load(Ordering::SeqCst), 1);
            assert_eq!(b.load(Ordering::SeqCst), 1);
            assert_eq!(c.load(Ordering::SeqCst), 1);
        });
    }
}
