//! Thread-placement policies: OpenMP's "spread" and "close" affinities.
//!
//! This module computes the thread → hardware-thread placement that
//! `OMP_PROC_BIND=spread|close` would produce on a machine with a given
//! number of cores and SMT ways. The real-thread runtime cannot *pin*
//! threads without OS-specific syscalls (no `libc` dependency in this
//! workspace — see DESIGN.md §4), so on real threads the placement is
//! advisory; the CPU simulator honors it exactly, which is where the
//! affinity-sensitive figures are regenerated.

use syncperf_core::Affinity;

/// A hardware-thread slot: which core and which SMT way on that core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HwThread {
    /// Physical core index.
    pub core: u32,
    /// SMT way on the core (0 = first hyperthread).
    pub smt: u32,
}

/// Computes where each of `nthreads` software threads lands on a
/// machine with `cores` physical cores and `smt_ways` hardware threads
/// per core, under the given affinity policy.
///
/// * `Close` packs consecutive threads onto consecutive hardware
///   threads, filling each core's SMT ways before moving on.
/// * `Spread` distributes threads round-robin across cores first and
///   only reuses a core (its second SMT way) once every core has one
///   thread.
/// * `SystemChoice` behaves like `Spread` here: Linux schedulers
///   balance runnable threads across idle cores before co-scheduling
///   hyperthreads.
///
/// Threads beyond `cores × smt_ways` wrap around (oversubscription).
///
/// # Panics
///
/// Panics if any argument is zero.
///
/// # Examples
///
/// ```
/// use syncperf_core::Affinity;
/// use syncperf_omp::affinity::placement;
///
/// // 4 threads on 4 cores × 2 SMT:
/// let close = placement(Affinity::Close, 4, 4, 2);
/// assert_eq!((close[0].core, close[0].smt), (0, 0));
/// assert_eq!((close[1].core, close[1].smt), (0, 1)); // same core!
///
/// let spread = placement(Affinity::Spread, 4, 4, 2);
/// assert_eq!((spread[1].core, spread[1].smt), (1, 0)); // next core
/// ```
#[must_use]
pub fn placement(affinity: Affinity, nthreads: u32, cores: u32, smt_ways: u32) -> Vec<HwThread> {
    assert!(
        nthreads > 0 && cores > 0 && smt_ways > 0,
        "zero-sized topology"
    );
    let hw_total = cores * smt_ways;
    (0..nthreads)
        .map(|t| {
            let slot = t % hw_total;
            match affinity {
                Affinity::Close => HwThread {
                    core: slot / smt_ways,
                    smt: slot % smt_ways,
                },
                Affinity::Spread | Affinity::SystemChoice => HwThread {
                    core: slot % cores,
                    smt: slot / cores,
                },
            }
        })
        .collect()
}

/// Returns, for each thread, the set of co-resident threads (threads
/// placed on the same physical core). Hyperthread siblings share an L1
/// cache and therefore cannot false-share with each other (Section
/// V-A2).
#[must_use]
pub fn core_siblings(places: &[HwThread]) -> Vec<Vec<usize>> {
    places
        .iter()
        .map(|me| {
            places
                .iter()
                .enumerate()
                .filter(|(_, p)| p.core == me.core)
                .map(|(i, _)| i)
                .collect()
        })
        .collect()
}

/// Advisory pin: a no-op on this platform, present so calling code
/// reads the same on all platforms. Returns `false` to signal that the
/// request was not enforced.
pub fn try_pin_current_thread(_hw: HwThread) -> bool {
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn close_fills_smt_first() {
        let p = placement(Affinity::Close, 6, 4, 2);
        let pairs: Vec<_> = p.iter().map(|h| (h.core, h.smt)).collect();
        assert_eq!(pairs, vec![(0, 0), (0, 1), (1, 0), (1, 1), (2, 0), (2, 1)]);
    }

    #[test]
    fn spread_fills_cores_first() {
        let p = placement(Affinity::Spread, 6, 4, 2);
        let pairs: Vec<_> = p.iter().map(|h| (h.core, h.smt)).collect();
        assert_eq!(pairs, vec![(0, 0), (1, 0), (2, 0), (3, 0), (0, 1), (1, 1)]);
    }

    #[test]
    fn system_choice_behaves_like_spread() {
        assert_eq!(
            placement(Affinity::SystemChoice, 5, 4, 2),
            placement(Affinity::Spread, 5, 4, 2)
        );
    }

    #[test]
    fn oversubscription_wraps() {
        let p = placement(Affinity::Spread, 10, 2, 2);
        // hw_total = 4, so thread 4 lands where thread 0 did
        assert_eq!(p[4], p[0]);
        assert_eq!(p[9], p[1]);
    }

    #[test]
    fn all_placements_within_topology() {
        for aff in [Affinity::Spread, Affinity::Close, Affinity::SystemChoice] {
            for &(n, c, s) in &[(1u32, 1u32, 1u32), (32, 16, 2), (7, 3, 2)] {
                for hw in placement(aff, n, c, s) {
                    assert!(hw.core < c);
                    assert!(hw.smt < s);
                }
            }
        }
    }

    #[test]
    fn siblings_under_close_pair_up() {
        let p = placement(Affinity::Close, 4, 4, 2);
        let sib = core_siblings(&p);
        assert_eq!(sib[0], vec![0, 1]);
        assert_eq!(sib[2], vec![2, 3]);
    }

    #[test]
    fn siblings_under_spread_are_singletons_below_core_count() {
        let p = placement(Affinity::Spread, 4, 8, 2);
        for (i, s) in core_siblings(&p).iter().enumerate() {
            assert_eq!(s, &vec![i]);
        }
    }

    #[test]
    fn pinning_is_advisory() {
        assert!(!try_pin_current_thread(HwThread { core: 0, smt: 0 }));
    }
}
