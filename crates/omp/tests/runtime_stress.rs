//! Stress and correctness tests for the real-thread runtime: these run
//! genuine concurrency, so they double as a race-detection suite.

use std::sync::atomic::{AtomicUsize, Ordering};

use syncperf_core::{kernel, DType, ExecParams, Executor, Protocol};
use syncperf_omp::{
    flush, AtomicCell, BarrierToken, Critical, OmpExecutor, OmpLock, SenseBarrier, StridedArray,
    Team, TreeBarrier,
};

#[test]
fn interleaved_barriers_and_atomics_many_rounds() {
    let team = Team::new(6);
    let total = AtomicCell::new(0u64);
    let rounds = 20u64;
    team.parallel(|ctx| {
        for r in 1..=rounds {
            total.update(1);
            ctx.barrier();
            assert_eq!(total.read(), r * 6, "round {r}");
            ctx.barrier();
        }
    });
    assert_eq!(total.read(), rounds * 6);
}

#[test]
fn sequential_teams_reuse_globals() {
    // Multiple parallel regions in sequence, like an OpenMP program
    // with several `#pragma omp parallel` blocks.
    let counter = AtomicCell::new(0i32);
    for n in [1usize, 2, 4, 8, 3] {
        Team::new(n).parallel(|_| counter.update(1));
    }
    assert_eq!(counter.read(), 18);
}

#[test]
fn both_barrier_kinds_agree_under_stress() {
    let n = 5;
    let sense = SenseBarrier::new(n);
    let tree = TreeBarrier::new(n);
    let stage = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for tid in 0..n {
            let (sense, tree, stage) = (&sense, &tree, &stage);
            s.spawn(move || {
                let mut tok_s = BarrierToken::new();
                let mut tok_t = BarrierToken::new();
                for round in 1..=10 {
                    stage.fetch_add(1, Ordering::Relaxed);
                    sense.wait(&mut tok_s);
                    // Guarded read: a second barrier keeps any thread
                    // from starting the next increment before everyone
                    // has checked this phase.
                    assert_eq!(stage.load(Ordering::Relaxed), round * 2 * n - n);
                    sense.wait(&mut tok_s);
                    stage.fetch_add(1, Ordering::Relaxed);
                    tree.wait(tid, &mut tok_t);
                    assert_eq!(stage.load(Ordering::Relaxed), round * 2 * n);
                    tree.wait(tid, &mut tok_t);
                }
            });
        }
    });
}

#[test]
fn critical_and_lock_compose() {
    // A critical section nested inside an OmpLock region: no deadlock
    // (distinct locks) and full mutual exclusion.
    let lock = OmpLock::new();
    let critical = Critical::private();
    let unprotected = std::cell::UnsafeCell::new(0u64);
    struct Wrap(std::cell::UnsafeCell<u64>);
    unsafe impl Sync for Wrap {}
    let w = Wrap(unprotected);
    std::thread::scope(|s| {
        for _ in 0..4 {
            let (lock, critical, w) = (&lock, &critical, &w);
            s.spawn(move || {
                for _ in 0..500 {
                    lock.with(|| {
                        critical.with(|| {
                            // SAFETY: doubly protected.
                            unsafe { *w.0.get() += 1 };
                        });
                    });
                }
            });
        }
    });
    assert_eq!(unsafe { *w.0.get() }, 2_000);
}

#[test]
fn strided_array_private_elements_race_free_at_every_stride() {
    for stride in [1usize, 2, 4, 8, 16] {
        let arr = StridedArray::<u64>::new(6, stride);
        std::thread::scope(|s| {
            for t in 0..6 {
                let arr = &arr;
                s.spawn(move || {
                    for _ in 0..1_000 {
                        arr.elem(t).update(1);
                    }
                });
            }
        });
        for t in 0..6 {
            assert_eq!(arr.elem(t).read(), 1_000, "stride {stride}, thread {t}");
        }
    }
}

#[test]
fn producer_consumer_with_flush_pipeline() {
    // A 3-stage pipeline passing tokens through flushed flags — the
    // memory-consistency scenario flushes exist for (Section II-A4).
    let data = AtomicCell::new(0u64);
    let stage1_done = AtomicCell::new(0i32);
    let stage2_done = AtomicCell::new(0i32);
    Team::new(3).parallel(|ctx| match ctx.tid {
        0 => {
            data.write(41);
            flush();
            stage1_done.write(1);
        }
        1 => {
            while stage1_done.read() == 0 {
                std::thread::yield_now();
            }
            flush();
            data.write(data.read() + 1);
            flush();
            stage2_done.write(1);
        }
        _ => {
            while stage2_done.read() == 0 {
                std::thread::yield_now();
            }
            flush();
            assert_eq!(data.read(), 42);
        }
    });
}

#[test]
fn executor_full_kernel_matrix() {
    // Every CPU kernel factory × every dtype actually executes on real
    // threads and yields plausible times.
    let mut exec = OmpExecutor::new();
    let p = ExecParams::new(3).with_loops(30, 10).with_warmup(1);
    for dt in DType::ALL {
        for k in [
            kernel::omp_atomic_update_scalar(dt),
            kernel::omp_atomic_update_array(dt, 8),
            kernel::omp_atomic_capture_scalar(dt),
            kernel::omp_atomic_write(dt),
            kernel::omp_atomic_read(dt),
            kernel::omp_critical_add(dt),
            kernel::omp_flush(dt, 4),
        ] {
            let m = Protocol::SIM.measure(&mut exec, &k, &p).unwrap();
            assert!(m.median_test > 0.0, "{} {dt}", k.name);
            assert!(m.median_test < 1.0, "{} {dt}: implausibly slow", k.name);
        }
    }
}

#[test]
fn executor_per_thread_times_individually_recorded() {
    let mut exec = OmpExecutor::new();
    let body = kernel::omp_barrier().baseline;
    let times = exec
        .execute(&body, &ExecParams::new(5).with_loops(20, 10).with_warmup(1))
        .unwrap();
    assert_eq!(times.len(), 5);
    // Barrier-synchronized threads finish within a small factor of each
    // other.
    let min = times.iter().fold(f64::MAX, f64::min);
    let max = times.iter().fold(f64::MIN, f64::max);
    assert!(max / min < 50.0, "wildly uneven barrier exits: {times:?}");
}

#[test]
fn capture_sums_are_exact_under_contention() {
    // capture returns unique pre-values: their set must be exactly
    // 0..N when N increments of 1 occur.
    let cell = AtomicCell::new(0u64);
    let seen: Vec<AtomicUsize> = (0..4_000).map(|_| AtomicUsize::new(0)).collect();
    std::thread::scope(|s| {
        for _ in 0..4 {
            let (cell, seen) = (&cell, &seen);
            s.spawn(move || {
                for _ in 0..1_000 {
                    let prev = cell.capture(1) as usize;
                    seen[prev].fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });
    assert!(
        seen.iter().all(|c| c.load(Ordering::Relaxed) == 1),
        "duplicate or missing pre-values"
    );
    assert_eq!(cell.read(), 4_000);
}
