//! Property-based tests of the real-thread runtime: correctness under
//! randomly drawn team sizes, workloads, and construct mixes. Kept
//! small per case (real threads on possibly single-core CI machines).

use std::sync::atomic::{AtomicUsize, Ordering};

use proptest::prelude::*;
use syncperf_omp::{AtomicCell, OmpLock, StridedArray, Team};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Atomic updates never lose increments for any (threads, count).
    #[test]
    fn atomic_sum_exact(threads in 1usize..6, per in 1u64..500) {
        let cell = AtomicCell::new(0u64);
        Team::new(threads).parallel(|_| {
            for _ in 0..per {
                cell.update(1);
            }
        });
        prop_assert_eq!(cell.read(), threads as u64 * per);
    }

    /// for_static covers 0..count exactly once for any team size and
    /// count, including count < threads and count = 0.
    #[test]
    fn for_static_exact_cover(threads in 1usize..6, count in 0usize..200) {
        let hits: Vec<AtomicUsize> = (0..count).map(|_| AtomicUsize::new(0)).collect();
        Team::new(threads).parallel(|ctx| {
            ctx.for_static(count, |i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
        });
        prop_assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    /// Each `single` region runs exactly once regardless of team size
    /// and region count.
    #[test]
    fn single_runs_once_each(threads in 1usize..6, regions in 1usize..8) {
        let ran = AtomicUsize::new(0);
        Team::new(threads).parallel(|ctx| {
            for _ in 0..regions {
                ctx.single(|| {
                    ran.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        prop_assert_eq!(ran.load(Ordering::Relaxed), regions);
    }

    /// `sections` runs every section exactly once.
    #[test]
    fn sections_run_once_each(threads in 1usize..6, n_sections in 0usize..9) {
        let counters: Vec<AtomicUsize> =
            (0..n_sections).map(|_| AtomicUsize::new(0)).collect();
        let fns: Vec<Box<dyn Fn() + Sync>> = counters
            .iter()
            .map(|c| {
                Box::new(move || {
                    c.fetch_add(1, Ordering::Relaxed);
                }) as Box<dyn Fn() + Sync>
            })
            .collect();
        let refs: Vec<&(dyn Fn() + Sync)> = fns.iter().map(AsRef::as_ref).collect();
        Team::new(threads).parallel(|ctx| ctx.sections(&refs));
        prop_assert!(counters.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    /// Strided arrays keep per-thread elements independent for any
    /// stride and thread count.
    #[test]
    fn strided_array_independence(threads in 1usize..6, stride in 1usize..24, per in 1u64..300) {
        let arr = StridedArray::<u64>::new(threads, stride);
        Team::new(threads).parallel(|ctx| {
            for _ in 0..per {
                arr.elem(ctx.tid).update(ctx.tid as u64 + 1);
            }
        });
        for t in 0..threads {
            prop_assert_eq!(arr.elem(t).read(), per * (t as u64 + 1));
        }
    }

    /// The OpenMP lock protects a plain counter for any contention mix.
    #[test]
    fn lock_protects_plain_counter(threads in 1usize..5, per in 1u64..400) {
        let lock = OmpLock::new();
        let cell = std::cell::UnsafeCell::new(0u64);
        struct W(std::cell::UnsafeCell<u64>);
        unsafe impl Sync for W {}
        let w = W(cell);
        // Capture the whole &W (which is Sync), not the UnsafeCell
        // field — Rust 2021 closures capture disjoint fields otherwise.
        let wref = &w;
        Team::new(threads).parallel(|_| {
            for _ in 0..per {
                lock.with(|| {
                    // SAFETY: serialized by the lock.
                    unsafe { *wref.0.get() += 1 };
                });
            }
        });
        prop_assert_eq!(unsafe { *w.0.get() }, threads as u64 * per);
    }

    /// Float atomic cells accumulate exactly for integer-valued
    /// increments (within f64's exact-integer range).
    #[test]
    fn float_atomics_exact_for_integers(threads in 1usize..5, per in 1u64..400) {
        let cell = AtomicCell::new(0.0f64);
        Team::new(threads).parallel(|_| {
            for _ in 0..per {
                cell.update(1.0);
            }
        });
        prop_assert_eq!(cell.read(), (threads as u64 * per) as f64);
    }
}
