//! Property-based tests for syncperf-core's data structures: the
//! measurement protocol, report containers, and artifact store.

use proptest::prelude::*;
use syncperf_core::{
    kernel, Affinity, CpuOp, DType, ExecParams, Executor, FigureData, Kernel, Protocol,
    ResultsStore, RunRecord, Series, ThreadTimes, TimeUnit,
};

/// Deterministic executor whose per-op cost and per-call noise are
/// drawn from the test inputs.
struct ParamExec {
    op_cost: f64,
    noise_seq: Vec<f64>,
    call: usize,
}

impl Executor for ParamExec {
    type Op = CpuOp;

    fn name(&self) -> &str {
        "param"
    }

    fn time_unit(&self) -> TimeUnit {
        TimeUnit::Seconds
    }

    fn execute(
        &mut self,
        body: &[CpuOp],
        params: &ExecParams,
    ) -> syncperf_core::Result<ThreadTimes> {
        let noise = self.noise_seq[self.call % self.noise_seq.len()];
        self.call += 1;
        let t = body.len() as f64 * self.op_cost * params.timed_reps() as f64 * (1.0 + noise);
        Ok(ThreadTimes::uniform(t, params.threads as usize))
    }
}

proptest! {
    /// Without noise, the protocol recovers the exact per-op cost for
    /// any loop structure and run counts.
    #[test]
    fn protocol_recovers_exact_cost(
        op_cost_ns in 1.0..1000.0f64,
        n_iter in 1u32..500,
        n_unroll in 1u32..200,
        runs in 1u32..12,
    ) {
        let mut exec = ParamExec { op_cost: op_cost_ns * 1e-9, noise_seq: vec![0.0], call: 0 };
        let protocol = Protocol { runs, max_attempts: 3 };
        let params = ExecParams::new(2).with_loops(n_iter, n_unroll);
        let m = protocol.measure(&mut exec, &kernel::omp_barrier(), &params).unwrap();
        let expect = op_cost_ns * 1e-9;
        prop_assert!((m.per_op - expect).abs() < 1e-9 * expect.max(1e-12) + 1e-18);
        prop_assert_eq!(m.retries, 0);
    }

    /// With bounded noise, the measured cost stays within the noise
    /// bound of the truth (the medians cannot leave the envelope).
    #[test]
    fn protocol_error_bounded_by_noise(
        noise in prop::collection::vec(-0.2..0.2f64, 4..24),
    ) {
        let op_cost = 100e-9;
        let mut exec = ParamExec { op_cost, noise_seq: noise, call: 0 };
        let params = ExecParams::new(2).with_loops(100, 10);
        let m = Protocol::PAPER.measure(&mut exec, &kernel::omp_barrier(), &params).unwrap();
        // test body = 2 ops, baseline = 1 op; each side's total is off
        // by ≤ 20%, so the difference is off by ≤ 2·20% of the test
        // body's cost → per-op error ≤ 60% of the op cost.
        prop_assert!((m.per_op - op_cost).abs() <= 0.6 * op_cost + 1e-15,
            "measured {} vs true {}", m.per_op, op_cost);
    }

    /// Throughput and runtime are consistent inverses.
    #[test]
    fn throughput_inverse_of_runtime(op_cost_ns in 1.0..10_000.0f64) {
        let mut exec = ParamExec { op_cost: op_cost_ns * 1e-9, noise_seq: vec![0.0], call: 0 };
        let params = ExecParams::new(2).with_loops(50, 10);
        let m = Protocol::SIM.measure(&mut exec, &kernel::omp_barrier(), &params).unwrap();
        if let Some(tp) = m.throughput() {
            prop_assert!((tp * m.runtime_seconds() - 1.0).abs() < 1e-9);
        }
    }

    /// Series lookup finds exactly the inserted points.
    #[test]
    fn series_y_at_total(points in prop::collection::btree_map(0u32..500, 0.0..1e9f64, 1..40)) {
        let series = Series::new(
            "s",
            points.iter().map(|(&x, &y)| (f64::from(x), y)).collect::<Vec<_>>(),
        );
        for (&x, &y) in &points {
            prop_assert_eq!(series.y_at(f64::from(x)), Some(y));
        }
        prop_assert_eq!(series.y_at(1e8), None);
        let ys: Vec<f64> = points.values().copied().collect();
        prop_assert_eq!(series.y_max(), ys.iter().copied().fold(f64::MIN, f64::max));
    }

    /// CSV output always has exactly one header plus one row per
    /// distinct x, and every row has `1 + n_series` fields.
    #[test]
    fn csv_always_rectangular(
        n_series in 1usize..5,
        xs in prop::collection::btree_set(0u32..200, 1..20),
    ) {
        let mut fig = FigureData::new("f", "t", "x", "y");
        for i in 0..n_series {
            fig.push_series(Series::new(
                format!("s{i}"),
                xs.iter().map(|&x| (f64::from(x), f64::from(x) * 2.0)).collect(),
            ));
        }
        let csv = fig.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        prop_assert_eq!(lines.len(), xs.len() + 1);
        for line in lines {
            prop_assert_eq!(line.split(',').count(), n_series + 1);
        }
    }

    /// Artifact records always survive a disk round trip.
    #[test]
    fn artifact_roundtrip(
        threads in 1u32..1024,
        blocks in 1u32..256,
        stride in 0u32..64,
        dt_idx in 0usize..5,
        aff_idx in 0usize..3,
        runtime_ns in 0.001..1e7f64,
    ) {
        let record = RunRecord {
            test: "prop_test".into(),
            threads,
            blocks,
            stride,
            dtype: if dt_idx == 4 { None } else { Some(DType::ALL[dt_idx]) },
            affinity: [Affinity::Spread, Affinity::Close, Affinity::SystemChoice][aff_idx],
            runtime_ns,
            throughput: 1e9 / runtime_ns,
        };
        let dir = std::env::temp_dir()
            .join(format!("syncperf_prop_{}_{threads}_{blocks}", std::process::id()));
        let mut store = ResultsStore::new("host");
        store.push(record.clone());
        store.write(&dir).unwrap();
        let loaded = ResultsStore::load(&dir, "host").unwrap();
        std::fs::remove_dir_all(&dir).ok();
        prop_assert_eq!(loaded.records(), &[record]);
    }

    /// Kernel construction is total over the factory parameter space.
    #[test]
    fn kernels_total_over_parameters(stride in 1u32..128, paths in 1u32..64, dt_idx in 0usize..4) {
        let dt = DType::ALL[dt_idx];
        let _ = kernel::omp_atomic_update_array(dt, stride);
        let _ = kernel::omp_flush(dt, stride);
        let _ = kernel::cuda_atomic_add_array(dt, stride);
        let _ = kernel::cuda_divergence(dt, paths);
        let k: Kernel<CpuOp> = kernel::omp_atomic_write(dt);
        prop_assert!(k.name.contains(dt.label()));
    }
}
