//! Parsing custom system definitions.
//!
//! The paper characterizes three fixed systems; downstream users want
//! to model *their* machine. A system file is a simple `key = value`
//! format (one per line, `#` comments):
//!
//! ```text
//! id = 9
//! cpu.name = AMD EPYC 7713
//! cpu.base_clock_ghz = 2.0
//! cpu.sockets = 2
//! cpu.cores_per_socket = 64
//! cpu.threads_per_core = 2
//! cpu.numa_nodes = 8
//! cpu.memory_gb = 512
//! cpu_jitter = 0.02
//! gpu.name = RTX 3070
//! gpu.compute_capability = 8.6
//! gpu.clock_ghz = 1.73
//! gpu.sms = 46
//! gpu.max_threads_per_sm = 1536
//! gpu.cuda_cores_per_sm = 128
//! gpu.memory_gb = 8
//! ```
//!
//! Unspecified keys default to System 3's values, so a file may
//! override only the parts that differ.

use crate::error::{Result, SyncPerfError};
use crate::system::{SystemSpec, SYSTEM3};

fn bad(line_no: usize, msg: impl std::fmt::Display) -> SyncPerfError {
    SyncPerfError::InvalidParams(format!("system file line {line_no}: {msg}"))
}

/// Parses a system definition, starting from System 3's values and
/// applying the file's overrides.
///
/// Device names are interned for the process lifetime (they are loaded
/// once per run; the few bytes are intentionally leaked so the spec
/// stays `'static` like the built-in presets).
///
/// # Errors
///
/// Returns [`SyncPerfError::InvalidParams`] for unknown keys, malformed
/// values, or structurally invalid specs (zero cores, zero SMs, …).
///
/// # Examples
///
/// ```
/// use syncperf_core::sysfile::parse_system;
///
/// let spec = parse_system("id = 7\ncpu.cores_per_socket = 8\n")?;
/// assert_eq!(spec.id, 7);
/// assert_eq!(spec.cpu.cores_per_socket, 8);
/// // Everything else inherited from System 3:
/// assert_eq!(spec.gpu.sms, 128);
/// # Ok::<(), syncperf_core::SyncPerfError>(())
/// ```
pub fn parse_system(content: &str) -> Result<SystemSpec> {
    let mut spec = SYSTEM3.clone();

    for (idx, raw) in content.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let (key, value) = line
            .split_once('=')
            .ok_or_else(|| bad(line_no, format!("expected `key = value`, got `{line}`")))?;
        let (key, value) = (key.trim(), value.trim());

        let parse_u32 = || {
            value
                .parse::<u32>()
                .map_err(|e| bad(line_no, format!("`{value}`: {e}")))
        };
        let parse_f64 = || {
            value
                .parse::<f64>()
                .map_err(|e| bad(line_no, format!("`{value}`: {e}")))
        };
        let intern = || -> &'static str { Box::leak(value.to_string().into_boxed_str()) };

        match key {
            "id" => spec.id = parse_u32()?,
            "cpu_jitter" => spec.cpu_jitter = parse_f64()?,
            "cpu.name" => spec.cpu.name = intern(),
            "cpu.base_clock_ghz" => spec.cpu.base_clock_ghz = parse_f64()?,
            "cpu.sockets" => spec.cpu.sockets = parse_u32()?,
            "cpu.cores_per_socket" => spec.cpu.cores_per_socket = parse_u32()?,
            "cpu.threads_per_core" => spec.cpu.threads_per_core = parse_u32()?,
            "cpu.numa_nodes" => spec.cpu.numa_nodes = parse_u32()?,
            "cpu.memory_gb" => spec.cpu.memory_gb = parse_u32()?,
            "cpu.cache_line_bytes" => spec.cpu.cache_line_bytes = parse_u32()? as usize,
            "gpu.name" => spec.gpu.name = intern(),
            "gpu.compute_capability" => {
                let (major, minor) = value
                    .split_once('.')
                    .ok_or_else(|| bad(line_no, "compute capability must be `major.minor`"))?;
                spec.gpu.compute_capability = (
                    major.parse().map_err(|e| bad(line_no, e))?,
                    minor.parse().map_err(|e| bad(line_no, e))?,
                );
            }
            "gpu.clock_ghz" => spec.gpu.clock_ghz = parse_f64()?,
            "gpu.sms" => spec.gpu.sms = parse_u32()?,
            "gpu.max_threads_per_sm" => spec.gpu.max_threads_per_sm = parse_u32()?,
            "gpu.cuda_cores_per_sm" => spec.gpu.cuda_cores_per_sm = parse_u32()?,
            "gpu.memory_gb" => spec.gpu.memory_gb = parse_u32()?,
            "gpu.warp_size" => spec.gpu.warp_size = parse_u32()?,
            "gpu.max_threads_per_block" => spec.gpu.max_threads_per_block = parse_u32()?,
            other => return Err(bad(line_no, format!("unknown key `{other}`"))),
        }
    }

    validate(&spec)?;
    Ok(spec)
}

/// Loads and parses a system file from disk.
///
/// # Errors
///
/// I/O errors and every [`parse_system`] error.
pub fn load_system(path: impl AsRef<std::path::Path>) -> Result<SystemSpec> {
    let content = std::fs::read_to_string(path.as_ref())
        .map_err(|e| SyncPerfError::Io(format!("{}: {e}", path.as_ref().display())))?;
    parse_system(&content)
}

fn validate(spec: &SystemSpec) -> Result<()> {
    let err = |msg: &str| Err(SyncPerfError::InvalidParams(format!("system file: {msg}")));
    if spec.cpu.sockets == 0 || spec.cpu.cores_per_socket == 0 || spec.cpu.threads_per_core == 0 {
        return err("CPU topology fields must be nonzero");
    }
    if spec.cpu.base_clock_ghz <= 0.0 || spec.gpu.clock_ghz <= 0.0 {
        return err("clock frequencies must be positive");
    }
    if spec.cpu.cache_line_bytes < 8 {
        return err("cache line must be at least 8 bytes");
    }
    if spec.gpu.sms == 0 || spec.gpu.warp_size == 0 {
        return err("GPU must have SMs and a warp size");
    }
    if spec.gpu.max_threads_per_sm < spec.gpu.warp_size {
        return err("max threads per SM below the warp size");
    }
    if spec.gpu.max_threads_per_block > spec.gpu.max_threads_per_sm {
        return err("max threads per block exceeds max threads per SM");
    }
    if spec.cpu_jitter < 0.0 || spec.cpu_jitter > 1.0 {
        return err("cpu_jitter must be within [0, 1]");
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_file_is_system3() {
        let spec = parse_system("").unwrap();
        assert_eq!(spec.cpu.name, SYSTEM3.cpu.name);
        assert_eq!(spec.gpu.sms, 128);
    }

    #[test]
    fn overrides_apply() {
        let spec = parse_system(
            "id = 42\n\
             cpu.name = Test CPU\n\
             cpu.sockets = 4\n\
             gpu.compute_capability = 7.0\n\
             gpu.sms = 80\n",
        )
        .unwrap();
        assert_eq!(spec.id, 42);
        assert_eq!(spec.cpu.name, "Test CPU");
        assert_eq!(spec.cpu.sockets, 4);
        assert_eq!(spec.gpu.cc_number(), 70);
        assert_eq!(spec.gpu.sms, 80);
        // Unspecified values inherited.
        assert_eq!(spec.cpu.cores_per_socket, 16);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let spec =
            parse_system("# header\n\n  # indented comment\ncpu.sockets = 2 # trailing\n").unwrap();
        assert_eq!(spec.cpu.sockets, 2);
    }

    #[test]
    fn unknown_key_rejected_with_line_number() {
        let err = parse_system("cpu.sockets = 1\nbogus.key = 3\n").unwrap_err();
        assert!(err.to_string().contains("line 2"));
        assert!(err.to_string().contains("bogus.key"));
    }

    #[test]
    fn malformed_value_rejected() {
        assert!(parse_system("cpu.sockets = many").is_err());
        assert!(parse_system("gpu.compute_capability = 89").is_err());
        assert!(parse_system("cpu.sockets 1").is_err());
    }

    #[test]
    fn structural_validation() {
        assert!(parse_system("cpu.sockets = 0").is_err());
        assert!(parse_system("gpu.sms = 0").is_err());
        assert!(parse_system("gpu.max_threads_per_sm = 16").is_err());
        assert!(parse_system("cpu_jitter = 2.0").is_err());
        assert!(parse_system("gpu.clock_ghz = -1").is_err());
    }

    #[test]
    fn roundtrip_from_disk() {
        let path = std::env::temp_dir().join(format!("syncperf_sys_{}.sys", std::process::id()));
        std::fs::write(&path, "id = 5\ngpu.name = Disk GPU\n").unwrap();
        let spec = load_system(&path).unwrap();
        assert_eq!(spec.id, 5);
        assert_eq!(spec.gpu.name, "Disk GPU");
        std::fs::remove_file(&path).unwrap();
        assert!(load_system(&path).is_err(), "missing file errors");
    }

    #[test]
    fn parsed_spec_drives_the_sweeps() {
        let spec =
            parse_system("gpu.sms = 10\ncpu.cores_per_socket = 2\ncpu.sockets = 1\n").unwrap();
        assert_eq!(spec.gpu.block_count_sweep(), vec![1, 2, 5, 10, 20]);
        assert_eq!(spec.cpu.omp_thread_counts().len(), 3); // 2..=4
    }
}
