//! The microkernel IR: what the baseline and test loop bodies contain.
//!
//! The paper's framework (Section III) times a *baseline* function and a
//! *test* function whose loop bodies are identical except that the test
//! body performs the measured synchronization at least one more time per
//! iteration. Subtracting the two isolates the primitive's cost.
//!
//! Loop bodies are expressed here as small sequences of [`CpuOp`] or
//! [`GpuOp`] values. Executors (real threads, the CPU simulator, the GPU
//! simulator) interpret these sequences `n_iter × N_UNROLL` times per
//! thread.

use crate::dtype::DType;

/// Where a memory-touching operation lands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Target {
    /// One of a handful of shared scalars, each on its own cache line.
    /// Index 0 is "the" shared variable; index 1 is the second location
    /// used by the atomic-write test (Fig. 4).
    SharedScalar(u8),
    /// The calling thread's private element of shared array `array`,
    /// located at element index `tid × stride` (Section IV: "we vary the
    /// stride, which indicates the distance between accessed elements").
    Private {
        /// Which of the (up to two) arrays — the flush/fence tests use
        /// two distinct arrays (Section V-A4).
        array: u8,
        /// Distance in elements between consecutive threads' elements.
        stride: u32,
    },
}

impl Target {
    /// The shared variable (scalar 0).
    pub const SHARED: Target = Target::SharedScalar(0);

    /// A second shared variable on a separate cache line.
    pub const SHARED2: Target = Target::SharedScalar(1);

    /// Shorthand for a private element of array 0 at the given stride.
    #[must_use]
    pub const fn private(stride: u32) -> Target {
        Target::Private { array: 0, stride }
    }

    /// Whether distinct threads reach the *same memory element* through
    /// this target. Shared scalars always collide; private array slots
    /// collide only at stride 0, where `tid × stride` degenerates to
    /// element 0 for every thread.
    #[must_use]
    pub const fn is_thread_shared(self) -> bool {
        match self {
            Target::SharedScalar(_) => true,
            Target::Private { stride, .. } => stride == 0,
        }
    }
}

/// Memory-fence / atomic scope, mirroring CUDA's three fence widths.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scope {
    /// Thread-block scope (`__threadfence_block()`, `atomicAdd_block()`).
    Block,
    /// Whole-device scope (`__threadfence()`, plain `atomicAdd()`).
    Device,
    /// CPU + GPU scope (`__threadfence_system()`).
    System,
}

/// Warp shuffle exchange pattern. The paper observed no performance
/// difference between the variants (Section V-B4), but they remain
/// distinct operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShflVariant {
    /// `__shfl_sync()` — broadcast from a source lane.
    Idx,
    /// `__shfl_up_sync()`.
    Up,
    /// `__shfl_down_sync()`.
    Down,
    /// `__shfl_xor_sync()`.
    Xor,
}

/// The additional read-modify-write atomics CUDA provides beyond add,
/// CAS, and exchange ("add, sub, max, min, etc." — Section II-B2). All
/// are integer-only in hardware.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RmwOp {
    /// `atomicSub()`.
    Sub,
    /// `atomicMin()`.
    Min,
    /// `atomicAnd()`.
    And,
    /// `atomicOr()`.
    Or,
    /// `atomicXor()`.
    Xor,
}

impl RmwOp {
    /// All five operations.
    pub const ALL: [RmwOp; 5] = [RmwOp::Sub, RmwOp::Min, RmwOp::And, RmwOp::Or, RmwOp::Xor];

    /// CUDA function name.
    #[must_use]
    pub const fn cuda_name(self) -> &'static str {
        match self {
            RmwOp::Sub => "atomicSub",
            RmwOp::Min => "atomicMin",
            RmwOp::And => "atomicAnd",
            RmwOp::Or => "atomicOr",
            RmwOp::Xor => "atomicXor",
        }
    }
}

/// Warp vote flavor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VoteKind {
    /// `__ballot_sync()`.
    Ballot,
    /// `__all_sync()`.
    All,
    /// `__any_sync()`.
    Any,
}

/// One operation in a CPU (OpenMP-style) loop body.
///
/// Fields are uniform across variants: `dtype` is the operand type and
/// `target` the memory location (see [`Target`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum CpuOp {
    /// `#pragma omp barrier`.
    Barrier,
    /// `#pragma omp atomic update` — an atomic `x += v`.
    AtomicUpdate { dtype: DType, target: Target },
    /// `#pragma omp atomic capture` — `v = x++` atomically.
    AtomicCapture { dtype: DType, target: Target },
    /// `#pragma omp atomic read`.
    AtomicRead { dtype: DType, target: Target },
    /// `#pragma omp atomic write`.
    AtomicWrite { dtype: DType, target: Target },
    /// A plain (non-atomic) read — the baseline of the atomic-read test.
    Read { dtype: DType, target: Target },
    /// A plain (non-atomic) `x += v` — used by the flush test bodies.
    Update { dtype: DType, target: Target },
    /// An addition protected by `#pragma omp critical`.
    CriticalAdd { dtype: DType, target: Target },
    /// `#pragma omp flush` — a full memory fence.
    Flush,
    /// Entry into a named critical section (`#pragma omp critical(L)`
    /// open brace): acquires lock `lock`. Must be balanced by a
    /// matching [`CpuOp::CriticalEnd`] with the same lock id;
    /// unbalanced bodies are representable (the analyzer's deadlock
    /// oracle uses them) but wedge at run time.
    CriticalBegin { lock: u8 },
    /// Exit from a named critical section: releases lock `lock`.
    CriticalEnd { lock: u8 },
}

impl CpuOp {
    /// The memory operand of this op, if it touches memory.
    #[must_use]
    pub const fn memory_operand(self) -> Option<(DType, Target)> {
        match self {
            CpuOp::Barrier
            | CpuOp::Flush
            | CpuOp::CriticalBegin { .. }
            | CpuOp::CriticalEnd { .. } => None,
            CpuOp::AtomicUpdate { dtype, target }
            | CpuOp::AtomicCapture { dtype, target }
            | CpuOp::AtomicRead { dtype, target }
            | CpuOp::AtomicWrite { dtype, target }
            | CpuOp::Read { dtype, target }
            | CpuOp::Update { dtype, target }
            | CpuOp::CriticalAdd { dtype, target } => Some((dtype, target)),
        }
    }

    /// Whether the op's memory access is atomic (or lock-protected,
    /// which implies atomicity for the protected addition).
    #[must_use]
    pub const fn is_atomic_access(self) -> bool {
        matches!(
            self,
            CpuOp::AtomicUpdate { .. }
                | CpuOp::AtomicCapture { .. }
                | CpuOp::AtomicRead { .. }
                | CpuOp::AtomicWrite { .. }
                | CpuOp::CriticalAdd { .. }
        )
    }

    /// Whether the op writes (or read-modify-writes) its operand.
    #[must_use]
    pub const fn writes_memory(self) -> bool {
        matches!(
            self,
            CpuOp::AtomicUpdate { .. }
                | CpuOp::AtomicCapture { .. }
                | CpuOp::AtomicWrite { .. }
                | CpuOp::Update { .. }
                | CpuOp::CriticalAdd { .. }
        )
    }
}

/// One operation in a GPU (CUDA-style) loop body.
///
/// Fields are uniform across variants: `dtype` is the operand type,
/// `target` the memory location, and `scope` the atomic/fence width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum GpuOp {
    /// `__syncthreads()` — block-wide barrier.
    SyncThreads,
    /// `__syncwarp()` — warp-wide barrier.
    SyncWarp,
    /// `__syncthreads_count/and/or()` — a block-wide barrier that also
    /// reduces a predicate across the block (barriers "at multiple
    /// granularities", §II-B1).
    SyncThreadsReduce { kind: VoteKind },
    /// `atomicAdd()` (or `atomicAdd_block()` when `scope` is block).
    AtomicAdd {
        dtype: DType,
        scope: Scope,
        target: Target,
    },
    /// `atomicCAS()` — integer types only.
    AtomicCas {
        dtype: DType,
        scope: Scope,
        target: Target,
    },
    /// `atomicExch()`.
    AtomicExch {
        dtype: DType,
        scope: Scope,
        target: Target,
    },
    /// `atomicMax()` (used by the Listing 1 reductions).
    AtomicMax {
        dtype: DType,
        scope: Scope,
        target: Target,
    },
    /// `__threadfence_block()/__threadfence()/__threadfence_system()`.
    ThreadFence { scope: Scope },
    /// Warp shuffle with implied `__syncwarp()`.
    Shfl { dtype: DType, variant: ShflVariant },
    /// Warp vote with implied `__syncwarp()`.
    Vote { kind: VoteKind },
    /// `__reduce_max_sync()` — warp-wide reduction (compute cap. ≥ 8.0).
    WarpReduce { dtype: DType },
    /// A plain (non-atomic) `x += v` — used by the fence test bodies.
    Update { dtype: DType, target: Target },
    /// One of the further RMW atomics (`atomicSub/Min/And/Or/Xor`).
    AtomicRmw {
        op: RmwOp,
        dtype: DType,
        scope: Scope,
        target: Target,
    },
    /// A plain read.
    Read { dtype: DType, target: Target },
    /// Plain arithmetic on registers (e.g. `max`), no memory traffic.
    Alu { dtype: DType },
    /// A warp-divergent branch: the warp splits into `paths` groups
    /// that execute one ALU op each, serially (SIMT divergence; the
    /// measurement methodology descends from Bialas & Strzelecki's
    /// divergence benchmark, the paper's reference [10]).
    Diverge { dtype: DType, paths: u32 },
}

impl GpuOp {
    /// The memory operand of this op, if it touches memory.
    #[must_use]
    pub const fn memory_operand(self) -> Option<(DType, Target)> {
        match self {
            GpuOp::AtomicAdd { dtype, target, .. }
            | GpuOp::AtomicCas { dtype, target, .. }
            | GpuOp::AtomicExch { dtype, target, .. }
            | GpuOp::AtomicMax { dtype, target, .. }
            | GpuOp::AtomicRmw { dtype, target, .. }
            | GpuOp::Update { dtype, target }
            | GpuOp::Read { dtype, target } => Some((dtype, target)),
            GpuOp::SyncThreads
            | GpuOp::SyncWarp
            | GpuOp::SyncThreadsReduce { .. }
            | GpuOp::ThreadFence { .. }
            | GpuOp::Shfl { .. }
            | GpuOp::Vote { .. }
            | GpuOp::WarpReduce { .. }
            | GpuOp::Alu { .. }
            | GpuOp::Diverge { .. } => None,
        }
    }

    /// The scope of an atomic or fence op, if it has one.
    #[must_use]
    pub const fn sync_scope(self) -> Option<Scope> {
        match self {
            GpuOp::AtomicAdd { scope, .. }
            | GpuOp::AtomicCas { scope, .. }
            | GpuOp::AtomicExch { scope, .. }
            | GpuOp::AtomicMax { scope, .. }
            | GpuOp::AtomicRmw { scope, .. }
            | GpuOp::ThreadFence { scope } => Some(scope),
            _ => None,
        }
    }

    /// Whether the op is a hardware atomic (all GPU atomics in the IR
    /// read-modify-write their operand).
    #[must_use]
    pub const fn is_atomic_access(self) -> bool {
        matches!(
            self,
            GpuOp::AtomicAdd { .. }
                | GpuOp::AtomicCas { .. }
                | GpuOp::AtomicExch { .. }
                | GpuOp::AtomicMax { .. }
                | GpuOp::AtomicRmw { .. }
        )
    }

    /// Whether the op is a block-wide execution barrier
    /// (`__syncthreads()` or a reducing variant).
    #[must_use]
    pub const fn is_block_barrier(self) -> bool {
        matches!(self, GpuOp::SyncThreads | GpuOp::SyncThreadsReduce { .. })
    }

    /// Whether the op synchronizes the executing warp (explicitly or as
    /// an implied `__syncwarp()`).
    #[must_use]
    pub const fn is_warp_sync(self) -> bool {
        matches!(
            self,
            GpuOp::SyncWarp | GpuOp::Shfl { .. } | GpuOp::Vote { .. } | GpuOp::WarpReduce { .. }
        )
    }
}

/// A baseline/test pair for one measured primitive.
///
/// The test body always contains the baseline body's work plus at least
/// one extra occurrence of the measured primitive, so
/// `median(test) − median(baseline)` isolates the primitive.
#[derive(Debug, Clone, PartialEq)]
pub struct Kernel<Op> {
    /// Human-readable primitive name, e.g. `"omp_barrier"`.
    pub name: String,
    /// Baseline loop body.
    pub baseline: Vec<Op>,
    /// Test loop body (baseline + measured primitive(s)).
    pub test: Vec<Op>,
    /// How many *extra* occurrences of the primitive the test body has
    /// relative to the baseline; the measured difference is divided by
    /// this (1 for every kernel in the paper).
    pub extra_ops: u32,
}

impl<Op: PartialEq> Kernel<Op> {
    /// Builds a kernel, validating the differential structure the
    /// protocol relies on. Two shapes are legal:
    ///
    /// * **Insertion** (`test` longer than `baseline`): the test body
    ///   must contain the baseline ops in order plus exactly
    ///   `extra_ops` inserted occurrences of the measured primitive.
    /// * **Substitution** (equal lengths, e.g. the atomic-read test):
    ///   the bodies must differ in exactly `extra_ops` positions, so
    ///   the difference measures the substituted primitive's overhead.
    ///
    /// Checking the structure — not just the lengths — at construction
    /// keeps a malformed kernel from silently skewing the measured
    /// difference.
    ///
    /// # Panics
    ///
    /// Panics if `test` is shorter than `baseline`, if `extra_ops` is
    /// zero, or if the bodies violate the insertion/substitution shape
    /// described above.
    #[must_use]
    pub fn new(name: impl Into<String>, baseline: Vec<Op>, test: Vec<Op>, extra_ops: u32) -> Self {
        assert!(
            test.len() >= baseline.len(),
            "test body must contain at least as many operations as the baseline"
        );
        assert!(extra_ops > 0, "extra_ops must be at least 1");
        let inserted = test.len() - baseline.len();
        if inserted == 0 {
            let differing = baseline
                .iter()
                .zip(test.iter())
                .filter(|(b, t)| b != t)
                .count();
            assert!(
                differing == extra_ops as usize,
                "substitution test body must differ from the baseline in exactly {extra_ops} \
                 position(s), but differs in {differing}"
            );
        } else {
            assert!(
                inserted == extra_ops as usize,
                "test body inserts {inserted} op(s) over the baseline but extra_ops is {extra_ops}"
            );
            assert!(
                is_subsequence(&baseline, &test),
                "test body must contain the baseline ops in order plus the inserted primitive \
                 occurrence(s)"
            );
        }
        Kernel {
            name: name.into(),
            baseline,
            test,
            extra_ops,
        }
    }
}

/// Whether `needle` appears as an (ordered, not necessarily
/// contiguous) subsequence of `haystack`.
fn is_subsequence<Op: PartialEq>(needle: &[Op], haystack: &[Op]) -> bool {
    let mut it = haystack.iter();
    needle.iter().all(|n| it.any(|h| h == n))
}

/// A CPU kernel.
pub type CpuKernel = Kernel<CpuOp>;
/// A GPU kernel.
pub type GpuKernel = Kernel<GpuOp>;

// ---------------------------------------------------------------------
// Factory functions: one per measured primitive in the paper.
// ---------------------------------------------------------------------

/// Fig. 1 — OpenMP barrier: baseline has one `#pragma omp barrier` per
/// iteration, the test has two.
#[must_use]
pub fn omp_barrier() -> CpuKernel {
    Kernel::new(
        "omp_barrier",
        vec![CpuOp::Barrier],
        vec![CpuOp::Barrier, CpuOp::Barrier],
        1,
    )
}

/// Fig. 2 — OpenMP atomic update on a single shared variable.
#[must_use]
pub fn omp_atomic_update_scalar(dtype: DType) -> CpuKernel {
    let op = CpuOp::AtomicUpdate {
        dtype,
        target: Target::SHARED,
    };
    Kernel::new(
        format!("omp_atomicadd_scalar_{dtype}"),
        vec![op],
        vec![op, op],
        1,
    )
}

/// Fig. 3 — OpenMP atomic update on each thread's private element of a
/// shared array at the given stride.
#[must_use]
pub fn omp_atomic_update_array(dtype: DType, stride: u32) -> CpuKernel {
    let op = CpuOp::AtomicUpdate {
        dtype,
        target: Target::private(stride),
    };
    Kernel::new(
        format!("omp_atomicadd_array_{dtype}_s{stride}"),
        vec![op],
        vec![op, op],
        1,
    )
}

/// §V-A2 — OpenMP atomic capture (`v = x++`), behaviorally ≈ update.
#[must_use]
pub fn omp_atomic_capture_scalar(dtype: DType) -> CpuKernel {
    let op = CpuOp::AtomicCapture {
        dtype,
        target: Target::SHARED,
    };
    Kernel::new(
        format!("omp_atomiccapture_scalar_{dtype}"),
        vec![op],
        vec![op, op],
        1,
    )
}

/// Fig. 4 — OpenMP atomic write: the baseline writes one shared
/// location; the test writes two locations on separate cache lines.
#[must_use]
pub fn omp_atomic_write(dtype: DType) -> CpuKernel {
    let w0 = CpuOp::AtomicWrite {
        dtype,
        target: Target::SHARED,
    };
    let w1 = CpuOp::AtomicWrite {
        dtype,
        target: Target::SHARED2,
    };
    Kernel::new(
        format!("omp_atomicwrite_{dtype}"),
        vec![w0],
        vec![w0, w1],
        1,
    )
}

/// §V-A2 — OpenMP atomic read: the baseline performs a *non-atomic*
/// read; the test performs the same read atomically (a substitution,
/// not an addition — the difference is the overhead of atomicity). The
/// paper found it to be within timer accuracy (i.e. atomic reads are
/// free on the tested CPUs).
#[must_use]
pub fn omp_atomic_read(dtype: DType) -> CpuKernel {
    let plain = CpuOp::Read {
        dtype,
        target: Target::SHARED,
    };
    let atomic = CpuOp::AtomicRead {
        dtype,
        target: Target::SHARED,
    };
    Kernel::new(
        format!("omp_atomicread_{dtype}"),
        vec![plain],
        vec![atomic],
        1,
    )
}

/// Fig. 5 — an addition on a single shared variable protected by an
/// OpenMP critical section.
#[must_use]
pub fn omp_critical_add(dtype: DType) -> CpuKernel {
    let op = CpuOp::CriticalAdd {
        dtype,
        target: Target::SHARED,
    };
    Kernel::new(format!("omp_critical_{dtype}"), vec![op], vec![op, op], 1)
}

/// Extension (§II-A3's named critical sections) — a multi-op critical
/// region: the baseline holds lock 0 around one shared update, the
/// test performs a second update inside the same region. Exercises the
/// bracketed [`CpuOp::CriticalBegin`]/[`CpuOp::CriticalEnd`] form that
/// the analyzer's model checker reasons about; not part of the
/// measured registry.
#[must_use]
pub fn omp_critical_section(dtype: DType) -> CpuKernel {
    let upd = CpuOp::Update {
        dtype,
        target: Target::SHARED,
    };
    Kernel::new(
        format!("omp_critical_section_{dtype}"),
        vec![
            CpuOp::CriticalBegin { lock: 0 },
            upd,
            CpuOp::CriticalEnd { lock: 0 },
        ],
        vec![
            CpuOp::CriticalBegin { lock: 0 },
            upd,
            upd,
            CpuOp::CriticalEnd { lock: 0 },
        ],
        1,
    )
}

/// Fig. 6 — OpenMP flush: each thread increments its private element of
/// two arrays; the test inserts a flush between the two increments.
#[must_use]
pub fn omp_flush(dtype: DType, stride: u32) -> CpuKernel {
    let a = CpuOp::Update {
        dtype,
        target: Target::Private { array: 0, stride },
    };
    let b = CpuOp::Update {
        dtype,
        target: Target::Private { array: 1, stride },
    };
    Kernel::new(
        format!("omp_flush_{dtype}_s{stride}"),
        vec![a, b],
        vec![a, CpuOp::Flush, b],
        1,
    )
}

/// Fig. 7 — `__syncthreads()`.
#[must_use]
pub fn cuda_syncthreads() -> GpuKernel {
    Kernel::new(
        "cuda_syncthreads",
        vec![GpuOp::SyncThreads],
        vec![GpuOp::SyncThreads, GpuOp::SyncThreads],
        1,
    )
}

/// Fig. 8 — `__syncwarp()`.
#[must_use]
pub fn cuda_syncwarp() -> GpuKernel {
    Kernel::new(
        "cuda_syncwarp",
        vec![GpuOp::SyncWarp],
        vec![GpuOp::SyncWarp, GpuOp::SyncWarp],
        1,
    )
}

/// Fig. 9 — `atomicAdd()` on one shared variable.
#[must_use]
pub fn cuda_atomic_add_scalar(dtype: DType) -> GpuKernel {
    let op = GpuOp::AtomicAdd {
        dtype,
        scope: Scope::Device,
        target: Target::SHARED,
    };
    Kernel::new(
        format!("cuda_atomicadd_scalar_{dtype}"),
        vec![op],
        vec![op, op],
        1,
    )
}

/// Fig. 10 — `atomicAdd()` on private elements of a shared array.
#[must_use]
pub fn cuda_atomic_add_array(dtype: DType, stride: u32) -> GpuKernel {
    let op = GpuOp::AtomicAdd {
        dtype,
        scope: Scope::Device,
        target: Target::private(stride),
    };
    Kernel::new(
        format!("cuda_atomicadd_array_{dtype}_s{stride}"),
        vec![op],
        vec![op, op],
        1,
    )
}

/// Fig. 11 — `atomicCAS()` on one shared variable (integer types only;
/// the always-pass and always-fail versions perform identically per the
/// paper, so a single kernel suffices).
#[must_use]
pub fn cuda_atomic_cas_scalar(dtype: DType) -> GpuKernel {
    let op = GpuOp::AtomicCas {
        dtype,
        scope: Scope::Device,
        target: Target::SHARED,
    };
    Kernel::new(
        format!("cuda_atomiccas_scalar_{dtype}"),
        vec![op],
        vec![op, op],
        1,
    )
}

/// Fig. 12 — `atomicCAS()` on private elements of a shared array.
#[must_use]
pub fn cuda_atomic_cas_array(dtype: DType, stride: u32) -> GpuKernel {
    let op = GpuOp::AtomicCas {
        dtype,
        scope: Scope::Device,
        target: Target::private(stride),
    };
    Kernel::new(
        format!("cuda_atomiccas_array_{dtype}_s{stride}"),
        vec![op],
        vec![op, op],
        1,
    )
}

/// Fig. 13 — `atomicExch()`: each thread repeatedly swaps a shared
/// location with its global thread ID.
#[must_use]
pub fn cuda_atomic_exch(dtype: DType) -> GpuKernel {
    let op = GpuOp::AtomicExch {
        dtype,
        scope: Scope::Device,
        target: Target::SHARED,
    };
    Kernel::new(
        format!("cuda_atomicexch_{dtype}"),
        vec![op],
        vec![op, op],
        1,
    )
}

/// Fig. 14 / §V-B3 — thread fences: each thread updates its private
/// element of two arrays; the test inserts a fence of the given scope
/// between the updates (same setup as the OpenMP flush test).
#[must_use]
pub fn cuda_threadfence(scope: Scope, dtype: DType, stride: u32) -> GpuKernel {
    let a = GpuOp::Update {
        dtype,
        target: Target::Private { array: 0, stride },
    };
    let b = GpuOp::Update {
        dtype,
        target: Target::Private { array: 1, stride },
    };
    let scope_name = match scope {
        Scope::Block => "block",
        Scope::Device => "device",
        Scope::System => "system",
    };
    Kernel::new(
        format!("cuda_threadfence_{scope_name}_{dtype}_s{stride}"),
        vec![a, b],
        vec![a, GpuOp::ThreadFence { scope }, b],
        1,
    )
}

/// Fig. 15 — warp shuffles (all four variants perform identically).
#[must_use]
pub fn cuda_shfl(dtype: DType, variant: ShflVariant) -> GpuKernel {
    let op = GpuOp::Shfl { dtype, variant };
    Kernel::new(
        format!("cuda_shfl_{variant:?}_{dtype}"),
        vec![op],
        vec![op, op],
        1,
    )
}

/// Extension (§II-B1's barrier family) — `__syncthreads_count/and/or`:
/// the baseline is a plain `__syncthreads()`, the test the reducing
/// variant, so the difference is the predicate reduction's cost.
#[must_use]
pub fn cuda_syncthreads_vote(kind: VoteKind) -> GpuKernel {
    Kernel::new(
        format!("cuda_syncthreads_{kind:?}"),
        vec![GpuOp::SyncThreads],
        vec![GpuOp::SyncThreadsReduce { kind }],
        1,
    )
}

/// §V-B4 — warp votes.
#[must_use]
pub fn cuda_vote(kind: VoteKind) -> GpuKernel {
    let op = GpuOp::Vote { kind };
    Kernel::new(format!("cuda_vote_{kind:?}"), vec![op], vec![op, op], 1)
}

/// Extension (§II-B2 lists the wider atomic family) — one of
/// `atomicSub/Min/And/Or/Xor` on a single shared variable.
#[must_use]
pub fn cuda_atomic_rmw_scalar(op: RmwOp, dtype: DType) -> GpuKernel {
    let o = GpuOp::AtomicRmw {
        op,
        dtype,
        scope: Scope::Device,
        target: Target::SHARED,
    };
    Kernel::new(
        format!("cuda_{}_scalar_{dtype}", op.cuda_name()),
        vec![o],
        vec![o, o],
        1,
    )
}

/// Extension (reference [10]'s methodology) — the cost of a warp
/// diverging into `paths` serialized paths: the baseline executes one
/// uniform ALU op, the test a `paths`-way divergent one.
#[must_use]
pub fn cuda_divergence(dtype: DType, paths: u32) -> GpuKernel {
    Kernel::new(
        format!("cuda_divergence_{dtype}_p{paths}"),
        vec![GpuOp::Alu { dtype }],
        vec![GpuOp::Diverge { dtype, paths }],
        1,
    )
}

/// Extension (analyzer regression) — a block barrier reached *two* ops
/// after the divergence point, i.e. outside the one-op adjacency
/// window of the SL002 heuristic. The baseline diverges and reads; the
/// test adds a `__syncthreads()` downstream, which a divergent warp
/// may reach with partial arrival. Exists to pin the model checker's
/// path-sensitive verdict (SL007); not part of the measured registry.
#[must_use]
pub fn cuda_divergent_barrier(dtype: DType, paths: u32) -> GpuKernel {
    let read = GpuOp::Read {
        dtype,
        target: Target::private(1),
    };
    Kernel::new(
        format!("cuda_divergent_barrier_{dtype}_p{paths}"),
        vec![GpuOp::Diverge { dtype, paths }, read],
        vec![GpuOp::Diverge { dtype, paths }, read, GpuOp::SyncThreads],
        1,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_body_always_longer_than_baseline() {
        let kernels: Vec<CpuKernel> = vec![
            omp_barrier(),
            omp_atomic_update_scalar(DType::I32),
            omp_atomic_update_array(DType::F64, 8),
            omp_atomic_capture_scalar(DType::U64),
            omp_atomic_write(DType::F32),
            omp_atomic_read(DType::I32),
            omp_critical_add(DType::I32),
            omp_flush(DType::F64, 4),
        ];
        for k in kernels {
            assert!(k.test.len() >= k.baseline.len(), "{}", k.name);
            assert_eq!(k.extra_ops, 1);
        }
    }

    #[test]
    fn gpu_kernels_well_formed() {
        let kernels: Vec<GpuKernel> = vec![
            cuda_syncthreads(),
            cuda_syncwarp(),
            cuda_atomic_add_scalar(DType::F32),
            cuda_atomic_add_array(DType::I32, 32),
            cuda_atomic_cas_scalar(DType::U64),
            cuda_atomic_cas_array(DType::I32, 1),
            cuda_atomic_exch(DType::I32),
            cuda_threadfence(Scope::Device, DType::I32, 1),
            cuda_shfl(DType::F64, ShflVariant::Xor),
            cuda_vote(VoteKind::Any),
        ];
        for k in kernels {
            assert!(k.test.len() > k.baseline.len(), "{}", k.name);
        }
    }

    #[test]
    fn atomic_write_test_touches_two_lines() {
        let k = omp_atomic_write(DType::I32);
        assert_eq!(k.baseline.len(), 1);
        let targets: Vec<_> = k
            .test
            .iter()
            .map(|op| match op {
                CpuOp::AtomicWrite { target, .. } => *target,
                other => panic!("unexpected op {other:?}"),
            })
            .collect();
        assert_eq!(targets, vec![Target::SHARED, Target::SHARED2]);
    }

    #[test]
    fn atomic_read_baseline_is_plain_read() {
        let k = omp_atomic_read(DType::F64);
        assert!(matches!(k.baseline[0], CpuOp::Read { .. }));
        assert!(k
            .test
            .iter()
            .any(|op| matches!(op, CpuOp::AtomicRead { .. })));
    }

    #[test]
    fn flush_sits_between_the_two_updates() {
        let k = omp_flush(DType::I32, 16);
        assert_eq!(k.test.len(), 3);
        assert!(matches!(k.test[1], CpuOp::Flush));
        let arrays: Vec<u8> = k
            .baseline
            .iter()
            .map(|op| match op {
                CpuOp::Update {
                    target: Target::Private { array, .. },
                    ..
                } => *array,
                other => panic!("unexpected op {other:?}"),
            })
            .collect();
        assert_eq!(arrays, vec![0, 1]);
    }

    #[test]
    fn fence_kernel_names_encode_scope() {
        assert!(cuda_threadfence(Scope::Block, DType::I32, 1)
            .name
            .contains("block"));
        assert!(cuda_threadfence(Scope::System, DType::I32, 1)
            .name
            .contains("system"));
    }

    #[test]
    #[should_panic(expected = "test body")]
    fn kernel_rejects_shorter_test() {
        let _ = Kernel::new(
            "bad",
            vec![CpuOp::Barrier, CpuOp::Barrier],
            vec![CpuOp::Barrier],
            1,
        );
    }

    #[test]
    fn substitution_kernel_allowed() {
        let k = omp_atomic_read(DType::I32);
        assert_eq!(k.baseline.len(), k.test.len());
    }

    #[test]
    #[should_panic(expected = "differs in 2")]
    fn kernel_rejects_substitution_with_wrong_diff_count() {
        // Equal lengths but two positions changed while extra_ops is 1:
        // the measured difference would mix two primitives.
        let _ = Kernel::new(
            "bad_subst",
            vec![
                CpuOp::Read {
                    dtype: DType::I32,
                    target: Target::SHARED,
                },
                CpuOp::Read {
                    dtype: DType::I32,
                    target: Target::SHARED2,
                },
            ],
            vec![
                CpuOp::AtomicRead {
                    dtype: DType::I32,
                    target: Target::SHARED,
                },
                CpuOp::AtomicRead {
                    dtype: DType::I32,
                    target: Target::SHARED2,
                },
            ],
            1,
        );
    }

    #[test]
    #[should_panic(expected = "baseline ops in order")]
    fn kernel_rejects_test_that_drops_baseline_ops() {
        // Longer test body that does NOT contain the baseline work: the
        // subtraction would no longer isolate the inserted primitive.
        let up = CpuOp::Update {
            dtype: DType::I32,
            target: Target::private(8),
        };
        let _ = Kernel::new(
            "bad_insert",
            vec![up, up],
            vec![CpuOp::Barrier, CpuOp::Barrier, up],
            1,
        );
    }

    #[test]
    #[should_panic(expected = "extra_ops is 2")]
    fn kernel_rejects_mismatched_insert_count() {
        let _ = Kernel::new(
            "bad_count",
            vec![CpuOp::Barrier],
            vec![CpuOp::Barrier, CpuOp::Barrier],
            2,
        );
    }

    #[test]
    fn accessors_classify_ops() {
        let up = CpuOp::AtomicUpdate {
            dtype: DType::F64,
            target: Target::SHARED,
        };
        assert_eq!(up.memory_operand(), Some((DType::F64, Target::SHARED)));
        assert!(up.is_atomic_access() && up.writes_memory());
        assert!(CpuOp::Barrier.memory_operand().is_none());
        let rd = CpuOp::Read {
            dtype: DType::I32,
            target: Target::private(4),
        };
        assert!(!rd.is_atomic_access() && !rd.writes_memory());

        let ga = GpuOp::AtomicAdd {
            dtype: DType::I32,
            scope: Scope::Block,
            target: Target::SHARED,
        };
        assert_eq!(ga.sync_scope(), Some(Scope::Block));
        assert!(ga.is_atomic_access());
        assert!(GpuOp::SyncThreads.is_block_barrier());
        assert!(GpuOp::SyncWarp.is_warp_sync());
        assert_eq!(
            GpuOp::ThreadFence {
                scope: Scope::System
            }
            .sync_scope(),
            Some(Scope::System)
        );
    }

    #[test]
    fn thread_shared_targets() {
        assert!(Target::SHARED.is_thread_shared());
        assert!(Target::SHARED2.is_thread_shared());
        assert!(Target::private(0).is_thread_shared());
        assert!(!Target::private(1).is_thread_shared());
        assert!(!Target::Private {
            array: 1,
            stride: 8
        }
        .is_thread_shared());
    }

    #[test]
    fn private_target_shorthand() {
        assert_eq!(
            Target::private(7),
            Target::Private {
                array: 0,
                stride: 7
            }
        );
    }
}
