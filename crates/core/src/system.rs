//! Encodings of the paper's Table I: the three test systems.
//!
//! Each [`SystemSpec`] couples a CPU and a GPU description. The CPU
//! simulator and GPU simulator crates derive their model parameters from
//! these specs, and the `table1_systems` bench binary prints Table I
//! from them.

use std::fmt;

/// CPU half of a system specification (Table I).
#[derive(Debug, Clone, PartialEq)]
pub struct CpuSpec {
    /// Marketing name, e.g. `"AMD Ryzen Threadripper 2950X"`.
    pub name: &'static str,
    /// Base clock frequency in GHz.
    pub base_clock_ghz: f64,
    /// Number of sockets.
    pub sockets: u32,
    /// Physical cores per socket.
    pub cores_per_socket: u32,
    /// Hardware threads per core (2 = SMT/hyperthreading).
    pub threads_per_core: u32,
    /// Number of NUMA nodes.
    pub numa_nodes: u32,
    /// Main memory in GB.
    pub memory_gb: u32,
    /// L1 data cache line size in bytes (64 on all tested systems).
    pub cache_line_bytes: usize,
}

impl CpuSpec {
    /// Total physical cores across all sockets.
    #[must_use]
    pub fn total_cores(&self) -> u32 {
        self.sockets * self.cores_per_socket
    }

    /// Total hardware threads (hyperthreads included).
    #[must_use]
    pub fn total_threads(&self) -> u32 {
        self.total_cores() * self.threads_per_core
    }

    /// The thread counts the paper sweeps for OpenMP tests:
    /// 2 ..= total hardware threads (thread count 1 is omitted since
    /// synchronization serves no purpose serially; Section V-A).
    #[must_use]
    pub fn omp_thread_counts(&self) -> Vec<u32> {
        (2..=self.total_threads()).collect()
    }
}

/// GPU half of a system specification (Table I).
#[derive(Debug, Clone, PartialEq)]
pub struct GpuSpec {
    /// Marketing name, e.g. `"NVIDIA GeForce RTX 4090"`.
    pub name: &'static str,
    /// Compute capability, e.g. 8.9 stored as (8, 9).
    pub compute_capability: (u32, u32),
    /// Clock frequency in GHz as reported by `cudaDeviceProp`.
    pub clock_ghz: f64,
    /// Number of streaming multiprocessors.
    pub sms: u32,
    /// Maximum resident threads per SM.
    pub max_threads_per_sm: u32,
    /// CUDA cores per SM.
    pub cuda_cores_per_sm: u32,
    /// Device memory in GB.
    pub memory_gb: u32,
    /// Warp size (32 on all NVIDIA GPUs).
    pub warp_size: u32,
    /// Maximum threads per block (1024 on all tested GPUs).
    pub max_threads_per_block: u32,
}

impl GpuSpec {
    /// Compute capability as a comparable number, e.g. 8.9 → 89.
    #[must_use]
    pub fn cc_number(&self) -> u32 {
        self.compute_capability.0 * 10 + self.compute_capability.1
    }

    /// The block counts the paper sweeps: 1, 2, half the SMs, the SMs,
    /// and twice the SMs (Section V-B).
    #[must_use]
    pub fn block_count_sweep(&self) -> Vec<u32> {
        vec![1, 2, self.sms / 2, self.sms, self.sms * 2]
    }

    /// The thread-per-block counts the paper sweeps: powers of two from
    /// 1 through 1024.
    #[must_use]
    pub fn thread_count_sweep(&self) -> Vec<u32> {
        (0..=10).map(|p| 1u32 << p).collect()
    }

    /// Maximum resident warps per SM.
    #[must_use]
    pub fn max_warps_per_sm(&self) -> u32 {
        self.max_threads_per_sm / self.warp_size
    }
}

/// One complete test system from Table I.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemSpec {
    /// Paper-facing identifier: 1, 2, or 3.
    pub id: u32,
    /// CPU description.
    pub cpu: CpuSpec,
    /// GPU description.
    pub gpu: GpuSpec,
    /// `g++` version string (for Table I display only).
    pub gxx_version: &'static str,
    /// `nvcc` version string (for Table I display only).
    pub nvcc_version: &'static str,
    /// GPU driver version string (for Table I display only).
    pub gpu_driver: &'static str,
    /// Relative timing-jitter amplitude observed on this system's CPU
    /// (System 3's AMD chip shows notable jitter in Fig. 4a).
    pub cpu_jitter: f64,
}

impl fmt::Display for SystemSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "System {} ({} + {})",
            self.id, self.cpu.name, self.gpu.name
        )
    }
}

/// System 1: Intel Xeon E5-2687 v3 + NVIDIA GeForce RTX 2070 SUPER.
pub const SYSTEM1: SystemSpec = SystemSpec {
    id: 1,
    cpu: CpuSpec {
        name: "Intel Xeon E5-2687 v3",
        base_clock_ghz: 3.10,
        sockets: 2,
        cores_per_socket: 10,
        threads_per_core: 2,
        numa_nodes: 2,
        memory_gb: 128,
        cache_line_bytes: 64,
    },
    gpu: GpuSpec {
        name: "NVIDIA GeForce RTX 2070 SUPER",
        compute_capability: (7, 5),
        clock_ghz: 1.80,
        sms: 40,
        max_threads_per_sm: 1024,
        cuda_cores_per_sm: 64,
        memory_gb: 8,
        warp_size: 32,
        max_threads_per_block: 1024,
    },
    gxx_version: "12.3.1",
    nvcc_version: "12.0",
    gpu_driver: "550.67",
    cpu_jitter: 0.02,
};

/// System 2: Intel Xeon Gold 6226R + NVIDIA A100 40GB.
pub const SYSTEM2: SystemSpec = SystemSpec {
    id: 2,
    cpu: CpuSpec {
        name: "Intel Xeon Gold 6226R",
        base_clock_ghz: 2.80,
        sockets: 2,
        cores_per_socket: 16,
        threads_per_core: 2,
        numa_nodes: 2,
        memory_gb: 64,
        cache_line_bytes: 64,
    },
    gpu: GpuSpec {
        name: "NVIDIA A100 40GB",
        compute_capability: (8, 0),
        clock_ghz: 1.41,
        sms: 108,
        max_threads_per_sm: 2048,
        cuda_cores_per_sm: 64,
        memory_gb: 40,
        warp_size: 32,
        max_threads_per_block: 1024,
    },
    gxx_version: "12.3.1",
    nvcc_version: "12.0",
    gpu_driver: "535.113.01",
    cpu_jitter: 0.02,
};

/// System 3: AMD Ryzen Threadripper 2950X + NVIDIA GeForce RTX 4090.
///
/// Unless otherwise noted the paper's figures display System 3, "the
/// system with the latest CPU and GPU" (Section V).
pub const SYSTEM3: SystemSpec = SystemSpec {
    id: 3,
    cpu: CpuSpec {
        name: "AMD Ryzen Threadripper 2950X",
        base_clock_ghz: 3.50,
        sockets: 1,
        cores_per_socket: 16,
        threads_per_core: 2,
        numa_nodes: 2,
        memory_gb: 48,
        cache_line_bytes: 64,
    },
    gpu: GpuSpec {
        name: "NVIDIA GeForce RTX 4090",
        compute_capability: (8, 9),
        clock_ghz: 2.625,
        sms: 128,
        max_threads_per_sm: 1536,
        cuda_cores_per_sm: 128,
        memory_gb: 24,
        warp_size: 32,
        max_threads_per_block: 1024,
    },
    gxx_version: "12.2.1",
    nvcc_version: "12.0",
    gpu_driver: "525.85.05",
    // The paper attributes the jitter in Fig. 4a to "architectural
    // qualities of the AMD chip" — give System 3 a larger amplitude.
    cpu_jitter: 0.12,
};

/// All three systems, in paper order.
#[must_use]
pub fn all_systems() -> [SystemSpec; 3] {
    [SYSTEM1, SYSTEM2, SYSTEM3]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_core_counts() {
        assert_eq!(SYSTEM1.cpu.total_cores(), 20);
        assert_eq!(SYSTEM1.cpu.total_threads(), 40);
        assert_eq!(SYSTEM2.cpu.total_cores(), 32);
        assert_eq!(SYSTEM2.cpu.total_threads(), 64);
        assert_eq!(SYSTEM3.cpu.total_cores(), 16);
        assert_eq!(SYSTEM3.cpu.total_threads(), 32);
    }

    #[test]
    fn omp_sweep_starts_at_two() {
        let counts = SYSTEM3.cpu.omp_thread_counts();
        assert_eq!(counts.first(), Some(&2));
        assert_eq!(counts.last(), Some(&32));
        assert_eq!(counts.len(), 31);
    }

    #[test]
    fn gpu_block_sweep_matches_paper() {
        // "block counts of 1, 2, half the number of SMs, the number of
        // SMs, and twice the number of SMs"
        assert_eq!(SYSTEM3.gpu.block_count_sweep(), vec![1, 2, 64, 128, 256]);
        assert_eq!(SYSTEM2.gpu.block_count_sweep(), vec![1, 2, 54, 108, 216]);
        assert_eq!(SYSTEM1.gpu.block_count_sweep(), vec![1, 2, 20, 40, 80]);
    }

    #[test]
    fn gpu_thread_sweep_is_powers_of_two_to_1024() {
        let sweep = SYSTEM3.gpu.thread_count_sweep();
        assert_eq!(sweep.first(), Some(&1));
        assert_eq!(sweep.last(), Some(&1024));
        assert_eq!(sweep.len(), 11);
        for w in sweep.windows(2) {
            assert_eq!(w[1], w[0] * 2);
        }
    }

    #[test]
    fn compute_capabilities() {
        assert_eq!(SYSTEM1.gpu.cc_number(), 75);
        assert_eq!(SYSTEM2.gpu.cc_number(), 80);
        assert_eq!(SYSTEM3.gpu.cc_number(), 89);
    }

    #[test]
    fn max_warps_per_sm() {
        assert_eq!(SYSTEM1.gpu.max_warps_per_sm(), 32);
        assert_eq!(SYSTEM2.gpu.max_warps_per_sm(), 64);
        assert_eq!(SYSTEM3.gpu.max_warps_per_sm(), 48);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn system3_has_more_jitter() {
        assert!(SYSTEM3.cpu_jitter > SYSTEM1.cpu_jitter);
        assert!(SYSTEM3.cpu_jitter > SYSTEM2.cpu_jitter);
    }

    #[test]
    fn display_mentions_both_devices() {
        let s = SYSTEM3.to_string();
        assert!(s.contains("System 3"));
        assert!(s.contains("Threadripper"));
        assert!(s.contains("4090"));
    }
}
