//! Artifact-style results storage.
//!
//! The paper's artifact writes, per test code, a `runtimes.csv` under
//! `./results/<hostname>/<testname>/` (Appendix F). This module
//! reproduces that layout: flat [`RunRecord`]s per parameter point,
//! written to and loaded from per-test CSV files, plus a diff that
//! compares two result sets (e.g. two model revisions, or simulated vs
//! real-thread runs) by throughput ratio.

use std::collections::BTreeMap;
use std::fs;
use std::path::Path;

use crate::dtype::DType;
use crate::error::{Result, SyncPerfError};
use crate::params::Affinity;

/// One measured parameter point of one test.
#[derive(Debug, Clone, PartialEq)]
pub struct RunRecord {
    /// Test code name, artifact style (e.g. `omp_atomicadd_scalar`).
    pub test: String,
    /// Threads per team/block.
    pub threads: u32,
    /// Thread blocks (1 for CPU tests).
    pub blocks: u32,
    /// Array stride in elements (0 when not applicable).
    pub stride: u32,
    /// Data type (`None` for type-less primitives like barriers).
    pub dtype: Option<DType>,
    /// Thread affinity.
    pub affinity: Affinity,
    /// Runtime of one primitive in nanoseconds.
    pub runtime_ns: f64,
    /// Throughput in ops/s/thread.
    pub throughput: f64,
}

impl RunRecord {
    /// The parameter-point key used to match records across stores.
    #[must_use]
    pub fn key(&self) -> String {
        format!(
            "{}/t{}/b{}/s{}/{}/{}",
            self.test,
            self.threads,
            self.blocks,
            self.stride,
            self.dtype.map_or("-", DType::label),
            self.affinity.label()
        )
    }

    fn to_csv_row(&self) -> String {
        format!(
            "{},{},{},{},{},{},{},{}\n",
            self.test,
            self.threads,
            self.blocks,
            self.stride,
            self.dtype.map_or("-", DType::label),
            self.affinity.label(),
            self.runtime_ns,
            self.throughput
        )
    }

    fn parse_csv_row(line: &str) -> Result<RunRecord> {
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != 8 {
            return Err(SyncPerfError::Io(format!(
                "malformed runtimes.csv row: {line}"
            )));
        }
        let dtype = match fields[4] {
            "-" => None,
            "int" => Some(DType::I32),
            "ull" => Some(DType::U64),
            "float" => Some(DType::F32),
            "double" => Some(DType::F64),
            other => return Err(SyncPerfError::Io(format!("unknown dtype `{other}`"))),
        };
        let affinity = match fields[5] {
            "spread" => Affinity::Spread,
            "close" => Affinity::Close,
            "system" => Affinity::SystemChoice,
            other => return Err(SyncPerfError::Io(format!("unknown affinity `{other}`"))),
        };
        let parse_u32 = |s: &str| {
            s.parse::<u32>()
                .map_err(|e| SyncPerfError::Io(format!("bad integer `{s}`: {e}")))
        };
        let parse_f64 = |s: &str| {
            s.parse::<f64>()
                .map_err(|e| SyncPerfError::Io(format!("bad float `{s}`: {e}")))
        };
        Ok(RunRecord {
            test: fields[0].to_string(),
            threads: parse_u32(fields[1])?,
            blocks: parse_u32(fields[2])?,
            stride: parse_u32(fields[3])?,
            dtype,
            affinity,
            runtime_ns: parse_f64(fields[6])?,
            throughput: parse_f64(fields[7])?,
        })
    }
}

/// CSV header of a `runtimes.csv`.
const HEADER: &str = "test,threads,blocks,stride,dtype,affinity,runtime_ns,throughput\n";

/// A set of results for one host (or one simulated system).
#[derive(Debug, Clone, PartialEq)]
pub struct ResultsStore {
    /// Host/system label (the artifact uses the hostname).
    pub host: String,
    records: Vec<RunRecord>,
}

impl ResultsStore {
    /// Creates an empty store for `host`.
    #[must_use]
    pub fn new(host: impl Into<String>) -> Self {
        ResultsStore {
            host: host.into(),
            records: Vec::new(),
        }
    }

    /// Adds one record.
    pub fn push(&mut self, record: RunRecord) {
        self.records.push(record);
    }

    /// All records, in insertion order.
    #[must_use]
    pub fn records(&self) -> &[RunRecord] {
        &self.records
    }

    /// Number of stored records.
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the store is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Distinct test names, sorted.
    #[must_use]
    pub fn tests(&self) -> Vec<&str> {
        let mut t: Vec<&str> = self.records.iter().map(|r| r.test.as_str()).collect();
        t.sort_unstable();
        t.dedup();
        t
    }

    /// Writes `dir/<host>/<test>/runtimes.csv` for each test, matching
    /// the artifact's directory layout (Appendix F).
    ///
    /// # Errors
    ///
    /// Returns an error when directories or files cannot be written.
    pub fn write(&self, dir: impl AsRef<Path>) -> Result<()> {
        let base = dir.as_ref().join(&self.host);
        for test in self.tests() {
            let tdir = base.join(test);
            fs::create_dir_all(&tdir)?;
            let mut csv = String::from(HEADER);
            for r in self.records.iter().filter(|r| r.test == test) {
                csv.push_str(&r.to_csv_row());
            }
            fs::write(tdir.join("runtimes.csv"), csv)?;
        }
        Ok(())
    }

    /// Loads every `runtimes.csv` under `dir/<host>/`.
    ///
    /// # Errors
    ///
    /// Returns an error when the directory is missing or a CSV is
    /// malformed.
    pub fn load(dir: impl AsRef<Path>, host: &str) -> Result<Self> {
        let base = dir.as_ref().join(host);
        let mut store = ResultsStore::new(host);
        let entries = fs::read_dir(&base)
            .map_err(|e| SyncPerfError::Io(format!("{}: {e}", base.display())))?;
        let mut test_dirs: Vec<_> = entries
            .filter_map(std::result::Result::ok)
            .filter(|e| e.path().is_dir())
            .collect();
        test_dirs.sort_by_key(std::fs::DirEntry::file_name);
        for entry in test_dirs {
            let csv_path = entry.path().join("runtimes.csv");
            if !csv_path.exists() {
                continue;
            }
            let content = fs::read_to_string(&csv_path)?;
            for line in content.lines().skip(1) {
                if !line.trim().is_empty() {
                    store.push(RunRecord::parse_csv_row(line)?);
                }
            }
        }
        Ok(store)
    }

    /// Compares this store (baseline) against `other`, matching records
    /// by parameter-point key.
    #[must_use]
    pub fn diff(&self, other: &ResultsStore) -> DiffReport {
        let mine: BTreeMap<String, &RunRecord> =
            self.records.iter().map(|r| (r.key(), r)).collect();
        let mut entries = Vec::new();
        let mut missing = 0usize;
        for r in &other.records {
            match mine.get(&r.key()) {
                Some(base) if base.throughput > 0.0 => entries.push(DiffEntry {
                    key: r.key(),
                    baseline_throughput: base.throughput,
                    other_throughput: r.throughput,
                    ratio: r.throughput / base.throughput,
                }),
                _ => missing += 1,
            }
        }
        let only_in_baseline = self
            .records
            .iter()
            .filter(|r| !other.records.iter().any(|o| o.key() == r.key()))
            .count();
        DiffReport {
            entries,
            missing_in_baseline: missing,
            only_in_baseline,
        }
    }
}

/// One matched parameter point in a diff.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffEntry {
    /// Parameter-point key.
    pub key: String,
    /// Baseline throughput.
    pub baseline_throughput: f64,
    /// Other store's throughput.
    pub other_throughput: f64,
    /// `other / baseline`.
    pub ratio: f64,
}

/// The outcome of comparing two result stores.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffReport {
    /// Matched points.
    pub entries: Vec<DiffEntry>,
    /// Points in `other` with no baseline counterpart.
    pub missing_in_baseline: usize,
    /// Points only the baseline has.
    pub only_in_baseline: usize,
}

impl DiffReport {
    /// Geometric-mean throughput ratio across matched points.
    ///
    /// # Panics
    ///
    /// Panics if there are no matched points.
    #[must_use]
    pub fn geomean_ratio(&self) -> f64 {
        assert!(!self.entries.is_empty(), "no matched points to compare");
        let log_sum: f64 = self.entries.iter().map(|e| e.ratio.ln()).sum();
        (log_sum / self.entries.len() as f64).exp()
    }

    /// The matched points whose ratio deviates from 1.0 by more than
    /// `tolerance` (e.g. 0.10 for ±10%), sorted by deviation.
    #[must_use]
    pub fn outliers(&self, tolerance: f64) -> Vec<&DiffEntry> {
        let mut out: Vec<&DiffEntry> = self
            .entries
            .iter()
            .filter(|e| (e.ratio - 1.0).abs() > tolerance)
            .collect();
        out.sort_by(|a, b| {
            (b.ratio - 1.0)
                .abs()
                .partial_cmp(&(a.ratio - 1.0).abs())
                .expect("finite ratios")
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(test: &str, threads: u32, tp: f64) -> RunRecord {
        RunRecord {
            test: test.into(),
            threads,
            blocks: 1,
            stride: 0,
            dtype: Some(DType::I32),
            affinity: Affinity::Spread,
            runtime_ns: 1e9 / tp,
            throughput: tp,
        }
    }

    #[test]
    fn roundtrip_through_disk() {
        let dir = std::env::temp_dir().join(format!("syncperf_artifact_{}", std::process::id()));
        let mut store = ResultsStore::new("simhost");
        store.push(record("omp_barrier", 2, 3.4e6));
        store.push(record("omp_barrier", 4, 1.7e6));
        store.push(record("omp_atomicadd_scalar", 2, 1.5e7));
        store.write(&dir).unwrap();

        assert!(dir.join("simhost/omp_barrier/runtimes.csv").exists());
        let loaded = ResultsStore::load(&dir, "simhost").unwrap();
        assert_eq!(loaded.len(), 3);
        assert_eq!(loaded.tests(), vec!["omp_atomicadd_scalar", "omp_barrier"]);
        // Same records (order within the file preserved per test).
        for r in store.records() {
            assert!(loaded.records().iter().any(|l| l == r), "{r:?}");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn keys_distinguish_parameters() {
        let a = record("t", 2, 1.0);
        let mut b = record("t", 2, 1.0);
        b.stride = 4;
        assert_ne!(a.key(), b.key());
        let mut c = record("t", 2, 1.0);
        c.dtype = None;
        assert_ne!(a.key(), c.key());
    }

    #[test]
    fn diff_matches_by_key() {
        let mut base = ResultsStore::new("a");
        base.push(record("t", 2, 100.0));
        base.push(record("t", 4, 50.0));
        let mut other = ResultsStore::new("b");
        other.push(record("t", 2, 200.0));
        other.push(record("t", 8, 10.0)); // unmatched

        let diff = base.diff(&other);
        assert_eq!(diff.entries.len(), 1);
        assert_eq!(diff.entries[0].ratio, 2.0);
        assert_eq!(diff.missing_in_baseline, 1);
        assert_eq!(diff.only_in_baseline, 1);
        assert!((diff.geomean_ratio() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn outliers_sorted_by_deviation() {
        let mut base = ResultsStore::new("a");
        let mut other = ResultsStore::new("b");
        for (t, b_tp, o_tp) in [(2u32, 100.0, 105.0), (4, 100.0, 300.0), (8, 100.0, 50.0)] {
            base.push(record("t", t, b_tp));
            other.push(record("t", t, o_tp));
        }
        let diff = base.diff(&other);
        let out = diff.outliers(0.10);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].ratio, 3.0); // biggest deviation first
        assert_eq!(out[1].ratio, 0.5);
    }

    #[test]
    fn malformed_rows_rejected() {
        assert!(RunRecord::parse_csv_row("too,few,fields").is_err());
        assert!(RunRecord::parse_csv_row("t,2,1,0,alien,spread,1.0,1.0").is_err());
        assert!(RunRecord::parse_csv_row("t,2,1,0,int,sideways,1.0,1.0").is_err());
        assert!(RunRecord::parse_csv_row("t,x,1,0,int,spread,1.0,1.0").is_err());
    }

    #[test]
    fn load_missing_host_errors() {
        let err = ResultsStore::load("/nonexistent_syncperf_dir", "ghost").unwrap_err();
        assert!(matches!(err, SyncPerfError::Io(_)));
    }

    #[test]
    fn typeless_and_affinity_roundtrip() {
        let dir = std::env::temp_dir().join(format!("syncperf_artifact2_{}", std::process::id()));
        let mut store = ResultsStore::new("h");
        let mut r = record("cuda_syncwarp", 32, 2e8);
        r.dtype = None;
        r.affinity = Affinity::Close;
        r.blocks = 128;
        store.push(r.clone());
        store.write(&dir).unwrap();
        let loaded = ResultsStore::load(&dir, "h").unwrap();
        assert_eq!(loaded.records()[0], r);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
