//! The paper's measurement procedure (Section IV).
//!
//! For each parameter combination: perform `runs` runs; each run makes
//! up to `max_attempts` attempts to gather a valid measurement, where an
//! attempt executes the baseline and the test function and records the
//! maximum runtime across threads, reattempting whenever the test
//! runtime comes out below the baseline (a faulty measurement caused by
//! system-performance fluctuation). The per-primitive runtime is
//! `median(test) − median(baseline)` divided by `n_iter × N_UNROLL`
//! (× the kernel's extra-op count).
//!
//! Note: the paper says "nine runs" and later "the median runtime of the
//! seven test runs"; we take the run count as authoritative and treat
//! seven as the per-run attempt budget, both configurable here.

use crate::error::Result;
use crate::kernel::Kernel;
use crate::obs::{ArgValue, Recorder, Snapshot};
use crate::params::ExecParams;
use crate::platform::{Executor, TimeUnit};
use crate::stats;

/// Differences whose magnitude (relative to the baseline) falls below
/// this fraction are considered within timer accuracy, as for the
/// paper's atomic-read experiment.
pub const NEGLIGIBLE_FRACTION: f64 = 0.05;

/// Measurement-procedure configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Protocol {
    /// Outer runs per parameter combination (paper: 9).
    pub runs: u32,
    /// Valid-measurement attempts per run (paper: 7).
    pub max_attempts: u32,
}

impl Default for Protocol {
    fn default() -> Self {
        Protocol::PAPER
    }
}

impl Protocol {
    /// The paper's configuration: 9 runs, 7 attempts.
    pub const PAPER: Protocol = Protocol {
        runs: 9,
        max_attempts: 7,
    };

    /// A lighter configuration for the deterministic simulators, where
    /// "many of the GPU tests yield the exact same runtime for all nine
    /// runs" (Section IV) — three runs suffice to get a median.
    pub const SIM: Protocol = Protocol {
        runs: 3,
        max_attempts: 3,
    };

    /// Measures one kernel on one executor at one parameter point.
    ///
    /// # Errors
    ///
    /// Propagates executor errors (unsupported ops, invalid params).
    pub fn measure<E: Executor>(
        &self,
        executor: &mut E,
        kernel: &Kernel<E::Op>,
        params: &ExecParams,
    ) -> Result<Measurement> {
        self.measure_observed(executor, kernel, params, crate::obs::global())
    }

    /// [`Protocol::measure`] with an explicit [`Recorder`]; with a
    /// disabled recorder the only overhead is one branch per event
    /// site. Emits, under category `protocol`: a `measure` span per
    /// call, an `attempt_rejected` instant for every attempt whose
    /// test time came out below the baseline, a `run_exhausted`
    /// instant when a run burns its whole attempt budget, and a
    /// `negligible_verdict` instant when the final difference is
    /// within timer accuracy — plus the matching `protocol.*`
    /// counters.
    ///
    /// # Errors
    ///
    /// Propagates executor errors (unsupported ops, invalid params).
    pub fn measure_observed<E: Executor>(
        &self,
        executor: &mut E,
        kernel: &Kernel<E::Op>,
        params: &ExecParams,
        rec: &Recorder,
    ) -> Result<Measurement> {
        params.validate()?;
        let mut span = rec.span("protocol", format!("measure {}", kernel.name));
        span.push_arg("kernel", kernel.name.clone());
        span.push_arg("threads", u64::from(params.threads));
        let c_attempts = rec.counter("protocol.attempts");
        let c_rejected = rec.counter("protocol.attempts_rejected");

        let mut baseline_runs = Vec::with_capacity(self.runs as usize);
        let mut test_runs = Vec::with_capacity(self.runs as usize);
        let mut retries = 0u32;
        let mut exhausted_runs = 0u32;

        for run in 0..self.runs {
            let mut chosen: Option<(f64, f64)> = None;
            for attempt in 0..self.max_attempts {
                let base = executor.execute(&kernel.baseline, params)?.max();
                let test = executor.execute(&kernel.test, params)?.max();
                c_attempts.inc();
                if test >= base {
                    chosen = Some((base, test));
                    break;
                }
                retries += 1;
                c_rejected.inc();
                rec.instant_args(
                    "protocol",
                    "attempt_rejected",
                    vec![
                        ("run", ArgValue::U64(u64::from(run))),
                        ("attempt", ArgValue::U64(u64::from(attempt))),
                        ("baseline", ArgValue::F64(base)),
                        ("test", ArgValue::F64(test)),
                    ],
                );
                if attempt + 1 == self.max_attempts {
                    // Keep the final attempt rather than dropping the
                    // run; flag it so callers can judge stability.
                    chosen = Some((base, test));
                    exhausted_runs += 1;
                    rec.counter("protocol.runs_exhausted").inc();
                    rec.instant_args(
                        "protocol",
                        "run_exhausted",
                        vec![("run", ArgValue::U64(u64::from(run)))],
                    );
                }
            }
            let (base, test) = chosen.expect("at least one attempt ran");
            baseline_runs.push(base);
            test_runs.push(test);
        }
        rec.counter("protocol.runs").add(u64::from(self.runs));

        let median_baseline = stats::median(&baseline_runs);
        let median_test = stats::median(&test_runs);
        let reps = params.timed_reps() as f64 * f64::from(kernel.extra_ops);
        let per_op = (median_test - median_baseline) / reps;

        let m = Measurement {
            kernel_name: kernel.name.clone(),
            params: *params,
            time_unit: executor.time_unit(),
            baseline_runs,
            test_runs,
            median_baseline,
            median_test,
            per_op,
            retries,
            exhausted_runs,
        };
        if m.is_negligible() {
            rec.counter("protocol.negligible_verdicts").inc();
            rec.instant_args(
                "protocol",
                "negligible_verdict",
                vec![
                    ("kernel", ArgValue::from(kernel.name.clone())),
                    ("per_op", ArgValue::F64(per_op)),
                ],
            );
        }
        span.push_arg("per_op", per_op);
        span.push_arg("retries", u64::from(retries));
        Ok(m)
    }
}

/// Aggregate retry/rejection statistics recovered from a recorder's
/// counter [`Snapshot`] — the protocol-health summary the tracing
/// layer surfaces in `trace_report` and the ASCII summary table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetrySummary {
    /// Total baseline+test attempt pairs executed.
    pub attempts: u64,
    /// Attempts rejected because test < baseline.
    pub rejected: u64,
    /// Total protocol runs performed.
    pub runs: u64,
    /// Runs that exhausted their attempt budget.
    pub exhausted_runs: u64,
    /// Measurements judged within timer accuracy.
    pub negligible_verdicts: u64,
}

impl RetrySummary {
    /// Extracts the `protocol.*` counters from a snapshot.
    #[must_use]
    pub fn from_snapshot(snap: &Snapshot) -> Self {
        RetrySummary {
            attempts: snap.counter("protocol.attempts"),
            rejected: snap.counter("protocol.attempts_rejected"),
            runs: snap.counter("protocol.runs"),
            exhausted_runs: snap.counter("protocol.runs_exhausted"),
            negligible_verdicts: snap.counter("protocol.negligible_verdicts"),
        }
    }

    /// Fraction of attempts rejected for test < baseline (0 when no
    /// attempts were recorded).
    #[must_use]
    pub fn rejection_rate(&self) -> f64 {
        if self.attempts == 0 {
            0.0
        } else {
            self.rejected as f64 / self.attempts as f64
        }
    }
}

/// The outcome of measuring one primitive at one parameter point.
#[derive(Debug, Clone, PartialEq)]
pub struct Measurement {
    /// Name of the measured kernel.
    pub kernel_name: String,
    /// The parameters this point was measured at.
    pub params: ExecParams,
    /// Unit of all stored times.
    pub time_unit: TimeUnit,
    /// Max-across-threads baseline time of each run.
    pub baseline_runs: Vec<f64>,
    /// Max-across-threads test time of each run.
    pub test_runs: Vec<f64>,
    /// Median of `baseline_runs`.
    pub median_baseline: f64,
    /// Median of `test_runs`.
    pub median_test: f64,
    /// Runtime of a single primitive, in `time_unit` units
    /// (may be ≈ 0 or slightly negative for free primitives).
    pub per_op: f64,
    /// Total reattempts caused by test < baseline.
    pub retries: u32,
    /// Runs whose attempt budget was exhausted.
    pub exhausted_runs: u32,
}

impl Measurement {
    /// Runtime of a single primitive in seconds.
    #[must_use]
    pub fn runtime_seconds(&self) -> f64 {
        self.time_unit.to_seconds(self.per_op)
    }

    /// Throughput in operations per second per thread (`1 / runtime`,
    /// Section IV), or `None` when the runtime is negligible — in that
    /// case the primitive is effectively free (e.g. atomic read).
    #[must_use]
    pub fn throughput(&self) -> Option<f64> {
        if self.is_negligible() {
            None
        } else {
            Some(1.0 / self.runtime_seconds())
        }
    }

    /// Throughput, treating a negligible runtime as the timer floor —
    /// convenient for plotting (never returns infinities).
    #[must_use]
    pub fn throughput_clamped(&self, floor_seconds: f64) -> f64 {
        1.0 / self.runtime_seconds().max(floor_seconds)
    }

    /// Whether the measured difference is within measurement accuracy —
    /// the paper's criterion for declaring atomic reads free ("within
    /// the timer's accuracy"). A difference counts as negligible when
    /// it is below [`NEGLIGIBLE_FRACTION`] of the baseline per-op cost
    /// *or* below three run-to-run standard deviations of the
    /// difference itself (the retry rule biases a truly-zero difference
    /// positive by about the noise amplitude, so the noise term is the
    /// honest yardstick).
    #[must_use]
    pub fn is_negligible(&self) -> bool {
        let reps = self.params.timed_reps() as f64;
        let baseline_per_op = self.median_baseline / reps;
        self.per_op <= NEGLIGIBLE_FRACTION * baseline_per_op.abs().max(f64::MIN_POSITIVE)
            || self.per_op <= 3.0 * self.run_stddev()
    }

    /// Standard deviation of the per-primitive runtime across runs, in
    /// `time_unit` units (the paper reports ≈ 7.8 ns on System 3's CPU).
    #[must_use]
    pub fn run_stddev(&self) -> f64 {
        let reps = self.params.timed_reps() as f64;
        let diffs: Vec<f64> = self
            .test_runs
            .iter()
            .zip(&self.baseline_runs)
            .map(|(t, b)| (t - b) / reps)
            .collect();
        stats::stddev(&diffs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::Result as SpResult;
    use crate::kernel::CpuOp;
    use crate::platform::ThreadTimes;

    /// A deterministic fake executor: every op costs `op_cost` units and
    /// each execution adds `noise` units that alternate in sign.
    struct FakeExec {
        op_cost: f64,
        noise: f64,
        calls: u32,
    }

    impl Executor for FakeExec {
        type Op = CpuOp;

        fn name(&self) -> &str {
            "fake"
        }

        fn time_unit(&self) -> TimeUnit {
            TimeUnit::Seconds
        }

        fn execute(&mut self, body: &[CpuOp], params: &ExecParams) -> SpResult<ThreadTimes> {
            self.calls += 1;
            let reps = params.timed_reps() as f64;
            let jitter = if self.calls.is_multiple_of(2) {
                self.noise
            } else {
                -self.noise
            };
            let t = body.len() as f64 * self.op_cost * reps + jitter;
            Ok(ThreadTimes::uniform(t, params.threads as usize))
        }
    }

    fn barrier_kernel() -> Kernel<CpuOp> {
        crate::kernel::omp_barrier()
    }

    #[test]
    fn measures_exact_cost_without_noise() {
        let mut exec = FakeExec {
            op_cost: 1e-8,
            noise: 0.0,
            calls: 0,
        };
        let params = ExecParams::new(4).with_loops(10, 10);
        let m = Protocol::SIM
            .measure(&mut exec, &barrier_kernel(), &params)
            .unwrap();
        assert!((m.per_op - 1e-8).abs() < 1e-15);
        let tp = m.throughput().expect("non-negligible");
        assert!((tp - 1e8).abs() / 1e8 < 1e-6);
        assert_eq!(m.retries, 0);
        assert_eq!(m.exhausted_runs, 0);
    }

    #[test]
    fn retries_when_test_below_baseline() {
        // Noise large enough that odd-numbered calls (baseline) can beat
        // even-numbered (test); alternation guarantees eventual success.
        let mut exec = FakeExec {
            op_cost: 1e-8,
            noise: 5e-7,
            calls: 0,
        };
        let params = ExecParams::new(2).with_loops(10, 10);
        let m = Protocol::PAPER
            .measure(&mut exec, &barrier_kernel(), &params)
            .unwrap();
        // The sequence baseline(-), test(+) always succeeds first try
        // here because baseline gets -noise and test gets +noise.
        assert_eq!(m.retries, 0);
        assert!(m.per_op > 0.0);
    }

    #[test]
    fn negligible_difference_reports_none() {
        // Baseline of 2 ops vs test of 3 ops where the extra op is free:
        // emulate with op_cost so small the difference is < 2% of
        // baseline per-op cost. Construct directly.
        let m = Measurement {
            kernel_name: "x".into(),
            params: ExecParams::new(2).with_loops(10, 10),
            time_unit: TimeUnit::Seconds,
            baseline_runs: vec![1.0; 3],
            test_runs: vec![1.000_000_1; 3],
            median_baseline: 1.0,
            median_test: 1.000_000_1,
            per_op: 0.000_000_1 / 100.0,
            retries: 0,
            exhausted_runs: 0,
        };
        assert!(m.is_negligible());
        assert!(m.throughput().is_none());
        assert!(m.throughput_clamped(1e-10) > 0.0);
    }

    #[test]
    fn stddev_zero_for_deterministic_runs() {
        let mut exec = FakeExec {
            op_cost: 2e-9,
            noise: 0.0,
            calls: 0,
        };
        let params = ExecParams::new(2).with_loops(10, 10);
        let m = Protocol::SIM
            .measure(&mut exec, &barrier_kernel(), &params)
            .unwrap();
        assert_eq!(m.run_stddev(), 0.0);
    }

    #[test]
    fn extra_ops_divides_difference() {
        #[derive(Clone)]
        struct TwoExtra;
        let k = Kernel::new(
            "two_extra",
            vec![CpuOp::Barrier],
            vec![CpuOp::Barrier, CpuOp::Barrier, CpuOp::Barrier],
            2,
        );
        let mut exec = FakeExec {
            op_cost: 1e-8,
            noise: 0.0,
            calls: 0,
        };
        let params = ExecParams::new(2).with_loops(10, 10);
        let m = Protocol::SIM.measure(&mut exec, &k, &params).unwrap();
        // two extra ops at 1e-8 each, divided by extra_ops=2 → 1e-8
        assert!((m.per_op - 1e-8).abs() < 1e-15);
        let _ = TwoExtra; // silence unused struct in some configs
    }

    #[test]
    fn rejects_invalid_params() {
        let mut exec = FakeExec {
            op_cost: 1e-8,
            noise: 0.0,
            calls: 0,
        };
        let params = ExecParams::new(0);
        assert!(Protocol::SIM
            .measure(&mut exec, &barrier_kernel(), &params)
            .is_err());
    }

    /// An executor that injects below-baseline test attempts: the first
    /// `bad_per_run` test executions of every run undershoot the
    /// baseline (forcing rejections), after which the test runs at
    /// twice the baseline. Baselines are always exactly `base`.
    struct UndershootExec {
        bad_per_run: u32,
        base: f64,
        rejected_so_far: u32,
        next_is_baseline: bool,
        calls: u32,
    }

    impl UndershootExec {
        fn new(bad_per_run: u32) -> Self {
            UndershootExec {
                bad_per_run,
                base: 1.0,
                rejected_so_far: 0,
                next_is_baseline: true,
                calls: 0,
            }
        }
    }

    impl Executor for UndershootExec {
        type Op = CpuOp;

        fn name(&self) -> &str {
            "undershoot"
        }

        fn time_unit(&self) -> TimeUnit {
            TimeUnit::Seconds
        }

        fn execute(&mut self, _body: &[CpuOp], params: &ExecParams) -> SpResult<ThreadTimes> {
            self.calls += 1;
            // The protocol strictly alternates baseline, test.
            let is_baseline = self.next_is_baseline;
            self.next_is_baseline = !is_baseline;
            let t = if is_baseline {
                self.base
            } else if self.rejected_so_far < self.bad_per_run {
                self.rejected_so_far += 1;
                self.base / 2.0
            } else {
                self.rejected_so_far = 0; // good attempt ends the run
                self.base * 2.0
            };
            Ok(ThreadTimes::uniform(t, params.threads as usize))
        }
    }

    #[test]
    fn injected_rejections_hit_counters_and_keep_median_math_clean() {
        let rec = Recorder::enabled();
        let mut exec = UndershootExec::new(2);
        let params = ExecParams::new(2).with_loops(10, 10);
        let m = Protocol::PAPER
            .measure_observed(&mut exec, &barrier_kernel(), &params, &rec)
            .unwrap();

        // 9 runs × (2 rejected + 1 accepted) attempts.
        assert_eq!(m.retries, 18);
        assert_eq!(m.exhausted_runs, 0);
        let snap = rec.snapshot();
        let s = RetrySummary::from_snapshot(&snap);
        assert_eq!(s.attempts, 27);
        assert_eq!(s.rejected, 18);
        assert_eq!(s.runs, 9);
        assert_eq!(s.exhausted_runs, 0);
        assert!((s.rejection_rate() - 18.0 / 27.0).abs() < 1e-12);
        // Each attempt is one baseline + one test execution.
        assert_eq!(exec.calls, 2 * 27);

        // Median math sees only the accepted attempts: baseline 1.0,
        // test 2.0 for every run, so per_op = 1.0 / (reps × extra_ops).
        assert_eq!(m.median_baseline, 1.0);
        assert_eq!(m.median_test, 2.0);
        let reps = params.timed_reps() as f64 * f64::from(barrier_kernel().extra_ops);
        assert!((m.per_op - 1.0 / reps).abs() < 1e-15);

        // Every rejection produced an instant event with its payload.
        let events = rec.drain_events();
        let rejected: Vec<_> = events
            .iter()
            .filter(|e| e.name == "attempt_rejected")
            .collect();
        assert_eq!(rejected.len(), 18);
        assert!(rejected.iter().all(|e| {
            e.cat == "protocol"
                && e.args
                    .iter()
                    .any(|(k, v)| *k == "baseline" && *v == ArgValue::F64(1.0))
                && e.args
                    .iter()
                    .any(|(k, v)| *k == "test" && *v == ArgValue::F64(0.5))
        }));
    }

    #[test]
    fn attempt_budget_is_honored_when_every_attempt_fails() {
        let rec = Recorder::enabled();
        let mut exec = UndershootExec::new(u32::MAX); // never succeeds
        let params = ExecParams::new(2).with_loops(10, 10);
        let m = Protocol::PAPER
            .measure_observed(&mut exec, &barrier_kernel(), &params, &rec)
            .unwrap();

        // Every run burns exactly max_attempts attempts, then keeps the
        // final (still-faulty) attempt rather than aborting.
        let s = RetrySummary::from_snapshot(&rec.snapshot());
        assert_eq!(s.attempts, 9 * 7);
        assert_eq!(s.rejected, 9 * 7);
        assert_eq!(s.exhausted_runs, 9);
        assert_eq!(exec.calls, 2 * 9 * 7);
        assert_eq!(m.exhausted_runs, 9);
        assert!(m.per_op < 0.0, "kept attempts are below baseline");
        let events = rec.drain_events();
        assert_eq!(
            events.iter().filter(|e| e.name == "run_exhausted").count(),
            9
        );
    }

    #[test]
    fn negligible_verdict_is_counted() {
        let rec = Recorder::enabled();
        let mut exec = FakeExec {
            op_cost: 0.0,
            noise: 0.0,
            calls: 0,
        };
        let params = ExecParams::new(2).with_loops(10, 10);
        let m = Protocol::SIM
            .measure_observed(&mut exec, &barrier_kernel(), &params, &rec)
            .unwrap();
        assert!(m.is_negligible());
        assert_eq!(rec.snapshot().counter("protocol.negligible_verdicts"), 1);
        assert!(rec
            .drain_events()
            .iter()
            .any(|e| e.name == "negligible_verdict"));
    }

    #[test]
    fn disabled_recorder_changes_nothing() {
        let params = ExecParams::new(2).with_loops(10, 10);
        let mut a = UndershootExec::new(2);
        let with = Protocol::PAPER
            .measure_observed(&mut a, &barrier_kernel(), &params, &Recorder::enabled())
            .unwrap();
        let mut b = UndershootExec::new(2);
        let without = Protocol::PAPER
            .measure_observed(&mut b, &barrier_kernel(), &params, &Recorder::disabled())
            .unwrap();
        assert_eq!(with, without);
    }
}
