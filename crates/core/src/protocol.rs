//! The paper's measurement procedure (Section IV).
//!
//! For each parameter combination: perform `runs` runs; each run makes
//! up to `max_attempts` attempts to gather a valid measurement, where an
//! attempt executes the baseline and the test function and records the
//! maximum runtime across threads, reattempting whenever the test
//! runtime comes out below the baseline (a faulty measurement caused by
//! system-performance fluctuation). The per-primitive runtime is
//! `median(test) − median(baseline)` divided by `n_iter × N_UNROLL`
//! (× the kernel's extra-op count).
//!
//! Note: the paper says "nine runs" and later "the median runtime of the
//! seven test runs"; we take the run count as authoritative and treat
//! seven as the per-run attempt budget, both configurable here.

use crate::error::Result;
use crate::kernel::Kernel;
use crate::params::ExecParams;
use crate::platform::{Executor, TimeUnit};
use crate::stats;

/// Differences whose magnitude (relative to the baseline) falls below
/// this fraction are considered within timer accuracy, as for the
/// paper's atomic-read experiment.
pub const NEGLIGIBLE_FRACTION: f64 = 0.05;

/// Measurement-procedure configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Protocol {
    /// Outer runs per parameter combination (paper: 9).
    pub runs: u32,
    /// Valid-measurement attempts per run (paper: 7).
    pub max_attempts: u32,
}

impl Default for Protocol {
    fn default() -> Self {
        Protocol::PAPER
    }
}

impl Protocol {
    /// The paper's configuration: 9 runs, 7 attempts.
    pub const PAPER: Protocol = Protocol { runs: 9, max_attempts: 7 };

    /// A lighter configuration for the deterministic simulators, where
    /// "many of the GPU tests yield the exact same runtime for all nine
    /// runs" (Section IV) — three runs suffice to get a median.
    pub const SIM: Protocol = Protocol { runs: 3, max_attempts: 3 };

    /// Measures one kernel on one executor at one parameter point.
    ///
    /// # Errors
    ///
    /// Propagates executor errors (unsupported ops, invalid params).
    pub fn measure<E: Executor>(
        &self,
        executor: &mut E,
        kernel: &Kernel<E::Op>,
        params: &ExecParams,
    ) -> Result<Measurement> {
        params.validate()?;
        let mut baseline_runs = Vec::with_capacity(self.runs as usize);
        let mut test_runs = Vec::with_capacity(self.runs as usize);
        let mut retries = 0u32;
        let mut exhausted_runs = 0u32;

        for _ in 0..self.runs {
            let mut chosen: Option<(f64, f64)> = None;
            for attempt in 0..self.max_attempts {
                let base = executor.execute(&kernel.baseline, params)?.max();
                let test = executor.execute(&kernel.test, params)?.max();
                if test >= base {
                    chosen = Some((base, test));
                    break;
                }
                retries += 1;
                if attempt + 1 == self.max_attempts {
                    // Keep the final attempt rather than dropping the
                    // run; flag it so callers can judge stability.
                    chosen = Some((base, test));
                    exhausted_runs += 1;
                }
            }
            let (base, test) = chosen.expect("at least one attempt ran");
            baseline_runs.push(base);
            test_runs.push(test);
        }

        let median_baseline = stats::median(&baseline_runs);
        let median_test = stats::median(&test_runs);
        let reps = params.timed_reps() as f64 * f64::from(kernel.extra_ops);
        let per_op = (median_test - median_baseline) / reps;

        Ok(Measurement {
            kernel_name: kernel.name.clone(),
            params: *params,
            time_unit: executor.time_unit(),
            baseline_runs,
            test_runs,
            median_baseline,
            median_test,
            per_op,
            retries,
            exhausted_runs,
        })
    }
}

/// The outcome of measuring one primitive at one parameter point.
#[derive(Debug, Clone, PartialEq)]
pub struct Measurement {
    /// Name of the measured kernel.
    pub kernel_name: String,
    /// The parameters this point was measured at.
    pub params: ExecParams,
    /// Unit of all stored times.
    pub time_unit: TimeUnit,
    /// Max-across-threads baseline time of each run.
    pub baseline_runs: Vec<f64>,
    /// Max-across-threads test time of each run.
    pub test_runs: Vec<f64>,
    /// Median of `baseline_runs`.
    pub median_baseline: f64,
    /// Median of `test_runs`.
    pub median_test: f64,
    /// Runtime of a single primitive, in `time_unit` units
    /// (may be ≈ 0 or slightly negative for free primitives).
    pub per_op: f64,
    /// Total reattempts caused by test < baseline.
    pub retries: u32,
    /// Runs whose attempt budget was exhausted.
    pub exhausted_runs: u32,
}

impl Measurement {
    /// Runtime of a single primitive in seconds.
    #[must_use]
    pub fn runtime_seconds(&self) -> f64 {
        self.time_unit.to_seconds(self.per_op)
    }

    /// Throughput in operations per second per thread (`1 / runtime`,
    /// Section IV), or `None` when the runtime is negligible — in that
    /// case the primitive is effectively free (e.g. atomic read).
    #[must_use]
    pub fn throughput(&self) -> Option<f64> {
        if self.is_negligible() {
            None
        } else {
            Some(1.0 / self.runtime_seconds())
        }
    }

    /// Throughput, treating a negligible runtime as the timer floor —
    /// convenient for plotting (never returns infinities).
    #[must_use]
    pub fn throughput_clamped(&self, floor_seconds: f64) -> f64 {
        1.0 / self.runtime_seconds().max(floor_seconds)
    }

    /// Whether the measured difference is within measurement accuracy —
    /// the paper's criterion for declaring atomic reads free ("within
    /// the timer's accuracy"). A difference counts as negligible when
    /// it is below [`NEGLIGIBLE_FRACTION`] of the baseline per-op cost
    /// *or* below three run-to-run standard deviations of the
    /// difference itself (the retry rule biases a truly-zero difference
    /// positive by about the noise amplitude, so the noise term is the
    /// honest yardstick).
    #[must_use]
    pub fn is_negligible(&self) -> bool {
        let reps = self.params.timed_reps() as f64;
        let baseline_per_op = self.median_baseline / reps;
        self.per_op <= NEGLIGIBLE_FRACTION * baseline_per_op.abs().max(f64::MIN_POSITIVE)
            || self.per_op <= 3.0 * self.run_stddev()
    }

    /// Standard deviation of the per-primitive runtime across runs, in
    /// `time_unit` units (the paper reports ≈ 7.8 ns on System 3's CPU).
    #[must_use]
    pub fn run_stddev(&self) -> f64 {
        let reps = self.params.timed_reps() as f64;
        let diffs: Vec<f64> = self
            .test_runs
            .iter()
            .zip(&self.baseline_runs)
            .map(|(t, b)| (t - b) / reps)
            .collect();
        stats::stddev(&diffs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::Result as SpResult;
    use crate::kernel::CpuOp;
    use crate::platform::ThreadTimes;

    /// A deterministic fake executor: every op costs `op_cost` units and
    /// each execution adds `noise` units that alternate in sign.
    struct FakeExec {
        op_cost: f64,
        noise: f64,
        calls: u32,
    }

    impl Executor for FakeExec {
        type Op = CpuOp;

        fn name(&self) -> &str {
            "fake"
        }

        fn time_unit(&self) -> TimeUnit {
            TimeUnit::Seconds
        }

        fn execute(&mut self, body: &[CpuOp], params: &ExecParams) -> SpResult<ThreadTimes> {
            self.calls += 1;
            let reps = params.timed_reps() as f64;
            let jitter = if self.calls.is_multiple_of(2) { self.noise } else { -self.noise };
            let t = body.len() as f64 * self.op_cost * reps + jitter;
            Ok(ThreadTimes { per_thread: vec![t; params.threads as usize] })
        }
    }

    fn barrier_kernel() -> Kernel<CpuOp> {
        crate::kernel::omp_barrier()
    }

    #[test]
    fn measures_exact_cost_without_noise() {
        let mut exec = FakeExec { op_cost: 1e-8, noise: 0.0, calls: 0 };
        let params = ExecParams::new(4).with_loops(10, 10);
        let m = Protocol::SIM.measure(&mut exec, &barrier_kernel(), &params).unwrap();
        assert!((m.per_op - 1e-8).abs() < 1e-15);
        let tp = m.throughput().expect("non-negligible");
        assert!((tp - 1e8).abs() / 1e8 < 1e-6);
        assert_eq!(m.retries, 0);
        assert_eq!(m.exhausted_runs, 0);
    }

    #[test]
    fn retries_when_test_below_baseline() {
        // Noise large enough that odd-numbered calls (baseline) can beat
        // even-numbered (test); alternation guarantees eventual success.
        let mut exec = FakeExec { op_cost: 1e-8, noise: 5e-7, calls: 0 };
        let params = ExecParams::new(2).with_loops(10, 10);
        let m = Protocol::PAPER.measure(&mut exec, &barrier_kernel(), &params).unwrap();
        // The sequence baseline(-), test(+) always succeeds first try
        // here because baseline gets -noise and test gets +noise.
        assert_eq!(m.retries, 0);
        assert!(m.per_op > 0.0);
    }

    #[test]
    fn negligible_difference_reports_none() {
        // Baseline of 2 ops vs test of 3 ops where the extra op is free:
        // emulate with op_cost so small the difference is < 2% of
        // baseline per-op cost. Construct directly.
        let m = Measurement {
            kernel_name: "x".into(),
            params: ExecParams::new(2).with_loops(10, 10),
            time_unit: TimeUnit::Seconds,
            baseline_runs: vec![1.0; 3],
            test_runs: vec![1.000_000_1; 3],
            median_baseline: 1.0,
            median_test: 1.000_000_1,
            per_op: 0.000_000_1 / 100.0,
            retries: 0,
            exhausted_runs: 0,
        };
        assert!(m.is_negligible());
        assert!(m.throughput().is_none());
        assert!(m.throughput_clamped(1e-10) > 0.0);
    }

    #[test]
    fn stddev_zero_for_deterministic_runs() {
        let mut exec = FakeExec { op_cost: 2e-9, noise: 0.0, calls: 0 };
        let params = ExecParams::new(2).with_loops(10, 10);
        let m = Protocol::SIM.measure(&mut exec, &barrier_kernel(), &params).unwrap();
        assert_eq!(m.run_stddev(), 0.0);
    }

    #[test]
    fn extra_ops_divides_difference() {
        #[derive(Clone)]
        struct TwoExtra;
        let k = Kernel::new(
            "two_extra",
            vec![CpuOp::Barrier],
            vec![CpuOp::Barrier, CpuOp::Barrier, CpuOp::Barrier],
            2,
        );
        let mut exec = FakeExec { op_cost: 1e-8, noise: 0.0, calls: 0 };
        let params = ExecParams::new(2).with_loops(10, 10);
        let m = Protocol::SIM.measure(&mut exec, &k, &params).unwrap();
        // two extra ops at 1e-8 each, divided by extra_ops=2 → 1e-8
        assert!((m.per_op - 1e-8).abs() < 1e-15);
        let _ = TwoExtra; // silence unused struct in some configs
    }

    #[test]
    fn rejects_invalid_params() {
        let mut exec = FakeExec { op_cost: 1e-8, noise: 0.0, calls: 0 };
        let params = ExecParams::new(0);
        assert!(Protocol::SIM.measure(&mut exec, &barrier_kernel(), &params).is_err());
    }
}
