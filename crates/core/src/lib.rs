//! # syncperf-core
//!
//! The differential measurement framework from *"Characterizing CUDA and
//! OpenMP Synchronization Primitives"* (Burtchell & Burtscher, IISWC
//! 2024).
//!
//! The framework times a *baseline* loop body and a *test* loop body
//! that differ by exactly one occurrence of the measured
//! synchronization primitive; the median-of-runs difference, divided by
//! the loop trip count, is the cost of a single primitive
//! (see [`Protocol`]). Loop bodies are small op sequences ([`CpuOp`],
//! [`GpuOp`]) interpreted by pluggable [`Executor`]s: the real-thread
//! OpenMP-like runtime (`syncperf-omp`), the multicore CPU simulator
//! (`syncperf-cpu-sim`), and the SIMT GPU simulator
//! (`syncperf-gpu-sim`).
//!
//! ## Example
//!
//! Measuring a primitive needs an executor; here a trivial one that
//! charges a fixed cost per op:
//!
//! ```
//! use syncperf_core::{
//!     kernel, ExecParams, Executor, Protocol, Result, ThreadTimes, TimeUnit,
//! };
//!
//! struct FixedCost;
//!
//! impl Executor for FixedCost {
//!     type Op = syncperf_core::CpuOp;
//!     fn name(&self) -> &str { "fixed" }
//!     fn time_unit(&self) -> TimeUnit { TimeUnit::Seconds }
//!     fn execute(&mut self, body: &[Self::Op], p: &ExecParams) -> Result<ThreadTimes> {
//!         let t = body.len() as f64 * 20e-9 * p.timed_reps() as f64;
//!         Ok(ThreadTimes::uniform(t, p.threads as usize))
//!     }
//! }
//!
//! # fn main() -> Result<()> {
//! let m = Protocol::SIM.measure(
//!     &mut FixedCost,
//!     &kernel::omp_barrier(),
//!     &ExecParams::new(4).with_loops(100, 10),
//! )?;
//! assert!((m.per_op - 20e-9).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub use syncperf_obs as obs;

pub mod artifact;
pub mod dtype;
pub mod error;
pub mod kernel;
pub mod params;
pub mod platform;
pub mod protocol;
pub mod recommend;
pub mod report;
pub mod rng;
pub mod stats;
pub mod svg;
pub mod sweep;
pub mod sysfile;
pub mod system;

pub use artifact::{DiffReport, ResultsStore, RunRecord};
pub use dtype::DType;
pub use error::{Result, SyncPerfError};
pub use kernel::{
    CpuKernel, CpuOp, GpuKernel, GpuOp, Kernel, RmwOp, Scope, ShflVariant, Target, VoteKind,
};
pub use params::{Affinity, ExecParams};
pub use platform::{Executor, ThreadTimes, TimeUnit};
pub use protocol::{Measurement, Protocol};
pub use report::{FigureData, Series};
pub use system::{all_systems, CpuSpec, GpuSpec, SystemSpec, SYSTEM1, SYSTEM2, SYSTEM3};
