//! Small statistics helpers used by the measurement protocol.
//!
//! The paper reports the median of seven runs per function, the maximum
//! runtime across threads per run, and (in Section IV) a standard
//! deviation across the nine outer runs.

/// Returns the median of `values`.
///
/// For an even number of samples the mean of the two central values is
/// returned, matching the conventional definition.
///
/// # Panics
///
/// Panics if `values` is empty.
///
/// # Examples
///
/// ```
/// use syncperf_core::stats::median;
///
/// assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
/// assert_eq!(median(&[4.0, 1.0, 3.0, 2.0]), 2.5);
/// ```
#[must_use]
pub fn median(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "median of empty slice");
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in samples"));
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        f64::midpoint(sorted[n / 2 - 1], sorted[n / 2])
    }
}

/// Returns the arithmetic mean of `values`.
///
/// # Panics
///
/// Panics if `values` is empty.
#[must_use]
pub fn mean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "mean of empty slice");
    values.iter().sum::<f64>() / values.len() as f64
}

/// Returns the population standard deviation of `values`.
///
/// # Panics
///
/// Panics if `values` is empty.
#[must_use]
pub fn stddev(values: &[f64]) -> f64 {
    let m = mean(values);
    let var = values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / values.len() as f64;
    var.sqrt()
}

/// Returns the maximum of `values`.
///
/// Used per attempt: the paper records "the maximum runtime across the
/// running threads" (Section IV).
///
/// # Panics
///
/// Panics if `values` is empty or contains NaN.
#[must_use]
pub fn max(values: &[f64]) -> f64 {
    values
        .iter()
        .copied()
        .max_by(|a, b| a.partial_cmp(b).expect("NaN in samples"))
        .expect("max of empty slice")
}

/// Returns the minimum of `values`.
///
/// # Panics
///
/// Panics if `values` is empty or contains NaN.
#[must_use]
pub fn min(values: &[f64]) -> f64 {
    values
        .iter()
        .copied()
        .min_by(|a, b| a.partial_cmp(b).expect("NaN in samples"))
        .expect("min of empty slice")
}

/// Returns the `p`-th percentile (0.0 ..= 100.0) using linear
/// interpolation between closest ranks.
///
/// # Panics
///
/// Panics if `values` is empty or `p` is outside `[0, 100]`.
#[must_use]
pub fn percentile(values: &[f64], p: f64) -> f64 {
    assert!(!values.is_empty(), "percentile of empty slice");
    assert!((0.0..=100.0).contains(&p), "percentile out of range");
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in samples"));
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// Relative spread `(max - min) / median`, a jitter indicator used when
/// classifying noisy series (e.g. System 3's AMD results in Fig. 4a).
///
/// # Panics
///
/// Panics if `values` is empty or the median is zero.
#[must_use]
pub fn relative_spread(values: &[f64]) -> f64 {
    let med = median(values);
    assert!(med != 0.0, "relative spread undefined for zero median");
    (max(values) - min(values)) / med
}

/// A deterministic bootstrap confidence interval for the median of
/// `values`: resamples with replacement `resamples` times using a
/// seeded xorshift generator and returns the `(lo, hi)` percentile
/// bounds at the given `confidence` (e.g. 0.95).
///
/// Used by reports to state how trustworthy a median-of-9-runs value is
/// under the simulators' jitter models.
///
/// # Panics
///
/// Panics if `values` is empty, `resamples` is zero, or `confidence`
/// is outside `(0, 1)`.
#[must_use]
pub fn bootstrap_median_ci(
    values: &[f64],
    confidence: f64,
    resamples: u32,
    seed: u64,
) -> (f64, f64) {
    assert!(!values.is_empty(), "bootstrap of empty slice");
    assert!(resamples > 0, "need at least one resample");
    assert!(
        confidence > 0.0 && confidence < 1.0,
        "confidence must be in (0, 1)"
    );

    let mut state = seed | 1;
    let mut next = move || {
        // xorshift64*
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state.wrapping_mul(0x2545_F491_4F6C_DD1D)
    };

    let mut medians = Vec::with_capacity(resamples as usize);
    let mut sample = vec![0.0; values.len()];
    for _ in 0..resamples {
        for slot in &mut sample {
            *slot = values[(next() % values.len() as u64) as usize];
        }
        medians.push(median(&sample));
    }
    let alpha = (1.0 - confidence) / 2.0;
    (
        percentile(&medians, alpha * 100.0),
        percentile(&medians, (1.0 - alpha) * 100.0),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bootstrap_contains_median_and_is_deterministic() {
        let v = [10.0, 11.0, 9.5, 10.2, 10.8, 9.9, 10.1, 10.4, 9.7];
        let (lo, hi) = bootstrap_median_ci(&v, 0.95, 500, 42);
        let m = median(&v);
        assert!(lo <= m && m <= hi, "median {m} outside [{lo}, {hi}]");
        assert!(lo >= min(&v) && hi <= max(&v));
        assert_eq!(
            (lo, hi),
            bootstrap_median_ci(&v, 0.95, 500, 42),
            "seeded determinism"
        );
    }

    #[test]
    fn bootstrap_tightens_with_confidence() {
        let v: Vec<f64> = (0..30).map(|i| 100.0 + f64::from(i % 7)).collect();
        let (lo95, hi95) = bootstrap_median_ci(&v, 0.95, 400, 7);
        let (lo50, hi50) = bootstrap_median_ci(&v, 0.50, 400, 7);
        assert!(
            hi50 - lo50 <= hi95 - lo95,
            "50% CI must be no wider than 95% CI"
        );
    }

    #[test]
    fn bootstrap_degenerate_constant_sample() {
        let (lo, hi) = bootstrap_median_ci(&[5.0; 9], 0.9, 100, 1);
        assert_eq!((lo, hi), (5.0, 5.0));
    }

    #[test]
    #[should_panic(expected = "confidence")]
    fn bootstrap_rejects_bad_confidence() {
        let _ = bootstrap_median_ci(&[1.0], 1.5, 10, 1);
    }

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&[5.0]), 5.0);
        assert_eq!(median(&[1.0, 9.0]), 5.0);
        assert_eq!(median(&[9.0, 1.0, 5.0]), 5.0);
        assert_eq!(median(&[1.0, 2.0, 3.0, 4.0]), 2.5);
    }

    #[test]
    fn median_is_order_invariant() {
        let a = [7.0, 3.0, 9.0, 1.0, 5.0];
        let mut b = a;
        b.reverse();
        assert_eq!(median(&a), median(&b));
    }

    #[test]
    fn mean_basics() {
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(mean(&[1.0]), 1.0);
    }

    #[test]
    fn stddev_of_constant_is_zero() {
        assert_eq!(stddev(&[3.0, 3.0, 3.0]), 0.0);
    }

    #[test]
    fn stddev_known_value() {
        // population stddev of [2,4,4,4,5,5,7,9] is 2
        let v = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((stddev(&v) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn max_min() {
        let v = [3.0, -1.0, 7.5, 0.0];
        assert_eq!(max(&v), 7.5);
        assert_eq!(min(&v), -1.0);
    }

    #[test]
    fn percentile_endpoints_and_middle() {
        let v = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile(&v, 0.0), 10.0);
        assert_eq!(percentile(&v, 100.0), 40.0);
        assert_eq!(percentile(&v, 50.0), 25.0);
    }

    #[test]
    fn percentile_single_element() {
        assert_eq!(percentile(&[42.0], 75.0), 42.0);
    }

    #[test]
    fn relative_spread_flat_is_zero() {
        assert_eq!(relative_spread(&[4.0, 4.0, 4.0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn median_empty_panics() {
        let _ = median(&[]);
    }
}
