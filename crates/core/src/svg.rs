//! SVG rendering of [`FigureData`] — the counterpart of the artifact's
//! matplotlib figures (`<testname>.pdf`), dependency-free.
//!
//! Produces a self-contained line chart: axes with tick labels, linear
//! or logarithmic x scale, one polyline + markers per series, and a
//! legend. The palette follows the paper's four-type convention.

use std::fmt::Write as _;

use crate::report::{FigureData, Series};

/// Chart geometry and styling.
#[derive(Debug, Clone, PartialEq)]
pub struct SvgStyle {
    /// Total width in pixels.
    pub width: u32,
    /// Total height in pixels.
    pub height: u32,
    /// Margin around the plot area (left margin is doubled for y tick
    /// labels).
    pub margin: u32,
    /// Stroke width of series lines.
    pub stroke: f64,
    /// Series colors, cycled.
    pub palette: Vec<&'static str>,
}

impl Default for SvgStyle {
    fn default() -> Self {
        SvgStyle {
            width: 720,
            height: 440,
            margin: 40,
            stroke: 1.8,
            palette: vec![
                "#1f77b4", "#ff7f0e", "#2ca02c", "#d62728", "#9467bd", "#8c564b", "#e377c2",
                "#7f7f7f",
            ],
        }
    }
}

struct Frame {
    x0: f64,
    y0: f64,
    w: f64,
    h: f64,
    xmin: f64,
    xmax: f64,
    ymax: f64,
    log_x: bool,
}

impl Frame {
    fn x_px(&self, x: f64) -> f64 {
        let frac = if self.log_x && self.xmin > 0.0 && self.xmax > self.xmin {
            (x.ln() - self.xmin.ln()) / (self.xmax.ln() - self.xmin.ln())
        } else if self.xmax > self.xmin {
            (x - self.xmin) / (self.xmax - self.xmin)
        } else {
            0.5
        };
        self.x0 + frac.clamp(0.0, 1.0) * self.w
    }

    fn y_px(&self, y: f64) -> f64 {
        let frac = if self.ymax > 0.0 {
            (y / self.ymax).clamp(0.0, 1.0)
        } else {
            0.0
        };
        self.y0 + (1.0 - frac) * self.h
    }
}

/// Renders the figure as a standalone SVG document.
///
/// # Examples
///
/// ```
/// use syncperf_core::{FigureData, Series};
/// use syncperf_core::svg::{render_svg, SvgStyle};
///
/// let mut fig = FigureData::new("demo", "Demo", "threads", "ops/s");
/// fig.push_series(Series::new("int", vec![(2.0, 10.0), (4.0, 5.0)]));
/// let svg = render_svg(&fig, &SvgStyle::default());
/// assert!(svg.starts_with("<svg"));
/// assert!(svg.contains("polyline"));
/// ```
#[must_use]
pub fn render_svg(fig: &FigureData, style: &SvgStyle) -> String {
    let mut out = String::new();
    let (w, h) = (f64::from(style.width), f64::from(style.height));
    let m = f64::from(style.margin);
    let _ = write!(
        out,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{w}" height="{h}" viewBox="0 0 {w} {h}" font-family="sans-serif" font-size="11">"#
    );
    let _ = write!(out, r#"<rect width="{w}" height="{h}" fill="white"/>"#);
    let _ = write!(
        out,
        r#"<text x="{}" y="16" text-anchor="middle" font-size="13">{}</text>"#,
        w / 2.0,
        escape(&fig.title)
    );

    let non_empty: Vec<&Series> = fig.series.iter().filter(|s| !s.points.is_empty()).collect();
    if non_empty.is_empty() {
        let _ = write!(
            out,
            r#"<text x="{}" y="{}">no data</text>"#,
            w / 2.0,
            h / 2.0
        );
        out.push_str("</svg>");
        return out;
    }

    let xs: Vec<f64> = non_empty
        .iter()
        .flat_map(|s| s.points.iter().map(|p| p.0))
        .collect();
    let ys: Vec<f64> = non_empty
        .iter()
        .flat_map(|s| s.points.iter().map(|p| p.1))
        .collect();
    let frame = Frame {
        x0: 2.0 * m,
        y0: m,
        w: w - 3.0 * m,
        h: h - 2.5 * m,
        xmin: xs.iter().copied().fold(f64::MAX, f64::min),
        xmax: xs.iter().copied().fold(f64::MIN, f64::max),
        ymax: ys
            .iter()
            .copied()
            .fold(f64::MIN, f64::max)
            .max(f64::MIN_POSITIVE),
        log_x: fig.log_x,
    };

    // Axes.
    let (bx, by) = (frame.x0, frame.y0 + frame.h);
    let _ = write!(
        out,
        r#"<line x1="{bx}" y1="{}" x2="{bx}" y2="{by}" stroke="black"/>"#,
        frame.y0
    );
    let _ = write!(
        out,
        r#"<line x1="{bx}" y1="{by}" x2="{}" y2="{by}" stroke="black"/>"#,
        frame.x0 + frame.w
    );

    // Y ticks: 5 divisions of [0, ymax].
    for i in 0..=5 {
        let v = frame.ymax * f64::from(i) / 5.0;
        let y = frame.y_px(v);
        let _ = write!(
            out,
            r#"<line x1="{}" y1="{y}" x2="{bx}" y2="{y}" stroke="black"/>"#,
            bx - 4.0
        );
        let _ = write!(
            out,
            r#"<text x="{}" y="{}" text-anchor="end">{}</text>"#,
            bx - 7.0,
            y + 4.0,
            crate::report::fmt_eng(v)
        );
        if i > 0 {
            let _ = write!(
                out,
                r##"<line x1="{bx}" y1="{y}" x2="{}" y2="{y}" stroke="#dddddd"/>"##,
                frame.x0 + frame.w
            );
        }
    }

    // X ticks at data points (log) or 6 even divisions (linear).
    let tick_xs: Vec<f64> = if fig.log_x {
        let mut t = xs.clone();
        t.sort_by(f64::total_cmp);
        t.dedup_by(|a, b| (*a - *b).abs() < 1e-9);
        t
    } else {
        (0..=6)
            .map(|i| frame.xmin + (frame.xmax - frame.xmin) * f64::from(i) / 6.0)
            .collect()
    };
    for &tx in &tick_xs {
        let x = frame.x_px(tx);
        let _ = write!(
            out,
            r#"<line x1="{x}" y1="{by}" x2="{x}" y2="{}" stroke="black"/>"#,
            by + 4.0
        );
        let label = if tx == tx.trunc() {
            format!("{}", tx as i64)
        } else {
            format!("{tx:.1}")
        };
        let _ = write!(
            out,
            r#"<text x="{x}" y="{}" text-anchor="middle">{label}</text>"#,
            by + 16.0
        );
    }

    // Axis labels.
    let _ = write!(
        out,
        r#"<text x="{}" y="{}" text-anchor="middle">{}</text>"#,
        frame.x0 + frame.w / 2.0,
        by + 32.0,
        escape(&fig.x_label)
    );
    let _ = write!(
        out,
        r#"<text x="14" y="{}" text-anchor="middle" transform="rotate(-90 14 {})">{}</text>"#,
        frame.y0 + frame.h / 2.0,
        frame.y0 + frame.h / 2.0,
        escape(&fig.y_label)
    );

    // Series.
    for (i, s) in non_empty.iter().enumerate() {
        let color = style.palette[i % style.palette.len()];
        let pts: String = s
            .points
            .iter()
            .map(|&(x, y)| format!("{:.1},{:.1}", frame.x_px(x), frame.y_px(y)))
            .collect::<Vec<_>>()
            .join(" ");
        let _ = write!(
            out,
            r#"<polyline points="{pts}" fill="none" stroke="{color}" stroke-width="{}"/>"#,
            style.stroke
        );
        for &(x, y) in &s.points {
            let _ = write!(
                out,
                r#"<circle cx="{:.1}" cy="{:.1}" r="2.4" fill="{color}"/>"#,
                frame.x_px(x),
                frame.y_px(y)
            );
        }
        // Legend entry.
        let ly = frame.y0 + 14.0 * i as f64;
        let lx = frame.x0 + frame.w - 120.0;
        let _ = write!(
            out,
            r#"<line x1="{lx}" y1="{ly}" x2="{}" y2="{ly}" stroke="{color}" stroke-width="{}"/>"#,
            lx + 18.0,
            style.stroke
        );
        let _ = write!(
            out,
            r#"<text x="{}" y="{}">{}</text>"#,
            lx + 22.0,
            ly + 4.0,
            escape(&s.label)
        );
    }

    out.push_str("</svg>");
    out
}

impl FigureData {
    /// Writes `<id>.svg` into `dir` with default styling.
    ///
    /// # Errors
    ///
    /// Returns an error when the file cannot be written.
    pub fn write_svg(&self, dir: impl AsRef<std::path::Path>) -> crate::error::Result<()> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        std::fs::write(
            dir.join(format!("{}.svg", self.id)),
            render_svg(self, &SvgStyle::default()),
        )?;
        Ok(())
    }
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::Series;

    fn fig() -> FigureData {
        let mut f = FigureData::new("svgtest", "SVG Test <Figure>", "threads", "ops/s");
        f.push_series(Series::new(
            "int",
            vec![(2.0, 100.0), (4.0, 50.0), (8.0, 25.0)],
        ));
        f.push_series(Series::new(
            "double",
            vec![(2.0, 80.0), (4.0, 40.0), (8.0, 20.0)],
        ));
        f
    }

    #[test]
    fn document_structure() {
        let svg = render_svg(&fig(), &SvgStyle::default());
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        assert_eq!(
            svg.matches("<polyline").count(),
            2,
            "one polyline per series"
        );
        assert_eq!(svg.matches("<circle").count(), 6, "one marker per point");
    }

    #[test]
    fn title_and_labels_escaped() {
        let svg = render_svg(&fig(), &SvgStyle::default());
        assert!(svg.contains("SVG Test &lt;Figure&gt;"));
        assert!(svg.contains(">threads<"));
        assert!(!svg.contains("<Figure>"));
    }

    #[test]
    fn legend_contains_series_labels() {
        let svg = render_svg(&fig(), &SvgStyle::default());
        assert!(svg.contains(">int<"));
        assert!(svg.contains(">double<"));
    }

    #[test]
    fn log_x_positions_powers_evenly() {
        let mut f = FigureData::new("l", "L", "t", "y").with_log_x();
        f.push_series(Series::new(
            "s",
            vec![(1.0, 1.0), (32.0, 1.0), (1024.0, 1.0)],
        ));
        let svg = render_svg(&f, &SvgStyle::default());
        // Extract the three circle x positions.
        let xs: Vec<f64> = svg
            .match_indices("<circle cx=\"")
            .map(|(i, _)| {
                let rest = &svg[i + 12..];
                rest[..rest.find('"').expect("quote")]
                    .parse::<f64>()
                    .expect("number")
            })
            .collect();
        assert_eq!(xs.len(), 3);
        let gap1 = xs[1] - xs[0];
        let gap2 = xs[2] - xs[1];
        assert!(
            (gap1 - gap2).abs() < 1.0,
            "log spacing must be even: {gap1} vs {gap2}"
        );
    }

    #[test]
    fn empty_figure_yields_placeholder() {
        let f = FigureData::new("e", "Empty", "x", "y");
        let svg = render_svg(&f, &SvgStyle::default());
        assert!(svg.contains("no data"));
    }

    #[test]
    fn write_svg_to_disk() {
        let dir = std::env::temp_dir().join(format!("syncperf_svg_{}", std::process::id()));
        fig().write_svg(&dir).unwrap();
        let content = std::fs::read_to_string(dir.join("svgtest.svg")).unwrap();
        assert!(content.starts_with("<svg"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn y_axis_maps_zero_to_baseline_and_max_to_top() {
        let frame = Frame {
            x0: 0.0,
            y0: 10.0,
            w: 100.0,
            h: 100.0,
            xmin: 0.0,
            xmax: 1.0,
            ymax: 50.0,
            log_x: false,
        };
        assert_eq!(frame.y_px(0.0), 110.0);
        assert_eq!(frame.y_px(50.0), 10.0);
        assert_eq!(frame.y_px(25.0), 60.0);
    }
}
