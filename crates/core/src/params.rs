//! Execution parameters: thread/block counts, affinity, loop structure.

use crate::error::{Result, SyncPerfError};

/// OpenMP thread-affinity policy (Section IV).
///
/// "Spread" distributes threads across cores/sockets as widely as
/// possible; "close" packs consecutive threads onto neighbouring
/// hardware threads. When the paper does not mention an affinity, the
/// system chose the placement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Affinity {
    /// `OMP_PROC_BIND=spread`.
    Spread,
    /// `OMP_PROC_BIND=close`.
    Close,
    /// No explicit affinity; the OS/scheduler decides.
    #[default]
    SystemChoice,
}

impl Affinity {
    /// Paper-facing label.
    #[must_use]
    pub const fn label(self) -> &'static str {
        match self {
            Affinity::Spread => "spread",
            Affinity::Close => "close",
            Affinity::SystemChoice => "system",
        }
    }
}

/// Parameters for one execution of a kernel body.
///
/// Built with [`ExecParams::new`] and the `with_*` modifiers:
///
/// ```
/// use syncperf_core::{Affinity, ExecParams};
///
/// let p = ExecParams::new(8)
///     .with_blocks(2)
///     .with_affinity(Affinity::Spread)
///     .with_loops(1000, 100);
/// assert_eq!(p.total_threads(), 16);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ExecParams {
    /// Threads per team (CPU) or per block (GPU).
    pub threads: u32,
    /// Thread blocks (GPU only; CPU executors require 1).
    pub blocks: u32,
    /// Thread placement policy (CPU only; ignored by GPU executors).
    pub affinity: Affinity,
    /// Outer timed-loop iterations (`n_iter`, paper default 1000).
    pub n_iter: u32,
    /// Inner unrolled-loop factor (`N_UNROLL`, paper default 100).
    pub n_unroll: u32,
    /// Warmup outer iterations executed before timing starts.
    pub n_warmup: u32,
}

impl ExecParams {
    /// Creates parameters for `threads` threads with the paper's default
    /// loop structure (`n_iter` = 1000, `N_UNROLL` = 100, warmup = 10)
    /// and a single block.
    #[must_use]
    pub fn new(threads: u32) -> Self {
        ExecParams {
            threads,
            blocks: 1,
            affinity: Affinity::SystemChoice,
            n_iter: 1000,
            n_unroll: 100,
            n_warmup: 10,
        }
    }

    /// Sets the block count (GPU).
    #[must_use]
    pub fn with_blocks(mut self, blocks: u32) -> Self {
        self.blocks = blocks;
        self
    }

    /// Sets the affinity policy (CPU).
    #[must_use]
    pub fn with_affinity(mut self, affinity: Affinity) -> Self {
        self.affinity = affinity;
        self
    }

    /// Sets `n_iter` and `N_UNROLL`.
    #[must_use]
    pub fn with_loops(mut self, n_iter: u32, n_unroll: u32) -> Self {
        self.n_iter = n_iter;
        self.n_unroll = n_unroll;
        self
    }

    /// Sets the warmup iteration count.
    #[must_use]
    pub fn with_warmup(mut self, n_warmup: u32) -> Self {
        self.n_warmup = n_warmup;
        self
    }

    /// Total threads across all blocks.
    #[must_use]
    pub fn total_threads(&self) -> u32 {
        self.threads * self.blocks
    }

    /// Body repetitions inside the timed region (`n_iter × N_UNROLL`).
    #[must_use]
    pub fn timed_reps(&self) -> u64 {
        u64::from(self.n_iter) * u64::from(self.n_unroll)
    }

    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Returns [`SyncPerfError::InvalidParams`] if any count is zero or
    /// exceeds sanity limits (≤ 1024 threads per block, ≤ 65 535
    /// blocks).
    pub fn validate(&self) -> Result<()> {
        if self.threads == 0 {
            return Err(SyncPerfError::InvalidParams("threads must be > 0".into()));
        }
        if self.blocks == 0 {
            return Err(SyncPerfError::InvalidParams("blocks must be > 0".into()));
        }
        if self.threads > 1024 {
            return Err(SyncPerfError::InvalidParams(format!(
                "threads per block/team ({}) exceeds 1024",
                self.threads
            )));
        }
        if self.blocks > 65_535 {
            return Err(SyncPerfError::InvalidParams(format!(
                "block count ({}) exceeds 65535",
                self.blocks
            )));
        }
        if self.n_iter == 0 || self.n_unroll == 0 {
            return Err(SyncPerfError::InvalidParams(
                "n_iter and n_unroll must be > 0".into(),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let p = ExecParams::new(4);
        assert_eq!(p.n_iter, 1000);
        assert_eq!(p.n_unroll, 100);
        assert_eq!(p.blocks, 1);
        assert_eq!(p.timed_reps(), 100_000);
    }

    #[test]
    fn builder_chain() {
        let p = ExecParams::new(32)
            .with_blocks(128)
            .with_affinity(Affinity::Close)
            .with_loops(50, 20)
            .with_warmup(2);
        assert_eq!(p.total_threads(), 32 * 128);
        assert_eq!(p.affinity, Affinity::Close);
        assert_eq!(p.timed_reps(), 1000);
        assert_eq!(p.n_warmup, 2);
    }

    #[test]
    fn validation_rejects_zeroes() {
        assert!(ExecParams::new(0).validate().is_err());
        assert!(ExecParams::new(1).with_blocks(0).validate().is_err());
        assert!(ExecParams::new(1).with_loops(0, 1).validate().is_err());
        assert!(ExecParams::new(1).with_loops(1, 0).validate().is_err());
    }

    #[test]
    fn validation_rejects_oversize() {
        assert!(ExecParams::new(1025).validate().is_err());
        assert!(ExecParams::new(1).with_blocks(70_000).validate().is_err());
        assert!(ExecParams::new(1024).with_blocks(65_535).validate().is_ok());
    }

    #[test]
    fn affinity_labels() {
        assert_eq!(Affinity::Spread.label(), "spread");
        assert_eq!(Affinity::Close.label(), "close");
        assert_eq!(Affinity::SystemChoice.label(), "system");
        assert_eq!(Affinity::default(), Affinity::SystemChoice);
    }
}
