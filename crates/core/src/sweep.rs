//! Parameter-sweep helpers: turn (x, kernel, params) grids into
//! [`Series`](crate::report::Series) ready for a figure.

use crate::error::Result;
use crate::kernel::Kernel;
use crate::params::ExecParams;
use crate::platform::Executor;
use crate::protocol::{Measurement, Protocol};
use crate::report::Series;

/// Timer floor used when converting near-zero runtimes to throughput
/// for plotting (100 ps — far below any real primitive).
pub const PLOT_FLOOR_SECONDS: f64 = 1e-10;

/// One point of a sweep: the x value to plot plus what to measure there.
#[derive(Debug, Clone)]
pub struct SweepPoint<Op> {
    /// X coordinate in the figure (usually the thread count).
    pub x: f64,
    /// The kernel to measure at this point.
    pub kernel: Kernel<Op>,
    /// The execution parameters at this point.
    pub params: ExecParams,
}

/// Measures a sequence of sweep points and returns a throughput series
/// (operations per second per thread, the paper's y axis).
///
/// # Errors
///
/// Propagates the first executor/protocol error.
pub fn throughput_series<E: Executor>(
    executor: &mut E,
    protocol: &Protocol,
    label: impl Into<String>,
    points: Vec<SweepPoint<E::Op>>,
) -> Result<Series> {
    let mut out = Vec::with_capacity(points.len());
    for p in points {
        let m = protocol.measure(executor, &p.kernel, &p.params)?;
        out.push((p.x, m.throughput_clamped(PLOT_FLOOR_SECONDS)));
    }
    Ok(Series::new(label, out))
}

/// Measures a sequence of sweep points and returns the raw
/// [`Measurement`]s (for tests and tables that need more than
/// throughput).
///
/// # Errors
///
/// Propagates the first executor/protocol error.
pub fn measure_points<E: Executor>(
    executor: &mut E,
    protocol: &Protocol,
    points: Vec<SweepPoint<E::Op>>,
) -> Result<Vec<(f64, Measurement)>> {
    let mut out = Vec::with_capacity(points.len());
    for p in points {
        let m = protocol.measure(executor, &p.kernel, &p.params)?;
        out.push((p.x, m));
    }
    Ok(out)
}

/// Builds a thread-count sweep over `thread_counts`, cloning `base`
/// parameters and substituting the thread count; `make_kernel` builds
/// the kernel (it receives the thread count for kernels that depend on
/// it).
pub fn thread_sweep<Op>(
    thread_counts: &[u32],
    base: ExecParams,
    mut make_kernel: impl FnMut(u32) -> Kernel<Op>,
) -> Vec<SweepPoint<Op>> {
    thread_counts
        .iter()
        .map(|&t| SweepPoint {
            x: f64::from(t),
            kernel: make_kernel(t),
            params: ExecParams { threads: t, ..base },
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{omp_barrier, CpuOp};
    use crate::platform::{ThreadTimes, TimeUnit};

    struct UnitExec;

    impl Executor for UnitExec {
        type Op = CpuOp;

        fn name(&self) -> &str {
            "unit"
        }

        fn time_unit(&self) -> TimeUnit {
            TimeUnit::Seconds
        }

        fn execute(
            &mut self,
            body: &[CpuOp],
            params: &ExecParams,
        ) -> crate::error::Result<ThreadTimes> {
            // Cost grows with thread count: 1 ns per op per thread.
            let reps = params.timed_reps() as f64;
            let t = body.len() as f64 * 1e-9 * f64::from(params.threads) * reps;
            Ok(ThreadTimes::uniform(t, params.threads as usize))
        }
    }

    #[test]
    fn thread_sweep_builds_points() {
        let pts = thread_sweep(&[2, 4, 8], ExecParams::new(1).with_loops(10, 10), |_| {
            omp_barrier()
        });
        assert_eq!(pts.len(), 3);
        assert_eq!(pts[0].params.threads, 2);
        assert_eq!(pts[2].x, 8.0);
        // loop config preserved
        assert_eq!(pts[1].params.n_iter, 10);
    }

    #[test]
    fn throughput_series_decreases_with_contention() {
        let pts = thread_sweep(&[2, 4, 8], ExecParams::new(1).with_loops(10, 10), |_| {
            omp_barrier()
        });
        let s = throughput_series(&mut UnitExec, &Protocol::SIM, "barrier", pts).unwrap();
        assert_eq!(s.points.len(), 3);
        // throughput per thread should fall as the per-op cost rises
        assert!(s.points[0].1 > s.points[1].1);
        assert!(s.points[1].1 > s.points[2].1);
    }

    #[test]
    fn measure_points_returns_measurements() {
        let pts = thread_sweep(&[2, 4], ExecParams::new(1).with_loops(10, 10), |_| {
            omp_barrier()
        });
        let ms = measure_points(&mut UnitExec, &Protocol::SIM, pts).unwrap();
        assert_eq!(ms.len(), 2);
        assert_eq!(ms[0].0, 2.0);
        assert!(ms[0].1.per_op > 0.0);
    }
}
