//! The [`Executor`] abstraction: anything that can run a kernel body.
//!
//! Three executors implement this trait in the workspace:
//!
//! * `syncperf_omp::OmpExecutor` — real `std::thread` threads running
//!   real atomics (times in seconds, like the paper's `gettimeofday`).
//! * `syncperf_cpu_sim::CpuSimExecutor` — the multicore simulator
//!   (virtual nanoseconds).
//! * `syncperf_gpu_sim::GpuSimExecutor` — the SIMT simulator (virtual
//!   cycles, like the paper's `clock64()`).

use crate::error::Result;
use crate::params::ExecParams;

/// The unit in which an executor reports per-thread elapsed times.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TimeUnit {
    /// Wall-clock seconds (OpenMP tests use `gettimeofday`).
    Seconds,
    /// Processor cycles at the given clock frequency (CUDA tests use
    /// `clock64()`; Section IV divides by the clock frequency).
    Cycles {
        /// Clock frequency in GHz used for the cycles → seconds
        /// conversion.
        clock_ghz: f64,
    },
}

impl TimeUnit {
    /// Converts a duration in this unit to seconds.
    ///
    /// ```
    /// use syncperf_core::TimeUnit;
    ///
    /// assert_eq!(TimeUnit::Seconds.to_seconds(2.5), 2.5);
    /// // 2 GHz: 4 cycles == 2 ns
    /// let ns = TimeUnit::Cycles { clock_ghz: 2.0 }.to_seconds(4.0);
    /// assert!((ns - 2e-9).abs() < 1e-18);
    /// ```
    #[must_use]
    pub fn to_seconds(self, value: f64) -> f64 {
        match self {
            TimeUnit::Seconds => value,
            TimeUnit::Cycles { clock_ghz } => value / (clock_ghz * 1e9),
        }
    }
}

/// Per-thread elapsed times for one execution of a loop body.
///
/// Each entry is in the executor's [`TimeUnit`] and covers the full
/// timed region (`n_iter × N_UNROLL` body repetitions). Executors whose
/// threads all finish at the same instant (the SIMT simulator outside
/// its erratic system-fence mode) report the [`ThreadTimes::Uniform`]
/// variant, which stores one value instead of a potentially
/// 100k-element vector — the protocol only ever takes the max anyway.
#[derive(Debug, Clone, PartialEq)]
pub enum ThreadTimes {
    /// One entry per participating thread.
    PerThread(Vec<f64>),
    /// All `count` threads reported the same `value`.
    Uniform {
        /// The common per-thread time.
        value: f64,
        /// How many threads participated.
        count: usize,
    },
}

impl ThreadTimes {
    /// Wraps a per-thread vector.
    #[must_use]
    pub fn per_thread(times: Vec<f64>) -> Self {
        ThreadTimes::PerThread(times)
    }

    /// All `count` threads took `value`.
    #[must_use]
    pub fn uniform(value: f64, count: usize) -> Self {
        ThreadTimes::Uniform { value, count }
    }

    /// The maximum across threads — the paper records "the maximum
    /// runtime across the running threads" per attempt (Section IV).
    ///
    /// # Panics
    ///
    /// Panics if no thread reported a time.
    #[must_use]
    pub fn max(&self) -> f64 {
        match self {
            ThreadTimes::PerThread(v) => crate::stats::max(v),
            ThreadTimes::Uniform { value, count } => {
                assert!(*count > 0, "max of empty ThreadTimes");
                *value
            }
        }
    }

    /// Number of participating threads.
    #[must_use]
    pub fn len(&self) -> usize {
        match self {
            ThreadTimes::PerThread(v) => v.len(),
            ThreadTimes::Uniform { count, .. } => *count,
        }
    }

    /// Whether no thread reported a time.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterates over all per-thread times (expanding the uniform case).
    pub fn iter(&self) -> ThreadTimesIter<'_> {
        match self {
            ThreadTimes::PerThread(v) => ThreadTimesIter::Slice(v.iter()),
            ThreadTimes::Uniform { value, count } => ThreadTimesIter::Uniform {
                value: *value,
                left: *count,
            },
        }
    }

    /// Materializes the times as a vector.
    #[must_use]
    pub fn to_vec(&self) -> Vec<f64> {
        match self {
            ThreadTimes::PerThread(v) => v.clone(),
            ThreadTimes::Uniform { value, count } => vec![*value; *count],
        }
    }
}

impl<'a> IntoIterator for &'a ThreadTimes {
    type Item = f64;
    type IntoIter = ThreadTimesIter<'a>;

    fn into_iter(self) -> ThreadTimesIter<'a> {
        self.iter()
    }
}

/// Iterator over [`ThreadTimes`] entries.
#[derive(Debug)]
pub enum ThreadTimesIter<'a> {
    /// Iterating a stored vector.
    Slice(std::slice::Iter<'a, f64>),
    /// Repeating the uniform value.
    Uniform {
        /// The common per-thread time.
        value: f64,
        /// Entries still to yield.
        left: usize,
    },
}

impl Iterator for ThreadTimesIter<'_> {
    type Item = f64;

    fn next(&mut self) -> Option<f64> {
        match self {
            ThreadTimesIter::Slice(it) => it.next().copied(),
            ThreadTimesIter::Uniform { value, left } => {
                if *left == 0 {
                    None
                } else {
                    *left -= 1;
                    Some(*value)
                }
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = match self {
            ThreadTimesIter::Slice(it) => it.len(),
            ThreadTimesIter::Uniform { left, .. } => *left,
        };
        (n, Some(n))
    }
}

/// A platform capable of executing kernel loop bodies.
///
/// Implementations interpret a body (slice of ops) `n_iter × N_UNROLL`
/// times per thread after `n_warmup × N_UNROLL` warmup repetitions, and
/// report per-thread elapsed times for the timed region only — exactly
/// the structure of the paper's Listings 2 and 3.
pub trait Executor {
    /// The operation vocabulary this executor understands
    /// ([`crate::CpuOp`] or [`crate::GpuOp`]).
    type Op;

    /// Short platform name for error messages and reports.
    fn name(&self) -> &str;

    /// The unit of the returned times.
    fn time_unit(&self) -> TimeUnit;

    /// Executes `body` under `params` and returns per-thread times.
    ///
    /// # Errors
    ///
    /// Returns an error if the body contains an unsupported operation or
    /// the parameters are invalid for this platform.
    fn execute(&mut self, body: &[Self::Op], params: &ExecParams) -> Result<ThreadTimes>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seconds_passthrough() {
        assert_eq!(TimeUnit::Seconds.to_seconds(0.125), 0.125);
    }

    #[test]
    fn cycles_conversion_uses_clock() {
        let tu = TimeUnit::Cycles { clock_ghz: 2.625 }; // RTX 4090
        let s = tu.to_seconds(2.625e9);
        assert!((s - 1.0).abs() < 1e-9);
    }

    #[test]
    fn thread_times_max() {
        let t = ThreadTimes::per_thread(vec![1.0, 3.0, 2.0]);
        assert_eq!(t.max(), 3.0);
        let u = ThreadTimes::uniform(2.5, 4);
        assert_eq!(u.max(), 2.5);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn thread_times_max_empty_panics() {
        let t = ThreadTimes::per_thread(vec![]);
        let _ = t.max();
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn thread_times_uniform_max_empty_panics() {
        let t = ThreadTimes::uniform(1.0, 0);
        let _ = t.max();
    }

    #[test]
    fn thread_times_iteration_matches_to_vec() {
        let u = ThreadTimes::uniform(1.5, 3);
        assert_eq!(u.len(), 3);
        assert!(!u.is_empty());
        assert_eq!(u.iter().collect::<Vec<_>>(), vec![1.5, 1.5, 1.5]);
        assert_eq!(u.to_vec(), vec![1.5, 1.5, 1.5]);
        let p = ThreadTimes::per_thread(vec![1.0, 2.0]);
        assert_eq!(p.iter().size_hint(), (2, Some(2)));
        assert_eq!(p.to_vec(), vec![1.0, 2.0]);
    }
}
