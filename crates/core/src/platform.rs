//! The [`Executor`] abstraction: anything that can run a kernel body.
//!
//! Three executors implement this trait in the workspace:
//!
//! * `syncperf_omp::OmpExecutor` — real `std::thread` threads running
//!   real atomics (times in seconds, like the paper's `gettimeofday`).
//! * `syncperf_cpu_sim::CpuSimExecutor` — the multicore simulator
//!   (virtual nanoseconds).
//! * `syncperf_gpu_sim::GpuSimExecutor` — the SIMT simulator (virtual
//!   cycles, like the paper's `clock64()`).

use crate::error::Result;
use crate::params::ExecParams;

/// The unit in which an executor reports per-thread elapsed times.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TimeUnit {
    /// Wall-clock seconds (OpenMP tests use `gettimeofday`).
    Seconds,
    /// Processor cycles at the given clock frequency (CUDA tests use
    /// `clock64()`; Section IV divides by the clock frequency).
    Cycles {
        /// Clock frequency in GHz used for the cycles → seconds
        /// conversion.
        clock_ghz: f64,
    },
}

impl TimeUnit {
    /// Converts a duration in this unit to seconds.
    ///
    /// ```
    /// use syncperf_core::TimeUnit;
    ///
    /// assert_eq!(TimeUnit::Seconds.to_seconds(2.5), 2.5);
    /// // 2 GHz: 4 cycles == 2 ns
    /// let ns = TimeUnit::Cycles { clock_ghz: 2.0 }.to_seconds(4.0);
    /// assert!((ns - 2e-9).abs() < 1e-18);
    /// ```
    #[must_use]
    pub fn to_seconds(self, value: f64) -> f64 {
        match self {
            TimeUnit::Seconds => value,
            TimeUnit::Cycles { clock_ghz } => value / (clock_ghz * 1e9),
        }
    }
}

/// Per-thread elapsed times for one execution of a loop body.
#[derive(Debug, Clone, PartialEq)]
pub struct ThreadTimes {
    /// One entry per participating thread, in the executor's
    /// [`TimeUnit`], covering the full timed region
    /// (`n_iter × N_UNROLL` body repetitions).
    pub per_thread: Vec<f64>,
}

impl ThreadTimes {
    /// The maximum across threads — the paper records "the maximum
    /// runtime across the running threads" per attempt (Section IV).
    ///
    /// # Panics
    ///
    /// Panics if no thread reported a time.
    #[must_use]
    pub fn max(&self) -> f64 {
        crate::stats::max(&self.per_thread)
    }
}

/// A platform capable of executing kernel loop bodies.
///
/// Implementations interpret a body (slice of ops) `n_iter × N_UNROLL`
/// times per thread after `n_warmup × N_UNROLL` warmup repetitions, and
/// report per-thread elapsed times for the timed region only — exactly
/// the structure of the paper's Listings 2 and 3.
pub trait Executor {
    /// The operation vocabulary this executor understands
    /// ([`crate::CpuOp`] or [`crate::GpuOp`]).
    type Op;

    /// Short platform name for error messages and reports.
    fn name(&self) -> &str;

    /// The unit of the returned times.
    fn time_unit(&self) -> TimeUnit;

    /// Executes `body` under `params` and returns per-thread times.
    ///
    /// # Errors
    ///
    /// Returns an error if the body contains an unsupported operation or
    /// the parameters are invalid for this platform.
    fn execute(&mut self, body: &[Self::Op], params: &ExecParams) -> Result<ThreadTimes>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seconds_passthrough() {
        assert_eq!(TimeUnit::Seconds.to_seconds(0.125), 0.125);
    }

    #[test]
    fn cycles_conversion_uses_clock() {
        let tu = TimeUnit::Cycles { clock_ghz: 2.625 }; // RTX 4090
        let s = tu.to_seconds(2.625e9);
        assert!((s - 1.0).abs() < 1e-9);
    }

    #[test]
    fn thread_times_max() {
        let t = ThreadTimes {
            per_thread: vec![1.0, 3.0, 2.0],
        };
        assert_eq!(t.max(), 3.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn thread_times_max_empty_panics() {
        let t = ThreadTimes { per_thread: vec![] };
        let _ = t.max();
    }
}
