//! Data types exercised by the measured synchronization primitives.
//!
//! The paper runs every arithmetic/memory test with the four C types
//! `int`, `unsigned long long`, `float`, and `double` (Section IV). The
//! distinction matters because integer and floating-point atomics are
//! serviced by different hardware paths on both CPUs and GPUs.

use std::fmt;

/// A data type participating in a measured operation.
///
/// # Examples
///
/// ```
/// use syncperf_core::DType;
///
/// assert_eq!(DType::I32.size_bytes(), 4);
/// assert!(DType::F64.is_float());
/// assert!(DType::U64.is_integer());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DType {
    /// 32-bit signed integer (`int`).
    I32,
    /// 64-bit unsigned integer (`unsigned long long`).
    U64,
    /// 32-bit IEEE-754 float (`float`).
    F32,
    /// 64-bit IEEE-754 float (`double`).
    F64,
}

impl DType {
    /// All four data types in the paper's canonical order.
    pub const ALL: [DType; 4] = [DType::I32, DType::U64, DType::F32, DType::F64];

    /// The data types natively supported by CUDA's `atomicCAS()` /
    /// `atomicExch()` (no floating point; Section V-B2).
    pub const CAS_SUPPORTED: [DType; 2] = [DType::I32, DType::U64];

    /// Size of one element in bytes.
    #[must_use]
    pub const fn size_bytes(self) -> usize {
        match self {
            DType::I32 | DType::F32 => 4,
            DType::U64 | DType::F64 => 8,
        }
    }

    /// Size of one element in bits.
    #[must_use]
    pub const fn size_bits(self) -> usize {
        self.size_bytes() * 8
    }

    /// `true` for `I32` and `U64`.
    #[must_use]
    pub const fn is_integer(self) -> bool {
        matches!(self, DType::I32 | DType::U64)
    }

    /// `true` for `F32` and `F64`.
    #[must_use]
    pub const fn is_float(self) -> bool {
        !self.is_integer()
    }

    /// The label used in the paper's figure legends.
    #[must_use]
    pub const fn label(self) -> &'static str {
        match self {
            DType::I32 => "int",
            DType::U64 => "ull",
            DType::F32 => "float",
            DType::F64 => "double",
        }
    }

    /// How many elements of this type fit in one cache line of
    /// `line_bytes` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `line_bytes` is smaller than the element size.
    #[must_use]
    pub fn elems_per_line(self, line_bytes: usize) -> usize {
        assert!(
            line_bytes >= self.size_bytes(),
            "cache line ({line_bytes} B) smaller than element"
        );
        line_bytes / self.size_bytes()
    }
}

impl fmt::Display for DType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_match_c_types() {
        assert_eq!(DType::I32.size_bytes(), 4);
        assert_eq!(DType::U64.size_bytes(), 8);
        assert_eq!(DType::F32.size_bytes(), 4);
        assert_eq!(DType::F64.size_bytes(), 8);
    }

    #[test]
    fn bits_are_eight_times_bytes() {
        for dt in DType::ALL {
            assert_eq!(dt.size_bits(), dt.size_bytes() * 8);
        }
    }

    #[test]
    fn integer_float_partition() {
        let ints: Vec<_> = DType::ALL.iter().filter(|d| d.is_integer()).collect();
        let floats: Vec<_> = DType::ALL.iter().filter(|d| d.is_float()).collect();
        assert_eq!(ints.len(), 2);
        assert_eq!(floats.len(), 2);
        for dt in DType::ALL {
            assert_ne!(dt.is_integer(), dt.is_float());
        }
    }

    #[test]
    fn labels_match_paper_legends() {
        assert_eq!(DType::I32.label(), "int");
        assert_eq!(DType::U64.label(), "ull");
        assert_eq!(DType::F32.label(), "float");
        assert_eq!(DType::F64.label(), "double");
        assert_eq!(DType::F64.to_string(), "double");
    }

    #[test]
    fn elems_per_line_64b() {
        assert_eq!(DType::I32.elems_per_line(64), 16);
        assert_eq!(DType::U64.elems_per_line(64), 8);
        assert_eq!(DType::F32.elems_per_line(64), 16);
        assert_eq!(DType::F64.elems_per_line(64), 8);
    }

    #[test]
    #[should_panic(expected = "cache line")]
    fn elems_per_line_rejects_tiny_line() {
        let _ = DType::U64.elems_per_line(4);
    }

    #[test]
    fn cas_supported_excludes_floats() {
        for dt in DType::CAS_SUPPORTED {
            assert!(dt.is_integer());
        }
    }
}
