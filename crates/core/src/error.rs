//! Error types for the measurement framework.

use std::error::Error;
use std::fmt;

/// Errors produced by the syncperf measurement framework.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SyncPerfError {
    /// A kernel references an operation the executing platform does not
    /// support (e.g. a GPU op handed to a CPU executor).
    UnsupportedOp {
        /// Human-readable name of the offending operation.
        op: String,
        /// Name of the platform that rejected it.
        platform: String,
    },
    /// A parameter combination is invalid (e.g. zero threads).
    InvalidParams(String),
    /// The measurement protocol exhausted its retry budget without
    /// obtaining a test runtime ≥ the baseline runtime.
    MeasurementUnstable {
        /// Attempts performed before giving up.
        attempts: u32,
    },
    /// A data type is not supported by the measured primitive
    /// (e.g. `float` with `atomicCAS()`).
    UnsupportedDType {
        /// The rejected data type label.
        dtype: &'static str,
        /// The primitive that rejected it.
        primitive: String,
    },
    /// Writing a report or CSV failed.
    Io(String),
}

impl fmt::Display for SyncPerfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SyncPerfError::UnsupportedOp { op, platform } => {
                write!(
                    f,
                    "operation `{op}` is not supported by platform `{platform}`"
                )
            }
            SyncPerfError::InvalidParams(msg) => write!(f, "invalid parameters: {msg}"),
            SyncPerfError::MeasurementUnstable { attempts } => write!(
                f,
                "no stable measurement after {attempts} attempts (test < baseline every time)"
            ),
            SyncPerfError::UnsupportedDType { dtype, primitive } => {
                write!(f, "data type `{dtype}` is not supported by `{primitive}`")
            }
            SyncPerfError::Io(msg) => write!(f, "i/o error: {msg}"),
        }
    }
}

impl Error for SyncPerfError {}

impl From<std::io::Error> for SyncPerfError {
    fn from(err: std::io::Error) -> Self {
        SyncPerfError::Io(err.to_string())
    }
}

/// Convenience alias used throughout the workspace.
pub type Result<T> = std::result::Result<T, SyncPerfError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_unpunctuated() {
        let e = SyncPerfError::InvalidParams("zero threads".into());
        let s = e.to_string();
        assert!(s.starts_with("invalid parameters"));
        assert!(!s.ends_with('.'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SyncPerfError>();
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::other("disk on fire");
        let e: SyncPerfError = io.into();
        assert!(matches!(e, SyncPerfError::Io(_)));
        assert!(e.to_string().contains("disk on fire"));
    }

    #[test]
    fn unstable_reports_attempts() {
        let e = SyncPerfError::MeasurementUnstable { attempts: 7 };
        assert!(e.to_string().contains('7'));
    }

    #[test]
    fn debug_is_nonempty() {
        assert!(!format!("{:?}", SyncPerfError::Io(String::new())).is_empty());
    }
}
