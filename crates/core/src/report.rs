//! Result containers and rendering: CSV output, ASCII tables and charts.
//!
//! The paper's artifact writes a `runtimes.csv` and a throughput figure
//! per test; this module provides the equivalent (CSV plus terminal
//! rendering) for every regenerated table and figure.

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

use crate::error::Result;

/// One plotted line: a label (e.g. `"int"` or `"128 blocks"`) and
/// `(x, y)` points.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// `(x, y)` pairs in ascending-x order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates a series from a label and points.
    #[must_use]
    pub fn new(label: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Series {
            label: label.into(),
            points,
        }
    }

    /// The y value at the given x, if present.
    #[must_use]
    pub fn y_at(&self, x: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|(px, _)| (*px - x).abs() < 1e-9)
            .map(|(_, y)| *y)
    }

    /// Largest y value.
    ///
    /// # Panics
    ///
    /// Panics if the series is empty.
    #[must_use]
    pub fn y_max(&self) -> f64 {
        crate::stats::max(&self.points.iter().map(|p| p.1).collect::<Vec<_>>())
    }

    /// Smallest y value.
    ///
    /// # Panics
    ///
    /// Panics if the series is empty.
    #[must_use]
    pub fn y_min(&self) -> f64 {
        crate::stats::min(&self.points.iter().map(|p| p.1).collect::<Vec<_>>())
    }
}

/// The data behind one regenerated figure (or figure panel).
#[derive(Debug, Clone, PartialEq)]
pub struct FigureData {
    /// Identifier, e.g. `"fig01"` or `"fig03a"`.
    pub id: String,
    /// Title, e.g. `"Throughput of OpenMP Barrier"`.
    pub title: String,
    /// X-axis label (usually "threads").
    pub x_label: String,
    /// Y-axis label (usually "ops/s/thread").
    pub y_label: String,
    /// Whether the x axis is logarithmic (the CUDA figures).
    pub log_x: bool,
    /// The plotted lines.
    pub series: Vec<Series>,
    /// Free-form notes (e.g. where the hyperthreading boundary lies).
    pub annotations: Vec<String>,
}

impl FigureData {
    /// Creates an empty figure.
    #[must_use]
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        FigureData {
            id: id.into(),
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            log_x: false,
            series: Vec::new(),
            annotations: Vec::new(),
        }
    }

    /// Marks the x axis logarithmic (builder style).
    #[must_use]
    pub fn with_log_x(mut self) -> Self {
        self.log_x = true;
        self
    }

    /// Adds a series.
    pub fn push_series(&mut self, series: Series) {
        self.series.push(series);
    }

    /// Adds an annotation line.
    pub fn annotate(&mut self, note: impl Into<String>) {
        self.annotations.push(note.into());
    }

    /// Finds a series by label.
    #[must_use]
    pub fn series_by_label(&self, label: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.label == label)
    }

    /// Renders the figure as CSV: header `x,<label1>,<label2>,…`, one
    /// row per distinct x value (blank cells where a series has no
    /// point).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut xs: Vec<f64> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|p| p.0))
            .collect();
        xs.sort_by(|a, b| a.partial_cmp(b).expect("NaN x"));
        xs.dedup_by(|a, b| (*a - *b).abs() < 1e-9);

        let mut out = String::new();
        out.push_str(&csv_escape(&self.x_label));
        for s in &self.series {
            out.push(',');
            out.push_str(&csv_escape(&s.label));
        }
        out.push('\n');
        for x in xs {
            let _ = write!(out, "{}", fmt_num(x));
            for s in &self.series {
                out.push(',');
                if let Some(y) = s.y_at(x) {
                    let _ = write!(out, "{}", fmt_num(y));
                }
            }
            out.push('\n');
        }
        out
    }

    /// Writes the CSV next to other results.
    ///
    /// # Errors
    ///
    /// Returns an error when the file cannot be written.
    pub fn write_csv(&self, dir: impl AsRef<Path>) -> Result<()> {
        let dir = dir.as_ref();
        fs::create_dir_all(dir)?;
        fs::write(dir.join(format!("{}.csv", self.id)), self.to_csv())?;
        Ok(())
    }

    /// Parses a figure back from [`FigureData::to_csv`] output — the
    /// inverse used by the `plot` tool to re-render stored results.
    ///
    /// The id/title/axis metadata other than the x label is not stored
    /// in the CSV; the caller supplies an id and the header row's first
    /// cell becomes the x label.
    ///
    /// # Errors
    ///
    /// Returns [`crate::SyncPerfError::Io`] for an empty document or
    /// malformed rows.
    pub fn from_csv(id: impl Into<String>, csv: &str) -> crate::error::Result<Self> {
        use crate::error::SyncPerfError;
        let mut lines = csv.lines();
        let header = lines
            .next()
            .ok_or_else(|| SyncPerfError::Io("empty csv".into()))?;
        let mut cols = split_csv_row(header);
        if cols.is_empty() {
            return Err(SyncPerfError::Io("empty csv header".into()));
        }
        let x_label = cols.remove(0);
        let mut series: Vec<Series> = cols
            .iter()
            .map(|label| Series::new(label.clone(), Vec::new()))
            .collect();
        for (row_no, line) in lines.enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let fields = split_csv_row(line);
            if fields.len() != series.len() + 1 {
                return Err(SyncPerfError::Io(format!(
                    "csv row {}: expected {} fields, got {}",
                    row_no + 2,
                    series.len() + 1,
                    fields.len()
                )));
            }
            let x: f64 = fields[0]
                .parse()
                .map_err(|e| SyncPerfError::Io(format!("bad x `{}`: {e}", fields[0])))?;
            for (s, field) in series.iter_mut().zip(&fields[1..]) {
                if field.is_empty() {
                    continue; // missing point for this series
                }
                let y: f64 = field
                    .parse()
                    .map_err(|e| SyncPerfError::Io(format!("bad y `{field}`: {e}")))?;
                s.points.push((x, y));
            }
        }
        let id = id.into();
        let mut fig = FigureData::new(id.clone(), id, x_label, "y");
        for s in series {
            fig.push_series(s);
        }
        Ok(fig)
    }

    /// Renders a fixed-width table: one row per x, one column per
    /// series, engineering-formatted values.
    #[must_use]
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{} — {}", self.id, self.title);
        let _ = writeln!(out, "y: {}", self.y_label);
        let col_w = 12usize.max(
            self.series
                .iter()
                .map(|s| s.label.len() + 2)
                .max()
                .unwrap_or(12),
        );
        let _ = write!(out, "{:>10}", self.x_label);
        for s in &self.series {
            let _ = write!(out, "{:>col_w$}", s.label);
        }
        out.push('\n');

        let mut xs: Vec<f64> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|p| p.0))
            .collect();
        xs.sort_by(|a, b| a.partial_cmp(b).expect("NaN x"));
        xs.dedup_by(|a, b| (*a - *b).abs() < 1e-9);

        for x in xs {
            let _ = write!(out, "{:>10}", fmt_num(x));
            for s in &self.series {
                match s.y_at(x) {
                    Some(y) => {
                        let _ = write!(out, "{:>col_w$}", fmt_eng(y));
                    }
                    None => {
                        let _ = write!(out, "{:>col_w$}", "-");
                    }
                }
            }
            out.push('\n');
        }
        for note in &self.annotations {
            let _ = writeln!(out, "note: {note}");
        }
        out
    }

    /// Renders a rough ASCII line chart (`height` rows tall), one
    /// letter per series. Intended for eyeballing figure shapes in a
    /// terminal.
    #[must_use]
    pub fn render_ascii(&self, width: usize, height: usize) -> String {
        if self.series.is_empty() || self.series.iter().all(|s| s.points.is_empty()) {
            return format!("{} — (no data)\n", self.id);
        }
        let ymax = self
            .series
            .iter()
            .filter(|s| !s.points.is_empty())
            .map(Series::y_max)
            .fold(f64::MIN, f64::max)
            .max(f64::MIN_POSITIVE);
        let (xmin, xmax) = self.x_range();
        let mut grid = vec![vec![b' '; width]; height];
        let markers: &[u8] = b"*o+x#@%&";

        for (si, s) in self.series.iter().enumerate() {
            let m = markers[si % markers.len()];
            for &(x, y) in &s.points {
                let xi = self.x_to_col(x, xmin, xmax, width);
                let frac = (y / ymax).clamp(0.0, 1.0);
                let yi = ((1.0 - frac) * (height - 1) as f64).round() as usize;
                grid[yi.min(height - 1)][xi.min(width - 1)] = m;
            }
        }

        let mut out = String::new();
        let _ = writeln!(out, "{} — {}", self.id, self.title);
        let _ = writeln!(out, "y_max = {} {}", fmt_eng(ymax), self.y_label);
        for row in grid {
            out.push('|');
            out.push_str(std::str::from_utf8(&row).expect("ascii grid"));
            out.push('\n');
        }
        let _ = writeln!(out, "+{}", "-".repeat(width));
        let _ = writeln!(
            out,
            " x: {} from {} to {}{}",
            self.x_label,
            fmt_num(xmin),
            fmt_num(xmax),
            if self.log_x { " (log scale)" } else { "" }
        );
        for (si, s) in self.series.iter().enumerate() {
            let _ = writeln!(
                out,
                "   {} = {}",
                markers[si % markers.len()] as char,
                s.label
            );
        }
        out
    }

    fn x_range(&self) -> (f64, f64) {
        let xs: Vec<f64> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|p| p.0))
            .collect();
        (crate::stats::min(&xs), crate::stats::max(&xs))
    }

    fn x_to_col(&self, x: f64, xmin: f64, xmax: f64, width: usize) -> usize {
        let frac = if self.log_x && xmin > 0.0 && xmax > xmin {
            (x.ln() - xmin.ln()) / (xmax.ln() - xmin.ln())
        } else if xmax > xmin {
            (x - xmin) / (xmax - xmin)
        } else {
            0.0
        };
        ((frac.clamp(0.0, 1.0)) * (width - 1) as f64).round() as usize
    }
}

/// Splits one CSV row, honoring the quoting produced by `csv_escape`.
fn split_csv_row(line: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut field = String::new();
    let mut in_quotes = false;
    let mut chars = line.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '"' if in_quotes && chars.peek() == Some(&'"') => {
                chars.next();
                field.push('"');
            }
            '"' => in_quotes = !in_quotes,
            ',' if !in_quotes => out.push(std::mem::take(&mut field)),
            other => field.push(other),
        }
    }
    out.push(field);
    out
}

fn csv_escape(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

fn fmt_num(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Engineering formatting: `3.21e8` style with three significant digits.
#[must_use]
pub fn fmt_eng(v: f64) -> String {
    if v == 0.0 {
        return "0".to_string();
    }
    format!("{v:.3e}")
}

/// Renders a recorder's counter/gauge [`Snapshot`](crate::obs::Snapshot)
/// as a fixed-width ASCII table, prefixed with the protocol retry
/// summary when any `protocol.*` counters are present. This is the
/// `--format summary` sink of `trace_report` and the human-readable
/// companion to the Chrome/JSONL exports.
#[must_use]
pub fn render_obs_summary(snap: &crate::obs::Snapshot) -> String {
    let mut out = String::new();
    let retry = crate::protocol::RetrySummary::from_snapshot(snap);
    if retry.attempts > 0 {
        let _ = writeln!(out, "protocol health");
        let _ = writeln!(
            out,
            "  attempts {} rejected {} ({:.1}%), runs {} exhausted {}, negligible {}",
            retry.attempts,
            retry.rejected,
            100.0 * retry.rejection_rate(),
            retry.runs,
            retry.exhausted_runs,
            retry.negligible_verdicts,
        );
        out.push('\n');
    }
    let name_w = snap
        .counters
        .keys()
        .chain(snap.gauges.keys())
        .map(String::len)
        .max()
        .unwrap_or(8)
        .max(8);
    let _ = writeln!(out, "{:<name_w$}  {:>14}  kind", "counter", "value");
    let _ = writeln!(out, "{}", "-".repeat(name_w + 24));
    for (name, value) in &snap.counters {
        let _ = writeln!(out, "{name:<name_w$}  {value:>14}  counter");
    }
    for (name, value) in &snap.gauges {
        let mode = snap.gauge_modes.get(name).copied().unwrap_or_default();
        let _ = writeln!(
            out,
            "{name:<name_w$}  {value:>14}  gauge ({})",
            mode.label()
        );
    }
    if !snap.histograms.is_empty() {
        let hist_w = snap
            .histograms
            .keys()
            .map(String::len)
            .max()
            .unwrap_or(9)
            .max(9);
        let _ = writeln!(
            out,
            "\n{:<hist_w$}  {:>10}  {:>10}  {:>10}  {:>10}  {:>10}",
            "histogram", "count", "p50", "p90", "p99", "max"
        );
        let _ = writeln!(out, "{}", "-".repeat(hist_w + 60));
        for (name, h) in &snap.histograms {
            let _ = writeln!(
                out,
                "{name:<hist_w$}  {:>10}  {:>10}  {:>10}  {:>10}  {:>10}",
                h.count(),
                h.quantile(0.50),
                h.quantile(0.90),
                h.quantile(0.99),
                h.max()
            );
        }
    }
    if snap.dropped_events > 0 {
        let per_thread = snap
            .dropped_by_thread
            .iter()
            .map(|(tid, n)| format!("tid {tid}: {n}"))
            .collect::<Vec<_>>()
            .join(", ");
        let _ = writeln!(
            out,
            "\n!! {} events dropped (ring capacity) [{per_thread}]",
            snap.dropped_events
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_fig() -> FigureData {
        let mut f = FigureData::new("figX", "Test Figure", "threads", "ops/s/thread");
        f.push_series(Series::new("int", vec![(2.0, 100.0), (4.0, 50.0)]));
        f.push_series(Series::new("float", vec![(2.0, 80.0), (4.0, 40.0)]));
        f
    }

    #[test]
    fn csv_has_header_and_rows() {
        let csv = sample_fig().to_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("threads,int,float"));
        assert_eq!(lines.next(), Some("2,100,80"));
        assert_eq!(lines.next(), Some("4,50,40"));
    }

    #[test]
    fn csv_escapes_commas() {
        assert_eq!(csv_escape("a,b"), "\"a,b\"");
        assert_eq!(csv_escape("plain"), "plain");
        assert_eq!(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
    }

    #[test]
    fn csv_blank_cell_for_missing_point() {
        let mut f = sample_fig();
        f.push_series(Series::new("partial", vec![(2.0, 1.0)]));
        let csv = f.to_csv();
        let row4 = csv.lines().nth(2).unwrap();
        assert_eq!(row4, "4,50,40,");
    }

    #[test]
    fn series_lookup() {
        let f = sample_fig();
        assert_eq!(f.series_by_label("int").unwrap().y_at(4.0), Some(50.0));
        assert!(f.series_by_label("missing").is_none());
        assert_eq!(f.series_by_label("int").unwrap().y_max(), 100.0);
        assert_eq!(f.series_by_label("int").unwrap().y_min(), 50.0);
    }

    #[test]
    fn table_render_contains_values() {
        let t = sample_fig().render_table();
        assert!(t.contains("figX"));
        assert!(t.contains("int"));
        assert!(t.contains("1.000e2"));
    }

    #[test]
    fn ascii_render_has_legend_and_axes() {
        let a = sample_fig().render_ascii(40, 10);
        assert!(a.contains("* = int"));
        assert!(a.contains("o = float"));
        assert!(a.contains("x: threads"));
    }

    #[test]
    fn ascii_render_empty_fig() {
        let f = FigureData::new("e", "Empty", "x", "y");
        assert!(f.render_ascii(10, 5).contains("no data"));
    }

    #[test]
    fn log_x_maps_powers_evenly() {
        let mut f = FigureData::new("l", "Log", "threads", "y").with_log_x();
        f.push_series(Series::new(
            "s",
            vec![(1.0, 1.0), (32.0, 1.0), (1024.0, 1.0)],
        ));
        // column of 32 should be half-way between 1 and 1024 on log scale
        let col_mid = f.x_to_col(32.0, 1.0, 1024.0, 101);
        assert_eq!(col_mid, 50);
    }

    #[test]
    fn write_csv_roundtrip() {
        let dir = std::env::temp_dir().join("syncperf_report_test");
        let f = sample_fig();
        f.write_csv(&dir).unwrap();
        let content = std::fs::read_to_string(dir.join("figX.csv")).unwrap();
        assert_eq!(content, f.to_csv());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn csv_roundtrip_preserves_data() {
        let fig = sample_fig();
        let parsed = FigureData::from_csv("figX", &fig.to_csv()).unwrap();
        assert_eq!(parsed.x_label, "threads");
        assert_eq!(parsed.series.len(), 2);
        for s in &fig.series {
            let p = parsed.series_by_label(&s.label).unwrap();
            assert_eq!(p.points, s.points, "{}", s.label);
        }
    }

    #[test]
    fn csv_roundtrip_with_missing_cells_and_quoted_labels() {
        let mut fig = FigureData::new("q", "Q", "x,axis", "y");
        fig.push_series(Series::new("a,b", vec![(1.0, 2.0)]));
        fig.push_series(Series::new("plain", vec![(1.0, 3.0), (2.0, 4.0)]));
        let parsed = FigureData::from_csv("q", &fig.to_csv()).unwrap();
        assert_eq!(parsed.x_label, "x,axis");
        assert_eq!(
            parsed.series_by_label("a,b").unwrap().points,
            vec![(1.0, 2.0)]
        );
        assert_eq!(parsed.series_by_label("plain").unwrap().points.len(), 2);
    }

    #[test]
    fn from_csv_rejects_malformed() {
        assert!(FigureData::from_csv("x", "").is_err());
        assert!(FigureData::from_csv(
            "x",
            "t,a
1,2,3
"
        )
        .is_err());
        assert!(FigureData::from_csv(
            "x",
            "t,a
nope,2
"
        )
        .is_err());
    }

    #[test]
    fn fmt_eng_examples() {
        assert_eq!(fmt_eng(0.0), "0");
        assert_eq!(fmt_eng(123_456_789.0), "1.235e8");
    }
}
