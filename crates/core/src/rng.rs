//! Small deterministic PRNG used by the simulators' jitter models.
//!
//! The workspace builds fully offline, so instead of pulling in an
//! external `rand` crate the simulators share this SplitMix64-based
//! generator. SplitMix64 (Steele, Lea & Flood, OOPSLA 2014) passes
//! BigCrush, needs only one u64 of state, and — crucially for the
//! measurement protocol's reproducibility guarantees — is trivially
//! seedable and portable across platforms.

/// Deterministic 64-bit PRNG (SplitMix64).
///
/// # Examples
///
/// ```
/// use syncperf_core::rng::SplitMix64;
///
/// let mut a = SplitMix64::seed_from_u64(42);
/// let mut b = SplitMix64::seed_from_u64(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// let u = a.gen_symmetric();
/// assert!((-1.0..=1.0).contains(&u));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a 64-bit seed. Equal seeds produce
    /// identical streams on every platform.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        // Take the top 53 bits — the low bits of any LCG-ish mix are
        // the weakest.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[-1, 1]` — the shape both simulators' jitter
    /// models draw from.
    pub fn gen_symmetric(&mut self) -> f64 {
        2.0 * self.next_f64() - 1.0
    }

    /// Uniform `u64` below `bound` (`bound > 0`), via rejection-free
    /// multiply-shift reduction. Slight modulo bias below 2⁻⁶⁴·bound —
    /// irrelevant for jitter and test-case generation.
    pub fn gen_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = SplitMix64::seed_from_u64(0x5E_AD_BE_EF);
        let mut b = SplitMix64::seed_from_u64(0x5E_AD_BE_EF);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SplitMix64::seed_from_u64(1);
        let mut b = SplitMix64::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn known_answer_vector() {
        // Reference values from the canonical SplitMix64 (seed 1234567).
        let mut r = SplitMix64::seed_from_u64(1234567);
        assert_eq!(r.next_u64(), 6457827717110365317);
        assert_eq!(r.next_u64(), 3203168211198807973);
    }

    #[test]
    fn symmetric_range_and_mean() {
        let mut r = SplitMix64::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let u = r.gen_symmetric();
            assert!((-1.0..=1.0).contains(&u));
            sum += u;
        }
        assert!(
            (sum / 10_000.0).abs() < 0.05,
            "mean {} not near 0",
            sum / 10_000.0
        );
    }

    #[test]
    fn gen_below_respects_bound() {
        let mut r = SplitMix64::seed_from_u64(9);
        for _ in 0..1000 {
            assert!(r.gen_below(17) < 17);
        }
    }
}
