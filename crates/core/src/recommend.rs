//! The paper's developer recommendations (Sections V-A5 and V-B5),
//! derived from measured data rather than hard-coded.
//!
//! Feed the summary metrics extracted from regenerated figures into
//! [`recommend_openmp`] / [`recommend_cuda`] and get back the guidance
//! the paper gives, each item citing its numeric evidence.

use std::fmt;

use crate::report::Series;

/// Which API a recommendation concerns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Audience {
    /// OpenMP / CPU developers (Section V-A5).
    OpenMp,
    /// CUDA / GPU developers (Section V-B5).
    Cuda,
}

/// One actionable piece of guidance with its supporting evidence.
#[derive(Debug, Clone, PartialEq)]
pub struct Recommendation {
    /// Target audience.
    pub audience: Audience,
    /// Short topic, e.g. `"critical sections"`.
    pub topic: String,
    /// The advice itself.
    pub advice: String,
    /// The measured evidence backing the advice.
    pub evidence: String,
}

impl fmt::Display for Recommendation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {}: {} ({})",
            match self.audience {
                Audience::OpenMp => "OpenMP",
                Audience::Cuda => "CUDA",
            },
            self.topic,
            self.advice,
            self.evidence
        )
    }
}

/// Summary metrics extracted from the regenerated OpenMP figures.
#[derive(Debug, Clone)]
pub struct OpenMpFindings {
    /// Barrier throughput vs. threads (Fig. 1, any dtype-free series).
    pub barrier: Series,
    /// Shared-variable atomic-update throughput for `int` (Fig. 2).
    pub atomic_scalar_int: Series,
    /// Critical-section throughput for `int` (Fig. 5).
    pub critical_int: Series,
    /// Ratio of private-array atomic throughput at a false-sharing-free
    /// stride over stride 1, at the maximum core count (Fig. 3).
    pub false_sharing_speedup: f64,
    /// Whether the atomic-read overhead was within timer accuracy.
    pub atomic_read_negligible: bool,
    /// Per-thread throughput at max hyperthreads divided by throughput
    /// at the physical core count (≈ 1.0 means hyperthreading is
    /// harmless for synchronization).
    pub hyperthread_ratio: f64,
    /// Flush overhead relative to a plain update when no false sharing
    /// exists (≈ 0 means flushes are effectively free there).
    pub flush_overhead_no_sharing: f64,
}

/// Summary metrics extracted from the regenerated CUDA figures.
#[derive(Debug, Clone)]
pub struct CudaFindings {
    /// `__syncthreads` throughput vs. threads (Fig. 7).
    pub syncthreads: Series,
    /// Max/min ratio of `__syncwarp` throughput across the sweep
    /// (≈ 1 means "largely constant"; Fig. 8).
    pub syncwarp_variation: f64,
    /// `int` over `float` atomicAdd throughput at high thread counts
    /// (Fig. 9).
    pub int_over_float_atomic: f64,
    /// Shared-location atomicAdd throughput over private-location
    /// throughput at full load (< 1 means overlap hurts; Figs. 9/10).
    pub shared_over_private_atomic: f64,
    /// Max/min ratio of `__threadfence` throughput across thread counts
    /// (≈ 1 means constant overhead; Fig. 14).
    pub fence_variation: f64,
    /// 32-bit over 64-bit shuffle throughput at full SM load (Fig. 15).
    pub shfl_32_over_64: f64,
    /// Throughput of a partial (1-thread-per-warp) atomic relative to a
    /// full-warp atomic on the same location (> 1 favors "turning off"
    /// warp lanes for atomics; recommendation 8).
    pub partial_warp_atomic_gain: f64,
}

/// Derives the paper's seven OpenMP recommendations from findings.
#[must_use]
pub fn recommend_openmp(f: &OpenMpFindings) -> Vec<Recommendation> {
    let mut recs = Vec::new();
    let rec = |topic: &str, advice: String, evidence: String| Recommendation {
        audience: Audience::OpenMp,
        topic: topic.to_string(),
        advice,
        evidence,
    };

    // 1) Barriers: per-thread cost stabilizes; not a growing concern.
    if let (Some(first), Some(last)) = (f.barrier.points.first(), f.barrier.points.last()) {
        let mid = f
            .barrier
            .y_at(f64::midpoint(first.0, last.0))
            .unwrap_or(last.1);
        let plateau = (last.1 / mid.max(f64::MIN_POSITIVE)).clamp(0.0, f64::MAX);
        recs.push(rec(
            "barriers",
            "barriers are not much cheaper at low thread counts; their per-thread cost \
             stabilizes, so they are not a growing concern at larger thread counts"
                .into(),
            format!(
                "barrier throughput changes only {:.0}% from mid to max thread count",
                (plateau - 1.0).abs() * 100.0
            ),
        ));
    }

    // 2) Avoid same-location atomic updates/writes.
    if let (Some(first), Some(last)) = (
        f.atomic_scalar_int.points.first(),
        f.atomic_scalar_int.points.last(),
    ) {
        let drop = first.1 / last.1.max(f64::MIN_POSITIVE);
        recs.push(rec(
            "shared atomics",
            "avoid atomic updates or writes by multiple threads to the same memory \
             location; they are quite slow under contention"
                .into(),
            format!("per-thread throughput drops {drop:.1}x from 2 threads to the maximum"),
        ));
    }

    // 3) False sharing.
    recs.push(rec(
        "false sharing",
        "assign work so threads access mostly non-overlapping cache lines; atomics to \
         different locations are much faster when the locations do not share a line"
            .into(),
        format!(
            "padding elements to separate cache lines speeds up private atomics {:.1}x",
            f.false_sharing_speedup
        ),
    ));

    // 4) Atomic reads.
    if f.atomic_read_negligible {
        recs.push(rec(
            "atomic reads",
            "atomic reads incur no measurable extra latency and can be used wherever \
             prudent"
                .into(),
            "read-vs-atomic-read difference was within timer accuracy".into(),
        ));
    }

    // 5) Critical sections.
    if let (Some(atomic), Some(critical)) = (
        f.atomic_scalar_int.points.last(),
        f.critical_int.points.last(),
    ) {
        let slowdown = atomic.1 / critical.1.max(f64::MIN_POSITIVE);
        recs.push(rec(
            "critical sections",
            "avoid critical sections unless no alternative exists".into(),
            format!(
                "a critical-section add is {slowdown:.1}x slower than the equivalent \
                 atomic at the maximum thread count"
            ),
        ));
    }

    // 6) Flushes.
    recs.push(rec(
        "flushes",
        "flushes have little per-thread performance impact where they are not needed \
         for consistency and can be used as needed"
            .into(),
        format!(
            "flush overhead without false sharing is {:.1}% of a plain update",
            f.flush_overhead_no_sharing * 100.0
        ),
    ));

    // 7) Hyperthreading.
    recs.push(rec(
        "hyperthreading",
        "using hyperthreads is fine; they do not significantly slow down \
         synchronizations"
            .into(),
        format!(
            "per-thread throughput at max hyperthreads is {:.0}% of the value at the \
             physical core count",
            f.hyperthread_ratio * 100.0
        ),
    ));

    recs
}

/// Derives the paper's eight CUDA recommendations from findings.
#[must_use]
pub fn recommend_cuda(f: &CudaFindings) -> Vec<Recommendation> {
    let mut recs = Vec::new();
    let rec = |topic: &str, advice: String, evidence: String| Recommendation {
        audience: Audience::Cuda,
        topic: topic.to_string(),
        advice,
        evidence,
    };

    // 1) __syncthreads vs warp count.
    if let (Some(first), Some(last)) = (f.syncthreads.points.first(), f.syncthreads.points.last()) {
        recs.push(rec(
            "__syncthreads",
            "__syncthreads() throughput decreases with increasing warp counts; smaller \
             block sizes may help barrier-heavy code"
                .into(),
            format!(
                "throughput falls {:.1}x from {} to {} threads per block",
                first.1 / last.1.max(f64::MIN_POSITIVE),
                first.0,
                last.0
            ),
        ));
    }

    // 2) __syncwarp.
    recs.push(rec(
        "__syncwarp",
        "__syncwarp() throughput is largely constant and can be used without regard \
         for block or thread count"
            .into(),
        format!(
            "max/min throughput ratio across the sweep is {:.2}",
            f.syncwarp_variation
        ),
    ));

    // 3) int atomics preferred.
    recs.push(rec(
        "atomic data types",
        "prefer int atomic adds and CAS over other data types".into(),
        format!(
            "int atomicAdd is {:.1}x faster than float at high load",
            f.int_over_float_atomic
        ),
    ));

    // 4) Avoid overlapping atomics.
    recs.push(rec(
        "atomic overlap",
        "multiple atomic adds/CAS on the same memory location slow performance; avoid \
         overlap"
            .into(),
        format!(
            "same-location atomic throughput is {:.0}% of the private-location value",
            f.shared_over_private_atomic * 100.0
        ),
    ));

    // 5) Too many simultaneous atomics.
    recs.push(rec(
        "atomic volume",
        "the hardware performs a bounded number of atomics per unit time; avoid running \
         too many simultaneously"
            .into(),
        "private-array atomic throughput per thread decreases with block count".into(),
    ));

    // 6) Thread fences.
    recs.push(rec(
        "thread fences",
        "thread fences incur largely constant overhead and can be used as necessary \
         without regard for thread count"
            .into(),
        format!("max/min fence throughput ratio is {:.2}", f.fence_variation),
    ));

    // 7) Warp shuffles.
    recs.push(rec(
        "warp shuffles",
        "warp shuffles are fast and avoid memory traffic; expect reduced throughput \
         near full SM load, more so for 8-byte types"
            .into(),
        format!(
            "32-bit shuffles are {:.1}x faster than 64-bit at full load",
            f.shfl_32_over_64
        ),
    ));

    // 8) Full warps except for atomics.
    recs.push(rec(
        "warp utilization",
        "use full warps to maximize performance, except for atomics: turning off warp \
         lanes that do not need to execute an atomic can yield higher performance"
            .into(),
        format!(
            "a 1-lane-per-warp atomic achieves {:.1}x the per-op throughput of a \
             full-warp atomic on the same location",
            f.partial_warp_atomic_gain
        ),
    ));

    recs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cpu_findings() -> OpenMpFindings {
        OpenMpFindings {
            barrier: Series::new("barrier", vec![(2.0, 9e6), (16.0, 3e6), (32.0, 2.9e6)]),
            atomic_scalar_int: Series::new("int", vec![(2.0, 4e7), (32.0, 4e6)]),
            critical_int: Series::new("int", vec![(2.0, 8e6), (32.0, 4e5)]),
            false_sharing_speedup: 6.0,
            atomic_read_negligible: true,
            hyperthread_ratio: 0.95,
            flush_overhead_no_sharing: 0.05,
        }
    }

    fn gpu_findings() -> CudaFindings {
        CudaFindings {
            syncthreads: Series::new("any", vec![(32.0, 1e9), (1024.0, 6e7)]),
            syncwarp_variation: 1.3,
            int_over_float_atomic: 3.0,
            shared_over_private_atomic: 0.2,
            fence_variation: 1.1,
            shfl_32_over_64: 2.0,
            partial_warp_atomic_gain: 4.0,
        }
    }

    #[test]
    fn openmp_yields_all_seven() {
        let recs = recommend_openmp(&cpu_findings());
        assert_eq!(recs.len(), 7);
        assert!(recs.iter().all(|r| r.audience == Audience::OpenMp));
        assert!(recs.iter().any(|r| r.topic == "critical sections"));
        assert!(recs.iter().any(|r| r.topic == "false sharing"));
    }

    #[test]
    fn atomic_read_rec_dropped_when_not_negligible() {
        let mut f = cpu_findings();
        f.atomic_read_negligible = false;
        let recs = recommend_openmp(&f);
        assert_eq!(recs.len(), 6);
        assert!(!recs.iter().any(|r| r.topic == "atomic reads"));
    }

    #[test]
    fn cuda_yields_all_eight() {
        let recs = recommend_cuda(&gpu_findings());
        assert_eq!(recs.len(), 8);
        assert!(recs.iter().all(|r| r.audience == Audience::Cuda));
        assert!(recs.iter().any(|r| r.topic == "warp utilization"));
    }

    #[test]
    fn evidence_carries_numbers() {
        let recs = recommend_cuda(&gpu_findings());
        let dtype_rec = recs
            .iter()
            .find(|r| r.topic == "atomic data types")
            .unwrap();
        assert!(dtype_rec.evidence.contains("3.0x"));
    }

    #[test]
    fn display_includes_audience() {
        let recs = recommend_openmp(&cpu_findings());
        assert!(recs[0].to_string().starts_with("[OpenMP]"));
    }
}
