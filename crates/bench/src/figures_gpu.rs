//! Regeneration of the paper's CUDA figures (Figs. 7-15, §V-B3/4's
//! no-figure findings) on the GPU simulator.

use crate::common::{gpu_dtype_series, gpu_series, measure_gpu_batch, paper_loops};
use syncperf_core::{
    kernel, DType, FigureData, Protocol, Result, Scope, Series, ShflVariant, VoteKind, SYSTEM1,
    SYSTEM3,
};

/// Fig. 7 — `__syncthreads()` throughput (identical at any block
/// count).
///
/// # Errors
///
/// Propagates simulator errors.
pub fn fig07_syncthreads() -> Result<Vec<FigureData>> {
    let mut fig = FigureData::new(
        "fig07",
        "__syncthreads() throughput at any block count (System 3)",
        "threads per block",
        "syncs/s/thread",
    )
    .with_log_x();
    for blocks in SYSTEM3.gpu.block_count_sweep() {
        fig.push_series(gpu_series(
            &SYSTEM3,
            blocks,
            &format!("{blocks} blocks"),
            &kernel::cuda_syncthreads(),
        )?);
    }
    fig.annotate("all block counts overlap exactly: the barrier is block-local");
    Ok(vec![fig])
}

/// Fig. 8 — `__syncwarp()` on Systems 3 and 1 at full and double block
/// configurations.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn fig08_syncwarp() -> Result<Vec<FigureData>> {
    let mut figs = Vec::new();
    for (panel, sys) in [('a', &SYSTEM3), ('b', &SYSTEM1)] {
        let mut fig = FigureData::new(
            format!("fig08{panel}"),
            format!("__syncwarp() throughput ({})", sys.gpu.name),
            "threads per block",
            "syncs/s/thread",
        )
        .with_log_x();
        for (label, blocks) in [
            ("full (1 block/SM)", sys.gpu.sms),
            ("double (2 blocks/SM)", sys.gpu.sms * 2),
        ] {
            fig.push_series(gpu_series(sys, blocks, label, &kernel::cuda_syncwarp())?);
        }
        fig.annotate(format!(
            "full speed up to {} threads/SM on this device",
            syncperf_gpu_sim::GpuModel::for_spec(&sys.gpu).full_speed_threads_per_sm
        ));
        figs.push(fig);
    }
    Ok(figs)
}

/// Fig. 9 — `atomicAdd()` on one shared variable at 2 and 64 blocks.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn fig09_atomicadd_scalar() -> Result<Vec<FigureData>> {
    let mut figs = Vec::new();
    for (panel, blocks) in [('a', 2u32), ('b', 64)] {
        let mut fig = FigureData::new(
            format!("fig09{panel}"),
            format!("atomicAdd() on 1 shared variable, {blocks} blocks (System 3)"),
            "threads per block",
            "ops/s/thread",
        )
        .with_log_x();
        for s in gpu_dtype_series(
            &SYSTEM3,
            blocks,
            &DType::ALL,
            kernel::cuda_atomic_add_scalar,
        )? {
            fig.push_series(s);
        }
        if blocks == 2 {
            fig.annotate("warp aggregation keeps throughput constant up to 64 threads");
        }
        figs.push(fig);
    }
    Ok(figs)
}

/// Fig. 10 — `atomicAdd()` on private array elements at block counts
/// 1/128 and strides 1/32.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn fig10_atomicadd_array() -> Result<Vec<FigureData>> {
    array_atomic_fig(
        "fig10",
        "atomicAdd()",
        &DType::ALL,
        kernel::cuda_atomic_add_array,
    )
}

/// Fig. 11 — `atomicCAS()` on one shared variable at 1 and 128 blocks
/// (integer types only).
///
/// # Errors
///
/// Propagates simulator errors.
pub fn fig11_atomiccas_scalar() -> Result<Vec<FigureData>> {
    let mut figs = Vec::new();
    for (panel, blocks) in [('a', 1u32), ('b', 128)] {
        let mut fig = FigureData::new(
            format!("fig11{panel}"),
            format!("atomicCAS() on 1 shared variable, {blocks} blocks (System 3)"),
            "threads per block",
            "ops/s/thread",
        )
        .with_log_x();
        for s in gpu_dtype_series(
            &SYSTEM3,
            blocks,
            &DType::CAS_SUPPORTED,
            kernel::cuda_atomic_cas_scalar,
        )? {
            fig.push_series(s);
        }
        if blocks == 1 {
            fig.annotate("constant throughput up to 4 threads; no warp aggregation for CAS");
        }
        figs.push(fig);
    }
    Ok(figs)
}

/// Fig. 12 — `atomicCAS()` on private array elements.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn fig12_atomiccas_array() -> Result<Vec<FigureData>> {
    array_atomic_fig(
        "fig12",
        "atomicCAS()",
        &DType::CAS_SUPPORTED,
        kernel::cuda_atomic_cas_array,
    )
}

/// Fig. 13 — `atomicExch()` on one shared variable at 1 and 128 blocks.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn fig13_atomicexch() -> Result<Vec<FigureData>> {
    let mut figs = Vec::new();
    for (panel, blocks) in [('a', 1u32), ('b', 128)] {
        let mut fig = FigureData::new(
            format!("fig13{panel}"),
            format!("atomicExch() on 1 shared variable, {blocks} blocks (System 3)"),
            "threads per block",
            "ops/s/thread",
        )
        .with_log_x();
        for s in gpu_dtype_series(
            &SYSTEM3,
            blocks,
            &DType::CAS_SUPPORTED,
            kernel::cuda_atomic_exch,
        )? {
            fig.push_series(s);
        }
        figs.push(fig);
    }
    Ok(figs)
}

/// Fig. 14 — `__threadfence()` at block counts 1/128 and strides 1/32.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn fig14_threadfence() -> Result<Vec<FigureData>> {
    let mut figs = Vec::new();
    for (panel, blocks, stride) in [
        ('a', 1u32, 1u32),
        ('b', 1, 32),
        ('c', 128, 1),
        ('d', 128, 32),
    ] {
        let mut fig = FigureData::new(
            format!("fig14{panel}"),
            format!("__threadfence(), {blocks} blocks, stride {stride} (System 3)"),
            "threads per block",
            "fences/s/thread",
        )
        .with_log_x();
        for s in gpu_dtype_series(&SYSTEM3, blocks, &DType::ALL, |dt| {
            kernel::cuda_threadfence(Scope::Device, dt, stride)
        })? {
            fig.push_series(s);
        }
        fig.annotate("fairly constant regardless of thread count, block count, or stride");
        figs.push(fig);
    }
    Ok(figs)
}

/// Fig. 15 — `__shfl_sync()` at full and double block configurations.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn fig15_shfl() -> Result<Vec<FigureData>> {
    let mut figs = Vec::new();
    for (panel, label, blocks) in [
        ('a', "full (1 block/SM)", SYSTEM3.gpu.sms),
        ('b', "double (2 blocks/SM)", SYSTEM3.gpu.sms * 2),
    ] {
        let mut fig = FigureData::new(
            format!("fig15{panel}"),
            format!("__shfl_sync() throughput, {label} (System 3)"),
            "threads per block",
            "shuffles/s/thread",
        )
        .with_log_x();
        for s in gpu_dtype_series(&SYSTEM3, blocks, &DType::ALL, |dt| {
            kernel::cuda_shfl(dt, ShflVariant::Idx)
        })? {
            fig.push_series(s);
        }
        fig.annotate("64-bit types drop at half the thread count of 32-bit types");
        figs.push(fig);
    }
    Ok(figs)
}

/// §V-B3 (no figure) — fence scopes: `__threadfence_block()` is nearly
/// free, `__threadfence_system()` behaves like the device fence but is
/// erratic.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn exp_fence_scopes() -> Result<Vec<FigureData>> {
    let mut fig = FigureData::new(
        "exp_fence_scopes",
        "Thread-fence scopes: per-fence cost in cycles (System 3, 128 blocks)",
        "threads per block",
        "cycles per fence",
    )
    .with_log_x();
    let threads = SYSTEM3.gpu.thread_count_sweep();
    let scopes = [
        ("block", Scope::Block),
        ("device", Scope::Device),
        ("system", Scope::System),
    ];
    let batch: Vec<_> = scopes
        .iter()
        .flat_map(|&(_, scope)| {
            threads.iter().map(move |&t| {
                (
                    kernel::cuda_threadfence(scope, DType::I32, 1),
                    paper_loops(t).with_blocks(128),
                )
            })
        })
        .collect();
    let ms = measure_gpu_batch(&SYSTEM3, Protocol::PAPER, &batch)?;
    for (si, (label, _)) in scopes.iter().enumerate() {
        let points = threads
            .iter()
            .enumerate()
            .map(|(ti, &t)| (f64::from(t), ms[si * threads.len() + ti].per_op.max(0.0)))
            .collect();
        fig.push_series(Series::new(*label, points));
    }
    fig.annotate("block ≈ 0; system > device and erratic (PCIe)");
    Ok(vec![fig])
}

/// §V-B4 (no figure) — warp votes behave like `__syncwarp()` at
/// slightly lower throughput.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn exp_vote() -> Result<Vec<FigureData>> {
    let mut fig = FigureData::new(
        "exp_vote",
        "Warp vote functions vs __syncwarp() (System 3, full blocks)",
        "threads per block",
        "ops/s/thread",
    )
    .with_log_x();
    let blocks = SYSTEM3.gpu.sms;
    fig.push_series(gpu_series(
        &SYSTEM3,
        blocks,
        "__syncwarp",
        &kernel::cuda_syncwarp(),
    )?);
    for (label, kind) in [
        ("__ballot_sync", VoteKind::Ballot),
        ("__all_sync", VoteKind::All),
        ("__any_sync", VoteKind::Any),
    ] {
        fig.push_series(gpu_series(
            &SYSTEM3,
            blocks,
            label,
            &kernel::cuda_vote(kind),
        )?);
    }
    fig.annotate("votes track __syncwarp at slightly lower absolute throughput");
    Ok(vec![fig])
}

fn array_atomic_fig(
    id: &str,
    title_op: &str,
    dtypes: &[DType],
    make: impl Fn(DType, u32) -> syncperf_core::GpuKernel + Copy,
) -> Result<Vec<FigureData>> {
    let mut figs = Vec::new();
    for (panel, blocks, stride) in [
        ('a', 1u32, 1u32),
        ('b', 1, 32),
        ('c', 128, 1),
        ('d', 128, 32),
    ] {
        let mut fig = FigureData::new(
            format!("{id}{panel}"),
            format!(
                "{title_op} on private array elements, {blocks} blocks, stride {stride} (System 3)"
            ),
            "threads per block",
            "ops/s/thread",
        )
        .with_log_x();
        for s in gpu_dtype_series(&SYSTEM3, blocks, dtypes, |dt| make(dt, stride))? {
            fig.push_series(s);
        }
        figs.push(fig);
    }
    Ok(figs)
}

/// Extension (§II-B2 lists the wider atomic family) — throughput of
/// `atomicAdd/Sub/Min/Max/And/Or/Xor` on one shared int variable: all
/// commutative RMW ops share the add datapath and aggregate per warp.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn exp_atomic_ops() -> Result<Vec<FigureData>> {
    use syncperf_core::RmwOp;
    let mut fig = FigureData::new(
        "exp_atomic_ops",
        "The wider atomic-RMW family on one shared int (System 3, 2 blocks)",
        "threads per block",
        "ops/s/thread",
    )
    .with_log_x();
    fig.push_series(gpu_series(
        &SYSTEM3,
        2,
        "atomicAdd",
        &kernel::cuda_atomic_add_scalar(DType::I32),
    )?);
    for op in RmwOp::ALL {
        fig.push_series(gpu_series(
            &SYSTEM3,
            2,
            op.cuda_name(),
            &kernel::cuda_atomic_rmw_scalar(op, DType::I32),
        )?);
    }
    fig.annotate("all commutative RMW atomics share the add datapath (and warp aggregation)");
    Ok(vec![fig])
}

/// Extension (reference [10], the paper's methodological ancestor) —
/// the cost of warp divergence: marginal cost per serialized path is
/// constant.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn exp_divergence() -> Result<Vec<FigureData>> {
    let mut fig = FigureData::new(
        "exp_divergence",
        "Cost of warp divergence vs number of serialized paths (System 3)",
        "divergent paths",
        "cycles per divergent branch",
    );
    let paths = [1u32, 2, 4, 8, 16, 32];
    let batch: Vec<_> = paths
        .iter()
        .map(|&p| {
            (
                kernel::cuda_divergence(DType::I32, p),
                paper_loops(32).with_blocks(1),
            )
        })
        .collect();
    let ms = measure_gpu_batch(&SYSTEM3, Protocol::PAPER, &batch)?;
    let points = paths
        .iter()
        .zip(&ms)
        .map(|(&p, m)| (f64::from(p), m.per_op.max(0.0)))
        .collect();
    fig.push_series(Series::new("extra cycles over uniform execution", points));
    fig.annotate("linear in paths: the per-branch divergence cost is constant (ref. [10])");
    Ok(vec![fig])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig07_flat_through_warp_then_falling_and_block_invariant() {
        let fig = &fig07_syncthreads().unwrap()[0];
        let first = &fig.series[0];
        assert_eq!(
            first.y_at(1.0),
            first.y_at(32.0),
            "constant through the warp size"
        );
        assert!(first.y_at(64.0).unwrap() < first.y_at(32.0).unwrap());
        assert!(first.y_at(1024.0).unwrap() < first.y_at(64.0).unwrap());
        for s in &fig.series[1..] {
            assert_eq!(s.points, first.points, "identical at all block counts");
        }
    }

    #[test]
    fn fig08_double_config_drops_one_step_earlier() {
        let figs = fig08_syncwarp().unwrap();
        let s3 = &figs[0];
        let full = s3.series_by_label("full (1 block/SM)").unwrap();
        let double = s3.series_by_label("double (2 blocks/SM)").unwrap();
        // 4090: full-speed to 256 threads/SM → full drops at 512,
        // double (2 blocks/SM) drops at 256.
        assert_eq!(full.y_at(128.0), full.y_at(256.0));
        assert!(full.y_at(512.0).unwrap() < full.y_at(256.0).unwrap());
        assert!(double.y_at(256.0).unwrap() < double.y_at(128.0).unwrap());
        // System 1 (2070 SUPER) holds to 512 threads/SM.
        let s1 = &figs[1];
        let full1 = s1.series_by_label("full (1 block/SM)").unwrap();
        assert_eq!(full1.y_at(256.0), full1.y_at(512.0));
        assert!(full1.y_at(1024.0).unwrap() < full1.y_at(512.0).unwrap());
    }

    #[test]
    fn fig09_constant_region_and_dtype_gap() {
        let figs = fig09_atomicadd_scalar().unwrap();
        let two_blocks = &figs[0];
        let int = two_blocks.series_by_label("int").unwrap();
        assert_eq!(
            int.y_at(32.0),
            int.y_at(64.0),
            "constant up to 64 threads at 2 blocks"
        );
        assert!(int.y_at(128.0).unwrap() < int.y_at(64.0).unwrap());
        // Gap between int and the other three types at high load.
        for other in ["ull", "float", "double"] {
            let s = two_blocks.series_by_label(other).unwrap();
            assert!(
                int.y_at(1024.0).unwrap() > s.y_at(1024.0).unwrap(),
                "{other}"
            );
        }
        // ull beats the floating-point types.
        let ull = two_blocks.series_by_label("ull").unwrap();
        let f32s = two_blocks.series_by_label("float").unwrap();
        assert!(ull.y_at(1024.0).unwrap() > f32s.y_at(1024.0).unwrap());
    }

    #[test]
    fn fig10_block_count_and_stride_effects() {
        let figs = fig10_atomicadd_array().unwrap();
        let y = |panel: usize, x: f64| figs[panel].series_by_label("int").unwrap().y_at(x).unwrap();
        // More blocks → lower per-thread throughput (L2 sharing).
        assert!(
            y(0, 256.0) > y(2, 256.0),
            "1 block beats 128 blocks at stride 1"
        );
        // Stride matters far more at 128 blocks than at 1 block.
        let ratio_1 = y(0, 1024.0) / y(1, 1024.0);
        let ratio_128 = y(2, 1024.0) / y(3, 1024.0);
        assert!(ratio_128 > ratio_1);
    }

    #[test]
    fn fig11_cas_constant_to_four_threads_at_one_block() {
        let figs = fig11_atomiccas_scalar().unwrap();
        let int = figs[0].series_by_label("int").unwrap();
        assert_eq!(int.y_at(1.0), int.y_at(4.0));
        assert!(int.y_at(8.0).unwrap() < int.y_at(4.0).unwrap());
        // Only integer types appear.
        assert_eq!(figs[0].series.len(), 2);
    }

    #[test]
    fn fig13_exch_tracks_cas_shape() {
        let exch = fig13_atomicexch().unwrap();
        let cas = fig11_atomiccas_scalar().unwrap();
        let e = exch[0].series_by_label("int").unwrap();
        let c = cas[0].series_by_label("int").unwrap();
        // Same knee location (both drop beyond 4 threads at 1 block).
        assert_eq!(e.y_at(1.0), e.y_at(4.0));
        assert!(e.y_at(8.0).unwrap() < e.y_at(4.0).unwrap());
        // And similar magnitude.
        let ratio = e.y_at(1024.0).unwrap() / c.y_at(1024.0).unwrap();
        assert!((0.5..2.0).contains(&ratio));
    }

    #[test]
    fn fig14_fence_constant_everywhere() {
        for fig in fig14_threadfence().unwrap() {
            for s in &fig.series {
                let ys: Vec<f64> = s.points.iter().map(|p| p.1).collect();
                let spread = syncperf_core::stats::relative_spread(&ys);
                assert!(
                    spread < 0.05,
                    "{}/{}: fence must be flat, spread {spread}",
                    fig.id,
                    s.label
                );
            }
        }
    }

    #[test]
    fn fig15_64bit_half_throughput_and_earlier_drop() {
        let figs = fig15_shfl().unwrap();
        let full = &figs[0];
        let f32s = full.series_by_label("float").unwrap();
        let f64s = full.series_by_label("double").unwrap();
        // 64-bit = 2 instructions → half throughput in the flat region.
        let r = f32s.y_at(32.0).unwrap() / f64s.y_at(32.0).unwrap();
        assert!((r - 2.0).abs() < 0.05, "expected 2x, got {r}");
        // 64-bit drops at half the thread count: at 256 threads the
        // double already slowed while float is still flat.
        assert_eq!(f32s.y_at(128.0), f32s.y_at(256.0));
        assert!(f64s.y_at(256.0).unwrap() < f64s.y_at(128.0).unwrap());
    }

    #[test]
    fn fence_scope_findings() {
        let fig = &exp_fence_scopes().unwrap()[0];
        let block = fig.series_by_label("block").unwrap();
        let device = fig.series_by_label("device").unwrap();
        let system = fig.series_by_label("system").unwrap();
        for &(x, y) in &device.points {
            assert!(
                block.y_at(x).unwrap() < 0.1 * y,
                "block fence ≈ free at {x}"
            );
            assert!(system.y_at(x).unwrap() > y, "system fence > device at {x}");
        }
    }

    #[test]
    fn votes_slightly_below_syncwarp() {
        let fig = &exp_vote().unwrap()[0];
        let sw = fig.series_by_label("__syncwarp").unwrap();
        for label in ["__ballot_sync", "__all_sync", "__any_sync"] {
            let v = fig.series_by_label(label).unwrap();
            for &(x, y) in &v.points {
                let ysw = sw.y_at(x).unwrap();
                assert!(y < ysw && y > 0.5 * ysw, "{label} at {x}");
            }
        }
    }
}
