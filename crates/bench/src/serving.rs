//! Bridges the query service ([`syncperf_serve`]) to the bench-side
//! kernel registry: resolving a [`ComputeRequest`] into a concrete
//! [`JobSpec`] requires the kernel bodies and system specs, which live
//! here rather than in the serve crate (serve stays registry-agnostic
//! and dependency-light).

use syncperf_core::{Affinity, SystemSpec, SYSTEM1, SYSTEM2, SYSTEM3};
use syncperf_sched::JobSpec;
use syncperf_serve::{ComputeRequest, Resolver};

use crate::codes::{kernel_inventory, AnyKernel};
use crate::common::{paper_loops, protocol};

/// Parses a paper-facing affinity label (`spread`, `close`, `system`).
#[must_use]
pub fn parse_affinity(label: &str) -> Option<Affinity> {
    match label {
        "spread" => Some(Affinity::Spread),
        "close" => Some(Affinity::Close),
        "system" => Some(Affinity::SystemChoice),
        _ => None,
    }
}

/// The system a serve-side compute runs against. The service is a
/// sweep-cache front-end, and the paper's figures display System 3
/// unless otherwise noted, so that is the default; `system=1|2|3` in
/// the request selects explicitly.
#[must_use]
pub fn system_for(id: Option<u32>) -> Option<&'static SystemSpec> {
    match id {
        None | Some(3) => Some(&SYSTEM3),
        Some(1) => Some(&SYSTEM1),
        Some(2) => Some(&SYSTEM2),
        _ => None,
    }
}

/// Resolves one compute request against the full kernel inventory.
/// Returns `None` for unknown kernels, executors, or affinity labels —
/// the service answers 422 for those.
#[must_use]
pub fn resolve(req: &ComputeRequest) -> Option<JobSpec> {
    let kernel = kernel_inventory()
        .into_iter()
        .find(|k| k.kernel.name() == req.kernel)?
        .kernel;
    let mut params = paper_loops(req.threads);
    if let (Some(n_iter), Some(n_unroll)) = (req.n_iter, req.n_unroll) {
        params = params.with_loops(n_iter, n_unroll);
    }
    if let Some(blocks) = req.blocks {
        params = params.with_blocks(blocks);
    }
    if let Some(label) = &req.affinity {
        params = params.with_affinity(parse_affinity(label)?);
    }
    params.validate().ok()?;
    let system = system_for(None)?;
    match (req.executor.as_str(), kernel) {
        ("cpu-sim", AnyKernel::Cpu(k)) => Some(JobSpec::cpu_sim(system, k, params, protocol())),
        ("gpu-sim", AnyKernel::Gpu(k)) => Some(JobSpec::gpu_sim(system, k, params, protocol())),
        // Real-thread jobs are host-scoped (their hash embeds the host
        // fingerprint); serving them remotely would hand out results
        // that no other host could reproduce, so the service refuses.
        _ => None,
    }
}

/// The resolver closure [`syncperf_serve::ServeConfig`] wants.
#[must_use]
pub fn default_resolver() -> Resolver {
    Box::new(resolve)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request(executor: &str, kernel: &str, threads: u32) -> ComputeRequest {
        ComputeRequest {
            executor: executor.into(),
            kernel: kernel.into(),
            threads,
            ..ComputeRequest::default()
        }
    }

    #[test]
    fn cpu_and_gpu_kernels_resolve() {
        let job = resolve(&request("cpu-sim", "omp_barrier", 8)).unwrap();
        assert_eq!(job.kernel_name(), "omp_barrier");
        assert_eq!(job.params().threads, 8);

        let mut req = request("gpu-sim", "cuda_syncthreads", 256);
        req.blocks = Some(4);
        let job = resolve(&req).unwrap();
        assert_eq!(job.kernel_name(), "cuda_syncthreads");
        assert_eq!(job.params().blocks, 4);
    }

    #[test]
    fn executor_kernel_mismatch_is_refused() {
        assert!(resolve(&request("gpu-sim", "omp_barrier", 8)).is_none());
        assert!(resolve(&request("cpu-sim", "cuda_syncthreads", 8)).is_none());
        assert!(resolve(&request("real-omp", "omp_barrier", 8)).is_none());
        assert!(resolve(&request("cpu-sim", "no_such_kernel", 8)).is_none());
    }

    #[test]
    fn affinity_and_loops_flow_into_params() {
        let mut req = request("cpu-sim", "omp_atomicadd_scalar_int", 4);
        req.affinity = Some("spread".into());
        req.n_iter = Some(500);
        req.n_unroll = Some(50);
        let job = resolve(&req).unwrap();
        assert_eq!(job.params().affinity, Affinity::Spread);
        assert_eq!(job.params().n_iter, 500);
        assert_eq!(job.params().n_unroll, 50);

        req.affinity = Some("bogus".into());
        assert!(resolve(&req).is_none());
    }

    #[test]
    fn resolution_is_deterministic() {
        let a = resolve(&request("cpu-sim", "omp_barrier", 8)).unwrap();
        let b = resolve(&request("cpu-sim", "omp_barrier", 8)).unwrap();
        assert_eq!(a.canonical(), b.canonical());
    }
}
