//! Shared entry point for the figure/experiment binaries.
//!
//! Every `fig*`/`exp*` binary is a one-liner delegating here, so the
//! command-line surface — including the `--trace <path>` observability
//! flag — is implemented once rather than once per binary.
//!
//! ```console
//! $ fig02_omp_atomic_update_scalar --trace fig02.json
//! $ fig02_omp_atomic_update_scalar --trace fig02.jsonl --trace-format jsonl
//! ```
//!
//! With `--trace`, a process-global [`Recorder`] is installed before
//! the generators run, so every layer (protocol, simulators, real
//! runtime) records into it; the merged events plus the counter
//! snapshot are then written in the requested format and an ASCII
//! summary of the counters is printed to stdout.

use std::path::{Path, PathBuf};

use syncperf_core::obs::{self, sink, Recorder};
use syncperf_core::report::render_obs_summary;
use syncperf_core::{FigureData, Result, SyncPerfError};

/// A figure/experiment generator, as registered in [`registry`].
pub type Generator = fn() -> Result<Vec<FigureData>>;

/// One runnable experiment: its binary name and figure generator.
#[derive(Debug, Clone, Copy)]
pub struct Entry {
    /// The binary / experiment name (e.g. `fig01_omp_barrier`).
    pub name: &'static str,
    /// One-line description.
    pub about: &'static str,
    /// The generator producing the figure data.
    pub generate: Generator,
}

/// Every library-backed figure/experiment generator, in paper order.
///
/// This is the single source of truth used both by the per-figure
/// binaries and by `trace_report` (which can run any entry by name
/// with recording enabled).
#[must_use]
pub fn registry() -> Vec<Entry> {
    vec![
        Entry {
            name: "fig01_omp_barrier",
            about: "Fig. 1: OpenMP barrier throughput",
            generate: crate::figures_cpu::fig01_barrier,
        },
        Entry {
            name: "fig02_omp_atomic_update_scalar",
            about: "Fig. 2: OpenMP atomic update on a shared variable",
            generate: crate::figures_cpu::fig02_atomic_update_scalar,
        },
        Entry {
            name: "fig03_omp_atomic_update_array",
            about: "Fig. 3: OpenMP atomic update on private array elements",
            generate: crate::figures_cpu::fig03_atomic_update_array,
        },
        Entry {
            name: "fig04_omp_atomic_write",
            about: "Fig. 4: OpenMP atomic write",
            generate: crate::figures_cpu::fig04_atomic_write,
        },
        Entry {
            name: "fig05_omp_critical",
            about: "Fig. 5: OpenMP critical-section add",
            generate: crate::figures_cpu::fig05_critical,
        },
        Entry {
            name: "fig06_omp_flush",
            about: "Fig. 6: OpenMP flush",
            generate: crate::figures_cpu::fig06_flush,
        },
        Entry {
            name: "exp_omp_atomic_read_capture",
            about: "§V-A2: atomic read is free; capture behaves like update",
            generate: crate::figures_cpu::exp_atomic_read_capture,
        },
        Entry {
            name: "exp_omp_affinity",
            about: "Extension: spread vs close thread affinity",
            generate: crate::figures_cpu::exp_affinity,
        },
        Entry {
            name: "fig07_cuda_syncthreads",
            about: "Fig. 7: __syncthreads throughput",
            generate: crate::figures_gpu::fig07_syncthreads,
        },
        Entry {
            name: "fig08_cuda_syncwarp",
            about: "Fig. 8: __syncwarp throughput",
            generate: crate::figures_gpu::fig08_syncwarp,
        },
        Entry {
            name: "fig09_cuda_atomicadd_scalar",
            about: "Fig. 9: atomicAdd on one shared variable",
            generate: crate::figures_gpu::fig09_atomicadd_scalar,
        },
        Entry {
            name: "fig10_cuda_atomicadd_array",
            about: "Fig. 10: atomicAdd on private array elements",
            generate: crate::figures_gpu::fig10_atomicadd_array,
        },
        Entry {
            name: "fig11_cuda_atomiccas_scalar",
            about: "Fig. 11: atomicCAS on one shared variable",
            generate: crate::figures_gpu::fig11_atomiccas_scalar,
        },
        Entry {
            name: "fig12_cuda_atomiccas_array",
            about: "Fig. 12: atomicCAS on private array elements",
            generate: crate::figures_gpu::fig12_atomiccas_array,
        },
        Entry {
            name: "fig13_cuda_atomicexch",
            about: "Fig. 13: atomicExch on one shared variable",
            generate: crate::figures_gpu::fig13_atomicexch,
        },
        Entry {
            name: "fig14_cuda_threadfence",
            about: "Fig. 14: __threadfence",
            generate: crate::figures_gpu::fig14_threadfence,
        },
        Entry {
            name: "fig15_cuda_shfl",
            about: "Fig. 15: __shfl_sync",
            generate: crate::figures_gpu::fig15_shfl,
        },
        Entry {
            name: "exp_cuda_fence_scopes",
            about: "§V-B3: fence scopes",
            generate: crate::figures_gpu::exp_fence_scopes,
        },
        Entry {
            name: "exp_cuda_vote",
            about: "§V-B4: warp votes",
            generate: crate::figures_gpu::exp_vote,
        },
        Entry {
            name: "exp_cuda_atomic_ops",
            about: "Extension: the atomic RMW family",
            generate: crate::figures_gpu::exp_atomic_ops,
        },
        Entry {
            name: "exp_cuda_divergence",
            about: "Extension: warp divergence",
            generate: crate::figures_gpu::exp_divergence,
        },
        Entry {
            name: "all_figures",
            about: "every figure in paper order",
            generate: crate::all_figures,
        },
    ]
}

/// Looks up a registry entry by name.
#[must_use]
pub fn find(name: &str) -> Option<Entry> {
    registry().into_iter().find(|e| e.name == name)
}

/// Trace output format selected by `--trace-format`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceFormat {
    /// Chrome `trace_event` JSON (chrome://tracing, Perfetto).
    Chrome,
    /// One JSON object per line.
    Jsonl,
    /// The ASCII counter summary table.
    Summary,
}

impl TraceFormat {
    /// Parses a `--trace-format` value.
    ///
    /// # Errors
    ///
    /// Returns `InvalidParams` for unknown format names.
    pub fn parse(s: &str) -> Result<Self> {
        match s {
            "chrome" => Ok(TraceFormat::Chrome),
            "jsonl" => Ok(TraceFormat::Jsonl),
            "summary" => Ok(TraceFormat::Summary),
            other => Err(SyncPerfError::InvalidParams(format!(
                "unknown trace format `{other}` (expected chrome|jsonl|summary)"
            ))),
        }
    }

    /// Infers a format from a path extension (`.jsonl` → JSONL,
    /// `.txt` → summary, anything else → Chrome JSON).
    #[must_use]
    pub fn infer(path: &Path) -> Self {
        match path.extension().and_then(|e| e.to_str()) {
            Some("jsonl") => TraceFormat::Jsonl,
            Some("txt") => TraceFormat::Summary,
            _ => TraceFormat::Chrome,
        }
    }
}

/// Options shared by every figure binary.
#[derive(Debug, Clone, Default)]
pub struct RunOptions {
    /// Write a trace of the run to this path.
    pub trace: Option<PathBuf>,
    /// Explicit trace format (otherwise inferred from the extension).
    pub format: Option<TraceFormat>,
    /// Worker threads for the sweep scheduler (`--jobs N`). `None`
    /// falls back to the `SYNCPERF_JOBS` environment variable, then 1.
    pub jobs: Option<usize>,
    /// Disable the content-addressed result cache (`--no-cache`).
    pub no_cache: bool,
    /// Resume from this run label's checkpoint manifest (`--resume`).
    pub resume: bool,
    /// Write flat-JSON scheduler/cache statistics to this path
    /// (`--cache-stats <path>`).
    pub cache_stats: Option<PathBuf>,
    /// Write the final recorder snapshot in Prometheus-style text
    /// exposition format to this path (`--metrics <path>`) — the same
    /// rendering `syncperf-serve` exposes at `GET /metrics`.
    pub metrics: Option<PathBuf>,
    /// Run label scoping the checkpoint manifest (derived from the
    /// binary name by [`run`]).
    pub label: Option<String>,
    /// Execute cache misses on this many local worker *processes*
    /// (`--workers N`) via the distributed coordinator instead of
    /// in-process threads.
    pub workers: Option<usize>,
    /// Pre-started worker addresses (`--connect host:port`, repeatable)
    /// — implies distributed execution with exactly these workers.
    pub connect: Vec<String>,
    /// Chaos hook (`--chaos-kill-one N`): SIGKILL one spawned worker
    /// after N results have been received. Spawn mode only.
    pub chaos_kill_one: Option<u64>,
    /// Serve live `GET /metrics` on this address for the duration of
    /// the run (`--metrics-addr host:port`; port 0 picks a free port
    /// and the bound address is printed as a ready line).
    pub metrics_addr: Option<String>,
}

impl RunOptions {
    /// Parses the shared flags from an argument iterator (binary name
    /// already skipped).
    ///
    /// # Errors
    ///
    /// Returns `InvalidParams` on unknown flags or missing values.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Self> {
        let mut opts = RunOptions::default();
        let mut it = args.into_iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--trace" => {
                    let path = it.next().ok_or_else(|| {
                        SyncPerfError::InvalidParams("--trace requires a path".into())
                    })?;
                    opts.trace = Some(PathBuf::from(path));
                }
                "--trace-format" => {
                    let fmt = it.next().ok_or_else(|| {
                        SyncPerfError::InvalidParams("--trace-format requires a value".into())
                    })?;
                    opts.format = Some(TraceFormat::parse(&fmt)?);
                }
                "--jobs" => {
                    let n = it.next().ok_or_else(|| {
                        SyncPerfError::InvalidParams("--jobs requires a worker count".into())
                    })?;
                    let n: usize = n.parse().map_err(|_| {
                        SyncPerfError::InvalidParams(format!("--jobs: `{n}` is not a number"))
                    })?;
                    opts.jobs = Some(n.max(1));
                }
                "--no-cache" => opts.no_cache = true,
                "--resume" => opts.resume = true,
                "--workers" => {
                    let n = it.next().ok_or_else(|| {
                        SyncPerfError::InvalidParams("--workers requires a process count".into())
                    })?;
                    let n: usize = n.parse().map_err(|_| {
                        SyncPerfError::InvalidParams(format!("--workers: `{n}` is not a number"))
                    })?;
                    opts.workers = Some(n.max(1));
                }
                "--connect" => {
                    let addr = it.next().ok_or_else(|| {
                        SyncPerfError::InvalidParams("--connect requires host:port".into())
                    })?;
                    opts.connect.push(addr);
                }
                "--chaos-kill-one" => {
                    let n = it.next().ok_or_else(|| {
                        SyncPerfError::InvalidParams("--chaos-kill-one requires a count".into())
                    })?;
                    let n: u64 = n.parse().map_err(|_| {
                        SyncPerfError::InvalidParams(format!(
                            "--chaos-kill-one: `{n}` is not a number"
                        ))
                    })?;
                    opts.chaos_kill_one = Some(n);
                }
                "--metrics-addr" => {
                    let addr = it.next().ok_or_else(|| {
                        SyncPerfError::InvalidParams("--metrics-addr requires host:port".into())
                    })?;
                    opts.metrics_addr = Some(addr);
                }
                "--cache-stats" => {
                    let path = it.next().ok_or_else(|| {
                        SyncPerfError::InvalidParams("--cache-stats requires a path".into())
                    })?;
                    opts.cache_stats = Some(PathBuf::from(path));
                }
                "--metrics" => {
                    let path = it.next().ok_or_else(|| {
                        SyncPerfError::InvalidParams("--metrics requires a path".into())
                    })?;
                    opts.metrics = Some(PathBuf::from(path));
                }
                other => {
                    return Err(SyncPerfError::InvalidParams(format!(
                        "unknown flag `{other}` (supported: --trace <path>, \
                         --trace-format chrome|jsonl|summary, --jobs <n>, \
                         --workers <n>, --connect <host:port>, \
                         --chaos-kill-one <n>, --metrics-addr <host:port>, \
                         --no-cache, --resume, --cache-stats <path>, \
                         --metrics <path>)"
                    )));
                }
            }
        }
        Ok(opts)
    }

    /// The effective format for `path`.
    #[must_use]
    pub fn effective_format(&self, path: &Path) -> TraceFormat {
        self.format.unwrap_or_else(|| TraceFormat::infer(path))
    }

    /// Worker-count precedence: `--jobs` flag, then the `SYNCPERF_JOBS`
    /// environment variable, then 1 (serial).
    #[must_use]
    pub fn effective_jobs(&self) -> usize {
        Self::jobs_from(self.jobs, std::env::var("SYNCPERF_JOBS").ok().as_deref())
    }

    /// [`Self::effective_jobs`] with the environment injected (so the
    /// precedence is unit-testable without mutating process state).
    #[must_use]
    pub fn jobs_from(flag: Option<usize>, env: Option<&str>) -> usize {
        flag.or_else(|| env.and_then(|s| s.trim().parse().ok()))
            .map_or(1, |n| n.max(1))
    }

    /// Whether any scheduler-facing option was given. Only then does
    /// [`run_with_options`] install a scheduler; otherwise measurements
    /// take the serial legacy path, which stays the reference output.
    #[must_use]
    pub fn wants_scheduler(&self) -> bool {
        self.jobs.is_some()
            || self.no_cache
            || self.resume
            || self.cache_stats.is_some()
            || self.wants_dist()
            || std::env::var_os("SYNCPERF_JOBS").is_some()
    }

    /// Whether distributed (multi-process) execution was requested.
    #[must_use]
    pub fn wants_dist(&self) -> bool {
        self.workers.is_some() || !self.connect.is_empty()
    }
}

/// Renders a drained trace in `format`.
#[must_use]
pub fn render_trace(events: &[obs::Event], snap: &obs::Snapshot, format: TraceFormat) -> String {
    match format {
        TraceFormat::Chrome => sink::chrome_trace_json(events, snap),
        TraceFormat::Jsonl => sink::jsonl(events),
        TraceFormat::Summary => render_obs_summary(snap),
    }
}

/// Runs `generate` with the shared CLI surface: parses `--trace`/
/// `--trace-format` from `std::env::args`, installs a process-global
/// recorder when tracing, emits the figures, and writes the trace.
///
/// Every figure binary's `main` is exactly `runner::run(generate)`.
///
/// # Errors
///
/// Propagates generator and I/O errors.
pub fn run(generate: impl FnOnce() -> Result<Vec<FigureData>>) -> Result<()> {
    let args: Vec<String> = std::env::args().collect();
    if args.get(1).is_some_and(|a| a == "__dist-worker") {
        // This process was re-exec'd by a coordinator as a local dist
        // worker: skip the figure pipeline entirely and serve jobs.
        // (Every figure binary is therefore self-hosting as a worker.)
        return run_dist_worker(&args[2..]);
    }
    let mut opts = RunOptions::parse(args.iter().skip(1).cloned())?;
    opts.label = args.first().map(|a| binary_label(a));
    run_with_options(generate, &opts)
}

/// The `__dist-worker --connect <addr>` re-exec mode: dial the
/// coordinator and serve until shutdown.
fn run_dist_worker(args: &[String]) -> Result<()> {
    let addr = match args {
        [flag, addr] if flag == "--connect" => addr,
        _ => {
            return Err(SyncPerfError::InvalidParams(
                "__dist-worker requires --connect <host:port>".into(),
            ))
        }
    };
    syncperf_dist::run_connect(addr).map_err(SyncPerfError::from)
}

/// Derives a checkpoint label from `argv[0]` (its file stem).
fn binary_label(argv0: &str) -> String {
    Path::new(argv0)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("run")
        .to_string()
}

/// Renders scheduler statistics as a flat JSON object (stable keys,
/// easy to grep/parse from shell in CI). When a distributed
/// coordinator ran, its `dist_*` counters and quantiles are appended
/// to the same flat object.
#[must_use]
pub fn cache_stats_json(
    stats: &syncperf_sched::SchedStats,
    dist: Option<&syncperf_dist::DistStats>,
) -> String {
    let mut json = format!(
        "{{\"jobs\":{},\"executed\":{},\"cache_hits\":{},\"cache_misses\":{},\
         \"cache_stores\":{},\"steals\":{},\"retries\":{},\"resumed\":{},\
         \"wait_us_p50\":{},\"wait_us_p99\":{},\
         \"service_hit_us_p50\":{},\"service_hit_us_p99\":{},\
         \"service_miss_us_p50\":{},\"service_miss_us_p99\":{},\
         \"queue_depth_peak\":{},\
         \"plan_batches\":{},\"plan_batch_points\":{},\
         \"plan_primed_jobs\":{},\"plan_compile_us\":{},\
         \"hit_rate\":{:.6}",
        stats.jobs,
        stats.executed,
        stats.cache_hits,
        stats.cache_misses,
        stats.cache_stores,
        stats.steals,
        stats.retries,
        stats.resumed,
        stats.wait_us_p50,
        stats.wait_us_p99,
        stats.service_hit_us_p50,
        stats.service_hit_us_p99,
        stats.service_miss_us_p50,
        stats.service_miss_us_p99,
        stats.queue_depth_peak,
        stats.plan_batches,
        stats.plan_batch_points,
        stats.plan_primed_jobs,
        stats.plan_compile_us,
        stats.hit_rate(),
    );
    if let Some(d) = dist {
        json.push_str(&format!(
            ",\"dist_workers\":{},\"dist_jobs_sent\":{},\"dist_results_received\":{},\
             \"dist_local_jobs\":{},\"dist_coordinator_jobs\":{},\
             \"dist_shard_reissues\":{},\"dist_migrations\":{},\
             \"dist_worker_deaths\":{},\"dist_corrupt_entries\":{},\
             \"dist_duplicate_results\":{},\"dist_worker_errors\":{},\
             \"dist_bytes_sent\":{},\"dist_bytes_received\":{},\
             \"dist_wait_us_p50\":{},\"dist_wait_us_p99\":{},\
             \"dist_service_us_p50\":{},\"dist_service_us_p99\":{}",
            d.workers,
            d.jobs_sent,
            d.results_received,
            d.local_jobs,
            d.coordinator_jobs,
            d.shard_reissues,
            d.migrations,
            d.worker_deaths,
            d.corrupt_entries,
            d.duplicate_results,
            d.worker_errors,
            d.bytes_sent,
            d.bytes_received,
            d.wait_us_p50,
            d.wait_us_p99,
            d.service_us_p50,
            d.service_us_p99,
        ));
    }
    json.push_str("}\n");
    json
}

/// One-line human summary of a distributed run.
#[must_use]
pub fn render_dist_summary(d: &syncperf_dist::DistStats) -> String {
    format!(
        "dist: {} workers ({} live), {} jobs sent, {} results, {} local, \
         {} coordinator, {} reissues, {} migrations, {} deaths\n",
        d.workers,
        d.workers_live,
        d.jobs_sent,
        d.results_received,
        d.local_jobs,
        d.coordinator_jobs,
        d.shard_reissues,
        d.migrations,
        d.worker_deaths,
    )
}

/// One-line human summary of a scheduler run.
#[must_use]
pub fn render_sched_summary(stats: &syncperf_sched::SchedStats) -> String {
    format!(
        "scheduler: {} jobs, {} cache hits ({:.1}%), {} executed, {} steals, {} retries, {} resumed\n",
        stats.jobs,
        stats.cache_hits,
        stats.hit_rate() * 100.0,
        stats.executed,
        stats.steals,
        stats.retries,
        stats.resumed,
    )
}

/// [`run`] with pre-parsed options (used by `trace_report` and tests).
///
/// # Errors
///
/// Propagates generator and I/O errors.
pub fn run_with_options(
    generate: impl FnOnce() -> Result<Vec<FigureData>>,
    opts: &RunOptions,
) -> Result<()> {
    let rec = if opts.trace.is_some()
        || opts.cache_stats.is_some()
        || opts.metrics.is_some()
        || opts.metrics_addr.is_some()
    {
        obs::install(Recorder::enabled());
        // `install` keeps an earlier recorder if one exists; either
        // way, record into whatever is globally visible.
        obs::global().clone()
    } else {
        Recorder::disabled()
    };

    let sched = if opts.wants_scheduler() {
        let mut cfg = syncperf_sched::SchedConfig::new(opts.effective_jobs());
        if let Some(label) = &opts.label {
            cfg = cfg.with_label(label.clone());
        }
        if opts.no_cache {
            cfg = cfg.without_cache();
        }
        if opts.resume {
            cfg = cfg.with_resume();
        }
        Some(syncperf_sched::install(syncperf_sched::Scheduler::new(cfg)))
    } else {
        None
    };

    // Distributed mode: start the coordinator fleet and route every
    // cache miss through it. The scheduler still owns cache lookups,
    // checkpointing, and the index-ordered merge, so the output bytes
    // are identical to an in-process run.
    let coord = if opts.wants_dist() {
        let s = sched
            .as_ref()
            .expect("wants_dist implies a scheduler is installed");
        let mut dcfg = if opts.connect.is_empty() {
            syncperf_dist::DistConfig::new(opts.workers.unwrap_or(1))
        } else {
            syncperf_dist::DistConfig::new(opts.connect.len()).with_connect(opts.connect.clone())
        };
        dcfg = dcfg.with_salt_extra(s.config().salt_extra);
        if let Some(n) = opts.chaos_kill_one {
            dcfg = dcfg.with_chaos_kill_one_after(n);
        }
        let cache = s
            .cache()
            .map(|c| syncperf_sched::Cache::new(c.dir().to_path_buf()));
        let coord = syncperf_dist::Coordinator::start(dcfg, cache)?;
        coord.attach(s);
        Some(coord)
    } else {
        None
    };

    if let Some(addr) = &opts.metrics_addr {
        // Live scrape endpoint for syncperf_top: each request renders a
        // fresh snapshot (global recorder + scheduler + dist export).
        let rec2 = rec.clone();
        let sched2 = sched.clone();
        let bound = syncperf_dist::serve_metrics(addr, move || {
            let mut snap = rec2.snapshot();
            if let Some(s) = &sched2 {
                s.export_into(&mut snap);
            }
            snap
        })?;
        println!("metrics listening on http://{bound}/metrics");
        use std::io::Write as _;
        std::io::stdout().flush().ok();
    }

    let outcome = generate().and_then(|figs| crate::emit(&figs));

    let dist_stats = coord.as_ref().map(|c| {
        let st = c.stats();
        c.shutdown();
        st
    });
    if let Some(s) = &sched {
        if outcome.is_ok() {
            // Mark the checkpoint manifest complete only on success, so
            // a failed run stays resumable.
            s.finish();
        }
        syncperf_sched::uninstall();
        let stats = s.stats();
        print!("{}", render_sched_summary(&stats));
        if let Some(d) = &dist_stats {
            print!("{}", render_dist_summary(d));
        }
        if let Some(path) = &opts.cache_stats {
            std::fs::write(path, cache_stats_json(&stats, dist_stats.as_ref()))?;
        }
    }
    outcome?;

    if let Some(path) = &opts.metrics {
        // Scheduler observations were mirrored into the global recorder
        // while it ran, so the exposition covers sched.* histograms too.
        std::fs::write(path, obs::metrics::render(&rec.snapshot()))?;
        println!("(metrics: {})", path.display());
    }
    if let Some(path) = &opts.trace {
        let format = opts.effective_format(path);
        let events = rec.drain_events();
        let snap = rec.snapshot();
        std::fs::write(path, render_trace(&events, &snap, format))?;
        print!("{}", render_obs_summary(&snap));
        println!("(trace: {})", path.display());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_match_binaries() {
        let reg = registry();
        let mut names: Vec<&str> = reg.iter().map(|e| e.name).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before, "duplicate registry names");
        assert!(find("fig01_omp_barrier").is_some());
        assert!(find("all_figures").is_some());
        assert!(find("no_such_figure").is_none());
    }

    #[test]
    fn parse_accepts_trace_flags() {
        let opts = RunOptions::parse(
            ["--trace", "out.jsonl", "--trace-format", "jsonl"].map(String::from),
        )
        .unwrap();
        assert_eq!(opts.trace.as_deref(), Some(Path::new("out.jsonl")));
        assert_eq!(opts.format, Some(TraceFormat::Jsonl));
    }

    #[test]
    fn parse_rejects_unknown_flags() {
        assert!(RunOptions::parse(["--bogus".to_string()]).is_err());
        assert!(RunOptions::parse(["--trace".to_string()]).is_err());
        assert!(RunOptions::parse(["--trace-format".to_string(), "yaml".to_string()]).is_err());
        assert!(RunOptions::parse(["--jobs".to_string()]).is_err());
        assert!(RunOptions::parse(["--jobs".to_string(), "four".to_string()]).is_err());
        assert!(RunOptions::parse(["--cache-stats".to_string()]).is_err());
    }

    #[test]
    fn parse_accepts_scheduler_flags() {
        let opts = RunOptions::parse(
            [
                "--jobs",
                "4",
                "--no-cache",
                "--resume",
                "--cache-stats",
                "s.json",
            ]
            .map(String::from),
        )
        .unwrap();
        assert_eq!(opts.jobs, Some(4));
        assert!(opts.no_cache);
        assert!(opts.resume);
        assert_eq!(opts.cache_stats.as_deref(), Some(Path::new("s.json")));
        assert!(opts.wants_scheduler());
        assert!(!RunOptions::default().no_cache);
        let m = RunOptions::parse(["--metrics", "m.prom"].map(String::from)).unwrap();
        assert_eq!(opts.metrics, None);
        assert_eq!(m.metrics.as_deref(), Some(Path::new("m.prom")));
        assert!(RunOptions::parse(["--metrics".to_string()]).is_err());
    }

    #[test]
    fn jobs_precedence_is_flag_then_env_then_serial() {
        // Flag beats environment.
        assert_eq!(RunOptions::jobs_from(Some(4), Some("8")), 4);
        // Environment beats the serial default.
        assert_eq!(RunOptions::jobs_from(None, Some("8")), 8);
        assert_eq!(RunOptions::jobs_from(None, Some(" 2 ")), 2);
        // Neither set, or the env value is garbage / zero: serial.
        assert_eq!(RunOptions::jobs_from(None, None), 1);
        assert_eq!(RunOptions::jobs_from(None, Some("lots")), 1);
        assert_eq!(RunOptions::jobs_from(None, Some("0")), 1);
        assert_eq!(RunOptions::jobs_from(Some(0), Some("8")), 1);
    }

    #[test]
    fn binary_label_is_the_file_stem() {
        assert_eq!(binary_label("target/release/all_figures"), "all_figures");
        assert_eq!(binary_label("fig01_omp_barrier"), "fig01_omp_barrier");
    }

    #[test]
    fn cache_stats_json_is_flat_and_stable() {
        let stats = syncperf_sched::SchedStats {
            jobs: 10,
            executed: 2,
            cache_hits: 8,
            cache_misses: 2,
            cache_stores: 2,
            steals: 1,
            wait_us_p99: 120,
            queue_depth_peak: 4,
            plan_batches: 2,
            plan_batch_points: 6,
            plan_primed_jobs: 6,
            plan_compile_us: 37,
            ..Default::default()
        };
        let json = cache_stats_json(&stats, None);
        assert!(json.contains("\"jobs\":10"));
        assert!(json.contains("\"cache_hits\":8"));
        assert!(json.contains("\"wait_us_p99\":120"));
        assert!(json.contains("\"queue_depth_peak\":4"));
        assert!(json.contains("\"plan_batches\":2"));
        assert!(json.contains("\"plan_batch_points\":6"));
        assert!(json.contains("\"plan_primed_jobs\":6"));
        assert!(json.contains("\"plan_compile_us\":37"));
        assert!(json.contains("\"hit_rate\":0.8"));
        assert!(
            !json.contains("dist_"),
            "no dist fields without a coordinator"
        );
        assert!(render_sched_summary(&stats).contains("80.0%"));

        let dist = syncperf_dist::DistStats {
            workers: 3,
            workers_live: 2,
            jobs_sent: 9,
            results_received: 9,
            shard_reissues: 1,
            wait_us_p99: 77,
            service_us_p50: 41,
            ..Default::default()
        };
        let json = cache_stats_json(&stats, Some(&dist));
        assert!(json.contains("\"dist_workers\":3"));
        assert!(json.contains("\"dist_jobs_sent\":9"));
        assert!(json.contains("\"dist_shard_reissues\":1"));
        assert!(json.contains("\"dist_wait_us_p99\":77"));
        assert!(json.contains("\"dist_service_us_p50\":41"));
        assert!(json.trim_end().ends_with('}'), "stays one flat object");
        let summary = render_dist_summary(&dist);
        assert!(summary.contains("3 workers (2 live)"));
        assert!(summary.contains("1 reissues"));
    }

    #[test]
    fn parse_accepts_dist_flags() {
        let opts = RunOptions::parse(["--workers", "3"].map(String::from)).unwrap();
        assert_eq!(opts.workers, Some(3));
        assert!(opts.wants_dist());
        assert!(opts.wants_scheduler());
        let opts = RunOptions::parse(
            ["--connect", "127.0.0.1:7001", "--connect", "127.0.0.1:7002"].map(String::from),
        )
        .unwrap();
        assert_eq!(opts.connect.len(), 2);
        assert!(opts.wants_dist());
        assert!(!RunOptions::default().wants_dist());
        assert!(RunOptions::parse(["--workers".to_string()]).is_err());
        assert!(RunOptions::parse(["--workers".to_string(), "many".to_string()]).is_err());
        assert!(RunOptions::parse(["--connect".to_string()]).is_err());
    }

    #[test]
    fn format_inferred_from_extension() {
        assert_eq!(TraceFormat::infer(Path::new("t.jsonl")), TraceFormat::Jsonl);
        assert_eq!(TraceFormat::infer(Path::new("t.txt")), TraceFormat::Summary);
        assert_eq!(TraceFormat::infer(Path::new("t.json")), TraceFormat::Chrome);
        let opts = RunOptions {
            trace: Some(PathBuf::from("t.jsonl")),
            format: Some(TraceFormat::Chrome),
            ..RunOptions::default()
        };
        // An explicit format wins over the extension.
        assert_eq!(
            opts.effective_format(Path::new("t.jsonl")),
            TraceFormat::Chrome
        );
    }

    #[test]
    fn render_trace_dispatches_by_format() {
        let rec = Recorder::enabled();
        rec.counter("x.count").inc();
        rec.instant("t", "e");
        let events = rec.drain_events();
        let snap = rec.snapshot();
        assert!(render_trace(&events, &snap, TraceFormat::Chrome).contains("traceEvents"));
        assert!(render_trace(&events, &snap, TraceFormat::Jsonl).contains("\"name\":\"e\""));
        assert!(render_trace(&events, &snap, TraceFormat::Summary).contains("x.count"));
    }
}
