//! Prints the paper's Table I (system specifications) from the encoded
//! `SystemSpec` presets.

fn main() {
    print!("{}", syncperf_bench::tables::table1());
}
