//! Regenerates the Section V-A2 no-figure findings (atomic read is free; capture behaves like update).

fn main() -> syncperf_core::Result<()> {
    syncperf_bench::runner::run(syncperf_bench::figures_cpu::exp_atomic_read_capture)
}
