//! Re-renders a stored figure CSV (from `results/`) as a terminal chart
//! and an SVG.
//!
//! ```console
//! $ plot results/fig01.csv
//! $ plot results/fig09a.csv --log-x --svg /tmp/fig09a.svg
//! ```

use syncperf_core::svg::{render_svg, SvgStyle};
use syncperf_core::FigureData;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut path = None;
    let mut log_x = false;
    let mut svg_out = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--log-x" => log_x = true,
            "--svg" => svg_out = it.next().cloned(),
            other if other.starts_with('-') => {
                eprintln!("usage: plot <file.csv> [--log-x] [--svg OUT.svg]");
                std::process::exit(2);
            }
            other => path = Some(other.to_string()),
        }
    }
    let Some(path) = path else {
        eprintln!("usage: plot <file.csv> [--log-x] [--svg OUT.svg]");
        std::process::exit(2);
    };
    let csv = match std::fs::read_to_string(&path) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error reading {path}: {e}");
            std::process::exit(1);
        }
    };
    let id = std::path::Path::new(&path).file_stem().map_or_else(
        || "figure".to_string(),
        |s| s.to_string_lossy().into_owned(),
    );
    let mut fig = match FigureData::from_csv(id, &csv) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error parsing {path}: {e}");
            std::process::exit(1);
        }
    };
    if log_x {
        fig = fig.with_log_x();
    }
    println!("{}", fig.render_table());
    println!("{}", fig.render_ascii(72, 16));
    if let Some(out) = svg_out {
        match std::fs::write(&out, render_svg(&fig, &SvgStyle::default())) {
            Ok(()) => println!("wrote {out}"),
            Err(e) => {
                eprintln!("error writing {out}: {e}");
                std::process::exit(1);
            }
        }
    }
}
