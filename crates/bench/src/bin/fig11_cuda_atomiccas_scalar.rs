//! Regenerates Fig. 11 (atomicCAS on one shared variable).

fn main() -> syncperf_core::Result<()> {
    syncperf_bench::runner::run(syncperf_bench::figures_gpu::fig11_atomiccas_scalar)
}
