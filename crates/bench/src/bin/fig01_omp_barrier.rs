//! Regenerates the paper's Fig. 1 (OpenMP barrier throughput).

fn main() -> syncperf_core::Result<()> {
    syncperf_bench::runner::run(syncperf_bench::figures_cpu::fig01_barrier)
}
