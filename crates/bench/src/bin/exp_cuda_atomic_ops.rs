//! Regenerates the atomic-RMW-family extension experiment.

fn main() -> syncperf_core::Result<()> {
    syncperf_bench::runner::run(syncperf_bench::figures_gpu::exp_atomic_ops)
}
