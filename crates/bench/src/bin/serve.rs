//! `serve` — the long-lived measurement query service.
//!
//! Serves the content-addressed result cache over HTTP: cached
//! measurements by hash (`/job/<hash>`), exact-or-nearest sweep-point
//! queries (`/query`), figure outputs (`/figure/<name>`), and
//! compute-on-miss (`POST /compute`) dispatched to the sweep
//! scheduler with per-hash deduplication. See `docs/SERVING.md`.
//!
//! ```text
//! serve [--addr HOST:PORT] [--workers N] [--jobs N]
//!       [--cache-bytes BYTES] [--timeout-secs SECS]
//! ```
//!
//! `--addr 127.0.0.1:0` binds an ephemeral port; the bound address is
//! printed as `listening on http://...` once the service is up (the
//! CI smoke test scrapes it). `--workers` sizes the HTTP accept pool,
//! `--jobs` the compute pool. `--cache-bytes` (or the
//! `SYNCPERF_CACHE_BYTES` environment variable) bounds the on-disk
//! cache; 0 or unset means unbounded.

use std::io::Write;
use std::time::Duration;

use syncperf_bench::{common, serving};
use syncperf_core::{Result, SyncPerfError};
use syncperf_serve::{cache_bytes_from_env, install_sigterm_handler, ServeConfig, Server};

struct Args {
    addr: String,
    workers: usize,
    jobs: usize,
    cache_bytes: Option<u64>,
    timeout_secs: u64,
}

fn parse_args(mut argv: impl Iterator<Item = String>) -> Result<Args> {
    let mut args = Args {
        addr: "127.0.0.1:8642".into(),
        workers: 4,
        jobs: 2,
        cache_bytes: cache_bytes_from_env(std::env::var("SYNCPERF_CACHE_BYTES").ok()),
        timeout_secs: 10,
    };
    while let Some(flag) = argv.next() {
        let mut value = |name: &str| {
            argv.next()
                .ok_or_else(|| SyncPerfError::InvalidParams(format!("{name} needs a value")))
        };
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--workers" => {
                args.workers = value("--workers")?.parse().map_err(|_| {
                    SyncPerfError::InvalidParams("--workers must be a number".into())
                })?;
            }
            "--jobs" => {
                args.jobs = value("--jobs")?
                    .parse()
                    .map_err(|_| SyncPerfError::InvalidParams("--jobs must be a number".into()))?;
            }
            "--cache-bytes" => {
                args.cache_bytes = cache_bytes_from_env(Some(value("--cache-bytes")?));
            }
            "--timeout-secs" => {
                args.timeout_secs = value("--timeout-secs")?.parse().map_err(|_| {
                    SyncPerfError::InvalidParams("--timeout-secs must be a number".into())
                })?;
            }
            other => {
                return Err(SyncPerfError::InvalidParams(format!(
                    "unknown flag {other} (serve takes --addr --workers --jobs --cache-bytes --timeout-secs)"
                )));
            }
        }
    }
    Ok(args)
}

fn main() -> Result<()> {
    let args = parse_args(std::env::args().skip(1))?;
    install_sigterm_handler();

    let sched_cfg = syncperf_sched::SchedConfig::new(args.jobs).with_label("serve");
    let scheduler = std::sync::Arc::new(syncperf_sched::Scheduler::new(sched_cfg));

    let mut cfg = ServeConfig::new(scheduler, serving::default_resolver());
    cfg.addr = args.addr;
    cfg.workers = args.workers.max(1);
    cfg.results_dir = common::results_dir();
    cfg.cache_bytes = args.cache_bytes;
    cfg.request_timeout = Duration::from_secs(args.timeout_secs.max(1));

    let server = Server::start(cfg)?;
    println!("listening on http://{}", server.addr());
    // The CI smoke test (and anything else scripting us) scrapes that
    // line, so make sure it is out before we block.
    std::io::stdout().flush().ok();
    server.wait();
    println!("serve: shut down cleanly");
    Ok(())
}
