//! `serve` — the long-lived measurement query service.
//!
//! Serves the content-addressed result cache over HTTP: cached
//! measurements by hash (`/job/<hash>`), exact-or-nearest sweep-point
//! queries (`/query`), figure outputs (`/figure/<name>`), checkpoint
//! manifests (`/manifest/<label>`), and compute-on-miss
//! (`POST /compute`) dispatched to the sweep scheduler with per-hash
//! deduplication. See `docs/SERVING.md`.
//!
//! ```text
//! serve [--addr HOST:PORT] [--workers N] [--jobs N]
//!       [--cache-bytes BYTES] [--timeout-secs SECS]
//!       [--max-conns N] [--replicas N]
//! ```
//!
//! `--addr 127.0.0.1:0` binds an ephemeral port; the bound address is
//! printed as `listening on http://...` once the service is up (the
//! CI smoke test scrapes it). `--workers` sizes the blocking compute
//! pool behind the event loop (`--jobs` sizes the scheduler inside
//! it). `--cache-bytes` (or the `SYNCPERF_CACHE_BYTES` environment
//! variable) bounds the on-disk cache; 0 or unset means unbounded.
//! `--max-conns` caps concurrent connections (over-cap accepts are
//! shed with `503 + Retry-After`).
//!
//! `--replicas N` (N > 1) runs this binary as a supervisor: it spawns
//! N child serve processes that share one results/cache directory,
//! each on its own port (`--addr host:P` gives ports P, P+1, …;
//! `host:0` gives N ephemeral ports). Each child prints its own
//! `listening on http://...` line. The supervisor forwards SIGTERM to
//! the children and exits nonzero if any child dies unexpectedly.
//! Cache sharing is safe: stores are atomic renames and every replica
//! re-scans the directory for foreign writes.

use std::io::Write;
use std::time::Duration;

use syncperf_bench::{common, serving};
use syncperf_core::{Result, SyncPerfError};
use syncperf_serve::{
    cache_bytes_from_env, install_sigterm_handler, sigterm_received, ServeConfig, Server,
};

struct Args {
    addr: String,
    workers: usize,
    jobs: usize,
    cache_bytes: Option<u64>,
    timeout_secs: u64,
    max_conns: usize,
    replicas: usize,
}

fn parse_args(mut argv: impl Iterator<Item = String>) -> Result<Args> {
    let mut args = Args {
        addr: "127.0.0.1:8642".into(),
        workers: 4,
        jobs: 2,
        cache_bytes: cache_bytes_from_env(std::env::var("SYNCPERF_CACHE_BYTES").ok()),
        timeout_secs: 10,
        max_conns: 2048,
        replicas: 1,
    };
    while let Some(flag) = argv.next() {
        let mut value = |name: &str| {
            argv.next()
                .ok_or_else(|| SyncPerfError::InvalidParams(format!("{name} needs a value")))
        };
        let numeric = |name: &str, v: Result<String>| -> Result<usize> {
            v?.parse()
                .map_err(|_| SyncPerfError::InvalidParams(format!("{name} must be a number")))
        };
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--workers" => args.workers = numeric("--workers", value("--workers"))?,
            "--jobs" => args.jobs = numeric("--jobs", value("--jobs"))?,
            "--cache-bytes" => {
                args.cache_bytes = cache_bytes_from_env(Some(value("--cache-bytes")?));
            }
            "--timeout-secs" => {
                args.timeout_secs = numeric("--timeout-secs", value("--timeout-secs"))? as u64;
            }
            "--max-conns" => args.max_conns = numeric("--max-conns", value("--max-conns"))?,
            "--replicas" => args.replicas = numeric("--replicas", value("--replicas"))?,
            other => {
                return Err(SyncPerfError::InvalidParams(format!(
                    "unknown flag {other} (serve takes --addr --workers --jobs --cache-bytes \
                     --timeout-secs --max-conns --replicas)"
                )));
            }
        }
    }
    Ok(args)
}

/// Supervisor mode: spawn `replicas` children of this same binary
/// (each with `--replicas 1` and its own port), forward SIGTERM, and
/// reap.
fn supervise(args: &Args) -> Result<()> {
    let exe = std::env::current_exe()
        .map_err(|e| SyncPerfError::InvalidParams(format!("cannot find own binary: {e}")))?;
    let (host, port) = args
        .addr
        .rsplit_once(':')
        .ok_or_else(|| SyncPerfError::InvalidParams("--addr must be HOST:PORT".into()))?;
    let base_port: u16 = port
        .parse()
        .map_err(|_| SyncPerfError::InvalidParams("--addr port must be a number".into()))?;

    let mut children = Vec::new();
    for i in 0..args.replicas {
        let child_port = if base_port == 0 {
            0
        } else {
            base_port + u16::try_from(i).unwrap_or(0)
        };
        let child = std::process::Command::new(&exe)
            .args([
                "--addr",
                &format!("{host}:{child_port}"),
                "--workers",
                &args.workers.to_string(),
                "--jobs",
                &args.jobs.to_string(),
                "--timeout-secs",
                &args.timeout_secs.to_string(),
                "--max-conns",
                &args.max_conns.to_string(),
                "--replicas",
                "1",
            ])
            .args(
                args.cache_bytes
                    .map(|b| vec!["--cache-bytes".to_string(), b.to_string()])
                    .unwrap_or_default(),
            )
            .spawn()
            .map_err(|e| SyncPerfError::InvalidParams(format!("spawn replica {i}: {e}")))?;
        children.push(child);
    }
    println!("serve: supervising {} replicas", children.len());
    std::io::stdout().flush().ok();

    // The libc kill() std already links, for SIGTERM forwarding.
    extern "C" {
        fn kill(pid: i32, sig: i32) -> i32;
    }
    const SIGTERM_NO: i32 = 15;
    let mut failed = false;
    'supervise: loop {
        if sigterm_received() {
            for child in &children {
                unsafe {
                    kill(child.id() as i32, SIGTERM_NO);
                }
            }
            break;
        }
        for child in &mut children {
            if let Ok(Some(status)) = child.try_wait() {
                eprintln!("serve: replica exited unexpectedly ({status})");
                failed = true;
                break 'supervise;
            }
        }
        std::thread::sleep(Duration::from_millis(100));
    }
    // Tear the fleet down (idempotent for already-dead children) and
    // reap everyone.
    for child in &children {
        unsafe {
            kill(child.id() as i32, SIGTERM_NO);
        }
    }
    for mut child in children {
        let _ = child.wait();
    }
    if failed {
        return Err(SyncPerfError::InvalidParams(
            "a replica died; fleet stopped".into(),
        ));
    }
    println!("serve: replica fleet shut down cleanly");
    Ok(())
}

fn main() -> Result<()> {
    let args = parse_args(std::env::args().skip(1))?;
    install_sigterm_handler();

    if args.replicas > 1 {
        return supervise(&args);
    }

    let sched_cfg = syncperf_sched::SchedConfig::new(args.jobs.max(1)).with_label("serve");
    let scheduler = std::sync::Arc::new(syncperf_sched::Scheduler::new(sched_cfg));

    let mut cfg = ServeConfig::new(scheduler, serving::default_resolver());
    cfg.addr = args.addr;
    cfg.workers = args.workers.max(1);
    cfg.results_dir = common::results_dir();
    cfg.cache_bytes = args.cache_bytes;
    cfg.request_timeout = Duration::from_secs(args.timeout_secs.max(1));
    cfg.max_connections = args.max_conns.max(1);

    let server = Server::start(cfg)?;
    println!("listening on http://{}", server.addr());
    // The CI smoke test (and anything else scripting us) scrapes that
    // line, so make sure it is out before we block.
    std::io::stdout().flush().ok();
    server.wait();
    println!("serve: shut down cleanly");
    Ok(())
}
