//! Regenerates the spread-vs-close affinity extension experiment.

fn main() -> syncperf_core::Result<()> {
    syncperf_bench::runner::run(syncperf_bench::figures_cpu::exp_affinity)
}
