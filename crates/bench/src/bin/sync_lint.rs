//! `sync_lint` — audit every registered kernel with the static sync
//! linter, the vector-clock race detector, and the simulator
//! cross-checks.
//!
//! ```console
//! $ sync_lint all                      # audit the whole registry
//! $ sync_lint openmp --format json     # machine-readable report
//! $ sync_lint cuda_atomicadd_scalar    # one registry code
//! $ sync_lint all --out report.json --format json
//! ```
//!
//! For every kernel instance (both bodies):
//!
//! * the static linter runs and each diagnostic is either matched by a
//!   `docs/ANALYSIS.md`-documented allowlist entry or counted as a
//!   **violation**;
//! * the static verdict is cross-checked against the dynamic replay
//!   (CPU bodies additionally against the MESI directory, GPU bodies
//!   under a scaled launch geometry) — any disagreement is fatal.
//!
//! Exit status: `0` clean, `1` violations or disagreements, `2` usage.

use std::fmt::Write as _;

use syncperf_analyze::record::{record_agreement, record_diagnostic};
use syncperf_analyze::{
    allowed_by, check_cpu_body, check_gpu_body, lint_cpu_body, lint_gpu_body, BodyKind, Diagnostic,
};
use syncperf_bench::codes::{kernel_inventory, AnyKernel};
use syncperf_core::obs;

fn usage() -> ! {
    eprintln!("usage: sync_lint <all|openmp|cuda|CODE|KERNEL> [--format text|json] [--out PATH]");
    std::process::exit(2);
}

/// One audited (kernel, body) finding, resolved against the allowlist.
struct Finding {
    kernel: String,
    code: &'static str,
    body: BodyKind,
    diag: Diagnostic,
    allowed_reason: Option<&'static str>,
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn render_json(findings: &[Finding], disagreements: &[String]) -> String {
    let mut out = String::from("{\n  \"findings\": [\n");
    for (i, f) in findings.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"kernel\": \"{}\", \"registry_code\": \"{}\", \"body\": \"{}\", \
             \"code\": \"{}\", \"severity\": \"{}\", \"op_index\": {}, \"message\": \"{}\", \
             \"allowed\": {}}}",
            json_escape(&f.kernel),
            f.code,
            f.body,
            f.diag.code.code(),
            f.diag.severity,
            f.diag
                .op_index
                .map_or_else(|| "null".to_string(), |i| i.to_string()),
            json_escape(&f.diag.message),
            f.allowed_reason.is_some(),
        );
        out.push_str(if i + 1 < findings.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n  \"disagreements\": [\n");
    for (i, d) in disagreements.iter().enumerate() {
        let _ = write!(out, "    \"{}\"", json_escape(d));
        out.push_str(if i + 1 < disagreements.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut selector: Option<String> = None;
    let mut format = "text".to_string();
    let mut out_path: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--format" => match it.next().map(String::as_str) {
                Some(f @ ("text" | "json")) => format = f.to_string(),
                _ => usage(),
            },
            "--out" => match it.next() {
                Some(p) => out_path = Some(p.clone()),
                None => usage(),
            },
            other if other.starts_with('-') => usage(),
            other if selector.is_none() => selector = Some(other.to_string()),
            _ => usage(),
        }
    }
    let Some(selector) = selector else { usage() };

    // Record all findings through the observability layer too, so a
    // trace-enabled embedding sees them alongside engine events.
    obs::install(obs::Recorder::enabled());
    let rec = obs::global();

    let inventory: Vec<_> = kernel_inventory()
        .into_iter()
        .filter(|k| match selector.as_str() {
            "all" => true,
            "openmp" => matches!(k.kernel, AnyKernel::Cpu(_)),
            "cuda" => matches!(k.kernel, AnyKernel::Gpu(_)),
            name => k.code == name || k.kernel.name() == name,
        })
        .collect();
    if inventory.is_empty() {
        eprintln!(
            "error: selector `{selector}` matches no registered kernel \
             (try `all`, `openmp`, `cuda`, a registry code, or a kernel name)"
        );
        std::process::exit(2);
    }

    let mut findings = Vec::new();
    let mut disagreements = Vec::new();
    let mut audited = 0usize;
    for inst in &inventory {
        let bodies: [(BodyKind, Vec<Diagnostic>, Result<(), String>); 2] = match &inst.kernel {
            AnyKernel::Cpu(k) => [
                (
                    BodyKind::Baseline,
                    lint_cpu_body(&k.baseline),
                    syncperf_cpu_sim::crosscheck_cpu_body(&k.baseline).map(|_| ()),
                ),
                (
                    BodyKind::Test,
                    lint_cpu_body(&k.test),
                    syncperf_cpu_sim::crosscheck_cpu_body(&k.test).map(|_| ()),
                ),
            ],
            AnyKernel::Gpu(k) => [
                (
                    BodyKind::Baseline,
                    lint_gpu_body(&k.baseline),
                    syncperf_gpu_sim::audit_launch(&k.baseline, 160, 256, 32).map(|_| ()),
                ),
                (
                    BodyKind::Test,
                    lint_gpu_body(&k.test),
                    syncperf_gpu_sim::audit_launch(&k.test, 160, 256, 32).map(|_| ()),
                ),
            ],
        };
        let name = inst.kernel.name().to_string();
        audited += 1;
        for (body, diags, crosscheck) in bodies {
            match &inst.kernel {
                AnyKernel::Cpu(k) => {
                    let b = if body == BodyKind::Baseline {
                        &k.baseline
                    } else {
                        &k.test
                    };
                    record_agreement(rec, &name, body, &check_cpu_body(b));
                }
                AnyKernel::Gpu(k) => {
                    let b = if body == BodyKind::Baseline {
                        &k.baseline
                    } else {
                        &k.test
                    };
                    record_agreement(rec, &name, body, &check_gpu_body(b));
                }
            }
            if let Err(e) = crosscheck {
                disagreements.push(format!("{name} ({body}): {e}"));
            }
            for diag in diags {
                record_diagnostic(rec, &name, body, &diag);
                let allowed = allowed_by(&name, body, &diag).map(|e| e.reason);
                findings.push(Finding {
                    kernel: name.clone(),
                    code: inst.code,
                    body,
                    diag,
                    allowed_reason: allowed,
                });
            }
        }
    }

    let violations = findings
        .iter()
        .filter(|f| f.allowed_reason.is_none())
        .count();
    let report = if format == "json" {
        render_json(&findings, &disagreements)
    } else {
        let mut out = String::new();
        for f in &findings {
            let status = match f.allowed_reason {
                Some(reason) => format!("allowed: {reason}"),
                None => "VIOLATION".to_string(),
            };
            let _ = writeln!(out, "{}:{}: {} [{}]", f.kernel, f.body, f.diag, status);
        }
        for d in &disagreements {
            let _ = writeln!(out, "DISAGREEMENT: {d}");
        }
        let _ = writeln!(
            out,
            "audited {audited} kernels ({} bodies): {} findings, {} allowed, {violations} violations, {} disagreements",
            audited * 2,
            findings.len(),
            findings.len() - violations,
            disagreements.len(),
        );
        out
    };

    if let Some(path) = &out_path {
        if let Err(e) = std::fs::write(path, &report) {
            eprintln!("error writing {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote {path}");
    }
    print!("{report}");

    if violations > 0 || !disagreements.is_empty() {
        std::process::exit(1);
    }
}
