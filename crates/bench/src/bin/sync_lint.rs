//! `sync_lint` — audit every registered kernel with the static sync
//! linter, the vector-clock race detector, the bounded exhaustive
//! explorer, and the simulator cross-checks.
//!
//! ```console
//! $ sync_lint all                      # audit the whole registry
//! $ sync_lint openmp --format json     # machine-readable report
//! $ sync_lint cuda_atomicadd_scalar    # one registry code
//! $ sync_lint all --engine explore     # model checker only
//! $ sync_lint all --format sarif --out report.sarif
//! $ sync_lint --explain SL007          # what does this code mean?
//! ```
//!
//! For every kernel instance (both bodies), depending on `--engine`:
//!
//! * **lint** — the static linter runs and each diagnostic is either
//!   matched by a `docs/ANALYSIS.md`-documented allowlist entry or
//!   counted as a **violation**; the static verdict is cross-checked
//!   against the dynamic replay (CPU bodies additionally against the
//!   MESI directory, GPU bodies under a scaled launch geometry).
//! * **explore** — the model checker exhaustively explores the body's
//!   interleavings / divergence assignments (SL007–SL010 findings go
//!   through the same allowlist) and its race verdict is cross-checked
//!   against the vector-clock replay's.
//! * **both** (default) — everything above.
//!
//! Any cross-check disagreement is fatal. Exit status: `0` clean, `1`
//! violations or disagreements, `2` usage.

use std::fmt::Write as _;
use std::time::Instant;

use syncperf_analyze::record::{record_agreement, record_diagnostic};
use syncperf_analyze::sarif::{render_sarif, SarifFinding};
use syncperf_analyze::{
    allowed_by, check_cpu_body, check_gpu_body, crosscheck_engines_cpu, crosscheck_engines_gpu,
    explore_cpu_body, explore_gpu_body, lint_cpu_body, lint_gpu_body, BodyKind, DiagCode,
    Diagnostic, ExploreStats,
};
use syncperf_bench::codes::{kernel_inventory, AnyKernel};
use syncperf_core::obs;

fn usage() -> ! {
    eprintln!(
        "usage: sync_lint <all|openmp|cuda|CODE|KERNEL> [--engine lint|explore|both] \
         [--format text|json|sarif] [--out PATH]\n       sync_lint --explain SL00x"
    );
    std::process::exit(2);
}

/// One audited (kernel, body) finding, resolved against the allowlist.
struct Finding {
    kernel: String,
    code: &'static str,
    body: BodyKind,
    diag: Diagnostic,
    allowed_reason: Option<&'static str>,
}

/// Per-body exploration counters for the CI artifact.
struct Exploration {
    kernel: String,
    body: BodyKind,
    stats: ExploreStats,
    deadlock_free: bool,
    micros: u128,
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn render_json(
    findings: &[Finding],
    disagreements: &[String],
    explorations: &[Exploration],
) -> String {
    let mut out = String::from("{\n  \"findings\": [\n");
    for (i, f) in findings.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"kernel\": \"{}\", \"registry_code\": \"{}\", \"body\": \"{}\", \
             \"code\": \"{}\", \"severity\": \"{}\", \"op_index\": {}, \"message\": \"{}\", \
             \"allowed\": {}}}",
            json_escape(&f.kernel),
            f.code,
            f.body,
            f.diag.code.code(),
            f.diag.severity,
            f.diag
                .op_index
                .map_or_else(|| "null".to_string(), |i| i.to_string()),
            json_escape(&f.diag.message),
            f.allowed_reason.is_some(),
        );
        out.push_str(if i + 1 < findings.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n  \"disagreements\": [\n");
    for (i, d) in disagreements.iter().enumerate() {
        let _ = write!(out, "    \"{}\"", json_escape(d));
        out.push_str(if i + 1 < disagreements.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    out.push_str("  ],\n  \"exploration\": [\n");
    for (i, e) in explorations.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"kernel\": \"{}\", \"body\": \"{}\", \"states\": {}, \"branches\": {}, \
             \"complete\": {}, \"deadlock_free\": {}, \"micros\": {}}}",
            json_escape(&e.kernel),
            e.body,
            e.stats.states,
            e.stats.branches,
            e.stats.complete,
            e.deadlock_free,
            e.micros,
        );
        out.push_str(if i + 1 < explorations.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

fn explain(code_str: &str) -> ! {
    if let Some(code) = DiagCode::ALL.iter().find(|c| c.code() == code_str) {
        println!(
            "{} [{}] — {}\n\n{}",
            code.code(),
            code.severity(),
            code.title(),
            code.explain()
        );
        std::process::exit(0);
    }
    eprintln!(
        "error: unknown diagnostic code `{code_str}` (known: SL001..SL{:03})",
        DiagCode::ALL.len()
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut selector: Option<String> = None;
    let mut format = "text".to_string();
    let mut engine = "both".to_string();
    let mut out_path: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--format" => match it.next().map(String::as_str) {
                Some(f @ ("text" | "json" | "sarif")) => format = f.to_string(),
                _ => usage(),
            },
            "--engine" => match it.next().map(String::as_str) {
                Some(e @ ("lint" | "explore" | "both")) => engine = e.to_string(),
                _ => usage(),
            },
            "--explain" => match it.next() {
                Some(c) => explain(c),
                None => usage(),
            },
            "--out" => match it.next() {
                Some(p) => out_path = Some(p.clone()),
                None => usage(),
            },
            other if other.starts_with('-') => usage(),
            other if selector.is_none() => selector = Some(other.to_string()),
            _ => usage(),
        }
    }
    let Some(selector) = selector else { usage() };
    let run_lint = engine != "explore";
    let run_explore = engine != "lint";

    // Record all findings through the observability layer too, so a
    // trace-enabled embedding sees them alongside engine events.
    obs::install(obs::Recorder::enabled());
    let rec = obs::global();

    let inventory: Vec<_> = kernel_inventory()
        .into_iter()
        .filter(|k| match selector.as_str() {
            "all" => true,
            "openmp" => matches!(k.kernel, AnyKernel::Cpu(_)),
            "cuda" => matches!(k.kernel, AnyKernel::Gpu(_)),
            name => k.code == name || k.kernel.name() == name,
        })
        .collect();
    if inventory.is_empty() {
        eprintln!(
            "error: selector `{selector}` matches no registered kernel \
             (try `all`, `openmp`, `cuda`, a registry code, or a kernel name)"
        );
        std::process::exit(2);
    }

    let mut findings = Vec::new();
    let mut disagreements = Vec::new();
    let mut explorations: Vec<Exploration> = Vec::new();
    let mut audited = 0usize;
    for inst in &inventory {
        let name = inst.kernel.name().to_string();
        audited += 1;
        for body in [BodyKind::Baseline, BodyKind::Test] {
            let mut diags: Vec<Diagnostic> = Vec::new();
            match &inst.kernel {
                AnyKernel::Cpu(k) => {
                    let b = if body == BodyKind::Baseline {
                        &k.baseline
                    } else {
                        &k.test
                    };
                    if run_lint {
                        diags.extend(lint_cpu_body(b));
                        record_agreement(rec, &name, body, &check_cpu_body(b));
                        if let Err(e) = syncperf_cpu_sim::crosscheck_cpu_body(b) {
                            disagreements.push(format!("{name} ({body}): {e}"));
                        }
                    }
                    if run_explore {
                        let started = Instant::now();
                        let report = explore_cpu_body(b);
                        let agreement = crosscheck_engines_cpu(b);
                        let micros = started.elapsed().as_micros();
                        if !agreement.holds() {
                            disagreements.push(format!(
                                "{name} ({body}): engine disagreement: {}",
                                agreement.explain()
                            ));
                        }
                        rec.counter("analyze.explore.states")
                            .add(report.stats.states);
                        explorations.push(Exploration {
                            kernel: name.clone(),
                            body,
                            stats: report.stats,
                            deadlock_free: report.deadlock_free,
                            micros,
                        });
                        diags.extend(report.diagnostics);
                    }
                }
                AnyKernel::Gpu(k) => {
                    let b = if body == BodyKind::Baseline {
                        &k.baseline
                    } else {
                        &k.test
                    };
                    if run_lint {
                        diags.extend(lint_gpu_body(b));
                        record_agreement(rec, &name, body, &check_gpu_body(b));
                        if let Err(e) = syncperf_gpu_sim::audit_launch(b, 160, 256, 32) {
                            disagreements.push(format!("{name} ({body}): {e}"));
                        }
                    }
                    if run_explore {
                        let started = Instant::now();
                        let report = explore_gpu_body(b);
                        let agreement = crosscheck_engines_gpu(b);
                        let micros = started.elapsed().as_micros();
                        if !agreement.holds() {
                            disagreements.push(format!(
                                "{name} ({body}): engine disagreement: {}",
                                agreement.explain()
                            ));
                        }
                        rec.counter("analyze.explore.states")
                            .add(report.stats.states);
                        explorations.push(Exploration {
                            kernel: name.clone(),
                            body,
                            stats: report.stats,
                            deadlock_free: report.deadlock_free,
                            micros,
                        });
                        diags.extend(report.diagnostics);
                    }
                }
            }
            for diag in diags {
                record_diagnostic(rec, &name, body, &diag);
                let allowed = allowed_by(&name, body, &diag).map(|e| e.reason);
                findings.push(Finding {
                    kernel: name.clone(),
                    code: inst.code,
                    body,
                    diag,
                    allowed_reason: allowed,
                });
            }
        }
    }

    let violations = findings
        .iter()
        .filter(|f| f.allowed_reason.is_none())
        .count();
    let report = match format.as_str() {
        "json" => render_json(&findings, &disagreements, &explorations),
        "sarif" => {
            let sarif: Vec<SarifFinding> = findings
                .iter()
                .map(|f| SarifFinding {
                    kernel: f.kernel.clone(),
                    body: f.body,
                    diagnostic: f.diag.clone(),
                    allowed_reason: f.allowed_reason.map(str::to_string),
                })
                .collect();
            render_sarif(&sarif)
        }
        _ => {
            let mut out = String::new();
            for f in &findings {
                let status = match f.allowed_reason {
                    Some(reason) => format!("allowed: {reason}"),
                    None => "VIOLATION".to_string(),
                };
                let _ = writeln!(out, "{}:{}: {} [{}]", f.kernel, f.body, f.diag, status);
            }
            for d in &disagreements {
                let _ = writeln!(out, "DISAGREEMENT: {d}");
            }
            if run_explore {
                let states: u64 = explorations.iter().map(|e| e.stats.states).sum();
                let micros: u128 = explorations.iter().map(|e| e.micros).sum();
                let wedged = explorations.iter().filter(|e| !e.deadlock_free).count();
                let _ = writeln!(
                    out,
                    "explored {} bodies: {states} states, {wedged} wedged, {:.1} ms total",
                    explorations.len(),
                    micros as f64 / 1000.0,
                );
            }
            let _ = writeln!(
                out,
                "audited {audited} kernels ({} bodies): {} findings, {} allowed, {violations} violations, {} disagreements",
                audited * 2,
                findings.len(),
                findings.len() - violations,
                disagreements.len(),
            );
            out
        }
    };

    if let Some(path) = &out_path {
        if let Err(e) = std::fs::write(path, &report) {
            eprintln!("error writing {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote {path}");
    }
    print!("{report}");

    if violations > 0 || !disagreements.is_empty() {
        std::process::exit(1);
    }
}
