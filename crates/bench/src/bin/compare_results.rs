//! Compares two artifact-style result trees (e.g. two model revisions,
//! or two simulated systems) by throughput ratio.
//!
//! ```console
//! $ compare_results results system3 system1 [tolerance]
//! ```

use syncperf_core::ResultsStore;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() < 3 {
        eprintln!("usage: compare_results <dir> <baseline-host> <other-host> [tolerance]");
        std::process::exit(2);
    }
    let tolerance: f64 = args.get(3).map_or(0.10, |t| t.parse().unwrap_or(0.10));
    let load = |host: &str| match ResultsStore::load(&args[0], host) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error loading {host}: {e}");
            std::process::exit(1);
        }
    };
    let base = load(&args[1]);
    let other = load(&args[2]);
    let diff = base.diff(&other);
    println!(
        "matched {} points ({} only in {}, {} only in {})",
        diff.entries.len(),
        diff.only_in_baseline,
        args[1],
        diff.missing_in_baseline,
        args[2]
    );
    if diff.entries.is_empty() {
        return;
    }
    println!(
        "geometric-mean throughput ratio {}/{}: {:.3}",
        args[2],
        args[1],
        diff.geomean_ratio()
    );
    let outliers = diff.outliers(tolerance);
    println!(
        "{} points deviate more than {:.0}%:",
        outliers.len(),
        tolerance * 100.0
    );
    for e in outliers.iter().take(20) {
        println!("  {:<60} {:>7.2}x", e.key, e.ratio);
    }
}
