//! Ablation: saturating vs linear coherence arbitration (DESIGN.md §5).
//!
//! The CPU model bounds the per-op arbitration delay at
//! `contention_sat` contenders. This ablation removes the bound
//! (linear growth) and regenerates the Fig. 1 barrier sweep: the
//! linear model keeps declining past 8 threads, failing to reproduce
//! the paper's plateau.

use syncperf_core::sweep::{thread_sweep, throughput_series};
use syncperf_core::{kernel, Affinity, ExecParams, FigureData, Protocol, SYSTEM3};
use syncperf_cpu_sim::{CpuModel, CpuSimExecutor};

fn barrier_series(label: &str, model: CpuModel) -> syncperf_core::Result<syncperf_core::Series> {
    let mut exec = CpuSimExecutor::with_model(&SYSTEM3, model);
    let points = thread_sweep(
        &SYSTEM3.cpu.omp_thread_counts(),
        ExecParams::new(2)
            .with_affinity(Affinity::Spread)
            .with_loops(1000, 100),
        |_| kernel::omp_barrier(),
    );
    throughput_series(&mut exec, &Protocol::PAPER, label, points)
}

fn figures() -> syncperf_core::Result<Vec<syncperf_core::FigureData>> {
    let saturating = CpuModel::for_system(&SYSTEM3.cpu, SYSTEM3.cpu_jitter);
    let mut linear = saturating.clone();
    linear.contention_sat = u32::MAX; // never saturate

    let mut fig = FigureData::new(
        "ablation_contention",
        "OpenMP barrier: saturating vs linear arbitration model",
        "threads",
        "barriers/s/thread",
    );
    fig.push_series(barrier_series("saturating (paper shape)", saturating)?);
    fig.push_series(barrier_series("linear (no plateau)", linear)?);
    fig.annotate("the paper's Fig. 1 plateaus beyond ~8 threads; only the saturating model does");
    Ok(vec![fig])
}

fn main() -> syncperf_core::Result<()> {
    syncperf_bench::runner::run(figures)
}
