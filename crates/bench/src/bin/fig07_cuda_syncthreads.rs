//! Regenerates Fig. 7 (__syncthreads throughput).

fn main() -> syncperf_core::Result<()> {
    syncperf_bench::runner::run(syncperf_bench::figures_gpu::fig07_syncthreads)
}
