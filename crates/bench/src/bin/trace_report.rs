//! Runs any registered figure experiment with recording enabled and
//! prints/exports the trace.
//!
//! ```console
//! $ trace_report list
//! $ trace_report fig02_omp_atomic_update_scalar
//! $ trace_report fig09_cuda_atomicadd_scalar --format chrome --out fig09.json
//! $ trace_report all_figures --format jsonl --out all.jsonl
//! ```
//!
//! Without `--out`, the counter summary table is printed to stdout
//! (the figure tables themselves are suppressed — this tool is about
//! the trace). With `--out`, the selected format (`chrome` by default)
//! is written to the file as well.

use std::path::PathBuf;

use syncperf_bench::runner::{self, TraceFormat};
use syncperf_core::obs::{self, Recorder};
use syncperf_core::report::render_obs_summary;
use syncperf_core::Result;

struct Cli {
    name: String,
    out: Option<PathBuf>,
    format: TraceFormat,
    quiet_figures: bool,
    jobs: Option<usize>,
    no_cache: bool,
    metrics: Option<PathBuf>,
}

fn usage() -> ! {
    eprintln!(
        "usage: trace_report <name|list> [--format chrome|jsonl|summary] [--out <path>] \
         [--metrics <path|->] [--show-figures] [--jobs <n>] [--no-cache]\n\nruns the named \
         figure experiment with recording enabled, prints the counter summary, and optionally \
         exports the trace; --metrics renders the snapshot in Prometheus-style exposition \
         format (`-` for stdout)"
    );
    std::process::exit(2);
}

fn parse_cli() -> Cli {
    let mut name = None;
    let mut out = None;
    let mut format = None;
    let mut quiet_figures = true;
    let mut jobs = None;
    let mut no_cache = false;
    let mut metrics = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--format" => match it.next().map(|v| TraceFormat::parse(v)) {
                Some(Ok(f)) => format = Some(f),
                _ => usage(),
            },
            "--out" => match it.next() {
                Some(p) => out = Some(PathBuf::from(p)),
                None => usage(),
            },
            "--jobs" => match it.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) => jobs = Some(n.max(1)),
                None => usage(),
            },
            "--metrics" => match it.next() {
                Some(p) => metrics = Some(PathBuf::from(p)),
                None => usage(),
            },
            "--no-cache" => no_cache = true,
            "--show-figures" => quiet_figures = false,
            "--help" | "-h" => usage(),
            other if other.starts_with('-') => usage(),
            other if name.is_none() => name = Some(other.to_string()),
            _ => usage(),
        }
    }
    let Some(name) = name else { usage() };
    let format = format.unwrap_or(TraceFormat::Chrome);
    Cli {
        name,
        out,
        format,
        quiet_figures,
        jobs,
        no_cache,
        metrics,
    }
}

fn main() -> Result<()> {
    let cli = parse_cli();
    if cli.name == "list" {
        for e in runner::registry() {
            println!("{:<36} {}", e.name, e.about);
        }
        return Ok(());
    }
    let Some(entry) = runner::find(&cli.name) else {
        eprintln!(
            "unknown experiment `{}` (try `trace_report list`)",
            cli.name
        );
        std::process::exit(2);
    };

    obs::install(Recorder::enabled());
    let rec = obs::global().clone();

    let sched = if cli.jobs.is_some() || cli.no_cache {
        let mut cfg = syncperf_sched::SchedConfig::new(cli.jobs.unwrap_or(1))
            .with_label(format!("trace_report-{}", entry.name));
        if cli.no_cache {
            cfg = cfg.without_cache();
        }
        Some(syncperf_sched::install(syncperf_sched::Scheduler::new(cfg)))
    } else {
        None
    };

    let outcome = (entry.generate)();
    if sched.is_some() {
        syncperf_sched::uninstall();
    }
    let figs = outcome?;
    if !cli.quiet_figures {
        syncperf_bench::emit(&figs)?;
    }

    let events = rec.drain_events();
    let snap = rec.snapshot();
    print!("{}", render_obs_summary(&snap));
    if let Some(s) = &sched {
        print!("{}", runner::render_sched_summary(&s.stats()));
    }
    println!("({} trace events)", events.len());
    let dropped = rec.dropped_events();
    if dropped > 0 {
        println!("({dropped} events dropped — per-thread breakdown in the summary above)");
    }
    if let Some(path) = &cli.metrics {
        let text = obs::metrics::render(&snap);
        if path.as_os_str() == "-" {
            print!("{text}");
        } else {
            std::fs::write(path, text)?;
            println!("(metrics: {})", path.display());
        }
    }
    if let Some(path) = &cli.out {
        std::fs::write(path, runner::render_trace(&events, &snap, cli.format))?;
        println!("(trace: {})", path.display());
    }
    Ok(())
}
