//! Case study: GPU histogramming under skew — global atomics vs
//! shared-memory privatization (recommendations 4/5 of §V-B5 as a
//! workload).

use syncperf_core::{FigureData, Series, SYSTEM3};
use syncperf_gpu_sim::{simulate_histogram, GpuModel, HistogramConfig, HistogramStrategy};

fn figures() -> syncperf_core::Result<Vec<syncperf_core::FigureData>> {
    let m = GpuModel::for_spec(&SYSTEM3.gpu);
    let mut fig = FigureData::new(
        "exp_gpu_histogram",
        "Histogram of 2^22 elements into 256 bins vs skew (System 3)",
        "fraction of elements in the hottest bin",
        "kernel time (us)",
    );
    for (label, strategy) in [
        ("global atomics", HistogramStrategy::GlobalAtomics),
        (
            "shared-memory privatized",
            HistogramStrategy::SharedPrivatized,
        ),
    ] {
        let mut points = Vec::new();
        for hot_pct in [0u32, 5, 10, 20, 40, 60, 80, 100] {
            let cfg = HistogramConfig {
                elements: 1 << 22,
                bins: 256,
                hot_fraction: f64::from(hot_pct) / 100.0,
                block_size: 256,
                blocks: SYSTEM3.gpu.sms * 4,
            };
            let r = simulate_histogram(&m, &SYSTEM3.gpu, strategy, &cfg)?;
            points.push((
                f64::from(hot_pct) / 100.0,
                r.total_cycles / (SYSTEM3.gpu.clock_ghz * 1e3),
            ));
        }
        fig.push_series(Series::new(label, points));
    }
    fig.annotate("lower is better; privatization absorbs the hot bin inside each SM");
    Ok(vec![fig])
}

fn main() -> syncperf_core::Result<()> {
    syncperf_bench::runner::run(figures)
}
