//! Ablation: floating-point atomics as CAS loops vs "native" (DESIGN.md §5).
//!
//! Zeroing the CAS-loop surcharge makes the int/float gap of Fig. 2
//! vanish — the gap is entirely the compare-exchange lowering.

use syncperf_core::sweep::{thread_sweep, throughput_series};
use syncperf_core::{kernel, DType, ExecParams, FigureData, Protocol, SYSTEM3};
use syncperf_cpu_sim::{CpuModel, CpuSimExecutor};

fn series(
    label: &str,
    dtype: DType,
    model: CpuModel,
) -> syncperf_core::Result<syncperf_core::Series> {
    let mut exec = CpuSimExecutor::with_model(&SYSTEM3, model);
    let points = thread_sweep(
        &SYSTEM3.cpu.omp_thread_counts(),
        ExecParams::new(2).with_loops(1000, 100),
        |_| kernel::omp_atomic_update_scalar(dtype),
    );
    throughput_series(&mut exec, &Protocol::PAPER, label, points)
}

fn figures() -> syncperf_core::Result<Vec<syncperf_core::FigureData>> {
    let cas_loop = CpuModel::for_system(&SYSTEM3.cpu, SYSTEM3.cpu_jitter);
    let mut native = cas_loop.clone();
    native.fp_cas_extra_ns = 0.0;
    native.fp_retry_ns = 0.0;

    let mut fig = FigureData::new(
        "ablation_fp_atomics",
        "OpenMP atomic update: float atomics as CAS loop vs hypothetical native",
        "threads",
        "ops/s/thread",
    );
    fig.push_series(series("int", DType::I32, cas_loop.clone())?);
    fig.push_series(series(
        "double (CAS loop, paper shape)",
        DType::F64,
        cas_loop,
    )?);
    fig.push_series(series("double (native, gap gone)", DType::F64, native)?);
    fig.annotate("the Fig. 2 integer/floating-point gap is the CAS-loop lowering");
    Ok(vec![fig])
}

fn main() -> syncperf_core::Result<()> {
    syncperf_bench::runner::run(figures)
}
