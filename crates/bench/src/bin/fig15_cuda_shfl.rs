//! Regenerates Fig. 15 (__shfl_sync).

fn main() -> syncperf_core::Result<()> {
    syncperf_bench::runner::run(syncperf_bench::figures_gpu::fig15_shfl)
}
