//! Regenerates Fig. 3 (OpenMP atomic update on private array elements, strides 1/4/8/16).

fn main() -> syncperf_core::Result<()> {
    syncperf_bench::runner::run(syncperf_bench::figures_cpu::fig03_atomic_update_array)
}
