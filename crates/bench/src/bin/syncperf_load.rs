//! `syncperf_load` — the serving-layer load harness and tracked
//! latency benchmark.
//!
//! ```console
//! $ syncperf_load bench                        # 1000 keep-alive conns, 8 s,
//!                                              # in-process replica pair,
//!                                              # writes BENCH_serve.json
//! $ syncperf_load bench --quick --check        # 2 s run gated against the
//!                                              # committed BENCH_serve.json
//! $ syncperf_load --quick --check              # same (bare flags imply bench)
//! $ syncperf_load bench --target 127.0.0.1:8642 --target 127.0.0.1:8643
//!                                              # drive externally started replicas
//! ```
//!
//! Without `--target` the harness starts two serve replicas
//! in-process, sharing one scratch cache directory (RAM-backed when
//! `/dev/shm` is writable) — the same topology the ci.sh `load` lane
//! starts as real processes. The traffic profile is warmed over HTTP
//! (`POST /compute` of a small kernel grid), then the mixed
//! hash/query/figure/compute/telemetry mix runs for the window and
//! the report lands in `BENCH_serve.json`. `--check` applies the
//! committed baseline's gate: measured p99 must stay within
//! `check_p99_factor` of the committed p99 and the error rate under
//! `check_max_error_rate` (generous bounds — shared CI runners are
//! noisy; the gate exists to catch order-of-magnitude serving
//! regressions, not percent-level jitter).

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use syncperf_bench::serving;
use syncperf_load::{Baseline, LoadConfig, Profile};
use syncperf_serve::{ServeConfig, Server};

/// `--check` allows p99 up to committed × this.
const P99_FACTOR: f64 = 2.5;

/// `--check` allows at most this error rate.
const MAX_ERROR_RATE: f64 = 0.02;

/// Connections the tracked benchmark holds (acceptance floor: 1000).
const BENCH_CONNS: usize = 1000;

fn usage() -> ! {
    eprintln!(
        "usage: syncperf_load bench [--quick] [--check] [--target HOST:PORT ...]\n\
         \x20                          [--out PATH] [--report PATH] [--conns N]\n\
         \x20                          [--duration-secs S] [--seed N]\n\
         (bare flags imply the bench subcommand)"
    );
    std::process::exit(2);
}

struct Args {
    quick: bool,
    check: bool,
    targets: Vec<String>,
    out: PathBuf,
    /// Also write the measured report here (useful with `--check`,
    /// where `--out` names the committed baseline, not an output).
    report: Option<PathBuf>,
    conns: usize,
    duration_secs: Option<u64>,
    seed: u64,
}

fn parse_args(argv: &[String]) -> Args {
    let mut args = Args {
        quick: false,
        check: false,
        targets: Vec::new(),
        out: PathBuf::from("BENCH_serve.json"),
        report: None,
        conns: BENCH_CONNS,
        duration_secs: None,
        seed: 0x5EED,
    };
    let mut it = argv.iter();
    let value = |it: &mut std::slice::Iter<String>| it.next().cloned().unwrap_or_else(|| usage());
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => args.quick = true,
            "--check" => args.check = true,
            "--target" => args.targets.push(value(&mut it)),
            "--out" => args.out = value(&mut it).into(),
            "--report" => args.report = Some(value(&mut it).into()),
            "--conns" => args.conns = value(&mut it).parse().unwrap_or_else(|_| usage()),
            "--duration-secs" => {
                args.duration_secs = Some(value(&mut it).parse().unwrap_or_else(|_| usage()));
            }
            "--seed" => args.seed = value(&mut it).parse().unwrap_or_else(|_| usage()),
            _ => usage(),
        }
    }
    args
}

/// Scratch root for throwaway results/cache trees (same policy as
/// `bench_report` and `syncperf_dist`: prefer RAM-backed storage).
fn scratch_root() -> PathBuf {
    let shm = PathBuf::from("/dev/shm");
    if std::fs::metadata(&shm).map(|m| m.is_dir()).unwrap_or(false) {
        let probe = shm.join(format!(".syncperf-load-probe-{}", std::process::id()));
        if std::fs::write(&probe, b"x").is_ok() {
            let _ = std::fs::remove_file(&probe);
            return shm;
        }
    }
    std::env::temp_dir()
}

/// An in-process replica pair sharing one cache directory — each with
/// its own scheduler (separate processes in production; separate
/// instances here exercise exactly the same index/cache sharing).
struct ReplicaPair {
    servers: Vec<Server>,
    dir: PathBuf,
}

impl ReplicaPair {
    fn start() -> std::io::Result<ReplicaPair> {
        let dir = scratch_root().join(format!("syncperf-load-bench-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache_dir = dir.join(".cache");
        let mut servers = Vec::new();
        for _ in 0..2 {
            let sched_cfg = syncperf_sched::SchedConfig::new(2)
                .with_cache_dir(cache_dir.clone())
                .with_label("load_bench");
            let scheduler = Arc::new(syncperf_sched::Scheduler::new(sched_cfg));
            let mut cfg = ServeConfig::new(scheduler, serving::default_resolver());
            cfg.addr = "127.0.0.1:0".into();
            cfg.workers = 2;
            cfg.results_dir.clone_from(&dir);
            cfg.index_refresh = Duration::from_millis(100);
            servers.push(Server::start(cfg)?);
        }
        Ok(ReplicaPair { servers, dir })
    }

    fn targets(&self) -> Vec<String> {
        self.servers.iter().map(|s| s.addr().to_string()).collect()
    }

    fn stop(self) {
        for s in self.servers {
            s.shutdown();
        }
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

fn bench(args: &Args) {
    let pair = if args.targets.is_empty() {
        match ReplicaPair::start() {
            Ok(p) => Some(p),
            Err(e) => {
                eprintln!("error: cannot start replica pair: {e}");
                std::process::exit(1);
            }
        }
    } else {
        None
    };
    let targets = pair
        .as_ref()
        .map_or_else(|| args.targets.clone(), ReplicaPair::targets);
    eprintln!("targets: {}", targets.join(", "));

    // Warm the cache through replica A, then give every other replica
    // one re-scan period to index the foreign writes.
    let profile = match Profile::warm(&targets[0], Duration::from_secs(30)) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: warmup failed: {e}");
            std::process::exit(1);
        }
    };
    eprintln!("warm: {} cached hashes", profile.hashes.len());
    std::thread::sleep(Duration::from_millis(300));

    let mut cfg = LoadConfig::new(targets);
    cfg.connections = args.conns;
    cfg.duration =
        Duration::from_secs(args.duration_secs.unwrap_or(if args.quick { 2 } else { 8 }));
    cfg.seed = args.seed;
    let report = match syncperf_load::run(&cfg, &profile) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: load run failed: {e}");
            std::process::exit(1);
        }
    };
    if let Some(p) = pair {
        p.stop();
    }
    eprintln!("{}", report.render());

    if let Some(path) = &args.report {
        let encoded = report.to_json(P99_FACTOR, MAX_ERROR_RATE);
        if let Err(e) = std::fs::write(path, &encoded) {
            eprintln!("error writing {}: {e}", path.display());
            std::process::exit(1);
        }
    }

    if args.check {
        let text = match std::fs::read_to_string(&args.out) {
            Ok(t) => t,
            Err(e) => {
                eprintln!(
                    "error: --check needs a committed {}: {e}",
                    args.out.display()
                );
                std::process::exit(1);
            }
        };
        let baseline = match Baseline::from_json(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        };
        if let Err(e) = baseline.check(&report) {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
        println!(
            "load bench check ok: p99 {}us <= {}us x {:.1}, error rate {:.4} <= {:.3}",
            report.p99_us,
            baseline.p99_us,
            baseline.p99_factor,
            report.error_rate(),
            baseline.max_error_rate
        );
        return;
    }

    let encoded = report.to_json(P99_FACTOR, MAX_ERROR_RATE);
    if let Err(e) = std::fs::write(&args.out, &encoded) {
        eprintln!("error writing {}: {e}", args.out.display());
        std::process::exit(1);
    }
    print!("{encoded}");
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let rest = match argv.first().map(String::as_str) {
        Some("bench") => &argv[1..],
        // Bare flags imply bench: `syncperf_load --quick --check`.
        Some(flag) if flag.starts_with("--") => &argv[..],
        _ => usage(),
    };
    bench(&parse_args(rest));
}
