//! Verifies every qualitative claim in EXPERIMENTS.md against freshly
//! regenerated data. Exits nonzero if any claim fails — the
//! artifact-evaluation entry point.

fn main() -> syncperf_core::Result<()> {
    let checks = syncperf_bench::verify::run_all_checks()?;
    print!("{}", syncperf_bench::verify::render(&checks));
    if checks.iter().any(|c| !c.passed) {
        std::process::exit(1);
    }
    Ok(())
}
