//! Regenerates the CPU figures on *this machine's real threads* —
//! Fig. 1/2/5-style sweeps with genuine atomics, rendered like the
//! simulated figures (table + chart + CSV/SVG in `results/`).
//!
//! On a many-core machine the shapes approach the paper's; on a small
//! machine the sweep simply ends earlier. Use `--full` for the paper's
//! 9×7 protocol.

use syncperf_core::sweep::{thread_sweep, throughput_series};
use syncperf_core::{kernel, DType, ExecParams, FigureData, Protocol};
use syncperf_omp::OmpExecutor;

fn main() -> syncperf_core::Result<()> {
    let full = std::env::args().any(|a| a == "--full");
    let protocol = if full { Protocol::PAPER } else { Protocol::SIM };
    let (n_iter, n_unroll) = if full { (1000, 100) } else { (100, 20) };
    let max_threads = std::thread::available_parallelism().map_or(4, |n| n.get() as u32 * 2);
    let threads: Vec<u32> = (2..=max_threads.max(2)).collect();
    let base = ExecParams::new(2)
        .with_loops(n_iter, n_unroll)
        .with_warmup(2);
    let mut exec = OmpExecutor::new();

    let mut figs = Vec::new();

    let mut fig = FigureData::new(
        "real_barrier",
        "OpenMP-style barrier on this machine (real threads)",
        "threads",
        "barriers/s/thread",
    );
    fig.push_series(throughput_series(
        &mut exec,
        &protocol,
        "barrier",
        thread_sweep(&threads, base, |_| kernel::omp_barrier()),
    )?);
    figs.push(fig);

    let mut fig = FigureData::new(
        "real_atomic_update",
        "Atomic update on one shared variable, this machine (real threads)",
        "threads",
        "ops/s/thread",
    );
    for dt in DType::ALL {
        fig.push_series(throughput_series(
            &mut exec,
            &protocol,
            dt.label(),
            thread_sweep(&threads, base, |_| kernel::omp_atomic_update_scalar(dt)),
        )?);
    }
    figs.push(fig);

    let mut fig = FigureData::new(
        "real_critical",
        "Critical-section add, this machine (real threads)",
        "threads",
        "ops/s/thread",
    );
    fig.push_series(throughput_series(
        &mut exec,
        &protocol,
        "critical",
        thread_sweep(&threads, base, |_| kernel::omp_critical_add(DType::I32)),
    )?);
    fig.push_series(throughput_series(
        &mut exec,
        &protocol,
        "atomic (for comparison)",
        thread_sweep(&threads, base, |_| {
            kernel::omp_atomic_update_scalar(DType::I32)
        }),
    )?);
    figs.push(fig);

    syncperf_bench::emit(&figs)
}
