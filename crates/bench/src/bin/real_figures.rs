//! Regenerates the CPU figures on *this machine's real threads* —
//! Fig. 1/2/5-style sweeps with genuine atomics, rendered like the
//! simulated figures (table + chart + CSV/SVG in `results/`).
//!
//! On a many-core machine the shapes approach the paper's; on a small
//! machine the sweep simply ends earlier. Use `--full` for the paper's
//! 9×7 protocol. The shared runner flags (`--jobs`, `--resume`,
//! `--cache-stats`, `--trace`, ...) apply; real-thread cache entries
//! are host-scoped, so results never leak across machines.

use syncperf_bench::common::{max_real_threads, real_series};
use syncperf_bench::runner::{run_with_options, RunOptions};
use syncperf_core::sweep::thread_sweep;
use syncperf_core::{kernel, DType, ExecParams, FigureData, Protocol, Result};
use syncperf_omp::OmpExecutor;

fn generate(full: bool) -> Result<Vec<FigureData>> {
    let protocol = if full { Protocol::PAPER } else { Protocol::SIM };
    let (n_iter, n_unroll) = if full { (1000, 100) } else { (100, 20) };
    let threads: Vec<u32> = (2..=max_real_threads().max(2)).collect();
    let base = ExecParams::new(2)
        .with_loops(n_iter, n_unroll)
        .with_warmup(2);
    let mut exec = OmpExecutor::new();

    let mut figs = Vec::new();

    let mut fig = FigureData::new(
        "real_barrier",
        "OpenMP-style barrier on this machine (real threads)",
        "threads",
        "barriers/s/thread",
    );
    fig.push_series(real_series(
        &mut exec,
        protocol,
        "barrier",
        thread_sweep(&threads, base, |_| kernel::omp_barrier()),
    )?);
    figs.push(fig);

    let mut fig = FigureData::new(
        "real_atomic_update",
        "Atomic update on one shared variable, this machine (real threads)",
        "threads",
        "ops/s/thread",
    );
    for dt in DType::ALL {
        fig.push_series(real_series(
            &mut exec,
            protocol,
            dt.label(),
            thread_sweep(&threads, base, |_| kernel::omp_atomic_update_scalar(dt)),
        )?);
    }
    figs.push(fig);

    let mut fig = FigureData::new(
        "real_critical",
        "Critical-section add, this machine (real threads)",
        "threads",
        "ops/s/thread",
    );
    fig.push_series(real_series(
        &mut exec,
        protocol,
        "critical",
        thread_sweep(&threads, base, |_| kernel::omp_critical_add(DType::I32)),
    )?);
    fig.push_series(real_series(
        &mut exec,
        protocol,
        "atomic (for comparison)",
        thread_sweep(&threads, base, |_| {
            kernel::omp_atomic_update_scalar(DType::I32)
        }),
    )?);
    figs.push(fig);

    Ok(figs)
}

fn main() -> Result<()> {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    args.retain(|a| a != "--full");
    let mut opts = RunOptions::parse(args)?;
    // Full-protocol results answer different questions than quick ones;
    // keep their checkpoint manifests separate.
    opts.label = Some(if full {
        "real_figures_full".into()
    } else {
        "real_figures".into()
    });
    run_with_options(|| generate(full), &opts)
}
