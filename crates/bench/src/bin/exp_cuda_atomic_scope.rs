//! Extension: device-scope vs block-scope atomics — the property
//! Listing 1's Reduction 3 exploits (`atomicAdd_block` is serviced on
//! the SM rather than at the L2, compute capability ≥ 6.0).

use syncperf_core::sweep::{thread_sweep, throughput_series};
use syncperf_core::{
    DType, ExecParams, FigureData, GpuOp, Kernel, Protocol, Scope, Target, SYSTEM3,
};
use syncperf_gpu_sim::GpuSimExecutor;

fn scoped_kernel(scope: Scope) -> Kernel<GpuOp> {
    let op = GpuOp::AtomicAdd {
        dtype: DType::I32,
        scope,
        target: Target::SHARED,
    };
    Kernel::new(
        format!("cuda_atomicadd_{scope:?}_scalar"),
        vec![op],
        vec![op, op],
        1,
    )
}

fn main() -> syncperf_core::Result<()> {
    syncperf_bench::runner::run(|| {
        let mut exec = GpuSimExecutor::new(&SYSTEM3);
        let mut fig = FigureData::new(
            "exp_atomic_scope",
            "atomicAdd() vs atomicAdd_block() on one shared int (System 3, 64 blocks)",
            "threads per block",
            "ops/s/thread",
        )
        .with_log_x();
        for (label, scope) in [
            ("device scope (atomicAdd)", Scope::Device),
            ("block scope (atomicAdd_block)", Scope::Block),
        ] {
            let points = thread_sweep(
                &SYSTEM3.gpu.thread_count_sweep(),
                ExecParams::new(1).with_blocks(64).with_loops(1000, 100),
                |_| scoped_kernel(scope),
            );
            fig.push_series(throughput_series(
                &mut exec,
                &Protocol::PAPER,
                label,
                points,
            )?);
        }
        fig.annotate(
            "block-scoped atomics are serviced on the SM: cheaper and contended only block-wide",
        );
        Ok(vec![fig])
    })
}
