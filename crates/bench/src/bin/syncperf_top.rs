//! `syncperf_top` — a one-screen live view of a running
//! `syncperf-serve` instance or `syncperf_dist` coordinator
//! (`--metrics-addr`), in the spirit of `top`.
//!
//! Polls `GET /metrics`, parses the Prometheus-style exposition back
//! into an [`obs::Snapshot`](syncperf_core::obs::Snapshot) with
//! `obs::metrics::parse`, and renders a refreshing table: request
//! rates (delta between polls), per-endpoint latency quantiles, cache
//! hit ratio, scheduler queue depth, and per-worker utilization.
//!
//! ```text
//! syncperf_top [--addr HOST:PORT] [--interval-ms N] [--once]
//! ```
//!
//! `--once` prints a single frame and exits (used by tests and CI —
//! no terminal control sequences are emitted in that mode).

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use syncperf_core::obs::{self, Snapshot};
use syncperf_core::{Result, SyncPerfError};

struct Args {
    addr: String,
    interval: Duration,
    once: bool,
}

fn parse_args(mut argv: impl Iterator<Item = String>) -> Result<Args> {
    let mut args = Args {
        addr: "127.0.0.1:8642".into(),
        interval: Duration::from_millis(1000),
        once: false,
    };
    while let Some(flag) = argv.next() {
        let mut value = |name: &str| {
            argv.next()
                .ok_or_else(|| SyncPerfError::InvalidParams(format!("{name} needs a value")))
        };
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--interval-ms" => {
                let ms: u64 = value("--interval-ms")?.parse().map_err(|_| {
                    SyncPerfError::InvalidParams("--interval-ms must be a number".into())
                })?;
                args.interval = Duration::from_millis(ms.max(100));
            }
            "--once" => args.once = true,
            other => {
                return Err(SyncPerfError::InvalidParams(format!(
                    "unknown flag {other} (syncperf_top takes --addr --interval-ms --once)"
                )));
            }
        }
    }
    Ok(args)
}

/// One `GET /metrics` round trip over a fresh connection.
fn scrape(addr: &str) -> Result<Snapshot> {
    let mut stream = TcpStream::connect(addr)
        .map_err(|e| SyncPerfError::InvalidParams(format!("connect {addr}: {e}")))?;
    stream.set_read_timeout(Some(Duration::from_secs(5))).ok();
    stream
        .write_all(
            format!("GET /metrics HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n")
                .as_bytes(),
        )
        .map_err(|e| SyncPerfError::InvalidParams(format!("send: {e}")))?;
    let mut raw = String::new();
    stream
        .read_to_string(&mut raw)
        .map_err(|e| SyncPerfError::InvalidParams(format!("read: {e}")))?;
    let body = raw.split_once("\r\n\r\n").map_or(raw.as_str(), |(_, b)| b);
    Ok(obs::metrics::parse(body))
}

/// Request counters keyed by endpoint label, extracted from
/// `serve.endpoint.<label>.requests`.
fn endpoint_requests(snap: &Snapshot) -> BTreeMap<String, u64> {
    snap.counters
        .iter()
        .filter_map(|(name, &v)| {
            let label = name
                .strip_prefix("serve_endpoint_")?
                .strip_suffix("_requests")?;
            Some((label.to_string(), v))
        })
        .collect()
}

/// Per-worker `(executed, stolen, busy_us)` rows from the
/// `sched.worker.<w>.*` counter family.
fn worker_rows(snap: &Snapshot) -> Vec<(u64, u64, u64, u64)> {
    let mut rows = Vec::new();
    for w in 0.. {
        let executed = format!("sched_worker_{w}_executed");
        if !snap.counters.contains_key(&executed) {
            break;
        }
        rows.push((
            w,
            snap.counter(&executed),
            snap.counter(&format!("sched_worker_{w}_stolen")),
            snap.counter(&format!("sched_worker_{w}_busy_us")),
        ));
    }
    rows
}

fn render_frame(snap: &Snapshot, prev: Option<&Snapshot>, dt: Duration, addr: &str) -> String {
    let mut out = String::new();
    let total = snap.counter("serve_requests");
    let rate = prev.map_or(0.0, |p| {
        let delta = total.saturating_sub(p.counter("serve_requests"));
        delta as f64 / dt.as_secs_f64().max(1e-9)
    });
    let hits = snap.counter("serve_cache_hits") + snap.counter("sched_cache_hits");
    let misses = snap.counter("serve_cache_misses") + snap.counter("sched_cache_misses");
    let looked = hits + misses;
    let hit_pct = if looked == 0 {
        0.0
    } else {
        100.0 * hits as f64 / looked as f64
    };
    let lat = snap.histogram("serve_latency_us");
    out.push_str(&format!(
        "syncperf-top — {addr}\n\
         requests {total} ({rate:.1}/s)   errors {}   cache hit {hit_pct:.1}% ({hits}/{looked})\n\
         conns {}   p50 {}us   p99 {}us   rejected {}   timeouts {}\n\
         index {} entries / {} bytes   inflight {}   queue depth {} (peak {})   events dropped {}\n",
        snap.counter("serve_errors"),
        snap.gauge("serve_connections"),
        lat.quantile(0.50),
        lat.quantile(0.99),
        snap.counter("serve_rejected"),
        snap.counter("serve_timeouts"),
        snap.gauge("serve_index_entries"),
        snap.gauge("serve_index_bytes"),
        snap.gauge("serve_inflight"),
        snap.gauge("sched_queue_depth"),
        snap.gauge("sched_queue_depth_peak"),
        snap.dropped_events,
    ));

    out.push_str(&format!(
        "\n{:<12} {:>9} {:>9} {:>9} {:>9} {:>9}\n",
        "endpoint", "requests", "req/s", "p50us", "p99us", "maxus"
    ));
    out.push_str(&format!("{}\n", "-".repeat(64)));
    let prev_reqs = prev.map(endpoint_requests).unwrap_or_default();
    for (label, reqs) in endpoint_requests(snap) {
        if reqs == 0 {
            continue;
        }
        // Like the header rate: no previous poll means no rate yet
        // (dividing the lifetime count by the tiny first-frame dt
        // would print a nonsense spike).
        let eps = prev.map_or(0.0, |_| {
            let delta = reqs.saturating_sub(prev_reqs.get(&label).copied().unwrap_or(0));
            delta as f64 / dt.as_secs_f64().max(1e-9)
        });
        let h = snap.histogram(&format!("serve_endpoint_{label}_latency_us"));
        out.push_str(&format!(
            "{label:<12} {reqs:>9} {eps:>9.1} {:>9} {:>9} {:>9}\n",
            h.quantile(0.50),
            h.quantile(0.99),
            h.max(),
        ));
    }

    let workers = worker_rows(snap);
    if !workers.is_empty() {
        out.push_str(&format!(
            "\n{:<8} {:>9} {:>9} {:>12}\n",
            "worker", "executed", "stolen", "busy_us"
        ));
        out.push_str(&format!("{}\n", "-".repeat(42)));
        for (w, executed, stolen, busy_us) in workers {
            out.push_str(&format!("{w:<8} {executed:>9} {stolen:>9} {busy_us:>12}\n"));
        }
    }

    // Distributed coordinator section: present when the scraped
    // endpoint belongs to (or exports) a `syncperf_dist` coordinator.
    if snap.counter("dist_workers") > 0 {
        out.push_str(&format!(
            "\ndist: {} workers ({} live)   in-flight {}   reissues {}   migrations {}   deaths {}\n\
             dist jobs: {} sent / {} results   coordinator {}   local {}   dup {}   corrupt {}\n",
            snap.counter("dist_workers"),
            snap.gauge("dist_workers_live"),
            snap.gauge("dist_batches_inflight"),
            snap.counter("dist_shard_reissues"),
            snap.counter("dist_migrations"),
            snap.counter("dist_worker_deaths"),
            snap.counter("dist_jobs_sent"),
            snap.counter("dist_results_received"),
            snap.counter("dist_coordinator_jobs"),
            snap.counter("dist_local_jobs"),
            snap.counter("dist_duplicate_results"),
            snap.counter("dist_corrupt_entries"),
        ));
    }

    // Plan-compilation section: present once the scheduler has
    // grouped at least one same-shape parameter sweep for batched
    // plan-table evaluation.
    let plan_batches = snap.counter("sched_plan_batches");
    if plan_batches > 0 {
        out.push_str(&format!(
            "\nplan: {plan_batches} batches   {} points   {} primed   compile {}us   trace ops {}\n",
            snap.counter("sched_plan_batch_points"),
            snap.counter("sched_plan_primed_jobs"),
            snap.counter("sched_plan_compile_us"),
            snap.counter("plan_trace_ops"),
        ));
    }

    for (title, name) in [
        ("sched wait", "sched_wait_us"),
        ("sched hit svc", "sched_service_us_hit"),
        ("sched miss svc", "sched_service_us_miss"),
        ("plan compile", "plan_compile_us"),
        ("plan batch", "plan_batch_size"),
        ("dist wait", "dist_wait_us"),
        ("dist svc", "dist_service_us"),
    ] {
        let h = snap.histogram(name);
        if h.count() > 0 {
            out.push_str(&format!(
                "{title:<14} n={} p50={}us p99={}us max={}us\n",
                h.count(),
                h.quantile(0.50),
                h.quantile(0.99),
                h.max(),
            ));
        }
    }
    out
}

fn main() -> Result<()> {
    let args = parse_args(std::env::args().skip(1))?;
    let mut prev: Option<Snapshot> = None;
    let mut last = Instant::now();
    loop {
        let snap = scrape(&args.addr)?;
        let dt = last.elapsed().max(Duration::from_millis(1));
        last = Instant::now();
        let frame = render_frame(&snap, prev.as_ref(), dt, &args.addr);
        if args.once {
            print!("{frame}");
            return Ok(());
        }
        // Clear screen + home, then one frame — classic `top` refresh.
        print!("\x1b[2J\x1b[H{frame}");
        std::io::stdout().flush().ok();
        prev = Some(snap);
        std::thread::sleep(args.interval);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_snapshot() -> Snapshot {
        let rec = obs::Recorder::enabled();
        let c = rec.counter("serve_requests");
        for _ in 0..5 {
            c.inc();
        }
        rec.counter("serve_endpoint_stats_requests").inc();
        let h = rec.histogram("serve_endpoint_stats_latency_us");
        h.observe(150);
        rec.histogram("serve_latency_us").observe(150);
        rec.gauge_set("serve_connections").set(3);
        rec.counter("serve_rejected").add(2);
        rec.counter("serve_timeouts").inc();
        rec.counter("sched_worker_0_executed").add(7);
        rec.counter("sched_worker_0_busy_us").add(1234);
        rec.gauge_set("sched_queue_depth").set(2);
        rec.snapshot()
    }

    #[test]
    fn frame_renders_requests_endpoints_and_workers() {
        let snap = sample_snapshot();
        let frame = render_frame(&snap, None, Duration::from_secs(1), "test:0");
        assert!(frame.contains("requests 5"));
        assert!(frame.contains("conns 3"));
        assert!(frame.contains("rejected 2"));
        assert!(frame.contains("timeouts 1"));
        assert!(frame.contains("stats"));
        assert!(frame.contains("worker"));
        assert!(frame.contains("1234"));
        assert!(frame.contains("queue depth 2"));
    }

    #[test]
    fn frame_renders_dist_section_only_with_a_coordinator() {
        let snap = sample_snapshot();
        let frame = render_frame(&snap, None, Duration::from_secs(1), "test:0");
        assert!(!frame.contains("dist:"), "no dist section without dist_*");

        let rec = obs::Recorder::enabled();
        rec.counter("dist_workers").add(3);
        rec.gauge_set("dist_workers_live").set(2);
        rec.gauge_set("dist_batches_inflight").set(4);
        rec.counter("dist_shard_reissues").add(1);
        rec.counter("dist_jobs_sent").add(90);
        rec.counter("dist_results_received").add(88);
        rec.counter("dist_coordinator_jobs").add(11);
        rec.histogram("dist_service_us").observe(42);
        let frame = render_frame(&rec.snapshot(), None, Duration::from_secs(1), "test:0");
        assert!(
            frame.contains("dist: 3 workers (2 live)"),
            "frame:\n{frame}"
        );
        assert!(frame.contains("in-flight 4"));
        assert!(frame.contains("reissues 1"));
        assert!(frame.contains("90 sent / 88 results"));
        assert!(frame.contains("coordinator 11"));
        assert!(frame.contains("dist svc"));
    }

    #[test]
    fn frame_renders_plan_section_only_after_batching() {
        let snap = sample_snapshot();
        let frame = render_frame(&snap, None, Duration::from_secs(1), "test:0");
        assert!(!frame.contains("plan:"), "no plan section without batches");

        let rec = obs::Recorder::enabled();
        rec.counter("sched_plan_batches").add(2);
        rec.counter("sched_plan_batch_points").add(9);
        rec.counter("sched_plan_primed_jobs").add(9);
        rec.counter("sched_plan_compile_us").add(120);
        rec.counter("plan_trace_ops").add(340);
        rec.histogram("plan_batch_size").observe(4);
        rec.histogram("plan_batch_size").observe(5);
        let frame = render_frame(&rec.snapshot(), None, Duration::from_secs(1), "test:0");
        assert!(
            frame.contains("plan: 2 batches   9 points   9 primed   compile 120us   trace ops 340"),
            "frame:\n{frame}"
        );
        assert!(frame.contains("plan batch"));
    }

    #[test]
    fn rates_are_deltas_between_polls() {
        let prev = sample_snapshot();
        let mut now = prev.clone();
        now.counters.insert("serve_requests".into(), 15);
        let frame = render_frame(&now, Some(&prev), Duration::from_secs(2), "test:0");
        // 10 new requests over 2 seconds.
        assert!(frame.contains("(5.0/s)"), "frame:\n{frame}");
    }

    #[test]
    fn endpoint_requests_strips_the_metric_affixes() {
        let snap = sample_snapshot();
        let reqs = endpoint_requests(&snap);
        assert_eq!(reqs.get("stats"), Some(&1));
        assert!(!reqs.contains_key("serve_requests"));
    }

    #[test]
    fn parse_args_handles_flags_and_rejects_unknown() {
        let a = parse_args(
            ["--addr", "h:1", "--interval-ms", "50", "--once"]
                .map(String::from)
                .into_iter(),
        )
        .unwrap();
        assert_eq!(a.addr, "h:1");
        // Floor keeps the poll loop from busy-spinning.
        assert_eq!(a.interval, Duration::from_millis(100));
        assert!(a.once);
        assert!(parse_args(["--bogus".to_string()].into_iter()).is_err());
    }
}
