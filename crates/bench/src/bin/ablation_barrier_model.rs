//! Ablation: centralized vs combining-tree barrier model (DESIGN.md §5).
//!
//! The paper's Fig. 1 shape — decline then plateau — matches a
//! centralized barrier built on a saturating contended counter. A
//! combining-tree barrier would instead step with log2(n); regenerating
//! Fig. 1 under both models shows which algorithm the measured OpenMP
//! runtime resembles.

use syncperf_core::sweep::{thread_sweep, throughput_series};
use syncperf_core::{kernel, Affinity, ExecParams, FigureData, Protocol, SYSTEM3};
use syncperf_cpu_sim::{BarrierKind, CpuModel, CpuSimExecutor};

fn series(label: &str, kind: BarrierKind) -> syncperf_core::Result<syncperf_core::Series> {
    let mut model = CpuModel::for_system(&SYSTEM3.cpu, SYSTEM3.cpu_jitter);
    model.barrier_kind = kind;
    let mut exec = CpuSimExecutor::with_model(&SYSTEM3, model);
    let points = thread_sweep(
        &SYSTEM3.cpu.omp_thread_counts(),
        ExecParams::new(2)
            .with_affinity(Affinity::Spread)
            .with_loops(1000, 100),
        |_| kernel::omp_barrier(),
    );
    throughput_series(&mut exec, &Protocol::PAPER, label, points)
}

fn figures() -> syncperf_core::Result<Vec<syncperf_core::FigureData>> {
    let mut fig = FigureData::new(
        "ablation_barrier_model",
        "OpenMP barrier: centralized (paper shape) vs combining tree",
        "threads",
        "barriers/s/thread",
    );
    fig.push_series(series(
        "centralized (saturating counter)",
        BarrierKind::Centralized,
    )?);
    fig.push_series(series(
        "combining tree, fan-in 4",
        BarrierKind::CombiningTree { fanin: 4 },
    )?);
    fig.annotate("the measured plateau beyond ~8 threads matches the centralized algorithm");
    Ok(vec![fig])
}

fn main() -> syncperf_core::Result<()> {
    syncperf_bench::runner::run(figures)
}
