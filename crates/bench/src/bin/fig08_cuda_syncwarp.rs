//! Regenerates Fig. 8 (__syncwarp on Systems 3 and 1).

fn main() -> syncperf_core::Result<()> {
    syncperf_bench::runner::run(syncperf_bench::figures_gpu::fig08_syncwarp)
}
