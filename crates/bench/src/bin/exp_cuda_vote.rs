//! Regenerates the Section V-B4 no-figure findings (warp votes).

fn main() -> syncperf_core::Result<()> {
    syncperf_bench::runner::run(syncperf_bench::figures_gpu::exp_vote)
}
