//! Case study: summing 2^22 doubles on the simulated System 3 CPU with
//! the four synchronization strategies ranked by the paper's §V-A5
//! recommendations.

use syncperf_core::{Affinity, SYSTEM3};
use syncperf_cpu_sim::{simulate_cpu_reduction, CpuModel, CpuReductionStrategy, Placement};

fn figures() -> syncperf_core::Result<Vec<syncperf_core::FigureData>> {
    let model = CpuModel::for_system(&SYSTEM3.cpu, SYSTEM3.cpu_jitter);
    let elements = 1u64 << 22;
    println!(
        "summing {elements} doubles on the simulated {} ({} threads)\n",
        SYSTEM3.cpu.name,
        SYSTEM3.cpu.total_cores()
    );
    println!(
        "{:<36} {:>12} {:>12} {:>10}",
        "strategy", "accumulate", "merge", "total ms"
    );
    for threads in [2u32, 8, 16] {
        println!("-- {threads} threads --");
        let placement = Placement::new(&SYSTEM3.cpu, Affinity::Spread, threads);
        for s in CpuReductionStrategy::ALL {
            let r = simulate_cpu_reduction(&model, &placement, s, elements)?;
            println!(
                "{:<36} {:>10.2}ms {:>10.4}ms {:>10.2}",
                s.label(),
                r.accumulate_ns / 1e6,
                r.merge_ns / 1e6,
                r.total_ns / 1e6
            );
        }
    }
    println!(
        "\npadded private partials win — recommendations 2, 3, and 5 of §V-A5 in one workload"
    );
    Ok(Vec::new())
}

fn main() -> syncperf_core::Result<()> {
    syncperf_bench::runner::run(figures)
}
