//! Regenerates Fig. 4 (OpenMP atomic write on Systems 3 and 2).

fn main() -> syncperf_core::Result<()> {
    syncperf_bench::runner::run(syncperf_bench::figures_cpu::fig04_atomic_write)
}
