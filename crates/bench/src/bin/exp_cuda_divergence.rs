//! Regenerates the warp-divergence extension experiment (ref. [10]).

fn main() -> syncperf_core::Result<()> {
    syncperf_bench::runner::run(syncperf_bench::figures_gpu::exp_divergence)
}
