//! Regenerates Fig. 2 (OpenMP atomic update on a shared variable).

fn main() -> syncperf_core::Result<()> {
    syncperf_bench::runner::run(syncperf_bench::figures_cpu::fig02_atomic_update_scalar)
}
