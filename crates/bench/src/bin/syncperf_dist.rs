//! `syncperf_dist` — the distributed sweep front-end.
//!
//! ```console
//! $ syncperf_dist all_figures --workers 3            # spawn 3 local worker
//!                                                    # processes, run the sweep
//! $ syncperf_dist worker --listen 0.0.0.0:7070       # pre-started worker
//! $ syncperf_dist all_figures --connect host:7070 \
//!                             --connect host:7071    # use pre-started workers
//! $ syncperf_dist all_figures --workers 3 --chaos-kill-one 25
//! $ syncperf_dist all_figures --workers 3 --metrics-addr 127.0.0.1:0
//! $ syncperf_dist bench                              # tracked BENCH_dist.json:
//!                                                    # 3 processes vs --jobs 3 threads
//! $ syncperf_dist bench --check                      # regression gate vs committed
//! ```
//!
//! Coordinator mode accepts every shared figure-binary flag (see
//! `syncperf_bench::runner::RunOptions`); when neither `--workers` nor
//! `--connect` is given it defaults to `--workers 3`. The spawned
//! workers are this same binary re-exec'd in the hidden `__dist-worker`
//! mode.

use std::path::PathBuf;
use std::time::Instant;

use syncperf_bench::runner::{self, RunOptions};
use syncperf_core::obs::json;

/// Cold `all_figures` runs per configuration; the minimum is tracked.
const RUNS: usize = 3;

/// `--check` fails when the fresh distributed measurement exceeds the
/// committed `dist_ms` by more than this factor.
const REGRESSION_FACTOR: f64 = 1.25;

/// Worker processes (and reference threads) for the tracked benchmark.
const BENCH_WORKERS: usize = 3;

fn usage() -> ! {
    eprintln!(
        "usage: syncperf_dist <entry> [--workers N | --connect host:port ...] [shared flags]\n\
         \x20      syncperf_dist worker (--listen|--connect) host:port\n\
         \x20      syncperf_dist bench [--check] [--out PATH]\n\
         \x20      syncperf_dist --list"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    match args.get(1).map(String::as_str) {
        // Hidden re-exec mode used by spawn-mode coordinators (both
        // this binary's and the figure binaries').
        Some("__dist-worker") => {
            let code = match args.get(2).map(String::as_str) {
                Some("--connect") if args.len() == 4 => {
                    match syncperf_dist::run_connect(&args[3]) {
                        Ok(()) => 0,
                        Err(e) => {
                            eprintln!("worker: {e}");
                            1
                        }
                    }
                }
                _ => {
                    eprintln!("__dist-worker requires --connect <host:port>");
                    2
                }
            };
            std::process::exit(code);
        }
        Some("worker") => {
            let result = match (args.get(2).map(String::as_str), args.get(3)) {
                (Some("--listen"), Some(addr)) => syncperf_dist::run_listen(addr),
                (Some("--connect"), Some(addr)) => syncperf_dist::run_connect(addr),
                _ => usage(),
            };
            if let Err(e) = result {
                eprintln!("worker: {e}");
                std::process::exit(1);
            }
        }
        Some("bench") => bench(&args[2..]),
        Some("--list") => {
            for e in runner::registry() {
                println!("{:32} {}", e.name, e.about);
            }
        }
        Some(entry) if !entry.starts_with('-') => coordinate(entry, &args[2..]),
        _ => usage(),
    }
}

/// Coordinator mode: run a registry entry with distributed execution.
fn coordinate(entry: &str, rest: &[String]) {
    let Some(e) = runner::find(entry) else {
        eprintln!("unknown entry `{entry}` (try --list)");
        std::process::exit(2);
    };
    let mut opts = match RunOptions::parse(rest.iter().cloned()) {
        Ok(o) => o,
        Err(err) => {
            eprintln!("error: {err}");
            std::process::exit(2);
        }
    };
    if !opts.wants_dist() {
        opts.workers = Some(BENCH_WORKERS);
    }
    // Label by entry name so checkpoint manifests merge with (and
    // resume from) runs of the plain figure binary.
    opts.label = Some(e.name.to_string());
    if let Err(err) = runner::run_with_options(e.generate, &opts) {
        eprintln!("error: {err}");
        std::process::exit(1);
    }
}

/// Scratch root for throwaway results/cache trees (same policy as
/// `bench_report`: prefer RAM-backed storage).
fn scratch_root() -> PathBuf {
    let shm = PathBuf::from("/dev/shm");
    if std::fs::metadata(&shm).map(|m| m.is_dir()).unwrap_or(false) {
        let probe = shm.join(format!(".syncperf-dist-probe-{}", std::process::id()));
        if std::fs::write(&probe, b"x").is_ok() {
            let _ = std::fs::remove_file(&probe);
            return shm;
        }
    }
    std::env::temp_dir()
}

/// The `all_figures` workload, exactly as `bench_report` times it.
fn workload() -> syncperf_core::Result<()> {
    let _table1 = syncperf_bench::tables::table1();
    let _listing1 = syncperf_bench::tables::listing1_report(&syncperf_core::SYSTEM3)?;
    let figs = syncperf_bench::all_figures()?;
    syncperf_bench::emit(&figs)
}

/// One cold run: fresh results dir and cache. `dist` routes execution
/// through a freshly spawned local worker fleet; otherwise the
/// scheduler's in-process thread pool runs it.
fn cold_run_ms(root: &std::path::Path, tag: &str, dist: bool) -> syncperf_core::Result<f64> {
    let dir = root.join(format!("syncperf-dist-bench-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::env::set_var("SYNCPERF_RESULTS", &dir);
    let cfg = syncperf_sched::SchedConfig::new(BENCH_WORKERS)
        .with_cache_dir(dir.join(".cache"))
        .with_label("dist_bench");
    let sched = syncperf_sched::install(syncperf_sched::Scheduler::new(cfg));
    let coord = if dist {
        let cache = sched
            .cache()
            .map(|c| syncperf_sched::Cache::new(c.dir().to_path_buf()));
        let coord = syncperf_dist::Coordinator::start(
            syncperf_dist::DistConfig::new(BENCH_WORKERS),
            cache,
        )?;
        coord.attach(&sched);
        Some(coord)
    } else {
        None
    };

    let start = Instant::now();
    let outcome = workload();
    let elapsed_ms = start.elapsed().as_secs_f64() * 1e3;

    if let Some(c) = &coord {
        c.shutdown();
    }
    if outcome.is_ok() {
        sched.finish();
    }
    syncperf_sched::uninstall();
    std::env::remove_var("SYNCPERF_RESULTS");
    let stats = sched.stats();
    let _ = std::fs::remove_dir_all(&dir);
    outcome?;
    assert!(
        stats.executed > stats.cache_hits,
        "a cold run must mostly measure, not serve ({} executed, {} hits)",
        stats.executed,
        stats.cache_hits
    );
    Ok(elapsed_ms)
}

fn render_report(threads_runs: &[f64], dist_runs: &[f64]) -> String {
    let fmt = |runs: &[f64]| {
        runs.iter()
            .map(|ms| format!("{ms:.1}"))
            .collect::<Vec<_>>()
            .join(", ")
    };
    let threads_ms = threads_runs.iter().copied().fold(f64::INFINITY, f64::min);
    let dist_ms = dist_runs.iter().copied().fold(f64::INFINITY, f64::min);
    format!(
        "{{\n  \"benchmark\": \"cold all_figures: {BENCH_WORKERS} worker processes vs --jobs {BENCH_WORKERS} threads (fresh cache)\",\n  \
         \"unit\": \"ms\",\n  \
         \"threads_ms\": {threads_ms:.1},\n  \
         \"dist_ms\": {dist_ms:.1},\n  \
         \"speedup\": {:.2},\n  \
         \"threads_runs_ms\": [{}],\n  \
         \"dist_runs_ms\": [{}],\n  \
         \"check_regression_factor\": {REGRESSION_FACTOR}\n}}\n",
        threads_ms / dist_ms,
        fmt(threads_runs),
        fmt(dist_runs),
    )
}

/// The committed `dist_ms`, read from an existing report file.
fn committed_dist_ms(path: &std::path::Path) -> Option<f64> {
    let text = std::fs::read_to_string(path).ok()?;
    json::parse(&text).ok()?.get("dist_ms")?.as_f64()
}

/// The tracked multi-process-vs-threads benchmark (`bench` subcommand).
fn bench(args: &[String]) {
    let mut check = false;
    let mut out = PathBuf::from("BENCH_dist.json");
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--check" => check = true,
            "--out" => match it.next() {
                Some(path) => out = path.into(),
                None => usage(),
            },
            _ => usage(),
        }
    }

    let root = scratch_root();
    eprintln!("scratch root: {}", root.display());
    let mut threads_runs = Vec::with_capacity(RUNS);
    let mut dist_runs = Vec::with_capacity(RUNS);
    for i in 0..RUNS {
        match cold_run_ms(&root, &format!("threads-{i}"), false) {
            Ok(ms) => {
                eprintln!("threads run {}/{RUNS}: {ms:.1} ms", i + 1);
                threads_runs.push(ms);
            }
            Err(e) => {
                eprintln!("error: threads run failed: {e}");
                std::process::exit(1);
            }
        }
        match cold_run_ms(&root, &format!("dist-{i}"), true) {
            Ok(ms) => {
                eprintln!("dist run {}/{RUNS}: {ms:.1} ms", i + 1);
                dist_runs.push(ms);
            }
            Err(e) => {
                eprintln!("error: dist run failed: {e}");
                std::process::exit(1);
            }
        }
    }
    let dist_ms = dist_runs.iter().copied().fold(f64::INFINITY, f64::min);

    if check {
        let Some(committed) = committed_dist_ms(&out) else {
            eprintln!(
                "error: --check needs a committed {} with dist_ms",
                out.display()
            );
            std::process::exit(1);
        };
        let limit = committed * REGRESSION_FACTOR;
        eprintln!(
            "check: measured {dist_ms:.1} ms vs committed {committed:.1} ms (limit {limit:.1} ms)"
        );
        if dist_ms > limit {
            eprintln!(
                "error: distributed cold all_figures regressed >{:.0}% vs the committed baseline",
                (REGRESSION_FACTOR - 1.0) * 100.0
            );
            std::process::exit(1);
        }
        println!("dist bench check ok: {dist_ms:.1} ms <= {limit:.1} ms");
        return;
    }

    let report = render_report(&threads_runs, &dist_runs);
    if let Err(e) = std::fs::write(&out, &report) {
        eprintln!("error writing {}: {e}", out.display());
        std::process::exit(1);
    }
    print!("{report}");
}
