//! The tracked macro-benchmark: times a cold `all_figures --jobs 2`
//! regeneration (fresh cache, throwaway results directory) in-process
//! and writes `BENCH_syncperf.json` at the repo root, recording the
//! pre-optimization baseline alongside the current number.
//!
//! ```console
//! $ bench_report                   # measure, write BENCH_syncperf.json
//! $ bench_report --check           # measure, fail if >25% slower than
//!                                  # the committed after_ms
//! $ bench_report --out PATH        # write somewhere else
//! ```
//!
//! The workload is exactly what the `all_figures` binary does under
//! `--jobs 2`: tables, every figure generator, CSV/SVG emission —
//! routed through a freshly-installed 2-worker scheduler with an empty
//! result cache, so every sweep point is measured, not served.

use std::path::PathBuf;
use std::time::Instant;

use syncperf_core::obs::json;

/// Cold `all_figures --jobs 2` wall time before the steady-state fast
/// path landed: the pre-fast-path engines, rebuilt and re-timed under
/// this binary's exact methodology (RAM-backed scratch, best of 5).
const BASELINE_BEFORE_MS: f64 = 934.0;

/// `--check` fails when the fresh measurement exceeds the committed
/// `after_ms` by more than this factor.
const REGRESSION_FACTOR: f64 = 1.25;

/// Timed cold runs; the minimum is the tracked number (least
/// scheduler/OS noise).
const RUNS: usize = 5;

fn usage() -> ! {
    eprintln!("usage: bench_report [--check] [--out PATH]");
    std::process::exit(2);
}

/// Scratch root for the throwaway results/cache tree. Prefers a
/// RAM-backed filesystem: the tracked number must reflect the
/// harness's own work, not whatever writeback pressure the host's
/// disk happens to be under when CI runs.
fn scratch_root() -> PathBuf {
    let shm = PathBuf::from("/dev/shm");
    if std::fs::metadata(&shm).map(|m| m.is_dir()).unwrap_or(false) {
        let probe = shm.join(format!(".syncperf-probe-{}", std::process::id()));
        if std::fs::write(&probe, b"x").is_ok() {
            let _ = std::fs::remove_file(&probe);
            return shm;
        }
    }
    std::env::temp_dir()
}

/// One cold regeneration: fresh results dir, fresh cache, 2 workers.
fn cold_run_ms(root: &std::path::Path, tag: usize) -> syncperf_core::Result<f64> {
    let dir = root.join(format!(
        "syncperf-bench-report-{}-{tag}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::env::set_var("SYNCPERF_RESULTS", &dir);
    let cfg = syncperf_sched::SchedConfig::new(2)
        .with_cache_dir(dir.join(".cache"))
        .with_label("bench_report");
    let sched = syncperf_sched::install(syncperf_sched::Scheduler::new(cfg));

    let start = Instant::now();
    let outcome = (|| {
        let _table1 = syncperf_bench::tables::table1();
        let _listing1 = syncperf_bench::tables::listing1_report(&syncperf_core::SYSTEM3)?;
        let figs = syncperf_bench::all_figures()?;
        syncperf_bench::emit(&figs)
    })();
    if outcome.is_ok() {
        sched.finish();
    }
    let elapsed_ms = start.elapsed().as_secs_f64() * 1e3;

    syncperf_sched::uninstall();
    std::env::remove_var("SYNCPERF_RESULTS");
    let stats = sched.stats();
    let _ = std::fs::remove_dir_all(&dir);
    outcome?;
    // Figures share sweep points, so even a cold run has intra-run
    // hits — but most jobs must have been genuinely executed.
    assert!(
        stats.executed > stats.cache_hits,
        "a cold run must mostly measure, not serve ({} executed, {} hits)",
        stats.executed,
        stats.cache_hits
    );
    Ok(elapsed_ms)
}

fn render_report(runs_ms: &[f64], after_ms: f64) -> String {
    let runs = runs_ms
        .iter()
        .map(|ms| format!("{ms:.1}"))
        .collect::<Vec<_>>()
        .join(", ");
    format!(
        "{{\n  \"benchmark\": \"cold all_figures --jobs 2 (fresh cache, temp results dir)\",\n  \
         \"unit\": \"ms\",\n  \
         \"before_ms\": {BASELINE_BEFORE_MS:.1},\n  \
         \"after_ms\": {after_ms:.1},\n  \
         \"speedup\": {:.2},\n  \
         \"runs_ms\": [{runs}],\n  \
         \"check_regression_factor\": {REGRESSION_FACTOR}\n}}\n",
        BASELINE_BEFORE_MS / after_ms,
    )
}

/// The committed `after_ms`, read from an existing report file.
fn committed_after_ms(path: &std::path::Path) -> Option<f64> {
    let text = std::fs::read_to_string(path).ok()?;
    json::parse(&text).ok()?.get("after_ms")?.as_f64()
}

fn main() {
    let mut check = false;
    let mut out = PathBuf::from("BENCH_syncperf.json");
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--check" => check = true,
            "--out" => match it.next() {
                Some(path) => out = path.into(),
                None => usage(),
            },
            _ => usage(),
        }
    }

    let root = scratch_root();
    eprintln!("scratch root: {}", root.display());
    let mut runs_ms = Vec::with_capacity(RUNS);
    for i in 0..RUNS {
        match cold_run_ms(&root, i) {
            Ok(ms) => {
                eprintln!("cold run {}/{RUNS}: {ms:.1} ms", i + 1);
                runs_ms.push(ms);
            }
            Err(e) => {
                eprintln!("error: cold run failed: {e}");
                std::process::exit(1);
            }
        }
    }
    let after_ms = runs_ms.iter().copied().fold(f64::INFINITY, f64::min);

    if check {
        let Some(committed) = committed_after_ms(&out) else {
            eprintln!(
                "error: --check needs a committed {} with after_ms",
                out.display()
            );
            std::process::exit(1);
        };
        let limit = committed * REGRESSION_FACTOR;
        eprintln!(
            "check: measured {after_ms:.1} ms vs committed {committed:.1} ms (limit {limit:.1} ms)"
        );
        if after_ms > limit {
            eprintln!(
                "error: cold all_figures regressed >{:.0}% vs the committed baseline",
                (REGRESSION_FACTOR - 1.0) * 100.0
            );
            std::process::exit(1);
        }
        println!("bench check ok: {after_ms:.1} ms <= {limit:.1} ms");
        return;
    }

    let report = render_report(&runs_ms, after_ms);
    if let Err(e) = std::fs::write(&out, &report) {
        eprintln!("error writing {}: {e}", out.display());
        std::process::exit(1);
    }
    print!("{report}");
    println!(
        "wrote {} ({:.2}x vs the {BASELINE_BEFORE_MS:.0} ms pre-fast-path baseline)",
        out.display(),
        BASELINE_BEFORE_MS / after_ms
    );
}
