//! Regenerates Fig. 5 (OpenMP critical-section add).

fn main() -> syncperf_core::Result<()> {
    syncperf_bench::runner::run(syncperf_bench::figures_cpu::fig05_critical)
}
