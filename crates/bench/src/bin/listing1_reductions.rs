//! Runs the Listing 1 reduction study (Section II-C): five max-reduction
//! strategies on the simulated RTX 4090, reproducing the paper's
//! non-intuitive ordering (R3 < R4 < R1 < R2, with R5 fastest).

use syncperf_core::SYSTEM3;

fn main() -> syncperf_core::Result<()> {
    print!("{}", syncperf_bench::tables::listing1_report(&SYSTEM3)?);
    Ok(())
}
