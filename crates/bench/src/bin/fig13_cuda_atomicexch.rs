//! Regenerates Fig. 13 (atomicExch on one shared variable).

fn main() -> syncperf_core::Result<()> {
    syncperf_bench::runner::run(syncperf_bench::figures_gpu::fig13_atomicexch)
}
