//! Regenerates Fig. 9 (atomicAdd on one shared variable).

fn main() -> syncperf_core::Result<()> {
    syncperf_bench::runner::run(syncperf_bench::figures_gpu::fig09_atomicadd_scalar)
}
