//! Regenerates Fig. 6 (OpenMP flush at strides 1/4/8/16).

fn main() -> syncperf_core::Result<()> {
    syncperf_bench::runner::run(syncperf_bench::figures_cpu::fig06_flush)
}
