//! Regenerates Fig. 6 (OpenMP flush at strides 1/4/8/16).

fn main() -> syncperf_core::Result<()> {
    syncperf_bench::emit(&syncperf_bench::figures_cpu::fig06_flush()?)
}
