//! Regenerates Fig. 14 (__threadfence).

fn main() -> syncperf_core::Result<()> {
    syncperf_bench::runner::run(syncperf_bench::figures_gpu::fig14_threadfence)
}
