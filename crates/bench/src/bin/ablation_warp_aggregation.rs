//! Ablation: warp-aggregated atomics on/off (DESIGN.md §5).
//!
//! With aggregation off, the Fig. 9 constant-throughput region up to 64
//! threads at 2 blocks disappears, and Listing 1's Reduction 1 becomes
//! *slower* than Reduction 2 — evidence that the driver's JIT
//! aggregation is what makes R1 beat R2 on real hardware.

use syncperf_core::sweep::{thread_sweep, throughput_series};
use syncperf_core::{kernel, DType, ExecParams, FigureData, Protocol, SYSTEM3};
use syncperf_gpu_sim::{
    simulate_reduction, GpuModel, GpuSimExecutor, ReductionConfig, ReductionStrategy,
};

fn add_series(label: &str, model: GpuModel) -> syncperf_core::Result<syncperf_core::Series> {
    let mut exec = GpuSimExecutor::with_model(&SYSTEM3, model);
    let points = thread_sweep(
        &SYSTEM3.gpu.thread_count_sweep(),
        ExecParams::new(1).with_blocks(2).with_loops(1000, 100),
        |_| kernel::cuda_atomic_add_scalar(DType::I32),
    );
    throughput_series(&mut exec, &Protocol::PAPER, label, points)
}

fn figures() -> syncperf_core::Result<Vec<syncperf_core::FigureData>> {
    let on = GpuModel::for_spec(&SYSTEM3.gpu);
    let mut off = on.clone();
    off.warp_aggregation = false;

    let mut fig = FigureData::new(
        "ablation_warp_agg",
        "atomicAdd() on 1 shared variable, 2 blocks: warp aggregation on/off",
        "threads per block",
        "ops/s/thread",
    )
    .with_log_x();
    fig.push_series(add_series("aggregation on (paper shape)", on.clone())?);
    fig.push_series(add_series("aggregation off", off.clone())?);
    fig.annotate("with aggregation off the constant region up to 64 threads disappears");

    let cfg = ReductionConfig::megabyte_input(&SYSTEM3.gpu);
    for (label, model) in [("aggregation on", &on), ("aggregation off", &off)] {
        let r1 = simulate_reduction(model, &SYSTEM3.gpu, ReductionStrategy::GlobalAtomic, &cfg)?;
        let r2 = simulate_reduction(
            model,
            &SYSTEM3.gpu,
            ReductionStrategy::ShflThenGlobalAtomic,
            &cfg,
        )?;
        println!(
            "{label}: R1 = {:.0} cycles, R2 = {:.0} cycles → {}",
            r1.total_cycles,
            r2.total_cycles,
            if r1.total_cycles < r2.total_cycles {
                "R1 wins (paper)"
            } else {
                "R2 wins"
            }
        );
    }
    Ok(vec![fig])
}

fn main() -> syncperf_core::Result<()> {
    syncperf_bench::runner::run(figures)
}
