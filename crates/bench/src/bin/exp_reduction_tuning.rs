//! Tuning study: how Listing 1's persistent-thread reduction (R5)
//! responds to block size and grid size — the "experiment
//! customization" the paper's appendix invites, as a tool.

use syncperf_core::{FigureData, Series, SYSTEM3};
use syncperf_gpu_sim::{simulate_reduction, GpuModel, ReductionConfig, ReductionStrategy};

fn figures() -> syncperf_core::Result<Vec<syncperf_core::FigureData>> {
    let m = GpuModel::for_spec(&SYSTEM3.gpu);
    let elements = 1u64 << 24;

    // Grid-size sweep at the usual 256-thread blocks.
    let mut grid_fig = FigureData::new(
        "exp_r5_grid",
        "R5 persistent-thread reduction vs grid size (System 3, 2^24 ints, 256-thread blocks)",
        "grid blocks",
        "kernel time (us)",
    )
    .with_log_x();
    let mut points = Vec::new();
    let mut best: Option<(u32, f64)> = None;
    for factor in [1u32, 2, 4, 8, 16, 32, 64] {
        let blocks = (SYSTEM3.gpu.sms / 8 * factor).max(1);
        let cfg = ReductionConfig {
            size: elements,
            block_size: 256,
            persistent_grid_blocks: blocks,
        };
        let r = simulate_reduction(&m, &SYSTEM3.gpu, ReductionStrategy::PersistentThreads, &cfg)?;
        let us = r.total_cycles / (SYSTEM3.gpu.clock_ghz * 1e3);
        points.push((f64::from(blocks), us));
        if best.is_none_or(|(_, b)| us < b) {
            best = Some((blocks, us));
        }
    }
    grid_fig.push_series(Series::new("R5 runtime", points));
    let (best_blocks, best_us) = best.expect("nonempty sweep");
    grid_fig.annotate(format!(
        "best grid: {best_blocks} blocks ({:.1} blocks/SM) at {best_us:.1} us",
        f64::from(best_blocks) / f64::from(SYSTEM3.gpu.sms)
    ));

    // Block-size sweep at the 2-blocks/SM grid.
    let mut block_fig = FigureData::new(
        "exp_r5_blocksize",
        "R5 persistent-thread reduction vs block size (System 3, 2^24 ints, 2 blocks/SM)",
        "threads per block",
        "kernel time (us)",
    )
    .with_log_x();
    let mut points = Vec::new();
    for block_size in [32u32, 64, 128, 256, 512, 1024] {
        let cfg = ReductionConfig {
            size: elements,
            block_size,
            persistent_grid_blocks: SYSTEM3.gpu.sms * 2,
        };
        let r = simulate_reduction(&m, &SYSTEM3.gpu, ReductionStrategy::PersistentThreads, &cfg)?;
        points.push((
            f64::from(block_size),
            r.total_cycles / (SYSTEM3.gpu.clock_ghz * 1e3),
        ));
    }
    block_fig.push_series(Series::new("R5 runtime", points));
    block_fig.annotate("barrier cost grows with warps/block; tiny blocks under-fill the SMs");

    Ok(vec![grid_fig, block_fig])
}

fn main() -> syncperf_core::Result<()> {
    syncperf_bench::runner::run(figures)
}
