//! Runs the OpenMP test codes on *this machine's real threads* (the
//! artifact's original workflow) and writes artifact-style results
//! under `results/<hostname>/`.
//!
//! Trends depend on the host's core count; on a many-core machine this
//! reproduces the paper's CPU figures on genuine hardware. A reduced
//! protocol keeps the run short; pass `--full` for the paper's 9×7
//! protocol with full loop counts.

use syncperf_core::{
    kernel, Affinity, CpuKernel, DType, ExecParams, Protocol, ResultsStore, RunRecord,
};
use syncperf_omp::OmpExecutor;

fn main() -> syncperf_core::Result<()> {
    let full = std::env::args().any(|a| a == "--full");
    let max_threads = syncperf_bench::common::max_real_threads();
    let (protocol, n_iter, n_unroll) = if full {
        (Protocol::PAPER, 1000, 100)
    } else {
        (Protocol::SIM, 100, 20)
    };
    println!(
        "real-thread sweep: up to {max_threads} threads, protocol {}x{} runs, {}x{} loops",
        protocol.runs, protocol.max_attempts, n_iter, n_unroll
    );

    let host = std::env::var("HOSTNAME").unwrap_or_else(|_| "localhost".into());
    let mut store = ResultsStore::new(&host);
    let mut exec = OmpExecutor::new();
    let thread_counts: Vec<u32> = (2..=max_threads.max(2)).collect();

    let mut run = |name: &str, dtype: Option<DType>, stride: u32, k: &CpuKernel| {
        for &t in &thread_counts {
            let p = ExecParams::new(t)
                .with_loops(n_iter, n_unroll)
                .with_warmup(2);
            match protocol.measure(&mut exec, k, &p) {
                Ok(m) => store.push(RunRecord {
                    test: name.to_string(),
                    threads: t,
                    blocks: 1,
                    stride,
                    dtype,
                    affinity: Affinity::SystemChoice,
                    runtime_ns: m.runtime_seconds() * 1e9,
                    throughput: m.throughput_clamped(1e-10),
                }),
                Err(e) => eprintln!("{name} at {t} threads failed: {e}"),
            }
        }
    };

    run("omp_barrier", None, 0, &kernel::omp_barrier());
    for dt in DType::ALL {
        run(
            "omp_atomicadd_scalar",
            Some(dt),
            0,
            &kernel::omp_atomic_update_scalar(dt),
        );
        run(
            "omp_atomicwrite",
            Some(dt),
            0,
            &kernel::omp_atomic_write(dt),
        );
        run("omp_atomicread", Some(dt), 0, &kernel::omp_atomic_read(dt));
        run("omp_critical", Some(dt), 0, &kernel::omp_critical_add(dt));
        for stride in [1u32, 4, 8, 16] {
            run(
                "omp_atomicadd_array",
                Some(dt),
                stride,
                &kernel::omp_atomic_update_array(dt, stride),
            );
            run(
                "omp_flush",
                Some(dt),
                stride,
                &kernel::omp_flush(dt, stride),
            );
        }
    }

    let out = syncperf_bench::common::results_dir();
    store.write(&out)?;
    println!(
        "wrote {} records for {} tests under {}/{host}/",
        store.len(),
        store.tests().len(),
        out.display()
    );
    println!(
        "compare against a simulated system with:\n  cargo run -p syncperf-bench --bin launch -- openmp --yes\n  cargo run -p syncperf-bench --bin compare_results -- {} system3 {host}",
        out.display()
    );
    Ok(())
}
