//! Perturbs every load-bearing model constant across 0.5x-2x and
//! re-evaluates the paper's shape claims — showing which conclusions
//! follow from mechanisms rather than calibration.

fn main() -> syncperf_core::Result<()> {
    let rows = syncperf_bench::sensitivity::run_sensitivity()?;
    print!("{}", syncperf_bench::sensitivity::render(&rows));
    if rows.iter().any(|r| !r.robust()) {
        std::process::exit(1);
    }
    Ok(())
}
