//! Perturbs every load-bearing model constant across 0.5x-2x and
//! re-evaluates the paper's shape claims — showing which conclusions
//! follow from mechanisms rather than calibration.
//!
//! Accepts the shared scheduler flags (`--jobs`, `--no-cache`,
//! `--resume`, `--cache-stats`): the grid is hundreds of perturbed-model
//! measurements, and every one is an independent cacheable job.

use syncperf_bench::runner::{self, RunOptions};

fn main() -> syncperf_core::Result<()> {
    let mut opts = RunOptions::parse(std::env::args().skip(1))?;
    opts.label = Some("sensitivity_analysis".into());

    let sched = if opts.wants_scheduler() {
        let mut cfg = syncperf_sched::SchedConfig::new(opts.effective_jobs())
            .with_label(opts.label.clone().unwrap_or_default());
        if opts.no_cache {
            cfg = cfg.without_cache();
        }
        if opts.resume {
            cfg = cfg.with_resume();
        }
        Some(syncperf_sched::install(syncperf_sched::Scheduler::new(cfg)))
    } else {
        None
    };

    let outcome = syncperf_bench::sensitivity::run_sensitivity();

    if let Some(s) = &sched {
        if outcome.is_ok() {
            s.finish();
        }
        syncperf_sched::uninstall();
        let stats = s.stats();
        print!("{}", runner::render_sched_summary(&stats));
        if let Some(path) = &opts.cache_stats {
            std::fs::write(path, runner::cache_stats_json(&stats, None))?;
        }
    }

    let rows = outcome?;
    print!("{}", syncperf_bench::sensitivity::render(&rows));
    if rows.iter().any(|r| !r.robust()) {
        std::process::exit(1);
    }
    Ok(())
}
