//! Regenerates the Section V-B3 no-figure findings (fence scopes).

fn main() -> syncperf_core::Result<()> {
    syncperf_bench::runner::run(syncperf_bench::figures_gpu::exp_fence_scopes)
}
