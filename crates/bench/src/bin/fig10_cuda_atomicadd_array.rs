//! Regenerates Fig. 10 (atomicAdd on private array elements).

fn main() -> syncperf_core::Result<()> {
    syncperf_bench::runner::run(syncperf_bench::figures_gpu::fig10_atomicadd_array)
}
