//! Regenerates Fig. 10 (atomicAdd on private array elements).

fn main() -> syncperf_core::Result<()> {
    syncperf_bench::emit(&syncperf_bench::figures_gpu::fig10_atomicadd_array()?)
}
