//! Explains where a primitive's modeled time goes, component by
//! component.
//!
//! ```console
//! $ explain omp_atomicadd_scalar --threads 16
//! $ explain cuda_atomicadd_scalar --blocks 2 --threads 1024
//! $ explain omp_atomicadd_array --threads 16 --stride 1 --dtype double
//! $ explain list
//! ```

use syncperf_core::{kernel, Affinity, CpuKernel, DType, GpuKernel, Scope, SYSTEM3};
use syncperf_cpu_sim::{explain_body, CpuModel, Placement};
use syncperf_gpu_sim::{GpuModel, Occupancy};

enum Explainable {
    Cpu(fn(DType, u32) -> CpuKernel),
    Gpu(fn(DType, u32) -> GpuKernel),
}

fn catalog() -> Vec<(&'static str, Explainable)> {
    vec![
        (
            "omp_barrier",
            Explainable::Cpu(|_, _| kernel::omp_barrier()),
        ),
        (
            "omp_atomicadd_scalar",
            Explainable::Cpu(|dt, _| kernel::omp_atomic_update_scalar(dt)),
        ),
        (
            "omp_atomicadd_array",
            Explainable::Cpu(kernel::omp_atomic_update_array),
        ),
        (
            "omp_atomicwrite",
            Explainable::Cpu(|dt, _| kernel::omp_atomic_write(dt)),
        ),
        (
            "omp_atomicread",
            Explainable::Cpu(|dt, _| kernel::omp_atomic_read(dt)),
        ),
        (
            "omp_critical",
            Explainable::Cpu(|dt, _| kernel::omp_critical_add(dt)),
        ),
        ("omp_flush", Explainable::Cpu(kernel::omp_flush)),
        (
            "cuda_syncthreads",
            Explainable::Gpu(|_, _| kernel::cuda_syncthreads()),
        ),
        (
            "cuda_syncwarp",
            Explainable::Gpu(|_, _| kernel::cuda_syncwarp()),
        ),
        (
            "cuda_atomicadd_scalar",
            Explainable::Gpu(|dt, _| kernel::cuda_atomic_add_scalar(dt)),
        ),
        (
            "cuda_atomicadd_array",
            Explainable::Gpu(kernel::cuda_atomic_add_array),
        ),
        (
            "cuda_atomiccas_scalar",
            Explainable::Gpu(|dt, _| kernel::cuda_atomic_cas_scalar(dt)),
        ),
        (
            "cuda_threadfence",
            Explainable::Gpu(|dt, s| kernel::cuda_threadfence(Scope::Device, dt, s)),
        ),
        (
            "cuda_shfl",
            Explainable::Gpu(|dt, _| kernel::cuda_shfl(dt, syncperf_core::ShflVariant::Idx)),
        ),
    ]
}

fn usage() -> ! {
    eprintln!(
        "usage: explain <name|list> [--threads N] [--blocks N] [--stride N] [--dtype int|ull|float|double]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut name = None;
    let mut threads = 16u32;
    let mut blocks = 2u32;
    let mut stride = 1u32;
    let mut dtype = DType::I32;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--threads" => {
                threads = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--blocks" => {
                blocks = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--stride" => {
                stride = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--dtype" => {
                dtype = match it.next().map(String::as_str) {
                    Some("int") => DType::I32,
                    Some("ull") => DType::U64,
                    Some("float") => DType::F32,
                    Some("double") => DType::F64,
                    _ => usage(),
                }
            }
            other if other.starts_with('-') => usage(),
            other => name = Some(other.to_string()),
        }
    }
    let Some(name) = name else { usage() };
    if name == "list" {
        for (n, _) in catalog() {
            println!("{n}");
        }
        return;
    }
    let Some((_, what)) = catalog().into_iter().find(|(n, _)| *n == name) else {
        eprintln!("unknown primitive `{name}` (try `explain list`)");
        std::process::exit(2);
    };

    match what {
        Explainable::Cpu(make) => {
            let k = make(dtype, stride);
            println!(
                "{} (test body) on the simulated {}:",
                k.name, SYSTEM3.cpu.name
            );
            let model = CpuModel::for_system(&SYSTEM3.cpu, SYSTEM3.cpu_jitter);
            let placement = Placement::new(&SYSTEM3.cpu, Affinity::Spread, threads);
            print!("{}", explain_body(&model, &placement, &k.test));
        }
        Explainable::Gpu(make) => {
            let k = make(dtype, stride);
            println!(
                "{} (test body) on the simulated {}:",
                k.name, SYSTEM3.gpu.name
            );
            let model = GpuModel::for_spec(&SYSTEM3.gpu);
            match Occupancy::compute(&SYSTEM3.gpu, blocks, threads)
                .and_then(|occ| syncperf_gpu_sim::explain::explain_body(&model, &occ, &k.test))
            {
                Ok(report) => print!("{report}"),
                Err(e) => {
                    eprintln!("error: {e}");
                    std::process::exit(1);
                }
            }
        }
    }
}
