//! Umbrella harness: regenerates every table and figure in the paper,
//! printing each and writing CSVs into `results/`.

fn main() -> syncperf_core::Result<()> {
    syncperf_bench::runner::run(|| {
        print!("{}", syncperf_bench::tables::table1());
        println!();
        print!(
            "{}",
            syncperf_bench::tables::listing1_report(&syncperf_core::SYSTEM3)?
        );
        println!();
        syncperf_bench::all_figures()
    })
}
