//! Regenerates Fig. 12 (atomicCAS on private array elements).

fn main() -> syncperf_core::Result<()> {
    syncperf_bench::runner::run(syncperf_bench::figures_gpu::fig12_atomiccas_array)
}
