//! The artifact's `launch.py`, reproduced: run all test codes (or the
//! OpenMP/CUDA subset, or individual codes) across their full parameter
//! grids, writing `results/<host>/<test>/runtimes.csv`.
//!
//! ```console
//! $ launch all                 # everything (asks for confirmation)
//! $ launch openmp --yes        # OpenMP codes, no prompt
//! $ launch cuda --system 1     # CUDA codes on the System 1 model
//! $ launch omp_barrier cuda_shfl
//! $ launch list                # list available codes
//! ```

use std::io::Write as _;

use syncperf_bench::codes;
use syncperf_core::{ResultsStore, SystemSpec, SYSTEM1, SYSTEM2, SYSTEM3};

fn usage() -> ! {
    eprintln!(
        "usage: launch <all|openmp|cuda|list|TEST...> [--yes] [--system 1|2|3] [--system-file PATH] [--out DIR] [--jobs N] [--no-cache] [--cache-stats PATH]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }

    let mut selectors = Vec::new();
    let mut yes = false;
    let mut custom: Option<SystemSpec> = None;
    let mut system: &SystemSpec = &SYSTEM3;
    let mut it = args.iter();
    let mut out = syncperf_bench::common::results_dir();
    let mut jobs: Option<usize> = None;
    let mut no_cache = false;
    let mut cache_stats: Option<std::path::PathBuf> = None;
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--yes" | "-y" => yes = true,
            "--jobs" => match it.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) => jobs = Some(n.max(1)),
                None => usage(),
            },
            "--no-cache" => no_cache = true,
            "--cache-stats" => match it.next() {
                Some(path) => cache_stats = Some(path.into()),
                None => usage(),
            },
            "--system" => {
                system = match it.next().map(String::as_str) {
                    Some("1") => &SYSTEM1,
                    Some("2") => &SYSTEM2,
                    Some("3") => &SYSTEM3,
                    _ => usage(),
                }
            }
            "--system-file" => match it.next() {
                Some(path) => match syncperf_core::sysfile::load_system(path) {
                    Ok(spec) => custom = Some(spec),
                    Err(e) => {
                        eprintln!("error: {e}");
                        std::process::exit(2);
                    }
                },
                None => usage(),
            },
            "--out" => match it.next() {
                Some(dir) => out = dir.into(),
                None => usage(),
            },
            other if other.starts_with('-') => usage(),
            other => selectors.push(other.to_string()),
        }
    }
    if let Some(spec) = &custom {
        system = spec;
    }
    if selectors.is_empty() {
        usage();
    }

    if selectors.iter().any(|s| s == "list") {
        for code in codes::registry() {
            println!("{:?}\t{}", code.api, code.name);
        }
        return;
    }

    let mut picked = Vec::new();
    for sel in &selectors {
        match codes::select(sel) {
            Ok(mut c) => picked.append(&mut c),
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(2);
            }
        }
    }

    println!("The following codes will be run on the simulated {system}:");
    for c in &picked {
        println!("  {}", c.name);
    }
    if !yes {
        print!("Proceed? [y/N] ");
        std::io::stdout().flush().expect("stdout");
        let mut line = String::new();
        std::io::stdin().read_line(&mut line).expect("stdin");
        if !matches!(line.trim(), "y" | "Y" | "yes") {
            println!("aborted");
            return;
        }
    }

    // The sweeps route through `measure_{cpu,gpu}_batch`, so installing
    // a scheduler turns every grid point into a content-hashed cacheable
    // job — the same `--jobs`/`--no-cache`/`--cache-stats` surface the
    // figure binaries expose via `runner`.
    let wants_scheduler = jobs.is_some() || no_cache || cache_stats.is_some();
    let sched = if wants_scheduler {
        let effective = syncperf_bench::runner::RunOptions::jobs_from(
            jobs,
            std::env::var("SYNCPERF_JOBS").ok().as_deref(),
        );
        let mut cfg = syncperf_sched::SchedConfig::new(effective).with_label("launch");
        if no_cache {
            cfg = cfg.without_cache();
        }
        Some(syncperf_sched::install(syncperf_sched::Scheduler::new(cfg)))
    } else {
        None
    };

    let host = format!("system{}", system.id);
    let mut store = ResultsStore::new(&host);
    for code in &picked {
        print!("running {:<28} ", code.name);
        std::io::stdout().flush().expect("stdout");
        let before = store.len();
        match (code.run)(system, &mut store) {
            Ok(()) => println!("{} points", store.len() - before),
            Err(e) => {
                eprintln!("failed: {e}");
                std::process::exit(1);
            }
        }
    }

    if let Some(s) = &sched {
        s.finish();
        syncperf_sched::uninstall();
        let stats = s.stats();
        print!("{}", syncperf_bench::runner::render_sched_summary(&stats));
        if let Some(path) = &cache_stats {
            if let Err(e) =
                std::fs::write(path, syncperf_bench::runner::cache_stats_json(&stats, None))
            {
                eprintln!("error writing cache stats: {e}");
                std::process::exit(1);
            }
        }
    }
    if let Err(e) = store.write(&out) {
        eprintln!("error writing results: {e}");
        std::process::exit(1);
    }
    println!(
        "\nwrote {} records for {} tests under {}/{host}/",
        store.len(),
        store.tests().len(),
        out.display()
    );
}
