//! Calibration-sensitivity analysis.
//!
//! The simulators' latency constants are calibrated, not measured
//! (DESIGN.md §1); the paper claims we reproduce are *shapes*. This
//! module perturbs each load-bearing constant across a wide range and
//! re-evaluates the shape claims, demonstrating which conclusions
//! depend on calibration and which follow from the modeled mechanisms.

use syncperf_core::{kernel, DType, ExecParams, Protocol, Result, SYSTEM3};
use syncperf_cpu_sim::{CpuModel, CpuSimExecutor};
use syncperf_gpu_sim::{GpuModel, GpuSimExecutor};
use syncperf_sched::JobSpec;

/// Outcome of evaluating one claim under one perturbed constant.
#[derive(Debug, Clone)]
pub struct SensitivityRow {
    /// The perturbed model constant.
    pub constant: &'static str,
    /// The claim being re-evaluated.
    pub claim: &'static str,
    /// Scale factors at which the claim held.
    pub held_at: Vec<f64>,
    /// Scale factors at which it broke.
    pub broke_at: Vec<f64>,
}

impl SensitivityRow {
    /// Whether the claim survived every tested scale.
    #[must_use]
    pub fn robust(&self) -> bool {
        self.broke_at.is_empty()
    }
}

/// The scale factors applied to each constant (spanning 4× around the
/// calibration point).
pub const SCALES: [f64; 5] = [0.5, 0.75, 1.0, 1.5, 2.0];

fn cpu_claim_holds(model: CpuModel, claim: &str) -> Result<bool> {
    // Perturbed-model measurements route through the scheduler when one
    // is installed (`JobSpec::cpu_sim_with_model` folds the model digest
    // into the cache key), else run serially on one shared executor.
    let sched = syncperf_sched::current();
    let mut sim = CpuSimExecutor::with_model(&SYSTEM3, model.clone());
    let mut runtime = |k: &syncperf_core::CpuKernel, t: u32| -> Result<f64> {
        let p = ExecParams::new(t).with_loops(500, 50);
        let m = match &sched {
            Some(s) => s.measure(JobSpec::cpu_sim_with_model(
                &SYSTEM3,
                model.clone(),
                k.clone(),
                p,
                Protocol::SIM,
            ))?,
            None => Protocol::SIM.measure(&mut sim, k, &p)?,
        };
        Ok(m.runtime_seconds())
    };
    Ok(match claim {
        "barrier plateaus beyond ~8 threads" => {
            let b = kernel::omp_barrier();
            let r2 = runtime(&b, 2)?;
            let r8 = runtime(&b, 8)?;
            let r32 = runtime(&b, 32)?;
            r8 > 1.5 * r2 && r32 < 2.0 * r8
        }
        "int atomics beat doubles" => {
            let i = runtime(&kernel::omp_atomic_update_scalar(DType::I32), 16)?;
            let d = runtime(&kernel::omp_atomic_update_scalar(DType::F64), 16)?;
            d > i
        }
        "padding removes the false-sharing penalty" => {
            let s1 = runtime(&kernel::omp_atomic_update_array(DType::I32, 1), 16)?;
            let s16 = runtime(&kernel::omp_atomic_update_array(DType::I32, 16), 16)?;
            s1 > 2.0 * s16
        }
        "critical sections lose to atomics" => {
            let c = runtime(&kernel::omp_critical_add(DType::I32), 16)?;
            let a = runtime(&kernel::omp_atomic_update_scalar(DType::I32), 16)?;
            c > a
        }
        other => unreachable!("unknown cpu claim {other}"),
    })
}

fn gpu_claim_holds(model: GpuModel, claim: &str) -> Result<bool> {
    let sched = syncperf_sched::current();
    let mut sim = GpuSimExecutor::with_model(&SYSTEM3, model.clone());
    let mut cy = |k: &syncperf_core::GpuKernel, blocks: u32, threads: u32| -> Result<f64> {
        let p = ExecParams::new(threads)
            .with_blocks(blocks)
            .with_loops(500, 50);
        let m = match &sched {
            Some(s) => s.measure(JobSpec::gpu_sim_with_model(
                &SYSTEM3,
                model.clone(),
                k.clone(),
                p,
                Protocol::SIM,
            ))?,
            None => Protocol::SIM.measure(&mut sim, k, &p)?,
        };
        Ok(m.per_op)
    };
    Ok(match claim {
        "aggregated adds flat to 64 threads at 2 blocks" => {
            let k = kernel::cuda_atomic_add_scalar(DType::I32);
            let t32 = cy(&k, 2, 32)?;
            let t64 = cy(&k, 2, 64)?;
            let t128 = cy(&k, 2, 128)?;
            (t64 - t32).abs() < 1e-9 && t128 > t64
        }
        "CAS knee at 4 threads for 1 block" => {
            let k = kernel::cuda_atomic_cas_scalar(DType::I32);
            let t4 = cy(&k, 1, 4)?;
            let t8 = cy(&k, 1, 8)?;
            t8 > t4
        }
        "fences cost the same at any occupancy" => {
            let k = kernel::cuda_threadfence(syncperf_core::Scope::Device, DType::I32, 1);
            let a = cy(&k, 1, 32)?;
            let b = cy(&k, 128, 1024)?;
            (a / b - 1.0).abs() < 0.05
        }
        "64-bit shuffles cost twice 32-bit" => {
            let f32k = kernel::cuda_shfl(DType::F32, syncperf_core::ShflVariant::Idx);
            let f64k = kernel::cuda_shfl(DType::F64, syncperf_core::ShflVariant::Idx);
            let a = cy(&f32k, 2, 32)?;
            let b = cy(&f64k, 2, 32)?;
            (b / a - 2.0).abs() < 0.1
        }
        other => unreachable!("unknown gpu claim {other}"),
    })
}

type CpuKnob = (&'static str, fn(&mut CpuModel, f64));
type GpuKnob = (&'static str, fn(&mut GpuModel, f64));

fn cpu_knobs() -> Vec<CpuKnob> {
    vec![
        ("cpu.line_transfer_ns", |m, s| m.line_transfer_ns *= s),
        ("cpu.arbitration_ns", |m, s| m.arbitration_ns *= s),
        ("cpu.rmw_int_ns", |m, s| m.rmw_int_ns *= s),
        ("cpu.fp_cas_extra_ns", |m, s| m.fp_cas_extra_ns *= s),
        ("cpu.barrier_arb_ns", |m, s| m.barrier_arb_ns *= s),
        ("cpu.lock_overhead_ns", |m, s| m.lock_overhead_ns *= s),
    ]
}

fn gpu_knobs() -> Vec<GpuKnob> {
    vec![
        ("gpu.same_addr_arb_cy", |m, s| m.same_addr_arb_cy *= s),
        ("gpu.atomic_service(int)", |m, s| {
            m.atomic_device.i32_cy *= s;
        }),
        ("gpu.warp_agg_reduce_cy", |m, s| m.warp_agg_reduce_cy *= s),
        ("gpu.fence_device_cy", |m, s| m.fence_device_cy *= s),
        ("gpu.shfl_cy", |m, s| m.shfl_cy *= s),
    ]
}

/// Runs the full sensitivity sweep: every (constant, claim) pair across
/// [`SCALES`].
///
/// # Errors
///
/// Propagates simulator errors.
pub fn run_sensitivity() -> Result<Vec<SensitivityRow>> {
    let cpu_claims = [
        "barrier plateaus beyond ~8 threads",
        "int atomics beat doubles",
        "padding removes the false-sharing penalty",
        "critical sections lose to atomics",
    ];
    let gpu_claims = [
        "aggregated adds flat to 64 threads at 2 blocks",
        "CAS knee at 4 threads for 1 block",
        "fences cost the same at any occupancy",
        "64-bit shuffles cost twice 32-bit",
    ];

    let mut rows = Vec::new();
    for (name, apply) in cpu_knobs() {
        for claim in cpu_claims {
            let mut row = SensitivityRow {
                constant: name,
                claim,
                held_at: vec![],
                broke_at: vec![],
            };
            for scale in SCALES {
                let mut model = CpuModel::for_system(&SYSTEM3.cpu, 0.0);
                apply(&mut model, scale);
                if cpu_claim_holds(model, claim)? {
                    row.held_at.push(scale);
                } else {
                    row.broke_at.push(scale);
                }
            }
            rows.push(row);
        }
    }
    for (name, apply) in gpu_knobs() {
        for claim in gpu_claims {
            let mut row = SensitivityRow {
                constant: name,
                claim,
                held_at: vec![],
                broke_at: vec![],
            };
            for scale in SCALES {
                let mut model = GpuModel::for_spec(&SYSTEM3.gpu);
                apply(&mut model, scale);
                if gpu_claim_holds(model, claim)? {
                    row.held_at.push(scale);
                } else {
                    row.broke_at.push(scale);
                }
            }
            rows.push(row);
        }
    }
    Ok(rows)
}

/// Renders the sweep as a table.
#[must_use]
pub fn render(rows: &[SensitivityRow]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let robust = rows.iter().filter(|r| r.robust()).count();
    let _ = writeln!(
        out,
        "calibration sensitivity: {robust}/{} (constant, claim) pairs robust across 0.5x-2x\n",
        rows.len()
    );
    for r in rows {
        let _ = writeln!(
            out,
            "[{}] {:<26} x {:<48} {}",
            if r.robust() { "ROBUST " } else { "FRAGILE" },
            r.constant,
            r.claim,
            if r.robust() {
                String::new()
            } else {
                format!("breaks at {:?}", r.broke_at)
            }
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_claims_are_calibration_robust() {
        let rows = run_sensitivity().unwrap();
        assert_eq!(rows.len(), (6 * 4) + (5 * 4));
        let fragile: Vec<String> = rows
            .iter()
            .filter(|r| !r.robust())
            .map(|r| format!("{} x {} at {:?}", r.constant, r.claim, r.broke_at))
            .collect();
        assert!(
            fragile.is_empty(),
            "shape claims must not hinge on calibration constants:\n{}",
            fragile.join("\n")
        );
    }

    #[test]
    fn render_counts_pairs() {
        let rows = vec![SensitivityRow {
            constant: "c",
            claim: "x",
            held_at: vec![1.0],
            broke_at: vec![],
        }];
        assert!(render(&rows).contains("1/1"));
    }
}
