//! Automated verification of every qualitative claim in EXPERIMENTS.md.
//!
//! `run_all_checks` regenerates the figures and evaluates each paper
//! claim against them, returning structured pass/fail results — the
//! artifact-evaluation counterpart of the test suite, runnable as
//! `cargo run --release -p syncperf-bench --bin verify_experiments`.

use syncperf_core::{FigureData, Result, SYSTEM3};
use syncperf_gpu_sim::{simulate_reduction, GpuModel, ReductionConfig, ReductionStrategy};

use crate::{figures_cpu, figures_gpu};

/// One verified claim.
#[derive(Debug, Clone)]
pub struct Check {
    /// Experiment id (e.g. `fig03`).
    pub id: &'static str,
    /// The paper's claim being verified.
    pub claim: &'static str,
    /// Whether the regenerated data satisfies it.
    pub passed: bool,
    /// Measured evidence.
    pub detail: String,
}

fn check(
    out: &mut Vec<Check>,
    id: &'static str,
    claim: &'static str,
    passed: bool,
    detail: String,
) {
    out.push(Check {
        id,
        claim,
        passed,
        detail,
    });
}

fn y(fig: &FigureData, label: &str, x: f64) -> f64 {
    fig.series_by_label(label)
        .unwrap_or_else(|| panic!("{}: no series `{label}`", fig.id))
        .y_at(x)
        .unwrap_or_else(|| panic!("{}/{label}: no point at {x}", fig.id))
}

/// Runs every check.
///
/// # Errors
///
/// Propagates figure-generation errors.
#[allow(clippy::too_many_lines)]
pub fn run_all_checks() -> Result<Vec<Check>> {
    let mut out = Vec::new();

    // --- Fig. 1 -------------------------------------------------------
    let fig01 = &figures_cpu::fig01_barrier()?[0];
    let b = &fig01.series[0];
    let (b2, b8, b32) = (
        y(fig01, "barrier", 2.0),
        y(fig01, "barrier", 8.0),
        y(fig01, "barrier", 32.0),
    );
    check(
        &mut out,
        "fig01",
        "barrier throughput decreases then is largely stable beyond ~8 threads",
        b2 > 1.5 * b8 && b8 / b32 < 2.0,
        format!(
            "2t {:.2e}, 8t {:.2e}, 32t {:.2e} ({} points)",
            b2,
            b8,
            b32,
            b.points.len()
        ),
    );

    // --- Fig. 2 -------------------------------------------------------
    let fig02 = &figures_cpu::fig02_atomic_update_scalar()?[0];
    let (i32_, u64_, f64_) = (
        y(fig02, "int", 32.0),
        y(fig02, "ull", 32.0),
        y(fig02, "double", 32.0),
    );
    check(
        &mut out,
        "fig02",
        "integer atomics beat floating-point; word size irrelevant",
        i32_ > f64_ && (i32_ / u64_ - 1.0).abs() < 0.15,
        format!("int {i32_:.2e}, ull {u64_:.2e}, double {f64_:.2e} at 32 threads"),
    );

    // --- Fig. 3 -------------------------------------------------------
    let fig03 = figures_cpu::fig03_atomic_update_array()?;
    let d4 = y(&fig03[1], "double", 16.0);
    let d8 = y(&fig03[2], "double", 16.0);
    let i8_ = y(&fig03[2], "int", 16.0);
    let i16_ = y(&fig03[3], "int", 16.0);
    check(
        &mut out,
        "fig03",
        "64-bit types jump at stride 8, 32-bit at stride 16 (cache-line geometry)",
        d8 > 3.0 * d4 && i16_ > 3.0 * i8_,
        format!(
            "double s4→s8: {:.1}x; int s8→s16: {:.1}x",
            d8 / d4,
            i16_ / i8_
        ),
    );
    let s1_int = y(&fig03[0], "int", 32.0);
    let s1_ull = y(&fig03[0], "ull", 32.0);
    check(
        &mut out,
        "fig03a",
        "at stride 1, 4-byte types slightly worse (twice the words per line)",
        s1_int < s1_ull,
        format!("int {s1_int:.2e} < ull {s1_ull:.2e}"),
    );

    // --- Fig. 4 -------------------------------------------------------
    let fig04 = figures_cpu::fig04_atomic_write()?;
    let at32: Vec<f64> = fig04[1]
        .series
        .iter()
        .map(|s| s.y_at(32.0).expect("point"))
        .collect();
    let type_spread = syncperf_core::stats::relative_spread(&at32);
    let wobble = |fig: &FigureData| {
        let pts: Vec<f64> = fig
            .series_by_label("int")
            .expect("int series")
            .points
            .iter()
            .filter(|(x, _)| *x >= 20.0)
            .map(|(_, y)| *y)
            .collect();
        syncperf_core::stats::relative_spread(&pts)
    };
    check(
        &mut out,
        "fig04",
        "atomic write is type/size blind; System 3 (AMD) is jittery, System 2 clean",
        type_spread < 0.15 && wobble(&fig04[0]) > wobble(&fig04[1]),
        format!(
            "type spread {:.1}%; tail wobble sys3 {:.1}% vs sys2 {:.1}%",
            type_spread * 100.0,
            wobble(&fig04[0]) * 100.0,
            wobble(&fig04[1]) * 100.0
        ),
    );

    // --- Fig. 5 -------------------------------------------------------
    let fig05 = &figures_cpu::fig05_critical()?[0];
    let crit = y(fig05, "int", 32.0);
    check(
        &mut out,
        "fig05",
        "critical sections slower than atomics at every thread count",
        fig05
            .series_by_label("int")
            .expect("int")
            .points
            .iter()
            .all(|&(x, v)| {
                v < fig02
                    .series_by_label("int")
                    .expect("int")
                    .y_at(x)
                    .unwrap_or(f64::MAX)
            }),
        format!("critical {crit:.2e} vs atomic {i32_:.2e} at 32 threads"),
    );

    // --- Fig. 6 -------------------------------------------------------
    let fig06 = figures_cpu::fig06_flush()?;
    let f_s1 = y(&fig06[0], "int", 32.0);
    let f_s16 = y(&fig06[3], "int", 32.0);
    check(
        &mut out,
        "fig06",
        "flush is expensive under false sharing (x10^7) and nearly free padded (x10^8)",
        f_s16 > 4.0 * f_s1 && f_s1 > 1e6 && f_s16 > 5e7,
        format!("stride 1: {f_s1:.2e}, stride 16: {f_s16:.2e}"),
    );

    // --- §V-A2 --------------------------------------------------------
    let rc = &figures_cpu::exp_atomic_read_capture()?[0];
    let read_free = rc
        .series_by_label("atomic read negligible (1=yes)")
        .expect("flag series")
        .points
        .iter()
        .all(|&(_, f)| f == 1.0);
    let cap_ratio_ok = rc
        .series_by_label("capture/update runtime ratio")
        .expect("ratio series")
        .points
        .iter()
        .all(|&(_, r)| (r - 1.0).abs() < 0.2);
    check(
        &mut out,
        "sVA2",
        "atomic read is free; atomic capture behaves like atomic update",
        read_free && cap_ratio_ok,
        format!(
            "read negligible at all thread counts: {read_free}; capture≈update: {cap_ratio_ok}"
        ),
    );

    // --- Fig. 7 -------------------------------------------------------
    let fig07 = &figures_gpu::fig07_syncthreads()?[0];
    let first = &fig07.series[0];
    let flat = first.y_at(1.0) == first.y_at(32.0);
    let falling = first.y_at(1024.0).expect("1024") < first.y_at(64.0).expect("64");
    let block_invariant = fig07.series.iter().all(|s| s.points == first.points);
    check(
        &mut out,
        "fig07",
        "__syncthreads flat through the warp size, dropping beyond; identical for all block counts",
        flat && falling && block_invariant,
        format!(
            "32t {:.2e} → 1024t {:.2e}; {} block counts identical",
            first.y_at(32.0).expect("32"),
            first.y_at(1024.0).expect("1024"),
            fig07.series.len()
        ),
    );

    // --- Fig. 8 -------------------------------------------------------
    let fig08 = figures_gpu::fig08_syncwarp()?;
    let full3 = fig08[0].series_by_label("full (1 block/SM)").expect("full");
    let full1 = fig08[1].series_by_label("full (1 block/SM)").expect("full");
    check(
        &mut out,
        "fig08",
        "RTX 4090 full speed to 256 threads/SM, RTX 2070 SUPER to 512; modest drop",
        full3.y_at(128.0) == full3.y_at(256.0)
            && full3.y_at(512.0).expect("512") < full3.y_at(256.0).expect("256")
            && full1.y_at(256.0) == full1.y_at(512.0)
            && full1.y_at(1024.0).expect("1024") < full1.y_at(512.0).expect("512")
            && full3.y_at(256.0).expect("256") / full3.y_at(1024.0).expect("1024") < 2.0,
        format!(
            "4090 knee after 256 ({:.2e}→{:.2e}); 2070S knee after 512",
            full3.y_at(256.0).expect("256"),
            full3.y_at(512.0).expect("512")
        ),
    );

    // --- Fig. 9 -------------------------------------------------------
    let fig09 = figures_gpu::fig09_atomicadd_scalar()?;
    let int2 = fig09[0].series_by_label("int").expect("int");
    check(
        &mut out,
        "fig09",
        "warp aggregation: 2-block atomicAdd constant to 64 threads; int > ull > float",
        int2.y_at(32.0) == int2.y_at(64.0)
            && int2.y_at(128.0).expect("128") < int2.y_at(64.0).expect("64")
            && y(&fig09[0], "int", 1024.0) > y(&fig09[0], "ull", 1024.0)
            && y(&fig09[0], "ull", 1024.0) > y(&fig09[0], "float", 1024.0),
        format!(
            "flat to 64t at {:.2e}; at 1024t int {:.2e} > ull {:.2e} > float {:.2e}",
            int2.y_at(64.0).expect("64"),
            y(&fig09[0], "int", 1024.0),
            y(&fig09[0], "ull", 1024.0),
            y(&fig09[0], "float", 1024.0)
        ),
    );

    // --- Fig. 10 ------------------------------------------------------
    let fig10 = figures_gpu::fig10_atomicadd_array()?;
    let ratio_1 = y(&fig10[0], "int", 1024.0) / y(&fig10[1], "int", 1024.0);
    let ratio_128 = y(&fig10[2], "int", 1024.0) / y(&fig10[3], "int", 1024.0);
    check(
        &mut out,
        "fig10",
        "private atomics: more blocks → lower throughput; stride matters mainly at high block counts",
        y(&fig10[0], "int", 256.0) > y(&fig10[2], "int", 256.0) && ratio_128 > ratio_1,
        format!("stride-1/stride-32 ratio: 1 block {ratio_1:.2}, 128 blocks {ratio_128:.2}"),
    );

    // --- Fig. 11 ------------------------------------------------------
    let fig11 = figures_gpu::fig11_atomiccas_scalar()?;
    let cas = fig11[0].series_by_label("int").expect("int");
    check(
        &mut out,
        "fig11",
        "atomicCAS (no aggregation) constant only to 4 threads at 1 block; integers only",
        cas.y_at(1.0) == cas.y_at(4.0)
            && cas.y_at(8.0).expect("8") < cas.y_at(4.0).expect("4")
            && fig11[0].series.len() == 2,
        format!(
            "flat at {:.2e} to 4t, {:.2e} at 8t",
            cas.y_at(4.0).expect("4"),
            cas.y_at(8.0).expect("8")
        ),
    );

    // --- Fig. 13 ------------------------------------------------------
    let fig13 = figures_gpu::fig13_atomicexch()?;
    let exch = fig13[0].series_by_label("int").expect("int");
    check(
        &mut out,
        "fig13",
        "atomicExch follows the atomicCAS trend",
        exch.y_at(1.0) == exch.y_at(4.0) && exch.y_at(8.0).expect("8") < exch.y_at(4.0).expect("4"),
        format!("knee after 4 threads at {:.2e}", exch.y_at(4.0).expect("4")),
    );

    // --- Fig. 14 ------------------------------------------------------
    let fig14 = figures_gpu::fig14_threadfence()?;
    let fence_flat = fig14.iter().all(|fig| {
        fig.series.iter().all(|s| {
            let ys: Vec<f64> = s.points.iter().map(|p| p.1).collect();
            syncperf_core::stats::relative_spread(&ys) < 0.05
        })
    });
    check(
        &mut out,
        "fig14",
        "__threadfence cost constant across thread count, block count, stride, and type",
        fence_flat,
        format!("all {} panels flat within 5%", fig14.len()),
    );

    // --- §V-B3 --------------------------------------------------------
    let scopes = &figures_gpu::exp_fence_scopes()?[0];
    let block_free = scopes
        .series_by_label("block")
        .expect("block")
        .points
        .iter()
        .zip(&scopes.series_by_label("device").expect("device").points)
        .all(|(&(_, b), &(_, d))| b < 0.1 * d);
    check(
        &mut out,
        "sVB3",
        "__threadfence_block ≈ free; __threadfence_system > device and erratic",
        block_free
            && scopes.series_by_label("system").expect("system").y_min()
                > scopes.series_by_label("device").expect("device").y_max() * 0.9,
        format!(
            "block {:.0} cy, device {:.0} cy, system {:.0} cy (per fence, median panel)",
            scopes.series_by_label("block").expect("block").y_max(),
            scopes.series_by_label("device").expect("device").y_max(),
            scopes.series_by_label("system").expect("system").y_max()
        ),
    );

    // --- Fig. 15 ------------------------------------------------------
    let fig15 = figures_gpu::fig15_shfl()?;
    let r = y(&fig15[0], "float", 32.0) / y(&fig15[0], "double", 32.0);
    check(
        &mut out,
        "fig15",
        "64-bit shuffles cost two 32-bit instructions and drop at half the thread count",
        (r - 2.0).abs() < 0.1
            && fig15[0].series_by_label("float").expect("f32").y_at(128.0)
                == fig15[0].series_by_label("float").expect("f32").y_at(256.0)
            && y(&fig15[0], "double", 256.0) < y(&fig15[0], "double", 128.0),
        format!("32-bit/64-bit ratio {r:.2}"),
    );

    // --- §V-B4 --------------------------------------------------------
    let vote = &figures_gpu::exp_vote()?[0];
    let sw = vote.series_by_label("__syncwarp").expect("syncwarp");
    let votes_ok = ["__ballot_sync", "__all_sync", "__any_sync"]
        .iter()
        .all(|label| {
            vote.series_by_label(label)
                .expect("vote")
                .points
                .iter()
                .all(|&(x, v)| {
                    let s = sw.y_at(x).expect("syncwarp point");
                    v < s && v > 0.5 * s
                })
        });
    check(
        &mut out,
        "sVB4",
        "warp votes behave like __syncwarp at slightly lower throughput",
        votes_ok,
        format!(
            "vote/syncwarp ratio {:.2} in the flat region",
            vote.series_by_label("__any_sync")
                .expect("any")
                .y_at(32.0)
                .expect("32")
                / sw.y_at(32.0).expect("32")
        ),
    );

    // --- Listing 1 ------------------------------------------------------
    let model = GpuModel::for_spec(&SYSTEM3.gpu);
    let cfg = ReductionConfig::megabyte_input(&SYSTEM3.gpu);
    let t = |s| simulate_reduction(&model, &SYSTEM3.gpu, s, &cfg).map(|r| r.total_cycles);
    let (r1, r2, r3, r4, r5) = (
        t(ReductionStrategy::GlobalAtomic)?,
        t(ReductionStrategy::ShflThenGlobalAtomic)?,
        t(ReductionStrategy::BlockAtomicThenGlobal)?,
        t(ReductionStrategy::WarpReduceThenBlock)?,
        t(ReductionStrategy::PersistentThreads)?,
    );
    check(
        &mut out,
        "listing1",
        "reduction ordering R3 < R4 < R1 < R2, R5 fastest, R5/R2 speedup near the paper's ~2.5x",
        r3 < r4 && r4 < r1 && r1 < r2 && r5 < r3 && (2.0..5.0).contains(&(r2 / r5)),
        format!(
            "R1 {:.0}, R2 {:.0}, R3 {:.0}, R4 {:.0}, R5 {:.0} cycles; R5 speedup {:.2}x",
            r1,
            r2,
            r3,
            r4,
            r5,
            r2 / r5
        ),
    );

    Ok(out)
}

/// Renders checks as a fixed-width report.
#[must_use]
pub fn render(checks: &[Check]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let passed = checks.iter().filter(|c| c.passed).count();
    let _ = writeln!(
        out,
        "verifying {} paper claims against regenerated data\n",
        checks.len()
    );
    for c in checks {
        let _ = writeln!(
            out,
            "[{}] {:<9} {}",
            if c.passed { "PASS" } else { "FAIL" },
            c.id,
            c.claim
        );
        let _ = writeln!(out, "                 {}", c.detail);
    }
    let _ = writeln!(out, "\n{passed}/{} claims verified", checks.len());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_claims_verify() {
        let checks = run_all_checks().unwrap();
        assert_eq!(checks.len(), 19);
        let failed: Vec<&Check> = checks.iter().filter(|c| !c.passed).collect();
        assert!(failed.is_empty(), "failing claims: {failed:#?}");
    }

    #[test]
    fn render_contains_verdicts() {
        let checks = vec![
            Check {
                id: "x",
                claim: "c",
                passed: true,
                detail: "d".into(),
            },
            Check {
                id: "y",
                claim: "c2",
                passed: false,
                detail: "d2".into(),
            },
        ];
        let r = render(&checks);
        assert!(r.contains("[PASS]"));
        assert!(r.contains("[FAIL]"));
        assert!(r.contains("1/2 claims verified"));
    }
}
