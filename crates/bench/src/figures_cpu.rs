//! Regeneration of the paper's OpenMP figures (Figs. 1-6, §V-A2's
//! no-figure findings) on the CPU simulator.

use syncperf_core::{kernel, Affinity, DType, FigureData, Protocol, Result, SYSTEM2, SYSTEM3};

use crate::common::{cpu_dtype_series, cpu_series, measure_cpu_batch, paper_loops};

/// Fig. 1 — throughput of the OpenMP barrier (System 3, spread).
///
/// # Errors
///
/// Propagates simulator errors.
pub fn fig01_barrier() -> Result<Vec<FigureData>> {
    let mut fig = FigureData::new(
        "fig01",
        "Throughput of OpenMP Barrier (System 3, spread)",
        "threads",
        "barriers/s/thread",
    );
    fig.push_series(cpu_series(
        &SYSTEM3,
        Affinity::Spread,
        "barrier",
        &kernel::omp_barrier(),
    )?);
    fig.annotate(format!(
        "dashed line at {} threads: hyperthreading to the right",
        SYSTEM3.cpu.total_cores()
    ));
    Ok(vec![fig])
}

/// Fig. 2 — OpenMP atomic update on a single shared variable
/// (System 3, four data types).
///
/// # Errors
///
/// Propagates simulator errors.
pub fn fig02_atomic_update_scalar() -> Result<Vec<FigureData>> {
    let mut fig = FigureData::new(
        "fig02",
        "Throughput of OpenMP atomic update on a single shared variable (System 3)",
        "threads",
        "ops/s/thread",
    );
    for s in cpu_dtype_series(&SYSTEM3, Affinity::SystemChoice, &DType::ALL, |dt| {
        kernel::omp_atomic_update_scalar(dt)
    })? {
        fig.push_series(s);
    }
    Ok(vec![fig])
}

/// Fig. 3 — OpenMP atomic update on private elements of a shared array
/// at strides 1, 4, 8, 16 (System 3).
///
/// # Errors
///
/// Propagates simulator errors.
pub fn fig03_atomic_update_array() -> Result<Vec<FigureData>> {
    let mut figs = Vec::new();
    for (panel, stride) in [('a', 1u32), ('b', 4), ('c', 8), ('d', 16)] {
        let mut fig = FigureData::new(
            format!("fig03{panel}"),
            format!("OpenMP atomic update on private array elements, stride {stride} (System 3)"),
            "threads",
            "ops/s/thread",
        );
        for s in cpu_dtype_series(&SYSTEM3, Affinity::SystemChoice, &DType::ALL, |dt| {
            kernel::omp_atomic_update_array(dt, stride)
        })? {
            fig.push_series(s);
        }
        match stride {
            1 => fig.annotate("maximum false sharing: 4-byte types worst (16 words/line)"),
            8 => fig.annotate("8-byte types now conflict-free (stride x 8 B = 64 B line)"),
            16 => fig.annotate("all types conflict-free; integer > floating-point"),
            _ => {}
        }
        figs.push(fig);
    }
    Ok(figs)
}

/// Fig. 4 — OpenMP atomic write on Systems 3 and 2 (the AMD system
/// shows notable jitter).
///
/// # Errors
///
/// Propagates simulator errors.
pub fn fig04_atomic_write() -> Result<Vec<FigureData>> {
    let mut figs = Vec::new();
    for (panel, sys) in [('a', &SYSTEM3), ('b', &SYSTEM2)] {
        let mut fig = FigureData::new(
            format!("fig04{panel}"),
            format!("OpenMP atomic write ({sys})"),
            "threads",
            "ops/s/thread",
        );
        for s in cpu_dtype_series(
            sys,
            Affinity::SystemChoice,
            &DType::ALL,
            kernel::omp_atomic_write,
        )? {
            fig.push_series(s);
        }
        if sys.id == 3 {
            fig.annotate("jitter attributed to architectural qualities of the AMD chip");
        }
        figs.push(fig);
    }
    Ok(figs)
}

/// Fig. 5 — an addition protected by an OpenMP critical section
/// (System 3, spread).
///
/// # Errors
///
/// Propagates simulator errors.
pub fn fig05_critical() -> Result<Vec<FigureData>> {
    let mut fig = FigureData::new(
        "fig05",
        "Throughput of an addition protected by an OpenMP critical section (System 3, spread)",
        "threads",
        "ops/s/thread",
    );
    for s in cpu_dtype_series(
        &SYSTEM3,
        Affinity::Spread,
        &DType::ALL,
        kernel::omp_critical_add,
    )? {
        fig.push_series(s);
    }
    fig.annotate("same trend as Fig. 2 but dropping faster and lower");
    Ok(vec![fig])
}

/// Fig. 6 — OpenMP flush at strides 1, 4, 8, 16 (System 2, close).
///
/// # Errors
///
/// Propagates simulator errors.
pub fn fig06_flush() -> Result<Vec<FigureData>> {
    let mut figs = Vec::new();
    for (panel, stride) in [('a', 1u32), ('b', 4), ('c', 8), ('d', 16)] {
        let mut fig = FigureData::new(
            format!("fig06{panel}"),
            format!("OpenMP flush, stride {stride} (System 2, close)"),
            "threads",
            "flushes/s/thread",
        );
        for s in cpu_dtype_series(&SYSTEM2, Affinity::Close, &DType::ALL, |dt| {
            kernel::omp_flush(dt, stride)
        })? {
            fig.push_series(s);
        }
        figs.push(fig);
    }
    Ok(figs)
}

/// §V-A2 (no figure) — atomic read is free; atomic capture behaves like
/// atomic update. Returns a two-series figure: capture/update
/// throughput ratio and the atomic-read negligibility flag (1 = free).
///
/// # Errors
///
/// Propagates simulator errors.
pub fn exp_atomic_read_capture() -> Result<Vec<FigureData>> {
    let threads = [2u32, 4, 8, 16, 32];
    let batch: Vec<_> = threads
        .iter()
        .flat_map(|&t| {
            let p = paper_loops(t);
            [
                (kernel::omp_atomic_update_scalar(DType::I32), p),
                (kernel::omp_atomic_capture_scalar(DType::I32), p),
                (kernel::omp_atomic_read(DType::I32), p),
            ]
        })
        .collect();
    let ms = measure_cpu_batch(&SYSTEM3, Protocol::PAPER, &batch)?;
    let mut ratio_points = Vec::new();
    let mut free_points = Vec::new();
    for (i, &t) in threads.iter().enumerate() {
        let (upd, cap, read) = (&ms[3 * i], &ms[3 * i + 1], &ms[3 * i + 2]);
        ratio_points.push((f64::from(t), cap.runtime_seconds() / upd.runtime_seconds()));
        free_points.push((f64::from(t), if read.is_negligible() { 1.0 } else { 0.0 }));
    }
    let mut fig = FigureData::new(
        "exp_read_capture",
        "Atomic capture ≈ atomic update; atomic read is free (System 3, §V-A2)",
        "threads",
        "ratio / flag",
    );
    fig.push_series(syncperf_core::Series::new(
        "capture/update runtime ratio",
        ratio_points,
    ));
    fig.push_series(syncperf_core::Series::new(
        "atomic read negligible (1=yes)",
        free_points,
    ));
    Ok(vec![fig])
}

/// Extension (Section IV's affinity parameter, beyond the paper's
/// figures) — spread vs close placement on the two-socket System 1:
/// "close" keeps small teams on one socket, avoiding cross-socket line
/// transfers; "spread" pays them from 2 threads on.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn exp_affinity() -> Result<Vec<FigureData>> {
    use syncperf_core::SYSTEM1;
    let mut fig = FigureData::new(
        "exp_affinity",
        "OpenMP atomic update on a shared int: spread vs close (System 1, 2 sockets)",
        "threads",
        "ops/s/thread",
    );
    for aff in [Affinity::Close, Affinity::Spread] {
        let series = cpu_series(
            &SYSTEM1,
            aff,
            aff.label(),
            &kernel::omp_atomic_update_scalar(DType::I32),
        )?;
        fig.push_series(series);
    }
    fig.annotate("close wins while the team fits one socket (<= 10 cores on System 1)");
    Ok(vec![fig])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig01_shape_decreases_then_plateaus() {
        let fig = &fig01_barrier().unwrap()[0];
        let s = &fig.series[0];
        let y2 = s.y_at(2.0).unwrap();
        let y8 = s.y_at(8.0).unwrap();
        let y16 = s.y_at(16.0).unwrap();
        let y32 = s.y_at(32.0).unwrap();
        assert!(y2 > 1.5 * y8, "initial decrease");
        assert!(y16 / y32 < 1.6, "largely stable beyond ~8 threads");
        assert!(y8 / y32 < 2.0, "plateau");
    }

    #[test]
    fn fig02_int_above_float() {
        let fig = &fig02_atomic_update_scalar().unwrap()[0];
        let int = fig.series_by_label("int").unwrap();
        let dbl = fig.series_by_label("double").unwrap();
        for &(x, y) in &int.points {
            let yd = dbl.y_at(x).unwrap();
            assert!(y > yd, "int must beat double at {x} threads");
        }
    }

    #[test]
    fn fig03_padding_jump_at_the_right_strides() {
        let figs = fig03_atomic_update_array().unwrap();
        let at = |panel: usize, label: &str, x: f64| {
            figs[panel].series_by_label(label).unwrap().y_at(x).unwrap()
        };
        // 64-bit types jump drastically at stride 8 (Fig. 3c).
        assert!(at(2, "double", 16.0) > 3.0 * at(1, "double", 16.0));
        // 32-bit types jump at stride 16 (Fig. 3d).
        assert!(at(3, "int", 16.0) > 3.0 * at(2, "int", 16.0));
        // At stride 16 everything is conflict-free and integers win.
        assert!(at(3, "int", 16.0) > at(3, "double", 16.0));
    }

    #[test]
    fn fig04_type_blind_and_amd_noisier() {
        let figs = fig04_atomic_write().unwrap();
        let s3 = &figs[0];
        let s2 = &figs[1];
        // Word size has no observable effect: all four series within a
        // band dominated by jitter.
        let at32: Vec<f64> = s2.series.iter().map(|s| s.y_at(32.0).unwrap()).collect();
        let spread = syncperf_core::stats::relative_spread(&at32);
        assert!(
            spread < 0.15,
            "types within noise on the Intel system: {spread}"
        );
        // The AMD panel wobbles more.
        let wobble = |fig: &FigureData| {
            let s = fig.series_by_label("int").unwrap();
            let tail: Vec<f64> = s
                .points
                .iter()
                .filter(|(x, _)| *x >= 20.0)
                .map(|(_, y)| *y)
                .collect();
            syncperf_core::stats::relative_spread(&tail)
        };
        assert!(
            wobble(s3) > wobble(s2),
            "System 3 shows the jitter (Fig. 4a)"
        );
    }

    #[test]
    fn fig05_critical_below_fig02_atomic() {
        let critical = &fig05_critical().unwrap()[0];
        let atomic = &fig02_atomic_update_scalar().unwrap()[0];
        let c = critical.series_by_label("int").unwrap();
        let a = atomic.series_by_label("int").unwrap();
        for &(x, y) in &c.points {
            assert!(y < a.y_at(x).unwrap(), "critical slower at {x} threads");
        }
    }

    #[test]
    fn fig06_padded_strides_much_faster() {
        let figs = fig06_flush().unwrap();
        // Stride 16 (panel d) ~10x the stride-1 (panel a) throughput:
        // the paper's x10^7 vs x10^8 scales.
        let a = figs[0].series_by_label("int").unwrap().y_at(32.0).unwrap();
        let d = figs[3].series_by_label("int").unwrap().y_at(32.0).unwrap();
        assert!(d > 4.0 * a, "padded flush {d:.3e} vs false-shared {a:.3e}");
    }

    #[test]
    fn read_capture_findings_hold() {
        let fig = &exp_atomic_read_capture().unwrap()[0];
        let ratio = fig.series_by_label("capture/update runtime ratio").unwrap();
        for &(_, r) in &ratio.points {
            assert!((r - 1.0).abs() < 0.2, "capture ≈ update, got ratio {r}");
        }
        let free = fig
            .series_by_label("atomic read negligible (1=yes)")
            .unwrap();
        assert!(
            free.points.iter().all(|&(_, f)| f == 1.0),
            "atomic read must be free"
        );
    }
}
