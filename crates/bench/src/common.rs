//! Shared helpers for the figure-regeneration harness.

use syncperf_core::sweep::{thread_sweep, throughput_series};
use syncperf_core::{
    Affinity, CpuKernel, DType, ExecParams, GpuKernel, Protocol, Result, Series, SystemSpec,
};
use syncperf_cpu_sim::CpuSimExecutor;
use syncperf_gpu_sim::GpuSimExecutor;

/// The loop structure used for all regenerated figures (the paper's
/// `n_iter` = 1000, `N_UNROLL` = 100; the simulators reach steady state
/// regardless, so the paper values cost nothing extra).
#[must_use]
pub fn paper_loops(threads: u32) -> ExecParams {
    ExecParams::new(threads).with_loops(1000, 100)
}

/// The measurement protocol used for figures.
#[must_use]
pub fn protocol() -> Protocol {
    Protocol::PAPER
}

/// OpenMP thread counts for `system` (2 ..= max hyperthreads).
#[must_use]
pub fn omp_threads(system: &SystemSpec) -> Vec<u32> {
    system.cpu.omp_thread_counts()
}

/// GPU thread-per-block counts (1 .. 1024, powers of two).
#[must_use]
pub fn gpu_threads(system: &SystemSpec) -> Vec<u32> {
    system.gpu.thread_count_sweep()
}

/// Runs a CPU kernel family over the thread sweep, one series per data
/// type.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn cpu_dtype_series(
    system: &SystemSpec,
    affinity: Affinity,
    dtypes: &[DType],
    mut make_kernel: impl FnMut(DType) -> CpuKernel,
) -> Result<Vec<Series>> {
    let mut exec = CpuSimExecutor::new(system);
    let threads = omp_threads(system);
    let mut out = Vec::new();
    for &dt in dtypes {
        let kernel = make_kernel(dt);
        let points = thread_sweep(&threads, paper_loops(2).with_affinity(affinity), |_| {
            kernel.clone()
        });
        out.push(throughput_series(
            &mut exec,
            &protocol(),
            dt.label(),
            points,
        )?);
    }
    Ok(out)
}

/// Runs a single CPU kernel over the thread sweep.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn cpu_series(
    system: &SystemSpec,
    affinity: Affinity,
    label: &str,
    kernel: &CpuKernel,
) -> Result<Series> {
    let mut exec = CpuSimExecutor::new(system);
    let threads = omp_threads(system);
    let points = thread_sweep(&threads, paper_loops(2).with_affinity(affinity), |_| {
        kernel.clone()
    });
    throughput_series(&mut exec, &protocol(), label, points)
}

/// Runs a GPU kernel family over the thread-per-block sweep at a fixed
/// block count, one series per data type.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn gpu_dtype_series(
    system: &SystemSpec,
    blocks: u32,
    dtypes: &[DType],
    mut make_kernel: impl FnMut(DType) -> GpuKernel,
) -> Result<Vec<Series>> {
    let mut exec = GpuSimExecutor::new(system);
    let threads = gpu_threads(system);
    let mut out = Vec::new();
    for &dt in dtypes {
        let kernel = make_kernel(dt);
        let points = thread_sweep(&threads, paper_loops(1).with_blocks(blocks), |_| {
            kernel.clone()
        });
        out.push(throughput_series(
            &mut exec,
            &protocol(),
            dt.label(),
            points,
        )?);
    }
    Ok(out)
}

/// Runs a single GPU kernel over the thread sweep at a fixed block
/// count.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn gpu_series(
    system: &SystemSpec,
    blocks: u32,
    label: &str,
    kernel: &GpuKernel,
) -> Result<Series> {
    let mut exec = GpuSimExecutor::new(system);
    let threads = gpu_threads(system);
    let points = thread_sweep(&threads, paper_loops(1).with_blocks(blocks), |_| {
        kernel.clone()
    });
    throughput_series(&mut exec, &protocol(), label, points)
}

/// Where figure CSVs land (`results/` at the workspace root, or the
/// `SYNCPERF_RESULTS` override).
#[must_use]
pub fn results_dir() -> std::path::PathBuf {
    std::env::var_os("SYNCPERF_RESULTS")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from("results"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use syncperf_core::{kernel, SYSTEM3};

    #[test]
    fn omp_threads_span_2_to_max() {
        let t = omp_threads(&SYSTEM3);
        assert_eq!((*t.first().unwrap(), *t.last().unwrap()), (2, 32));
    }

    #[test]
    fn gpu_threads_are_pow2() {
        let t = gpu_threads(&SYSTEM3);
        assert_eq!(t.len(), 11);
    }

    #[test]
    fn cpu_series_has_one_point_per_thread_count() {
        let s = cpu_series(
            &SYSTEM3,
            Affinity::Spread,
            "barrier",
            &kernel::omp_barrier(),
        )
        .unwrap();
        assert_eq!(s.points.len(), 31);
    }

    #[test]
    fn gpu_series_has_eleven_points() {
        let s = gpu_series(&SYSTEM3, 2, "syncwarp", &kernel::cuda_syncwarp()).unwrap();
        assert_eq!(s.points.len(), 11);
    }
}
