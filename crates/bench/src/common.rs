//! Shared helpers for the figure-regeneration harness.
//!
//! Every sweep helper here branches on the process-global scheduler
//! ([`syncperf_sched::current`]): with no scheduler installed (the
//! default, and what every library unit test uses) measurements run on
//! the serial legacy path — one executor per series with a continuous
//! jitter-RNG stream — byte-for-byte as they always have. With a
//! scheduler installed (the `--jobs`/`--no-cache`/`--resume` CLI
//! surface), each sweep point becomes an independent content-hashed
//! job that can be cached and run on the work-stealing pool.

use syncperf_core::sweep::{thread_sweep, throughput_series, SweepPoint, PLOT_FLOOR_SECONDS};
use syncperf_core::{
    Affinity, CpuKernel, DType, ExecParams, GpuKernel, Measurement, Protocol, Result, Series,
    SystemSpec,
};
use syncperf_cpu_sim::CpuSimExecutor;
use syncperf_gpu_sim::GpuSimExecutor;
use syncperf_omp::OmpExecutor;
use syncperf_sched::JobSpec;

/// The loop structure used for all regenerated figures (the paper's
/// `n_iter` = 1000, `N_UNROLL` = 100; the simulators reach steady state
/// regardless, so the paper values cost nothing extra).
#[must_use]
pub fn paper_loops(threads: u32) -> ExecParams {
    ExecParams::new(threads).with_loops(1000, 100)
}

/// The measurement protocol used for figures.
#[must_use]
pub fn protocol() -> Protocol {
    Protocol::PAPER
}

/// OpenMP thread counts for `system` (2 ..= max hyperthreads).
#[must_use]
pub fn omp_threads(system: &SystemSpec) -> Vec<u32> {
    system.cpu.omp_thread_counts()
}

/// GPU thread-per-block counts (1 .. 1024, powers of two).
#[must_use]
pub fn gpu_threads(system: &SystemSpec) -> Vec<u32> {
    system.gpu.thread_count_sweep()
}

/// Lowers CPU sweep points onto an installed scheduler and folds the
/// cached/pooled measurements back into a throughput series.
fn sched_cpu_series(
    sched: &syncperf_sched::Scheduler,
    system: &SystemSpec,
    label: &str,
    points: &[SweepPoint<syncperf_core::CpuOp>],
    protocol: Protocol,
) -> Result<Series> {
    let jobs = points
        .iter()
        .map(|p| JobSpec::cpu_sim(system, p.kernel.clone(), p.params, protocol))
        .collect();
    let ms = sched.run_jobs(jobs)?;
    Ok(Series::new(
        label,
        points
            .iter()
            .zip(ms)
            .map(|(p, m)| (p.x, m.throughput_clamped(PLOT_FLOOR_SECONDS)))
            .collect::<Vec<_>>(),
    ))
}

/// GPU twin of [`sched_cpu_series`].
fn sched_gpu_series(
    sched: &syncperf_sched::Scheduler,
    system: &SystemSpec,
    label: &str,
    points: &[SweepPoint<syncperf_core::GpuOp>],
    protocol: Protocol,
) -> Result<Series> {
    let jobs = points
        .iter()
        .map(|p| JobSpec::gpu_sim(system, p.kernel.clone(), p.params, protocol))
        .collect();
    let ms = sched.run_jobs(jobs)?;
    Ok(Series::new(
        label,
        points
            .iter()
            .zip(ms)
            .map(|(p, m)| (p.x, m.throughput_clamped(PLOT_FLOOR_SECONDS)))
            .collect::<Vec<_>>(),
    ))
}

/// Runs a CPU kernel family over the thread sweep, one series per data
/// type.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn cpu_dtype_series(
    system: &SystemSpec,
    affinity: Affinity,
    dtypes: &[DType],
    mut make_kernel: impl FnMut(DType) -> CpuKernel,
) -> Result<Vec<Series>> {
    let threads = omp_threads(system);
    let sched = syncperf_sched::current();
    let mut exec = CpuSimExecutor::new(system);
    let mut out = Vec::new();
    for &dt in dtypes {
        let kernel = make_kernel(dt);
        let points = thread_sweep(&threads, paper_loops(2).with_affinity(affinity), |_| {
            kernel.clone()
        });
        out.push(match &sched {
            Some(s) => sched_cpu_series(s, system, dt.label(), &points, protocol())?,
            None => throughput_series(&mut exec, &protocol(), dt.label(), points)?,
        });
    }
    Ok(out)
}

/// Runs a single CPU kernel over the thread sweep.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn cpu_series(
    system: &SystemSpec,
    affinity: Affinity,
    label: &str,
    kernel: &CpuKernel,
) -> Result<Series> {
    let threads = omp_threads(system);
    let points = thread_sweep(&threads, paper_loops(2).with_affinity(affinity), |_| {
        kernel.clone()
    });
    if let Some(sched) = syncperf_sched::current() {
        return sched_cpu_series(&sched, system, label, &points, protocol());
    }
    let mut exec = CpuSimExecutor::new(system);
    throughput_series(&mut exec, &protocol(), label, points)
}

/// Runs a GPU kernel family over the thread-per-block sweep at a fixed
/// block count, one series per data type.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn gpu_dtype_series(
    system: &SystemSpec,
    blocks: u32,
    dtypes: &[DType],
    mut make_kernel: impl FnMut(DType) -> GpuKernel,
) -> Result<Vec<Series>> {
    let threads = gpu_threads(system);
    let sched = syncperf_sched::current();
    let mut exec = GpuSimExecutor::new(system);
    let mut out = Vec::new();
    for &dt in dtypes {
        let kernel = make_kernel(dt);
        let points = thread_sweep(&threads, paper_loops(1).with_blocks(blocks), |_| {
            kernel.clone()
        });
        out.push(match &sched {
            Some(s) => sched_gpu_series(s, system, dt.label(), &points, protocol())?,
            None => throughput_series(&mut exec, &protocol(), dt.label(), points)?,
        });
    }
    Ok(out)
}

/// Runs a single GPU kernel over the thread sweep at a fixed block
/// count.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn gpu_series(
    system: &SystemSpec,
    blocks: u32,
    label: &str,
    kernel: &GpuKernel,
) -> Result<Series> {
    let threads = gpu_threads(system);
    let points = thread_sweep(&threads, paper_loops(1).with_blocks(blocks), |_| {
        kernel.clone()
    });
    if let Some(sched) = syncperf_sched::current() {
        return sched_gpu_series(&sched, system, label, &points, protocol());
    }
    let mut exec = GpuSimExecutor::new(system);
    throughput_series(&mut exec, &protocol(), label, points)
}

/// Measures a flat batch of (kernel, params) pairs on the CPU
/// simulator: through the scheduler when one is installed, else
/// serially on one shared executor in submission order (the legacy
/// path the pre-scheduler experiment generators used).
///
/// # Errors
///
/// Propagates simulator errors.
pub fn measure_cpu_batch(
    system: &SystemSpec,
    protocol: Protocol,
    batch: &[(CpuKernel, ExecParams)],
) -> Result<Vec<Measurement>> {
    if let Some(sched) = syncperf_sched::current() {
        return sched.run_jobs(
            batch
                .iter()
                .map(|(k, p)| JobSpec::cpu_sim(system, k.clone(), *p, protocol))
                .collect(),
        );
    }
    let mut exec = CpuSimExecutor::new(system);
    batch
        .iter()
        .map(|(k, p)| protocol.measure(&mut exec, k, p))
        .collect()
}

/// GPU twin of [`measure_cpu_batch`].
///
/// # Errors
///
/// Propagates simulator errors.
pub fn measure_gpu_batch(
    system: &SystemSpec,
    protocol: Protocol,
    batch: &[(GpuKernel, ExecParams)],
) -> Result<Vec<Measurement>> {
    if let Some(sched) = syncperf_sched::current() {
        return sched.run_jobs(
            batch
                .iter()
                .map(|(k, p)| JobSpec::gpu_sim(system, k.clone(), *p, protocol))
                .collect(),
        );
    }
    let mut exec = GpuSimExecutor::new(system);
    batch
        .iter()
        .map(|(k, p)| protocol.measure(&mut exec, k, p))
        .collect()
}

/// Runs a real-thread sweep as a throughput series: through the
/// scheduler when one is installed (jobs are host-scoped, so cached
/// results never cross machines), else serially on `exec`.
///
/// # Errors
///
/// Propagates executor errors.
pub fn real_series(
    exec: &mut OmpExecutor,
    protocol: Protocol,
    label: &str,
    points: Vec<SweepPoint<syncperf_core::CpuOp>>,
) -> Result<Series> {
    if let Some(sched) = syncperf_sched::current() {
        let jobs = points
            .iter()
            .map(|p| JobSpec::real_omp(p.kernel.clone(), p.params, protocol))
            .collect();
        let ms = sched.run_jobs(jobs)?;
        return Ok(Series::new(
            label,
            points
                .iter()
                .zip(ms)
                .map(|(p, m)| (p.x, m.throughput_clamped(PLOT_FLOOR_SECONDS)))
                .collect::<Vec<_>>(),
        ));
    }
    throughput_series(exec, &protocol, label, points)
}

/// Upper thread-count bound for real-thread sweeps on this host: twice
/// the available parallelism (the paper sweeps past the physical core
/// count into hyperthread oversubscription), floored at 4 so tiny
/// containers still sweep something.
#[must_use]
pub fn max_real_threads() -> u32 {
    std::thread::available_parallelism().map_or(4, |n| n.get() as u32 * 2)
}

/// Where figure CSVs land (`results/` at the workspace root, or the
/// `SYNCPERF_RESULTS` override).
#[must_use]
pub fn results_dir() -> std::path::PathBuf {
    std::env::var_os("SYNCPERF_RESULTS")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from("results"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use syncperf_core::{kernel, SYSTEM3};

    #[test]
    fn omp_threads_span_2_to_max() {
        let t = omp_threads(&SYSTEM3);
        assert_eq!((*t.first().unwrap(), *t.last().unwrap()), (2, 32));
    }

    #[test]
    fn gpu_threads_are_pow2() {
        let t = gpu_threads(&SYSTEM3);
        assert_eq!(t.len(), 11);
    }

    #[test]
    fn cpu_series_has_one_point_per_thread_count() {
        let s = cpu_series(
            &SYSTEM3,
            Affinity::Spread,
            "barrier",
            &kernel::omp_barrier(),
        )
        .unwrap();
        assert_eq!(s.points.len(), 31);
    }

    #[test]
    fn gpu_series_has_eleven_points() {
        let s = gpu_series(&SYSTEM3, 2, "syncwarp", &kernel::cuda_syncwarp()).unwrap();
        assert_eq!(s.points.len(), 11);
    }
}
