//! Table I and the Listing 1 reduction study as printable reports.

use std::fmt::Write as _;

use syncperf_core::{all_systems, Result, SystemSpec};
use syncperf_gpu_sim::{simulate_reduction, GpuModel, ReductionConfig, ReductionStrategy};

/// Renders Table I (system specifications) from the encoded specs.
#[must_use]
pub fn table1() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "TABLE I: System Specifications");
    for sys in all_systems() {
        let _ = writeln!(
            out,
            "\n({}) System {}",
            (b'a' + (sys.id - 1) as u8) as char,
            sys.id
        );
        let c = &sys.cpu;
        let _ = writeln!(out, "  {}", c.name);
        let _ = writeln!(
            out,
            "    Base Clock Frequency   {:.2} GHz",
            c.base_clock_ghz
        );
        let _ = writeln!(out, "    Sockets                {}", c.sockets);
        let _ = writeln!(out, "    Cores Per Socket       {}", c.cores_per_socket);
        let _ = writeln!(out, "    Threads Per Core       {}", c.threads_per_core);
        let _ = writeln!(out, "    NUMA nodes             {}", c.numa_nodes);
        let _ = writeln!(out, "    Main memory            {} GB", c.memory_gb);
        let g = &sys.gpu;
        let _ = writeln!(out, "  {}", g.name);
        let _ = writeln!(
            out,
            "    Compute Capability     {}.{}",
            g.compute_capability.0, g.compute_capability.1
        );
        let _ = writeln!(out, "    Clock Frequency        {} GHz", g.clock_ghz);
        let _ = writeln!(out, "    SMs                    {}", g.sms);
        let _ = writeln!(out, "    Max Threads per SM     {}", g.max_threads_per_sm);
        let _ = writeln!(out, "    CUDA Cores per SM      {}", g.cuda_cores_per_sm);
        let _ = writeln!(out, "    Memory                 {} GB", g.memory_gb);
        let _ = writeln!(out, "    g++ Version            {}", sys.gxx_version);
        let _ = writeln!(out, "    nvcc Version           {}", sys.nvcc_version);
        let _ = writeln!(out, "    GPU Driver             {}", sys.gpu_driver);
    }
    out
}

/// Runs the Listing 1 reduction study on `system` and renders the
/// comparison table (runtime in cycles and µs, op counts, and the
/// ordering statement from Section II-C).
///
/// # Errors
///
/// Propagates simulator errors.
pub fn listing1_report(system: &SystemSpec) -> Result<String> {
    let model = GpuModel::for_spec(&system.gpu);
    let cfg = ReductionConfig::megabyte_input(&system.gpu);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Listing 1: five max-reduction strategies, {} int elements on {}",
        cfg.size, system.gpu.name
    );
    let _ = writeln!(
        out,
        "{:<42} {:>12} {:>10} {:>12} {:>12}",
        "strategy", "cycles", "µs", "global atm", "block atm"
    );
    let mut results = Vec::new();
    for s in ReductionStrategy::ALL {
        let r = simulate_reduction(&model, &system.gpu, s, &cfg)?;
        let us = r.total_cycles / (system.gpu.clock_ghz * 1e3);
        let _ = writeln!(
            out,
            "{:<42} {:>12.0} {:>10.1} {:>12} {:>12}",
            s.label(),
            r.total_cycles,
            us,
            r.global_atomics,
            r.block_atomics
        );
        results.push((s, r.total_cycles));
    }
    let mut by_time = results.clone();
    by_time.sort_by(|a, b| a.1.total_cmp(&b.1));
    let order: Vec<&str> = by_time
        .iter()
        .map(|(s, _)| match s {
            ReductionStrategy::GlobalAtomic => "R1",
            ReductionStrategy::ShflThenGlobalAtomic => "R2",
            ReductionStrategy::BlockAtomicThenGlobal => "R3",
            ReductionStrategy::WarpReduceThenBlock => "R4",
            ReductionStrategy::PersistentThreads => "R5",
        })
        .collect();
    let _ = writeln!(out, "\nfastest to slowest: {}", order.join(" < "));
    let r2 = results[1].1;
    let r5 = results[4].1;
    let _ = writeln!(out, "R5 speedup over R2: {:.2}x (paper: ~2.5x)", r2 / r5);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use syncperf_core::SYSTEM3;

    #[test]
    fn table1_contains_all_specs() {
        let t = table1();
        for needle in [
            "Intel Xeon E5-2687 v3",
            "Intel Xeon Gold 6226R",
            "AMD Ryzen Threadripper 2950X",
            "RTX 2070 SUPER",
            "A100",
            "RTX 4090",
            "Compute Capability     8.9",
            "SMs                    128",
            "535.113.01",
        ] {
            assert!(t.contains(needle), "missing {needle}");
        }
    }

    #[test]
    fn listing1_reports_paper_ordering() {
        let r = listing1_report(&SYSTEM3).unwrap();
        assert!(
            r.contains("R5 < R3 < R4 < R1 < R2"),
            "ordering line missing:\n{r}"
        );
    }

    #[test]
    fn listing1_speedup_printed() {
        let r = listing1_report(&SYSTEM3).unwrap();
        assert!(r.contains("R5 speedup over R2"));
    }
}
