//! # syncperf-bench
//!
//! The figure/table regeneration harness: one function per table and
//! figure of the paper, plus Criterion micro-benches (under `benches/`)
//! and ablation binaries (under `src/bin/`).
//!
//! Each `figures_cpu::fig*` / `figures_gpu::fig*` function regenerates
//! one paper figure as [`syncperf_core::FigureData`]; the binaries
//! print the series as tables/ASCII charts and write CSVs into
//! `results/`.

#![warn(missing_docs)]

pub mod codes;
pub mod common;
pub mod figures_cpu;
pub mod figures_gpu;
pub mod runner;
pub mod sensitivity;
pub mod serving;
pub mod tables;
pub mod verify;

use syncperf_core::{FigureData, Result};

/// Prints a figure to stdout (table + ASCII chart) and writes its CSV
/// into [`common::results_dir`].
///
/// # Errors
///
/// Returns an error if the CSV cannot be written.
pub fn emit(figs: &[FigureData]) -> Result<()> {
    let dir = common::results_dir();
    for fig in figs {
        println!("{}", fig.render_table());
        println!("{}", fig.render_ascii(72, 14));
        fig.write_csv(&dir)?;
        fig.write_svg(&dir)?;
        println!(
            "(csv + svg: {})\n",
            dir.join(format!("{}.{{csv,svg}}", fig.id)).display()
        );
    }
    Ok(())
}

/// Every figure generator in paper order, for the umbrella binary.
///
/// # Errors
///
/// Propagates the first generator error.
pub fn all_figures() -> Result<Vec<FigureData>> {
    let mut figs = Vec::new();
    figs.extend(figures_cpu::fig01_barrier()?);
    figs.extend(figures_cpu::fig02_atomic_update_scalar()?);
    figs.extend(figures_cpu::fig03_atomic_update_array()?);
    figs.extend(figures_cpu::fig04_atomic_write()?);
    figs.extend(figures_cpu::fig05_critical()?);
    figs.extend(figures_cpu::fig06_flush()?);
    figs.extend(figures_cpu::exp_atomic_read_capture()?);
    figs.extend(figures_cpu::exp_affinity()?);
    figs.extend(figures_gpu::fig07_syncthreads()?);
    figs.extend(figures_gpu::fig08_syncwarp()?);
    figs.extend(figures_gpu::fig09_atomicadd_scalar()?);
    figs.extend(figures_gpu::fig10_atomicadd_array()?);
    figs.extend(figures_gpu::fig11_atomiccas_scalar()?);
    figs.extend(figures_gpu::fig12_atomiccas_array()?);
    figs.extend(figures_gpu::fig13_atomicexch()?);
    figs.extend(figures_gpu::fig14_threadfence()?);
    figs.extend(figures_gpu::fig15_shfl()?);
    figs.extend(figures_gpu::exp_fence_scopes()?);
    figs.extend(figures_gpu::exp_vote()?);
    figs.extend(figures_gpu::exp_atomic_ops()?);
    figs.extend(figures_gpu::exp_divergence()?);
    Ok(figs)
}
