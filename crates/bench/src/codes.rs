//! The artifact's test-code registry.
//!
//! The paper's artifact ships one source file per measured primitive
//! (`./codes/omp/omp_atomicadd_scalar.cpp`, …) and a `launch.py` that
//! compiles and runs them across all parameters, writing
//! `results/<host>/<test>/runtimes.csv`. This module is the equivalent:
//! a registry of named test codes, each sweeping its full parameter
//! grid on a simulated system and pushing [`RunRecord`]s.

use syncperf_core::{
    kernel, Affinity, CpuKernel, DType, ExecParams, Protocol, Result, ResultsStore, RunRecord,
    Scope, ShflVariant, SystemSpec, VoteKind,
};

use crate::common::{measure_cpu_batch, measure_gpu_batch};

/// Which API a test code exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Api {
    /// OpenMP (CPU) codes.
    OpenMp,
    /// CUDA (GPU) codes.
    Cuda,
}

/// One runnable test code.
pub struct TestCode {
    /// Artifact-style name, e.g. `omp_atomicadd_scalar`.
    pub name: &'static str,
    /// Which API it belongs to.
    pub api: Api,
    /// Sweeps the full parameter grid and records results.
    pub run: fn(&SystemSpec, &mut ResultsStore) -> Result<()>,
}

impl std::fmt::Debug for TestCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TestCode")
            .field("name", &self.name)
            .field("api", &self.api)
            .finish()
    }
}

/// The strides the paper sweeps for CPU array tests.
const CPU_STRIDES: [u32; 4] = [1, 4, 8, 16];
/// The strides the paper shows for GPU array tests.
const GPU_STRIDES: [u32; 2] = [1, 32];

/// Per-point sweep metadata, waiting to be zipped back with its
/// measurement.
#[derive(Debug, Clone, Copy)]
struct GridPoint {
    threads: u32,
    blocks: u32,
    stride: u32,
    dtype: Option<DType>,
    affinity: Affinity,
}

fn push_record(store: &mut ResultsStore, name: &str, g: GridPoint, m: &syncperf_core::Measurement) {
    store.push(RunRecord {
        test: name.to_string(),
        threads: g.threads,
        blocks: g.blocks,
        stride: g.stride,
        dtype: g.dtype,
        affinity: g.affinity,
        runtime_ns: m.runtime_seconds() * 1e9,
        throughput: m.throughput_clamped(1e-10),
    });
}

/// Measures an accumulated CPU grid through [`measure_cpu_batch`] —
/// serially on one executor without a scheduler (the legacy byte-exact
/// path), as content-hashed cacheable jobs with one installed — and
/// records each point.
fn run_cpu_grid(
    sys: &SystemSpec,
    store: &mut ResultsStore,
    name: &str,
    batch: Vec<(CpuKernel, ExecParams)>,
    grid: Vec<GridPoint>,
) -> Result<()> {
    let ms = measure_cpu_batch(sys, Protocol::PAPER, &batch)?;
    for (g, m) in grid.into_iter().zip(ms) {
        push_record(store, name, g, &m);
    }
    Ok(())
}

/// GPU twin of [`run_cpu_grid`].
fn run_gpu_grid(
    sys: &SystemSpec,
    store: &mut ResultsStore,
    name: &str,
    batch: Vec<(syncperf_core::GpuKernel, ExecParams)>,
    grid: Vec<GridPoint>,
) -> Result<()> {
    let ms = measure_gpu_batch(sys, Protocol::PAPER, &batch)?;
    for (g, m) in grid.into_iter().zip(ms) {
        push_record(store, name, g, &m);
    }
    Ok(())
}

fn cpu_params(threads: u32, affinity: Affinity) -> ExecParams {
    ExecParams::new(threads)
        .with_affinity(affinity)
        .with_loops(1000, 100)
}

fn cpu_scalar_code(
    sys: &SystemSpec,
    store: &mut ResultsStore,
    name: &str,
    affinity: Affinity,
    make: fn(DType) -> CpuKernel,
) -> Result<()> {
    let mut batch = Vec::new();
    let mut grid = Vec::new();
    for dt in DType::ALL {
        let k = make(dt);
        for threads in sys.cpu.omp_thread_counts() {
            batch.push((k.clone(), cpu_params(threads, affinity)));
            grid.push(GridPoint {
                threads,
                blocks: 1,
                stride: 0,
                dtype: Some(dt),
                affinity,
            });
        }
    }
    run_cpu_grid(sys, store, name, batch, grid)
}

fn cpu_array_code(
    sys: &SystemSpec,
    store: &mut ResultsStore,
    name: &str,
    affinity: Affinity,
    make: fn(DType, u32) -> CpuKernel,
) -> Result<()> {
    let mut batch = Vec::new();
    let mut grid = Vec::new();
    for stride in CPU_STRIDES {
        for dt in DType::ALL {
            let k = make(dt, stride);
            for threads in sys.cpu.omp_thread_counts() {
                batch.push((k.clone(), cpu_params(threads, affinity)));
                grid.push(GridPoint {
                    threads,
                    blocks: 1,
                    stride,
                    dtype: Some(dt),
                    affinity,
                });
            }
        }
    }
    run_cpu_grid(sys, store, name, batch, grid)
}

fn gpu_params(blocks: u32, threads: u32) -> ExecParams {
    ExecParams::new(threads)
        .with_blocks(blocks)
        .with_loops(1000, 100)
}

fn gpu_code(
    sys: &SystemSpec,
    store: &mut ResultsStore,
    name: &str,
    dtypes: &[Option<DType>],
    strides: &[u32],
    make: fn(Option<DType>, u32) -> syncperf_core::GpuKernel,
) -> Result<()> {
    let mut batch = Vec::new();
    let mut grid = Vec::new();
    for &stride in strides {
        for &dt in dtypes {
            let k = make(dt, stride);
            for blocks in sys.gpu.block_count_sweep() {
                for threads in sys.gpu.thread_count_sweep() {
                    batch.push((k.clone(), gpu_params(blocks, threads)));
                    grid.push(GridPoint {
                        threads,
                        blocks,
                        stride,
                        dtype: dt,
                        affinity: Affinity::SystemChoice,
                    });
                }
            }
        }
    }
    run_gpu_grid(sys, store, name, batch, grid)
}

const ALL_DT: [Option<DType>; 4] = [
    Some(DType::I32),
    Some(DType::U64),
    Some(DType::F32),
    Some(DType::F64),
];
const INT_DT: [Option<DType>; 2] = [Some(DType::I32), Some(DType::U64)];
const NO_DT: [Option<DType>; 1] = [None];

/// Every test code, in artifact order (OpenMP first, then CUDA).
#[must_use]
pub fn registry() -> Vec<TestCode> {
    vec![
        TestCode {
            name: "omp_barrier",
            api: Api::OpenMp,
            run: |sys, store| {
                let k = kernel::omp_barrier();
                let mut batch = Vec::new();
                let mut grid = Vec::new();
                for threads in sys.cpu.omp_thread_counts() {
                    batch.push((k.clone(), cpu_params(threads, Affinity::Spread)));
                    grid.push(GridPoint {
                        threads,
                        blocks: 1,
                        stride: 0,
                        dtype: None,
                        affinity: Affinity::Spread,
                    });
                }
                run_cpu_grid(sys, store, "omp_barrier", batch, grid)
            },
        },
        TestCode {
            name: "omp_atomicadd_scalar",
            api: Api::OpenMp,
            run: |sys, store| {
                cpu_scalar_code(
                    sys,
                    store,
                    "omp_atomicadd_scalar",
                    Affinity::SystemChoice,
                    kernel::omp_atomic_update_scalar,
                )
            },
        },
        TestCode {
            name: "omp_atomicadd_array",
            api: Api::OpenMp,
            run: |sys, store| {
                cpu_array_code(
                    sys,
                    store,
                    "omp_atomicadd_array",
                    Affinity::SystemChoice,
                    kernel::omp_atomic_update_array,
                )
            },
        },
        TestCode {
            name: "omp_atomiccapture_scalar",
            api: Api::OpenMp,
            run: |sys, store| {
                cpu_scalar_code(
                    sys,
                    store,
                    "omp_atomiccapture_scalar",
                    Affinity::SystemChoice,
                    kernel::omp_atomic_capture_scalar,
                )
            },
        },
        TestCode {
            name: "omp_atomicwrite",
            api: Api::OpenMp,
            run: |sys, store| {
                cpu_scalar_code(
                    sys,
                    store,
                    "omp_atomicwrite",
                    Affinity::SystemChoice,
                    kernel::omp_atomic_write,
                )
            },
        },
        TestCode {
            name: "omp_atomicread",
            api: Api::OpenMp,
            run: |sys, store| {
                cpu_scalar_code(
                    sys,
                    store,
                    "omp_atomicread",
                    Affinity::SystemChoice,
                    kernel::omp_atomic_read,
                )
            },
        },
        TestCode {
            name: "omp_critical",
            api: Api::OpenMp,
            run: |sys, store| {
                cpu_scalar_code(
                    sys,
                    store,
                    "omp_critical",
                    Affinity::Spread,
                    kernel::omp_critical_add,
                )
            },
        },
        TestCode {
            name: "omp_flush",
            api: Api::OpenMp,
            run: |sys, store| {
                cpu_array_code(sys, store, "omp_flush", Affinity::Close, kernel::omp_flush)
            },
        },
        TestCode {
            name: "cuda_syncthreads",
            api: Api::Cuda,
            run: |sys, store| {
                gpu_code(sys, store, "cuda_syncthreads", &NO_DT, &[0], |_, _| {
                    kernel::cuda_syncthreads()
                })
            },
        },
        TestCode {
            name: "cuda_syncwarp",
            api: Api::Cuda,
            run: |sys, store| {
                gpu_code(sys, store, "cuda_syncwarp", &NO_DT, &[0], |_, _| {
                    kernel::cuda_syncwarp()
                })
            },
        },
        TestCode {
            name: "cuda_atomicadd_scalar",
            api: Api::Cuda,
            run: |sys, store| {
                gpu_code(
                    sys,
                    store,
                    "cuda_atomicadd_scalar",
                    &ALL_DT,
                    &[0],
                    |dt, _| kernel::cuda_atomic_add_scalar(dt.expect("dtype")),
                )
            },
        },
        TestCode {
            name: "cuda_atomicadd_array",
            api: Api::Cuda,
            run: |sys, store| {
                gpu_code(
                    sys,
                    store,
                    "cuda_atomicadd_array",
                    &ALL_DT,
                    &GPU_STRIDES,
                    |dt, s| kernel::cuda_atomic_add_array(dt.expect("dtype"), s),
                )
            },
        },
        TestCode {
            name: "cuda_atomiccas_scalar",
            api: Api::Cuda,
            run: |sys, store| {
                gpu_code(
                    sys,
                    store,
                    "cuda_atomiccas_scalar",
                    &INT_DT,
                    &[0],
                    |dt, _| kernel::cuda_atomic_cas_scalar(dt.expect("dtype")),
                )
            },
        },
        TestCode {
            name: "cuda_atomiccas_array",
            api: Api::Cuda,
            run: |sys, store| {
                gpu_code(
                    sys,
                    store,
                    "cuda_atomiccas_array",
                    &INT_DT,
                    &GPU_STRIDES,
                    |dt, s| kernel::cuda_atomic_cas_array(dt.expect("dtype"), s),
                )
            },
        },
        TestCode {
            name: "cuda_atomicexch",
            api: Api::Cuda,
            run: |sys, store| {
                gpu_code(sys, store, "cuda_atomicexch", &INT_DT, &[0], |dt, _| {
                    kernel::cuda_atomic_exch(dt.expect("dtype"))
                })
            },
        },
        TestCode {
            name: "cuda_threadfence",
            api: Api::Cuda,
            run: |sys, store| {
                gpu_code(
                    sys,
                    store,
                    "cuda_threadfence",
                    &ALL_DT,
                    &GPU_STRIDES,
                    |dt, s| kernel::cuda_threadfence(Scope::Device, dt.expect("dtype"), s),
                )
            },
        },
        TestCode {
            name: "cuda_threadfence_block",
            api: Api::Cuda,
            run: |sys, store| {
                gpu_code(
                    sys,
                    store,
                    "cuda_threadfence_block",
                    &INT_DT,
                    &GPU_STRIDES,
                    |dt, s| kernel::cuda_threadfence(Scope::Block, dt.expect("dtype"), s),
                )
            },
        },
        TestCode {
            name: "cuda_threadfence_system",
            api: Api::Cuda,
            run: |sys, store| {
                gpu_code(
                    sys,
                    store,
                    "cuda_threadfence_system",
                    &INT_DT,
                    &[1],
                    |dt, s| kernel::cuda_threadfence(Scope::System, dt.expect("dtype"), s),
                )
            },
        },
        TestCode {
            name: "cuda_shfl",
            api: Api::Cuda,
            run: |sys, store| {
                gpu_code(sys, store, "cuda_shfl", &ALL_DT, &[0], |dt, _| {
                    kernel::cuda_shfl(dt.expect("dtype"), ShflVariant::Idx)
                })
            },
        },
        TestCode {
            name: "cuda_vote",
            api: Api::Cuda,
            run: |sys, store| {
                let mut batch = Vec::new();
                let mut grid = Vec::new();
                for kind in [VoteKind::Ballot, VoteKind::All, VoteKind::Any] {
                    let k = kernel::cuda_vote(kind);
                    for blocks in sys.gpu.block_count_sweep() {
                        for threads in sys.gpu.thread_count_sweep() {
                            batch.push((k.clone(), gpu_params(blocks, threads)));
                            grid.push(GridPoint {
                                threads,
                                blocks,
                                stride: 0,
                                dtype: None,
                                affinity: Affinity::SystemChoice,
                            });
                        }
                    }
                }
                run_gpu_grid(sys, store, "cuda_vote", batch, grid)
            },
        },
    ]
}

/// One concrete kernel a registry code sweeps (either API).
#[derive(Debug, Clone)]
pub enum AnyKernel {
    /// An OpenMP (CPU) kernel.
    Cpu(CpuKernel),
    /// A CUDA (GPU) kernel.
    Gpu(syncperf_core::GpuKernel),
}

impl AnyKernel {
    /// The kernel's own name (e.g. `omp_atomicadd_scalar_int`).
    #[must_use]
    pub fn name(&self) -> &str {
        match self {
            AnyKernel::Cpu(k) => &k.name,
            AnyKernel::Gpu(k) => &k.name,
        }
    }
}

/// One auditable kernel instance: which registry code sweeps it, plus
/// the kernel itself.
#[derive(Debug, Clone)]
pub struct KernelInstance {
    /// The owning registry code's name (e.g. `omp_atomicadd_scalar`).
    pub code: &'static str,
    /// The concrete kernel.
    pub kernel: AnyKernel,
}

/// Every concrete kernel the registry sweeps, one instance per
/// `(code, dtype, stride, variant)` grid point — the audit surface for
/// the `sync_lint` tool. Mirrors the grids in [`registry`] exactly.
#[must_use]
pub fn kernel_inventory() -> Vec<KernelInstance> {
    let mut inv = Vec::new();
    let mut cpu = |code: &'static str, k: CpuKernel| {
        inv.push(KernelInstance {
            code,
            kernel: AnyKernel::Cpu(k),
        });
    };
    cpu("omp_barrier", kernel::omp_barrier());
    for dt in DType::ALL {
        cpu("omp_atomicadd_scalar", kernel::omp_atomic_update_scalar(dt));
        cpu(
            "omp_atomiccapture_scalar",
            kernel::omp_atomic_capture_scalar(dt),
        );
        cpu("omp_atomicwrite", kernel::omp_atomic_write(dt));
        cpu("omp_atomicread", kernel::omp_atomic_read(dt));
        cpu("omp_critical", kernel::omp_critical_add(dt));
        for stride in CPU_STRIDES {
            cpu(
                "omp_atomicadd_array",
                kernel::omp_atomic_update_array(dt, stride),
            );
            cpu("omp_flush", kernel::omp_flush(dt, stride));
        }
    }
    let mut gpu = |code: &'static str, k: syncperf_core::GpuKernel| {
        inv.push(KernelInstance {
            code,
            kernel: AnyKernel::Gpu(k),
        });
    };
    gpu("cuda_syncthreads", kernel::cuda_syncthreads());
    gpu("cuda_syncwarp", kernel::cuda_syncwarp());
    for dt in DType::ALL {
        gpu("cuda_atomicadd_scalar", kernel::cuda_atomic_add_scalar(dt));
        gpu("cuda_shfl", kernel::cuda_shfl(dt, ShflVariant::Idx));
        for stride in GPU_STRIDES {
            gpu(
                "cuda_atomicadd_array",
                kernel::cuda_atomic_add_array(dt, stride),
            );
            gpu(
                "cuda_threadfence",
                kernel::cuda_threadfence(Scope::Device, dt, stride),
            );
        }
    }
    for dt in [DType::I32, DType::U64] {
        gpu("cuda_atomiccas_scalar", kernel::cuda_atomic_cas_scalar(dt));
        gpu("cuda_atomicexch", kernel::cuda_atomic_exch(dt));
        for stride in GPU_STRIDES {
            gpu(
                "cuda_atomiccas_array",
                kernel::cuda_atomic_cas_array(dt, stride),
            );
            gpu(
                "cuda_threadfence_block",
                kernel::cuda_threadfence(Scope::Block, dt, stride),
            );
        }
        gpu(
            "cuda_threadfence_system",
            kernel::cuda_threadfence(Scope::System, dt, 1),
        );
    }
    for kind in [VoteKind::Ballot, VoteKind::All, VoteKind::Any] {
        gpu("cuda_vote", kernel::cuda_vote(kind));
    }
    inv
}

/// Looks up codes by selector: `all`, `openmp`, `cuda`, or an exact
/// test name.
///
/// # Errors
///
/// Returns [`syncperf_core::SyncPerfError::InvalidParams`] for an
/// unknown selector.
pub fn select(selector: &str) -> Result<Vec<TestCode>> {
    let all = registry();
    let picked: Vec<TestCode> = match selector {
        "all" => all,
        "openmp" => all.into_iter().filter(|c| c.api == Api::OpenMp).collect(),
        "cuda" => all.into_iter().filter(|c| c.api == Api::Cuda).collect(),
        name => {
            let picked: Vec<TestCode> = all.into_iter().filter(|c| c.name == name).collect();
            if picked.is_empty() {
                return Err(syncperf_core::SyncPerfError::InvalidParams(format!(
                    "unknown test code `{name}` (try `all`, `openmp`, `cuda`, or one of the \
                     names listed by `launch list`)"
                )));
            }
            picked
        }
    };
    Ok(picked)
}

#[cfg(test)]
mod tests {
    use super::*;
    use syncperf_core::SYSTEM3;

    #[test]
    fn registry_covers_both_apis() {
        let all = registry();
        assert_eq!(all.len(), 20);
        assert_eq!(all.iter().filter(|c| c.api == Api::OpenMp).count(), 8);
        assert_eq!(all.iter().filter(|c| c.api == Api::Cuda).count(), 12);
        // Unique names.
        let mut names: Vec<_> = all.iter().map(|c| c.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 20);
    }

    #[test]
    fn select_by_api_and_name() {
        assert_eq!(select("openmp").unwrap().len(), 8);
        assert_eq!(select("cuda").unwrap().len(), 12);
        assert_eq!(select("omp_barrier").unwrap().len(), 1);
        assert!(select("nonexistent_code").is_err());
    }

    #[test]
    fn barrier_code_populates_store() {
        let code = select("omp_barrier").unwrap().remove(0);
        let mut store = ResultsStore::new("test");
        (code.run)(&SYSTEM3, &mut store).unwrap();
        // One record per thread count 2..=32.
        assert_eq!(store.len(), 31);
        assert!(store.records().iter().all(|r| r.test == "omp_barrier"));
        assert!(store.records().iter().all(|r| r.throughput > 0.0));
    }

    #[test]
    fn inventory_covers_every_registry_code() {
        let inv = kernel_inventory();
        let mut inv_codes: Vec<&str> = inv.iter().map(|i| i.code).collect();
        inv_codes.sort_unstable();
        inv_codes.dedup();
        let mut reg: Vec<&str> = registry().iter().map(|c| c.name).collect();
        reg.sort_unstable();
        assert_eq!(
            inv_codes, reg,
            "inventory and registry must cover the same codes"
        );
        // Kernel names are unique across the whole inventory.
        let mut names: Vec<String> = inv.iter().map(|i| i.kernel.name().to_string()).collect();
        let total = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), total, "duplicate kernel instance");
    }

    #[test]
    fn cas_code_uses_integer_types_only() {
        let code = select("cuda_atomiccas_scalar").unwrap().remove(0);
        let mut store = ResultsStore::new("test");
        (code.run)(&SYSTEM3, &mut store).unwrap();
        assert!(store
            .records()
            .iter()
            .all(|r| matches!(r.dtype, Some(DType::I32 | DType::U64))));
        // 2 dtypes × 5 block counts × 11 thread counts.
        assert_eq!(store.len(), 110);
    }
}
