//! Criterion benches of the supporting infrastructure: MESI replay,
//! figure rendering (CSV/SVG), the artifact store, and the case-study
//! simulators.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use syncperf_core::svg::{render_svg, SvgStyle};
use syncperf_core::{Affinity, DType, FigureData, ResultsStore, RunRecord, Series, SYSTEM3};
use syncperf_cpu_sim::memline::line_of;
use syncperf_cpu_sim::{
    simulate_cpu_reduction, CpuModel, CpuReductionStrategy, MesiDirectory, Placement,
};
use syncperf_gpu_sim::{
    simulate_histogram, simulate_scan, GpuModel, HistogramConfig, HistogramStrategy, ScanConfig,
    ScanStrategy,
};

fn sample_figure(points: usize) -> FigureData {
    let mut fig = FigureData::new("bench", "Bench Figure", "x", "y");
    for s in 0..4 {
        fig.push_series(Series::new(
            format!("s{s}"),
            (0..points)
                .map(|i| (i as f64, (i * (s + 1)) as f64))
                .collect(),
        ));
    }
    fig
}

fn bench_rendering(c: &mut Criterion) {
    let fig = sample_figure(64);
    let mut g = c.benchmark_group("rendering");
    g.measurement_time(Duration::from_secs(2));
    g.warm_up_time(Duration::from_millis(300));
    g.sample_size(20);
    g.bench_function("csv", |b| b.iter(|| fig.to_csv()));
    g.bench_function("svg", |b| b.iter(|| render_svg(&fig, &SvgStyle::default())));
    g.bench_function("ascii", |b| b.iter(|| fig.render_ascii(72, 14)));
    g.bench_function("table", |b| b.iter(|| fig.render_table()));
    g.finish();
}

fn bench_mesi(c: &mut Criterion) {
    let mut g = c.benchmark_group("mesi");
    g.measurement_time(Duration::from_secs(2));
    g.warm_up_time(Duration::from_millis(300));
    g.sample_size(20);
    for &cores in &[4usize, 16] {
        g.bench_with_input(
            BenchmarkId::new("ping_pong_1000", cores),
            &cores,
            |b, &n| {
                b.iter(|| {
                    let mut d = MesiDirectory::new(n);
                    let line = line_of(DType::I32, syncperf_core::Target::SHARED, 0, 64);
                    for i in 0..1000 {
                        let _ = d.write(i % n, line);
                    }
                    d
                });
            },
        );
    }
    g.finish();
}

fn bench_artifact_store(c: &mut Criterion) {
    let mut g = c.benchmark_group("artifact");
    g.measurement_time(Duration::from_secs(2));
    g.warm_up_time(Duration::from_millis(300));
    g.sample_size(20);
    g.bench_function("push_and_diff_1000", |b| {
        b.iter(|| {
            let mut a = ResultsStore::new("a");
            let mut o = ResultsStore::new("b");
            for t in 0..1000u32 {
                let rec = RunRecord {
                    test: "t".into(),
                    threads: t,
                    blocks: 1,
                    stride: 0,
                    dtype: Some(DType::I32),
                    affinity: Affinity::Spread,
                    runtime_ns: 10.0,
                    throughput: 1e8,
                };
                a.push(rec.clone());
                o.push(rec);
            }
            a.diff(&o).entries.len()
        });
    });
    g.finish();
}

fn bench_case_studies(c: &mut Criterion) {
    let mut g = c.benchmark_group("case_studies");
    g.measurement_time(Duration::from_secs(2));
    g.warm_up_time(Duration::from_millis(300));
    g.sample_size(20);
    let cm = CpuModel::for_system(&SYSTEM3.cpu, SYSTEM3.cpu_jitter);
    let placement = Placement::new(&SYSTEM3.cpu, Affinity::Spread, 16);
    g.bench_function("cpu_reduction_padded", |b| {
        b.iter(|| {
            simulate_cpu_reduction(
                &cm,
                &placement,
                CpuReductionStrategy::PaddedPartials,
                1 << 20,
            )
            .unwrap()
        });
    });
    let gm = GpuModel::for_spec(&SYSTEM3.gpu);
    let hc = HistogramConfig {
        elements: 1 << 22,
        bins: 256,
        hot_fraction: 0.3,
        block_size: 256,
        blocks: 512,
    };
    g.bench_function("gpu_histogram_privatized", |b| {
        b.iter(|| {
            simulate_histogram(&gm, &SYSTEM3.gpu, HistogramStrategy::SharedPrivatized, &hc).unwrap()
        });
    });
    let sc = ScanConfig {
        elements: 1 << 24,
        block_size: 256,
    };
    g.bench_function("gpu_scan_lookback", |b| {
        b.iter(|| simulate_scan(&gm, &SYSTEM3.gpu, ScanStrategy::DecoupledLookback, &sc).unwrap());
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_rendering,
    bench_mesi,
    bench_artifact_store,
    bench_case_studies
);
criterion_main!(benches);
