//! Criterion benches of the supporting infrastructure: MESI replay,
//! figure rendering (CSV/SVG), the artifact store, and the case-study
//! simulators.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use syncperf_core::svg::{render_svg, SvgStyle};
use syncperf_core::{Affinity, DType, FigureData, ResultsStore, RunRecord, Series, SYSTEM3};
use syncperf_cpu_sim::memline::line_of;
use syncperf_cpu_sim::{
    simulate_cpu_reduction, CpuModel, CpuReductionStrategy, MesiDirectory, Placement,
};
use syncperf_gpu_sim::{
    simulate_histogram, simulate_scan, GpuModel, HistogramConfig, HistogramStrategy, ScanConfig,
    ScanStrategy,
};

fn sample_figure(points: usize) -> FigureData {
    let mut fig = FigureData::new("bench", "Bench Figure", "x", "y");
    for s in 0..4 {
        fig.push_series(Series::new(
            format!("s{s}"),
            (0..points)
                .map(|i| (i as f64, (i * (s + 1)) as f64))
                .collect(),
        ));
    }
    fig
}

fn bench_rendering(c: &mut Criterion) {
    let fig = sample_figure(64);
    let mut g = c.benchmark_group("rendering");
    g.measurement_time(Duration::from_secs(2));
    g.warm_up_time(Duration::from_millis(300));
    g.sample_size(20);
    g.bench_function("csv", |b| b.iter(|| fig.to_csv()));
    g.bench_function("svg", |b| b.iter(|| render_svg(&fig, &SvgStyle::default())));
    g.bench_function("ascii", |b| b.iter(|| fig.render_ascii(72, 14)));
    g.bench_function("table", |b| b.iter(|| fig.render_table()));
    g.finish();
}

fn bench_mesi(c: &mut Criterion) {
    let mut g = c.benchmark_group("mesi");
    g.measurement_time(Duration::from_secs(2));
    g.warm_up_time(Duration::from_millis(300));
    g.sample_size(20);
    for &cores in &[4usize, 16] {
        g.bench_with_input(
            BenchmarkId::new("ping_pong_1000", cores),
            &cores,
            |b, &n| {
                b.iter(|| {
                    let mut d = MesiDirectory::new(n);
                    let line = line_of(DType::I32, syncperf_core::Target::SHARED, 0, 64);
                    for i in 0..1000 {
                        let _ = d.write(i % n, line);
                    }
                    d
                });
            },
        );
    }
    g.finish();
}

fn bench_artifact_store(c: &mut Criterion) {
    let mut g = c.benchmark_group("artifact");
    g.measurement_time(Duration::from_secs(2));
    g.warm_up_time(Duration::from_millis(300));
    g.sample_size(20);
    g.bench_function("push_and_diff_1000", |b| {
        b.iter(|| {
            let mut a = ResultsStore::new("a");
            let mut o = ResultsStore::new("b");
            for t in 0..1000u32 {
                let rec = RunRecord {
                    test: "t".into(),
                    threads: t,
                    blocks: 1,
                    stride: 0,
                    dtype: Some(DType::I32),
                    affinity: Affinity::Spread,
                    runtime_ns: 10.0,
                    throughput: 1e8,
                };
                a.push(rec.clone());
                o.push(rec);
            }
            a.diff(&o).entries.len()
        });
    });
    g.finish();
}

fn bench_case_studies(c: &mut Criterion) {
    let mut g = c.benchmark_group("case_studies");
    g.measurement_time(Duration::from_secs(2));
    g.warm_up_time(Duration::from_millis(300));
    g.sample_size(20);
    let cm = CpuModel::for_system(&SYSTEM3.cpu, SYSTEM3.cpu_jitter);
    let placement = Placement::new(&SYSTEM3.cpu, Affinity::Spread, 16);
    g.bench_function("cpu_reduction_padded", |b| {
        b.iter(|| {
            simulate_cpu_reduction(
                &cm,
                &placement,
                CpuReductionStrategy::PaddedPartials,
                1 << 20,
            )
            .unwrap()
        });
    });
    let gm = GpuModel::for_spec(&SYSTEM3.gpu);
    let hc = HistogramConfig {
        elements: 1 << 22,
        bins: 256,
        hot_fraction: 0.3,
        block_size: 256,
        blocks: 512,
    };
    g.bench_function("gpu_histogram_privatized", |b| {
        b.iter(|| {
            simulate_histogram(&gm, &SYSTEM3.gpu, HistogramStrategy::SharedPrivatized, &hc).unwrap()
        });
    });
    let sc = ScanConfig {
        elements: 1 << 24,
        block_size: 256,
    };
    g.bench_function("gpu_scan_lookback", |b| {
        b.iter(|| simulate_scan(&gm, &SYSTEM3.gpu, ScanStrategy::DecoupledLookback, &sc).unwrap());
    });
    g.finish();
}

/// Scheduler dispatch overhead: hashing a job's full content, and a
/// warm `run_jobs` batch where every job answers from the cache — the
/// steady-state cost a cached figure regeneration actually pays.
fn bench_sched_dispatch(c: &mut Criterion) {
    use syncperf_core::{kernel, ExecParams, Protocol};
    use syncperf_sched::{JobSpec, SchedConfig, Scheduler};

    let dir = std::env::temp_dir().join(format!("syncperf-bench-sched-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let sched = Scheduler::new(
        SchedConfig::new(1)
            .with_cache_dir(dir.join(".cache"))
            .with_label("bench"),
    );
    let jobs = || -> Vec<JobSpec> {
        (1..=16u32)
            .map(|t| {
                JobSpec::cpu_sim(
                    &SYSTEM3,
                    kernel::omp_atomic_update_scalar(DType::I32),
                    ExecParams::new(t).with_loops(1000, 100),
                    Protocol::PAPER,
                )
            })
            .collect()
    };
    // Warm the cache once so the measured batches are pure hits.
    sched.run_jobs(jobs()).expect("warm-up batch");

    let mut g = c.benchmark_group("sched");
    g.measurement_time(Duration::from_secs(2));
    g.warm_up_time(Duration::from_millis(300));
    g.sample_size(20);
    let one = jobs().pop().unwrap();
    g.bench_function("job_hash", |b| b.iter(|| sched.job_hash(&one)));
    g.bench_function("dispatch_warm_16_jobs", |b| {
        b.iter(|| sched.run_jobs(jobs()).unwrap());
    });
    g.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Serve-layer index lookups: pinned `get` by content hash and the
/// nearest-thread-count `query` over a populated kernel family.
fn bench_serve_index(c: &mut Criterion) {
    use syncperf_core::{ExecParams, Measurement, TimeUnit};
    use syncperf_serve::index::{Index, Query};

    let dir = std::env::temp_dir().join(format!("syncperf-bench-index-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let index = Index::build(syncperf_sched::cache::Cache::new(dir.join(".cache")), None);
    for i in 0..256u64 {
        let threads = 1 + (i % 64) as u32;
        let m = Measurement {
            kernel_name: format!("bench_kernel_{}", i % 8),
            params: ExecParams::new(threads).with_loops(1000, 100),
            time_unit: TimeUnit::Seconds,
            baseline_runs: vec![1.0; 9],
            test_runs: vec![2.0; 9],
            median_baseline: 1.0,
            median_test: 2.0,
            per_op: 0.01,
            retries: 0,
            exhausted_runs: 0,
        };
        index.insert(0x5EED_0000 + i, &m);
    }

    let mut g = c.benchmark_group("serve_index");
    g.measurement_time(Duration::from_secs(2));
    g.warm_up_time(Duration::from_millis(300));
    g.sample_size(20);
    g.bench_function("get_by_hash", |b| {
        b.iter(|| index.get(0x5EED_0080).expect("entry exists"));
    });
    let q = Query {
        kernel: "bench_kernel_3".into(),
        dtype: None,
        threads: 33,
        blocks: None,
        exact: false,
    };
    g.bench_function("query_nearest", |b| {
        b.iter(|| index.query(&q).expect("family matches"));
    });
    g.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(
    benches,
    bench_rendering,
    bench_mesi,
    bench_artifact_store,
    bench_case_studies,
    bench_sched_dispatch,
    bench_serve_index
);
criterion_main!(benches);
