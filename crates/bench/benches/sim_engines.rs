//! Criterion benches of the simulator engines themselves: how fast the
//! CPU and GPU models evaluate kernels and full measurement protocols.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use syncperf_core::{kernel, Affinity, DType, ExecParams, Protocol, SYSTEM3};
use syncperf_cpu_sim::{CpuModel, CpuSimExecutor, Placement};
use syncperf_gpu_sim::{
    simulate_reduction, GpuModel, GpuSimExecutor, Occupancy, ReductionConfig, ReductionStrategy,
};

fn bench_cpu_engine(c: &mut Criterion) {
    let model = CpuModel::for_system(&SYSTEM3.cpu, SYSTEM3.cpu_jitter);
    let mut g = c.benchmark_group("cpu_engine");
    g.measurement_time(Duration::from_secs(2));
    g.warm_up_time(Duration::from_millis(300));
    g.sample_size(20);
    for &threads in &[4u32, 16, 32] {
        let placement = Placement::new(&SYSTEM3.cpu, Affinity::Spread, threads);
        let body = kernel::omp_atomic_update_array(DType::I32, 1).test;
        g.bench_with_input(
            BenchmarkId::new("atomic_array_run", threads),
            &threads,
            |b, _| {
                b.iter(|| {
                    syncperf_cpu_sim::engine::run(&model, &placement, &body, 100_000).unwrap()
                });
            },
        );
        let barrier_body = kernel::omp_barrier().test;
        g.bench_with_input(
            BenchmarkId::new("barrier_run", threads),
            &threads,
            |b, _| {
                b.iter(|| {
                    syncperf_cpu_sim::engine::run(&model, &placement, &barrier_body, 100_000)
                        .unwrap()
                });
            },
        );
    }
    g.finish();
}

fn bench_gpu_engine(c: &mut Criterion) {
    let model = GpuModel::for_spec(&SYSTEM3.gpu);
    let mut g = c.benchmark_group("gpu_engine");
    g.measurement_time(Duration::from_secs(2));
    g.warm_up_time(Duration::from_millis(300));
    g.sample_size(20);
    for &(blocks, threads) in &[(1u32, 32u32), (128, 1024)] {
        let occ = Occupancy::compute(&SYSTEM3.gpu, blocks, threads).unwrap();
        let body = kernel::cuda_atomic_add_scalar(DType::I32).test;
        g.bench_with_input(
            BenchmarkId::new("atomic_scalar_run", format!("{blocks}x{threads}")),
            &occ,
            |b, occ| {
                b.iter(|| syncperf_gpu_sim::engine::run(&model, occ, &body, 100_000).unwrap());
            },
        );
    }
    g.finish();
}

/// The tracked speedup: the steady-state fast path (what `run` uses)
/// against the full-stepping oracle at the paper's 100k-rep protocol
/// point. The ratio between these two groups is the whole point of the
/// fast path — `BENCH_syncperf.json` tracks it end-to-end.
fn bench_fast_vs_full(c: &mut Criterion) {
    let rec = syncperf_core::obs::Recorder::disabled();
    let mut g = c.benchmark_group("fast_vs_full");
    g.measurement_time(Duration::from_secs(2));
    g.warm_up_time(Duration::from_millis(300));
    g.sample_size(20);

    let cpu_model = CpuModel::for_system(&SYSTEM3.cpu, SYSTEM3.cpu_jitter);
    let placement = Placement::new(&SYSTEM3.cpu, Affinity::Spread, 16);
    let body = kernel::omp_atomic_update_scalar(DType::I32).test;
    g.bench_function("cpu_fast_100k", |b| {
        b.iter(|| syncperf_cpu_sim::engine::run(&cpu_model, &placement, &body, 100_000).unwrap());
    });
    g.bench_function("cpu_full_stepping_100k", |b| {
        b.iter(|| {
            syncperf_cpu_sim::run_full_stepping(&cpu_model, &placement, &body, 100_000, &rec)
                .unwrap()
        });
    });

    let gpu_model = GpuModel::for_spec(&SYSTEM3.gpu);
    let occ = Occupancy::compute(&SYSTEM3.gpu, 64, 256).unwrap();
    let gpu_body = kernel::cuda_atomic_add_scalar(DType::I32).test;
    g.bench_function("gpu_fast_100k", |b| {
        b.iter(|| syncperf_gpu_sim::engine::run(&gpu_model, &occ, &gpu_body, 100_000).unwrap());
    });
    g.bench_function("gpu_full_stepping_100k", |b| {
        b.iter(|| {
            syncperf_gpu_sim::run_full_stepping(&gpu_model, &occ, &gpu_body, 100_000, &rec).unwrap()
        });
    });
    g.finish();
}

/// The trace-compilation speedup ladder on one representative kernel
/// point: the per-rep plan interpreter (full-stepping oracle), the
/// flat branchless op-trace, and the batched struct-of-arrays plan
/// table amortizing one pass over a whole parameter sweep. All three
/// produce bit-identical results; this group tracks what the lowering
/// buys in raw evaluation speed.
fn bench_trace_vs_interp(c: &mut Criterion) {
    let rec = syncperf_core::obs::Recorder::disabled();
    let model = CpuModel::for_system(&SYSTEM3.cpu, SYSTEM3.cpu_jitter);
    let body = kernel::omp_atomic_update_scalar(DType::I32).test;
    let threads = 16u32;
    let reps = 10_000u64;
    let placement = Placement::new(&SYSTEM3.cpu, Affinity::Spread, threads);

    let mut g = c.benchmark_group("trace_vs_interp");
    g.measurement_time(Duration::from_secs(2));
    g.warm_up_time(Duration::from_millis(300));
    g.sample_size(20);

    g.bench_function("interp_10k", |b| {
        b.iter(|| {
            syncperf_cpu_sim::run_full_stepping(&model, &placement, &body, reps, &rec).unwrap()
        });
    });

    let trace = syncperf_cpu_sim::trace::OpTrace::compile_for(&model, &placement, &body);
    g.bench_function("trace_10k", |b| {
        let lanes = threads as usize;
        let mut order = Vec::with_capacity(lanes);
        b.iter(|| {
            let mut t = vec![0u64; lanes];
            let mut pending = vec![0u64; lanes];
            let mut episodes = 0u64;
            for _ in 0..reps {
                episodes += trace.step_rep(&mut t, &mut pending, &mut order);
            }
            (t, episodes)
        });
    });

    // The batched path evaluates an 8-point thread sweep in one pass;
    // Criterion reports the whole sweep, so divide by 8 to compare
    // per-point cost against the rows above.
    let sweep: Vec<Placement> = [2u32, 4, 6, 8, 12, 16, 24, 32]
        .iter()
        .map(|&t| Placement::new(&SYSTEM3.cpu, Affinity::Spread, t))
        .collect();
    g.bench_function("batched_8pt_10k", |b| {
        b.iter(|| syncperf_cpu_sim::trace::run_batch(&model, &body, &sweep, reps).unwrap());
    });
    g.finish();
}

fn bench_full_protocol(c: &mut Criterion) {
    let mut g = c.benchmark_group("protocol");
    g.measurement_time(Duration::from_secs(2));
    g.warm_up_time(Duration::from_millis(300));
    g.sample_size(10);
    g.bench_function("paper_protocol_cpu_point", |b| {
        let mut exec = CpuSimExecutor::new(&SYSTEM3);
        let k = kernel::omp_atomic_update_scalar(DType::I32);
        let p = ExecParams::new(16).with_loops(1000, 100);
        b.iter(|| Protocol::PAPER.measure(&mut exec, &k, &p).unwrap());
    });
    g.bench_function("paper_protocol_gpu_point", |b| {
        let mut exec = GpuSimExecutor::new(&SYSTEM3);
        let k = kernel::cuda_atomic_add_scalar(DType::I32);
        let p = ExecParams::new(256).with_blocks(64).with_loops(1000, 100);
        b.iter(|| Protocol::PAPER.measure(&mut exec, &k, &p).unwrap());
    });
    g.finish();
}

fn bench_reductions(c: &mut Criterion) {
    let model = GpuModel::for_spec(&SYSTEM3.gpu);
    let cfg = ReductionConfig::megabyte_input(&SYSTEM3.gpu);
    let mut g = c.benchmark_group("listing1");
    g.measurement_time(Duration::from_secs(2));
    g.warm_up_time(Duration::from_millis(300));
    g.sample_size(20);
    for s in ReductionStrategy::ALL {
        g.bench_with_input(
            BenchmarkId::new("simulate", format!("{s:?}")),
            &s,
            |b, &s| {
                b.iter(|| simulate_reduction(&model, &SYSTEM3.gpu, s, &cfg).unwrap());
            },
        );
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_cpu_engine,
    bench_gpu_engine,
    bench_fast_vs_full,
    bench_trace_vs_interp,
    bench_full_protocol,
    bench_reductions
);
criterion_main!(benches);
