//! Criterion micro-benches of the *real-thread* primitives in
//! `syncperf-omp`: the genuine-hardware counterpart of the simulated
//! figures, plus the centralized-vs-tree barrier ablation called out in
//! DESIGN.md §5.

use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use syncperf_omp::{
    flush, AtomicCell, BarrierToken, Critical, SenseBarrier, StridedArray, Team, TreeBarrier,
};

fn bench_atomic_cells(c: &mut Criterion) {
    let mut g = c.benchmark_group("atomic_cell_update");
    g.measurement_time(Duration::from_secs(2));
    g.warm_up_time(Duration::from_millis(300));
    g.sample_size(20);
    let i32_cell = AtomicCell::new(0i32);
    g.bench_function("i32", |b| b.iter(|| i32_cell.update(black_box(1))));
    let u64_cell = AtomicCell::new(0u64);
    g.bench_function("u64", |b| b.iter(|| u64_cell.update(black_box(1))));
    let f32_cell = AtomicCell::new(0.0f32);
    g.bench_function("f32_cas_loop", |b| {
        b.iter(|| f32_cell.update(black_box(1.0)))
    });
    let f64_cell = AtomicCell::new(0.0f64);
    g.bench_function("f64_cas_loop", |b| {
        b.iter(|| f64_cell.update(black_box(1.0)))
    });
    g.finish();

    let mut g = c.benchmark_group("atomic_cell_flavors");
    g.measurement_time(Duration::from_secs(2));
    g.warm_up_time(Duration::from_millis(300));
    g.sample_size(20);
    let cell = AtomicCell::new(0i32);
    g.bench_function("read", |b| b.iter(|| black_box(cell.read())));
    g.bench_function("write", |b| b.iter(|| cell.write(black_box(7))));
    g.bench_function("capture", |b| b.iter(|| black_box(cell.capture(1))));
    g.bench_function("exchange", |b| b.iter(|| black_box(cell.exchange(3))));
    g.bench_function("max", |b| b.iter(|| black_box(cell.max(5))));
    g.finish();
}

fn bench_critical_vs_atomic(c: &mut Criterion) {
    let mut g = c.benchmark_group("critical_vs_atomic");
    g.measurement_time(Duration::from_secs(2));
    g.warm_up_time(Duration::from_millis(300));
    g.sample_size(20);
    let cell = AtomicCell::new(0u64);
    g.bench_function("atomic_add", |b| b.iter(|| cell.update(1)));
    let critical = Critical::private();
    let plain = AtomicU64::new(0);
    g.bench_function("critical_add", |b| {
        b.iter(|| {
            critical.with(|| {
                let v = plain.load(Ordering::Relaxed);
                plain.store(v + 1, Ordering::Relaxed);
            });
        });
    });
    g.finish();
}

fn bench_flush(c: &mut Criterion) {
    let arr0 = StridedArray::<u64>::new(1, 16);
    let arr1 = StridedArray::<u64>::new(1, 16);
    let mut g = c.benchmark_group("flush");
    g.measurement_time(Duration::from_secs(2));
    g.warm_up_time(Duration::from_millis(300));
    g.sample_size(20);
    g.bench_function("updates_only", |b| {
        b.iter(|| {
            arr0.elem(0).plain_update(1);
            arr1.elem(0).plain_update(1);
        });
    });
    g.bench_function("updates_with_flush", |b| {
        b.iter(|| {
            arr0.elem(0).plain_update(1);
            flush();
            arr1.elem(0).plain_update(1);
        });
    });
    g.finish();
}

/// DESIGN.md §5 ablation: centralized sense-reversing barrier vs the
/// combining-tree barrier, at a few team sizes.
fn bench_barriers(c: &mut Criterion) {
    let mut g = c.benchmark_group("barrier_ablation");
    g.measurement_time(Duration::from_secs(2));
    g.warm_up_time(Duration::from_millis(300));
    g.sample_size(10);
    for &n in &[2usize, 4, 8] {
        g.bench_with_input(BenchmarkId::new("sense", n), &n, |b, &n| {
            b.iter(|| {
                let barrier = SenseBarrier::new(n);
                Team::new(n).parallel(|_| {
                    let mut tok = BarrierToken::new();
                    for _ in 0..100 {
                        barrier.wait(&mut tok);
                    }
                });
            });
        });
        g.bench_with_input(BenchmarkId::new("tree", n), &n, |b, &n| {
            b.iter(|| {
                let barrier = TreeBarrier::new(n);
                Team::new(n).parallel(|ctx| {
                    let mut tok = BarrierToken::new();
                    for _ in 0..100 {
                        barrier.wait(ctx.tid, &mut tok);
                    }
                });
            });
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_atomic_cells,
    bench_critical_vs_atomic,
    bench_flush,
    bench_barriers
);
criterion_main!(benches);
