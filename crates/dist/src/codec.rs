//! Wire encoding of [`JobSpec`]s.
//!
//! Only machine-independent jobs travel: CPU/GPU *simulator* jobs on
//! one of the canonical [`all_systems`] specs with no latency-model
//! override. Real-thread jobs are host-scoped by construction and
//! model-override jobs would need the full float-laden model shipped
//! bit-exactly; both classes stay on the coordinator
//! ([`encode_job`] returns `None`) and are counted as
//! `dist.local_jobs`.
//!
//! Decoding is *total* — it builds the [`Kernel`] through its public
//! fields without re-running construction-time validation — because the
//! worker's real integrity check is stronger: it recomputes the job's
//! content hash under the coordinator's salt and refuses to execute on
//! any mismatch. A corrupted or version-skewed job can therefore never
//! produce a wrongly-keyed result, only a [`crate::frame::FrameType::JobError`].

use syncperf_core::{
    all_systems, Affinity, CpuOp, DType, ExecParams, GpuOp, Protocol, RmwOp, Scope, ShflVariant,
    SystemSpec, Target, VoteKind,
};

use syncperf_core::obs::json::Value;
use syncperf_sched::JobSpec;

/// Encodes `job` as a JSON object string, or `None` when the job is not
/// wire-serializable (real-thread, model override, or a system spec
/// that is not one of the canonical three).
#[must_use]
pub fn encode_job(job: &JobSpec) -> Option<String> {
    match job {
        JobSpec::CpuSim {
            system,
            model,
            kernel,
            params,
            protocol,
        } => {
            if model.is_some() {
                return None;
            }
            let sys = canonical_system_id(system)?;
            Some(format!(
                "{{\"exec\":\"cpu-sim\",\"system\":{sys},\"kernel\":{},\"params\":{},\"protocol\":{}}}",
                encode_kernel(kernel, encode_cpu_op),
                encode_params(params),
                encode_protocol(*protocol),
            ))
        }
        JobSpec::GpuSim {
            system,
            model,
            kernel,
            params,
            protocol,
        } => {
            if model.is_some() {
                return None;
            }
            let sys = canonical_system_id(system)?;
            Some(format!(
                "{{\"exec\":\"gpu-sim\",\"system\":{sys},\"kernel\":{},\"params\":{},\"protocol\":{}}}",
                encode_kernel(kernel, encode_gpu_op),
                encode_params(params),
                encode_protocol(*protocol),
            ))
        }
        JobSpec::RealOmp { .. } => None,
    }
}

/// Decodes a job encoded by [`encode_job`]. Any structural problem is
/// `None`; the caller treats that as a job error, never a panic.
#[must_use]
pub fn decode_job(v: &Value) -> Option<JobSpec> {
    let system = system_by_id(get_u32(v, "system")?)?;
    let params = decode_params(v.get("params")?)?;
    let protocol = decode_protocol(v.get("protocol")?)?;
    match v.get("exec")?.as_str()? {
        "cpu-sim" => Some(JobSpec::CpuSim {
            system,
            model: None,
            kernel: decode_kernel(v.get("kernel")?, decode_cpu_op)?,
            params,
            protocol,
        }),
        "gpu-sim" => Some(JobSpec::GpuSim {
            system,
            model: None,
            kernel: decode_kernel(v.get("kernel")?, decode_gpu_op)?,
            params,
            protocol,
        }),
        _ => None,
    }
}

/// The system's canonical id when it is bit-for-bit one of
/// [`all_systems`] (the full spec must match, not just the id — a
/// locally patched spec must not masquerade as the canonical one).
fn canonical_system_id(system: &SystemSpec) -> Option<u32> {
    all_systems().iter().find(|s| *s == system).map(|s| s.id)
}

fn system_by_id(id: u32) -> Option<SystemSpec> {
    all_systems().into_iter().find(|s| s.id == id)
}

fn encode_kernel<Op>(k: &syncperf_core::Kernel<Op>, enc: impl Fn(&Op) -> String) -> String {
    let body = |ops: &[Op]| {
        let items: Vec<String> = ops.iter().map(&enc).collect();
        format!("[{}]", items.join(","))
    };
    format!(
        "{{\"name\":{},\"extra_ops\":{},\"baseline\":{},\"test\":{}}}",
        json_string(&k.name),
        k.extra_ops,
        body(&k.baseline),
        body(&k.test),
    )
}

fn decode_kernel<Op>(
    v: &Value,
    dec: impl Fn(&Value) -> Option<Op>,
) -> Option<syncperf_core::Kernel<Op>> {
    let body =
        |key: &str| -> Option<Vec<Op>> { v.get(key)?.as_array()?.iter().map(&dec).collect() };
    Some(syncperf_core::Kernel {
        name: v.get("name")?.as_str()?.to_string(),
        baseline: body("baseline")?,
        test: body("test")?,
        extra_ops: get_u32(v, "extra_ops")?,
    })
}

fn encode_params(p: &ExecParams) -> String {
    format!(
        "{{\"threads\":{},\"blocks\":{},\"affinity\":\"{}\",\"n_iter\":{},\"n_unroll\":{},\"n_warmup\":{}}}",
        p.threads,
        p.blocks,
        p.affinity.label(),
        p.n_iter,
        p.n_unroll,
        p.n_warmup,
    )
}

fn decode_params(v: &Value) -> Option<ExecParams> {
    let affinity = match v.get("affinity")?.as_str()? {
        "spread" => Affinity::Spread,
        "close" => Affinity::Close,
        "system" => Affinity::SystemChoice,
        _ => return None,
    };
    Some(ExecParams {
        threads: get_u32(v, "threads")?,
        blocks: get_u32(v, "blocks")?,
        affinity,
        n_iter: get_u32(v, "n_iter")?,
        n_unroll: get_u32(v, "n_unroll")?,
        n_warmup: get_u32(v, "n_warmup")?,
    })
}

fn encode_protocol(p: Protocol) -> String {
    format!(
        "{{\"runs\":{},\"max_attempts\":{}}}",
        p.runs, p.max_attempts
    )
}

fn decode_protocol(v: &Value) -> Option<Protocol> {
    Some(Protocol {
        runs: get_u32(v, "runs")?,
        max_attempts: get_u32(v, "max_attempts")?,
    })
}

fn encode_dtype(d: DType) -> &'static str {
    match d {
        DType::I32 => "i32",
        DType::U64 => "u64",
        DType::F32 => "f32",
        DType::F64 => "f64",
    }
}

fn decode_dtype(s: &str) -> Option<DType> {
    Some(match s {
        "i32" => DType::I32,
        "u64" => DType::U64,
        "f32" => DType::F32,
        "f64" => DType::F64,
        _ => return None,
    })
}

fn encode_target(t: Target) -> String {
    match t {
        Target::SharedScalar(idx) => format!("{{\"kind\":\"shared\",\"idx\":{idx}}}"),
        Target::Private { array, stride } => {
            format!("{{\"kind\":\"private\",\"array\":{array},\"stride\":{stride}}}")
        }
    }
}

fn decode_target(v: &Value) -> Option<Target> {
    match v.get("kind")?.as_str()? {
        "shared" => Some(Target::SharedScalar(get_u8(v, "idx")?)),
        "private" => Some(Target::Private {
            array: get_u8(v, "array")?,
            stride: get_u32(v, "stride")?,
        }),
        _ => None,
    }
}

fn encode_scope(s: Scope) -> &'static str {
    match s {
        Scope::Block => "block",
        Scope::Device => "device",
        Scope::System => "system",
    }
}

fn decode_scope(s: &str) -> Option<Scope> {
    Some(match s {
        "block" => Scope::Block,
        "device" => Scope::Device,
        "system" => Scope::System,
        _ => return None,
    })
}

fn encode_vote(k: VoteKind) -> &'static str {
    match k {
        VoteKind::Ballot => "ballot",
        VoteKind::All => "all",
        VoteKind::Any => "any",
    }
}

fn decode_vote(s: &str) -> Option<VoteKind> {
    Some(match s {
        "ballot" => VoteKind::Ballot,
        "all" => VoteKind::All,
        "any" => VoteKind::Any,
        _ => return None,
    })
}

fn encode_shfl(v: ShflVariant) -> &'static str {
    match v {
        ShflVariant::Idx => "idx",
        ShflVariant::Up => "up",
        ShflVariant::Down => "down",
        ShflVariant::Xor => "xor",
    }
}

fn decode_shfl(s: &str) -> Option<ShflVariant> {
    Some(match s {
        "idx" => ShflVariant::Idx,
        "up" => ShflVariant::Up,
        "down" => ShflVariant::Down,
        "xor" => ShflVariant::Xor,
        _ => return None,
    })
}

fn encode_rmw(o: RmwOp) -> &'static str {
    match o {
        RmwOp::Sub => "sub",
        RmwOp::Min => "min",
        RmwOp::And => "and",
        RmwOp::Or => "or",
        RmwOp::Xor => "xor",
    }
}

fn decode_rmw(s: &str) -> Option<RmwOp> {
    Some(match s {
        "sub" => RmwOp::Sub,
        "min" => RmwOp::Min,
        "and" => RmwOp::And,
        "or" => RmwOp::Or,
        "xor" => RmwOp::Xor,
        _ => return None,
    })
}

fn op_dt(op: &str, dtype: DType, target: Target) -> String {
    format!(
        "{{\"op\":\"{op}\",\"dtype\":\"{}\",\"target\":{}}}",
        encode_dtype(dtype),
        encode_target(target)
    )
}

fn encode_cpu_op(op: &CpuOp) -> String {
    match *op {
        CpuOp::Barrier => "{\"op\":\"barrier\"}".to_string(),
        CpuOp::Flush => "{\"op\":\"flush\"}".to_string(),
        CpuOp::CriticalBegin { lock } => {
            format!("{{\"op\":\"critical_begin\",\"lock\":{lock}}}")
        }
        CpuOp::CriticalEnd { lock } => format!("{{\"op\":\"critical_end\",\"lock\":{lock}}}"),
        CpuOp::AtomicUpdate { dtype, target } => op_dt("atomic_update", dtype, target),
        CpuOp::AtomicCapture { dtype, target } => op_dt("atomic_capture", dtype, target),
        CpuOp::AtomicRead { dtype, target } => op_dt("atomic_read", dtype, target),
        CpuOp::AtomicWrite { dtype, target } => op_dt("atomic_write", dtype, target),
        CpuOp::Read { dtype, target } => op_dt("read", dtype, target),
        CpuOp::Update { dtype, target } => op_dt("update", dtype, target),
        CpuOp::CriticalAdd { dtype, target } => op_dt("critical_add", dtype, target),
    }
}

fn decode_cpu_op(v: &Value) -> Option<CpuOp> {
    let dt = |v: &Value| decode_dtype(v.get("dtype")?.as_str()?);
    let tg = |v: &Value| decode_target(v.get("target")?);
    Some(match v.get("op")?.as_str()? {
        "barrier" => CpuOp::Barrier,
        "flush" => CpuOp::Flush,
        "critical_begin" => CpuOp::CriticalBegin {
            lock: get_u8(v, "lock")?,
        },
        "critical_end" => CpuOp::CriticalEnd {
            lock: get_u8(v, "lock")?,
        },
        "atomic_update" => CpuOp::AtomicUpdate {
            dtype: dt(v)?,
            target: tg(v)?,
        },
        "atomic_capture" => CpuOp::AtomicCapture {
            dtype: dt(v)?,
            target: tg(v)?,
        },
        "atomic_read" => CpuOp::AtomicRead {
            dtype: dt(v)?,
            target: tg(v)?,
        },
        "atomic_write" => CpuOp::AtomicWrite {
            dtype: dt(v)?,
            target: tg(v)?,
        },
        "read" => CpuOp::Read {
            dtype: dt(v)?,
            target: tg(v)?,
        },
        "update" => CpuOp::Update {
            dtype: dt(v)?,
            target: tg(v)?,
        },
        "critical_add" => CpuOp::CriticalAdd {
            dtype: dt(v)?,
            target: tg(v)?,
        },
        _ => return None,
    })
}

fn op_dst(op: &str, dtype: DType, scope: Scope, target: Target) -> String {
    format!(
        "{{\"op\":\"{op}\",\"dtype\":\"{}\",\"scope\":\"{}\",\"target\":{}}}",
        encode_dtype(dtype),
        encode_scope(scope),
        encode_target(target)
    )
}

fn encode_gpu_op(op: &GpuOp) -> String {
    match *op {
        GpuOp::SyncThreads => "{\"op\":\"sync_threads\"}".to_string(),
        GpuOp::SyncWarp => "{\"op\":\"sync_warp\"}".to_string(),
        GpuOp::SyncThreadsReduce { kind } => format!(
            "{{\"op\":\"sync_threads_reduce\",\"kind\":\"{}\"}}",
            encode_vote(kind)
        ),
        GpuOp::AtomicAdd {
            dtype,
            scope,
            target,
        } => op_dst("atomic_add", dtype, scope, target),
        GpuOp::AtomicCas {
            dtype,
            scope,
            target,
        } => op_dst("atomic_cas", dtype, scope, target),
        GpuOp::AtomicExch {
            dtype,
            scope,
            target,
        } => op_dst("atomic_exch", dtype, scope, target),
        GpuOp::AtomicMax {
            dtype,
            scope,
            target,
        } => op_dst("atomic_max", dtype, scope, target),
        GpuOp::ThreadFence { scope } => format!(
            "{{\"op\":\"thread_fence\",\"scope\":\"{}\"}}",
            encode_scope(scope)
        ),
        GpuOp::Shfl { dtype, variant } => format!(
            "{{\"op\":\"shfl\",\"dtype\":\"{}\",\"variant\":\"{}\"}}",
            encode_dtype(dtype),
            encode_shfl(variant)
        ),
        GpuOp::Vote { kind } => {
            format!("{{\"op\":\"vote\",\"kind\":\"{}\"}}", encode_vote(kind))
        }
        GpuOp::WarpReduce { dtype } => format!(
            "{{\"op\":\"warp_reduce\",\"dtype\":\"{}\"}}",
            encode_dtype(dtype)
        ),
        GpuOp::Update { dtype, target } => op_dt("update", dtype, target),
        GpuOp::AtomicRmw {
            op,
            dtype,
            scope,
            target,
        } => format!(
            "{{\"op\":\"atomic_rmw\",\"rmw\":\"{}\",\"dtype\":\"{}\",\"scope\":\"{}\",\"target\":{}}}",
            encode_rmw(op),
            encode_dtype(dtype),
            encode_scope(scope),
            encode_target(target)
        ),
        GpuOp::Read { dtype, target } => op_dt("read", dtype, target),
        GpuOp::Alu { dtype } => {
            format!("{{\"op\":\"alu\",\"dtype\":\"{}\"}}", encode_dtype(dtype))
        }
        GpuOp::Diverge { dtype, paths } => format!(
            "{{\"op\":\"diverge\",\"dtype\":\"{}\",\"paths\":{paths}}}",
            encode_dtype(dtype)
        ),
    }
}

fn decode_gpu_op(v: &Value) -> Option<GpuOp> {
    let dt = |v: &Value| decode_dtype(v.get("dtype")?.as_str()?);
    let sc = |v: &Value| decode_scope(v.get("scope")?.as_str()?);
    let tg = |v: &Value| decode_target(v.get("target")?);
    Some(match v.get("op")?.as_str()? {
        "sync_threads" => GpuOp::SyncThreads,
        "sync_warp" => GpuOp::SyncWarp,
        "sync_threads_reduce" => GpuOp::SyncThreadsReduce {
            kind: decode_vote(v.get("kind")?.as_str()?)?,
        },
        "atomic_add" => GpuOp::AtomicAdd {
            dtype: dt(v)?,
            scope: sc(v)?,
            target: tg(v)?,
        },
        "atomic_cas" => GpuOp::AtomicCas {
            dtype: dt(v)?,
            scope: sc(v)?,
            target: tg(v)?,
        },
        "atomic_exch" => GpuOp::AtomicExch {
            dtype: dt(v)?,
            scope: sc(v)?,
            target: tg(v)?,
        },
        "atomic_max" => GpuOp::AtomicMax {
            dtype: dt(v)?,
            scope: sc(v)?,
            target: tg(v)?,
        },
        "thread_fence" => GpuOp::ThreadFence { scope: sc(v)? },
        "shfl" => GpuOp::Shfl {
            dtype: dt(v)?,
            variant: decode_shfl(v.get("variant")?.as_str()?)?,
        },
        "vote" => GpuOp::Vote {
            kind: decode_vote(v.get("kind")?.as_str()?)?,
        },
        "warp_reduce" => GpuOp::WarpReduce { dtype: dt(v)? },
        "update" => GpuOp::Update {
            dtype: dt(v)?,
            target: tg(v)?,
        },
        "atomic_rmw" => GpuOp::AtomicRmw {
            op: decode_rmw(v.get("rmw")?.as_str()?)?,
            dtype: dt(v)?,
            scope: sc(v)?,
            target: tg(v)?,
        },
        "read" => GpuOp::Read {
            dtype: dt(v)?,
            target: tg(v)?,
        },
        "alu" => GpuOp::Alu { dtype: dt(v)? },
        "diverge" => GpuOp::Diverge {
            dtype: dt(v)?,
            paths: get_u32(v, "paths")?,
        },
        _ => return None,
    })
}

/// JSON string literal with the same escaping the cache encoder uses.
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

pub(crate) fn get_u32(v: &Value, key: &str) -> Option<u32> {
    let x = v.get(key)?.as_f64()?;
    (x.is_finite() && x >= 0.0 && x.fract() == 0.0 && x <= f64::from(u32::MAX)).then_some(x as u32)
}

fn get_u8(v: &Value, key: &str) -> Option<u8> {
    get_u32(v, key).and_then(|x| u8::try_from(x).ok())
}

#[cfg(test)]
mod tests {
    use super::*;
    use syncperf_core::obs::json;
    use syncperf_core::{kernel, SYSTEM1, SYSTEM3};
    use syncperf_sched::job_hash_with_salt;

    fn round_trip(job: &JobSpec) {
        let encoded = encode_job(job).expect("sim job must encode");
        let parsed = json::parse(&encoded).expect("encoded job is valid JSON");
        let decoded = decode_job(&parsed).expect("decodes");
        assert_eq!(
            job_hash_with_salt(job, 7),
            job_hash_with_salt(&decoded, 7),
            "decoded job must hash identically: {encoded}"
        );
        assert_eq!(job.canonical(), decoded.canonical());
    }

    #[test]
    fn cpu_jobs_round_trip() {
        let p = ExecParams::new(8)
            .with_affinity(Affinity::Spread)
            .with_loops(50, 4);
        round_trip(&JobSpec::cpu_sim(
            &SYSTEM3,
            kernel::omp_barrier(),
            p,
            Protocol::SIM,
        ));
        round_trip(&JobSpec::cpu_sim(
            &SYSTEM1,
            kernel::omp_critical_section(DType::I32),
            ExecParams::new(4),
            Protocol::PAPER,
        ));
    }

    #[test]
    fn gpu_jobs_round_trip() {
        let p = ExecParams::new(64).with_blocks(4).with_loops(50, 4);
        round_trip(&JobSpec::gpu_sim(
            &SYSTEM3,
            kernel::cuda_syncthreads(),
            p,
            Protocol::SIM,
        ));
        round_trip(&JobSpec::gpu_sim(
            &SYSTEM3,
            kernel::cuda_shfl(DType::F32, ShflVariant::Xor),
            p,
            Protocol::SIM,
        ));
    }

    #[test]
    fn real_and_model_jobs_stay_local() {
        let p = ExecParams::new(2).with_loops(10, 2);
        assert!(encode_job(&JobSpec::real_omp(kernel::omp_barrier(), p, Protocol::SIM)).is_none());
        let model = syncperf_cpu_sim::CpuModel::for_system(&SYSTEM3.cpu, SYSTEM3.cpu_jitter);
        assert!(encode_job(&JobSpec::cpu_sim_with_model(
            &SYSTEM3,
            model,
            kernel::omp_barrier(),
            p,
            Protocol::SIM,
        ))
        .is_none());
    }

    #[test]
    fn tampered_payload_decodes_to_different_hash_or_none() {
        let job = JobSpec::cpu_sim(
            &SYSTEM3,
            kernel::omp_barrier(),
            ExecParams::new(4).with_loops(50, 4),
            Protocol::SIM,
        );
        let encoded = encode_job(&job).unwrap();
        let tampered = encoded.replace("\"threads\":4", "\"threads\":8");
        let parsed = json::parse(&tampered).unwrap();
        let decoded = decode_job(&parsed).unwrap();
        assert_ne!(
            job_hash_with_salt(&job, 0),
            job_hash_with_salt(&decoded, 0),
            "tampering must change the content hash"
        );
    }
}
