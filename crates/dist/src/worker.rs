//! The worker side of the wire protocol.
//!
//! A worker serves one coordinator connection: it handshakes, then
//! executes jobs from its assigned shards one at a time, streaming each
//! finished result back as raw cache-entry bytes. Between jobs it
//! drains any control frames that arrived (new batches, revocations,
//! shutdown), so a [`crate::frame::FrameType::Revoke`] is honoured at
//! job granularity — the remaining slice of the shard is reported back
//! as a manifest delta and the coordinator reassigns it.
//!
//! The receive half of the socket is owned by a dedicated reader
//! thread feeding an in-process channel; the main loop never reads the
//! socket directly. This keeps frame reassembly trivially correct (no
//! read timeouts that could split a frame) while the executing thread
//! stays free to poll for control traffic between jobs.

use std::collections::VecDeque;
use std::io::{self, BufReader, BufWriter, Write as _};
use std::net::TcpStream;
use std::sync::mpsc;
use std::time::Duration;

use syncperf_core::obs::json;
use syncperf_sched::{encode_measurement, execute_job_with_retry, job_hash_with_salt, SCHED_SALT};

use crate::codec::{decode_job, json_string};
use crate::frame::{read_frame, write_frame, FrameType, PROTO_VERSION};

/// How often an idle worker emits a heartbeat frame.
const HEARTBEAT_EVERY: Duration = Duration::from_millis(250);

/// One queued job: shard id, expected content hash, decoded spec (or
/// `None` when the payload failed to decode or hash-verify — reported
/// as a job error when its turn comes, preserving shard accounting).
struct QueuedJob {
    shard: u64,
    hash: u64,
    job: Option<syncperf_sched::JobSpec>,
}

/// Serves one coordinator connection until shutdown, EOF, or a fatal
/// I/O error. This is the whole worker: `syncperf_dist worker` and the
/// `__dist-worker` re-exec mode in the figure binaries both land here.
///
/// # Errors
///
/// Returns the underlying I/O error when the socket fails mid-protocol;
/// a clean shutdown (Shutdown frame or EOF) is `Ok`.
pub fn serve_stream(stream: TcpStream) -> io::Result<()> {
    stream.set_nodelay(true).ok();
    // Buffered so consecutive result frames coalesce into one syscall;
    // flushed explicitly at shard boundaries and before idling.
    let mut writer = BufWriter::new(stream.try_clone()?);

    // Handshake: the coordinator speaks first.
    let (ty, payload) = read_frame(&mut &stream)?;
    if ty != FrameType::Hello {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "expected Hello frame",
        ));
    }
    let hello = json::parse(&String::from_utf8_lossy(&payload))
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    let proto = hello.get("proto").and_then(json::Value::as_f64);
    let salt = hello.get("salt").and_then(json::Value::as_str);
    if proto != Some(f64::from(PROTO_VERSION)) || salt != Some(SCHED_SALT) {
        // A version- or salt-skewed worker must refuse loudly rather
        // than compute wrongly-keyed entries.
        write_frame(&mut writer, FrameType::Shutdown, b"{}")?;
        writer.flush()?;
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "protocol/salt mismatch in Hello",
        ));
    }
    let salt_extra = hello
        .get("salt_extra")
        .and_then(json::Value::as_str)
        .and_then(|s| u64::from_str_radix(s, 16).ok())
        .unwrap_or(0);
    // The ack carries our PID so a spawn-mode coordinator can pair
    // this connection with the right child handle (accept order is
    // not spawn order).
    let ack = format!("{{\"pid\":{}}}", std::process::id());
    write_frame(&mut writer, FrameType::HelloAck, ack.as_bytes())?;
    writer.flush()?;

    // Reader thread: owns the receive half, forwards whole frames.
    let (tx, rx) = mpsc::channel::<Option<(FrameType, Vec<u8>)>>();
    let read_half = stream.try_clone()?;
    let reader = std::thread::spawn(move || {
        let mut r = BufReader::new(read_half);
        loop {
            if let Ok(frame) = read_frame(&mut r) {
                if tx.send(Some(frame)).is_err() {
                    return;
                }
            } else {
                let _ = tx.send(None);
                return;
            }
        }
    });

    let mut queue: VecDeque<QueuedJob> = VecDeque::new();
    let result = serve_loop(&rx, &mut writer, &mut queue, salt_extra);
    writer.flush().ok();
    // Unblock the reader by closing the socket in both directions.
    stream.shutdown(std::net::Shutdown::Both).ok();
    drop(rx);
    let _ = reader.join();
    result
}

fn serve_loop(
    rx: &mpsc::Receiver<Option<(FrameType, Vec<u8>)>>,
    writer: &mut BufWriter<TcpStream>,
    queue: &mut VecDeque<QueuedJob>,
    salt_extra: u64,
) -> io::Result<()> {
    loop {
        // Drain everything that has already arrived, then either work
        // or wait (heartbeating) for more.
        loop {
            match rx.try_recv() {
                Ok(Some(frame)) => {
                    if handle_frame(frame, queue, writer, salt_extra)? {
                        return Ok(());
                    }
                }
                Ok(None) | Err(mpsc::TryRecvError::Disconnected) => return Ok(()),
                Err(mpsc::TryRecvError::Empty) => break,
            }
        }

        if let Some(next) = queue.pop_front() {
            run_one(next, queue, writer)?;
        } else {
            // Nothing buffered may sit while we block on the channel.
            writer.flush()?;
            match rx.recv_timeout(HEARTBEAT_EVERY) {
                Ok(Some(frame)) => {
                    if handle_frame(frame, queue, writer, salt_extra)? {
                        return Ok(());
                    }
                }
                Ok(None) | Err(mpsc::RecvTimeoutError::Disconnected) => return Ok(()),
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    write_frame(writer, FrameType::Heartbeat, b"{}")?;
                    writer.flush()?;
                }
            }
        }
    }
}

/// Handles one control frame. Returns `true` on shutdown.
fn handle_frame(
    (ty, payload): (FrameType, Vec<u8>),
    queue: &mut VecDeque<QueuedJob>,
    writer: &mut BufWriter<TcpStream>,
    salt_extra: u64,
) -> io::Result<bool> {
    match ty {
        FrameType::Batch => {
            let text = String::from_utf8_lossy(&payload);
            let Ok(doc) = json::parse(&text) else {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "unparseable Batch frame",
                ));
            };
            let shard = doc
                .get("shard")
                .and_then(json::Value::as_f64)
                .map_or(0, |s| s as u64);
            let jobs = doc.get("jobs").and_then(json::Value::as_array);
            for entry in jobs.unwrap_or(&[]) {
                let hash = entry
                    .get("hash")
                    .and_then(json::Value::as_str)
                    .and_then(|s| u64::from_str_radix(s, 16).ok());
                let Some(hash) = hash else { continue };
                // Verify: the decoded job must re-hash to exactly what
                // the coordinator asked for; corruption or version skew
                // becomes a JobError, never a wrongly-keyed result.
                let job = entry
                    .get("job")
                    .and_then(decode_job)
                    .filter(|j| job_hash_with_salt(j, salt_extra) == hash);
                queue.push_back(QueuedJob { shard, hash, job });
            }
            if queue.iter().all(|q| q.shard != shard) {
                // Empty (or fully invalid-and-reported) batch: tell the
                // coordinator the shard is already drained.
                write_frame(writer, FrameType::ShardDone, shard_doc(shard).as_bytes())?;
                writer.flush()?;
            }
            Ok(false)
        }
        FrameType::Revoke => {
            let shard = shard_of(&payload);
            let mut remaining = Vec::new();
            queue.retain(|q| {
                if q.shard == shard {
                    remaining.push(format!("\"{:016x}\"", q.hash));
                    false
                } else {
                    true
                }
            });
            let doc = format!(
                "{{\"shard\":{shard},\"remaining\":[{}]}}",
                remaining.join(",")
            );
            write_frame(writer, FrameType::Revoked, doc.as_bytes())?;
            writer.flush()?;
            Ok(false)
        }
        FrameType::Shutdown => Ok(true),
        // Anything else from the coordinator is ignorable chatter.
        _ => Ok(false),
    }
}

fn run_one(
    q: QueuedJob,
    queue: &VecDeque<QueuedJob>,
    writer: &mut BufWriter<TcpStream>,
) -> io::Result<()> {
    let QueuedJob { shard, hash, job } = q;
    if let Some(job) = job {
        let mut retries = 0u32;
        let start = std::time::Instant::now();
        let result = execute_job_with_retry(&job, hash, |_| retries += 1);
        let micros = start.elapsed().as_micros() as u64;
        match result {
            Ok(m) => {
                let entry = encode_measurement(hash, &m);
                let header = format!(
                    "{{\"shard\":{shard},\"hash\":\"{hash:016x}\",\"micros\":{micros},\"retries\":{retries}}}"
                );
                let mut payload = Vec::with_capacity(header.len() + 1 + entry.len());
                payload.extend_from_slice(header.as_bytes());
                payload.push(b'\n');
                payload.extend_from_slice(entry.as_bytes());
                write_frame(writer, FrameType::Result, &payload)?;
            }
            Err(e) => {
                let doc = format!(
                    "{{\"shard\":{shard},\"hash\":\"{hash:016x}\",\"error\":{}}}",
                    json_string(&e.to_string())
                );
                write_frame(writer, FrameType::JobError, doc.as_bytes())?;
            }
        }
    } else {
        let doc = format!(
            "{{\"shard\":{shard},\"hash\":\"{hash:016x}\",\"error\":{}}}",
            json_string("job failed wire decode or hash verification")
        );
        write_frame(writer, FrameType::JobError, doc.as_bytes())?;
    }
    if queue.iter().all(|p| p.shard != shard) {
        // Shard boundary: everything buffered (this shard's results and
        // the ShardDone that triggers a refill) goes out in one write.
        write_frame(writer, FrameType::ShardDone, shard_doc(shard).as_bytes())?;
        writer.flush()?;
    }
    Ok(())
}

fn shard_doc(shard: u64) -> String {
    format!("{{\"shard\":{shard}}}")
}

fn shard_of(payload: &[u8]) -> u64 {
    json::parse(&String::from_utf8_lossy(payload))
        .ok()
        .and_then(|d| d.get("shard").and_then(json::Value::as_f64))
        .map_or(0, |s| s as u64)
}

/// Dials `addr` and serves that coordinator until shutdown. The spawn
/// mode's child processes and `syncperf_dist worker --connect` use this.
///
/// # Errors
///
/// Propagates connection and protocol I/O errors.
pub fn run_connect(addr: &str) -> io::Result<()> {
    serve_stream(TcpStream::connect(addr)?)
}

/// Binds `addr`, prints the ready line (`worker listening on <addr>`)
/// to stdout, and serves coordinator connections one at a time — the
/// pre-started `--connect` deployment mode.
///
/// # Errors
///
/// Propagates bind/accept errors; per-connection protocol errors only
/// end that connection.
pub fn run_listen(addr: &str) -> io::Result<()> {
    let listener = std::net::TcpListener::bind(addr)?;
    println!("worker listening on {}", listener.local_addr()?);
    io::stdout().flush().ok();
    for stream in listener.incoming() {
        match stream {
            Ok(s) => {
                if let Err(e) = serve_stream(s) {
                    eprintln!("worker: connection ended: {e}");
                }
            }
            Err(e) => return Err(e),
        }
    }
    Ok(())
}
