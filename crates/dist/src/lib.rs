//! Distributed sweep execution for syncperf.
//!
//! This crate turns a single-process sweep into a coordinator plus N
//! worker processes connected over a length-prefixed TCP protocol
//! (std-only — no external dependencies), while keeping the output
//! **byte-identical** to a serial `--jobs N` run:
//!
//! - [`frame`] — the wire framing: one type byte, a little-endian u32
//!   length, and a payload; ten frame kinds cover handshake, batches,
//!   results, shard control, and liveness.
//! - [`codec`] — a total JSON encoding of [`syncperf_sched::JobSpec`]
//!   for the simulator job families; jobs that cannot travel (real
//!   OpenMP threads, model overrides) stay on the coordinator.
//! - [`worker`] — executes assigned shards job-by-job, streaming each
//!   result back as raw cache-entry bytes, honouring revocation at job
//!   granularity, heartbeating while idle.
//! - [`coordinator`] — partitions cache misses into hash-range shards,
//!   merges results exactly-once (content-hash dedup), migrates shards
//!   off busy workers to idle ones, reissues shards of dead or silent
//!   workers, and recomputes locally anything a worker cannot deliver.
//!
//! Determinism is carried end to end: a job's content hash (salted,
//! see [`syncperf_sched::job_hash_with_salt`]) seeds its execution on
//! whichever process runs it, the worker re-verifies the hash before
//! executing, and the coordinator re-validates every returned entry
//! with the same self-validating decode a local cache load uses. The
//! scheduler keeps ownership of cache consultation, checkpointing, and
//! the index-ordered merge, so a distributed run — even one where a
//! worker was SIGKILLed mid-shard — converges to the same bytes as an
//! undisturbed serial run.

pub mod codec;
pub mod coordinator;
pub mod frame;
pub mod worker;

pub use codec::{decode_job, encode_job};
pub use coordinator::{serve_metrics, Coordinator, DistConfig, DistStats};
pub use frame::{read_frame, write_frame, FrameType, MAX_FRAME, PROTO_VERSION};
pub use worker::{run_connect, run_listen, serve_stream};
