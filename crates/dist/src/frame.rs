//! The wire framing: every message between coordinator and worker is
//! one length-prefixed frame.
//!
//! ```text
//! +------+----------------+---------------------+
//! | type |    len (u32)   |  payload (len bytes)|
//! | u8   |  little-endian |                     |
//! +------+----------------+---------------------+
//! ```
//!
//! Payloads are small JSON documents (parsed with `obs::json`) except
//! for [`FrameType::Result`], whose payload is a one-line JSON header
//! followed by `\n` and the raw cache-entry bytes exactly as the worker
//! encoded them — the coordinator validates and stores those bytes
//! verbatim, which is what makes a distributed cache file byte-identical
//! to a locally stored one.
//!
//! Frames are never split or interleaved: each side writes a frame with
//! a single `write_all` and reads with `read_exact`, so a reader thread
//! can own the receive half of a socket without any reassembly state.

use std::io::{self, Read, Write};

/// Upper bound on a frame payload. A batch of a few hundred jobs with
/// full kernel bodies is a few hundred KiB; 64 MiB is comfortably
/// beyond anything legitimate, so a longer length prefix means a
/// desynchronized or corrupt peer and the connection is dropped.
pub const MAX_FRAME: u32 = 64 * 1024 * 1024;

/// Protocol revision, exchanged in the hello handshake. Bump on any
/// frame- or payload-shape change.
pub const PROTO_VERSION: u32 = 1;

/// One frame kind. Numeric values are the on-wire type byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum FrameType {
    /// Coordinator → worker: handshake (protocol version, salts).
    Hello = 1,
    /// Worker → coordinator: handshake accepted.
    HelloAck = 2,
    /// Coordinator → worker: a shard of jobs to execute.
    Batch = 3,
    /// Worker → coordinator: one finished job (header + entry bytes).
    Result = 4,
    /// Worker → coordinator: one job failed after the retry budget.
    JobError = 5,
    /// Worker → coordinator: a shard has no jobs left.
    ShardDone = 6,
    /// Coordinator → worker: stop working on a shard and report what
    /// remains (the migration request).
    Revoke = 7,
    /// Worker → coordinator: the revoked shard's remaining hashes (the
    /// manifest delta handed back for reassignment).
    Revoked = 8,
    /// Worker → coordinator: liveness signal while idle.
    Heartbeat = 9,
    /// Coordinator → worker: drain and exit.
    Shutdown = 10,
}

impl FrameType {
    /// Decodes the on-wire type byte.
    #[must_use]
    pub fn from_byte(b: u8) -> Option<FrameType> {
        Some(match b {
            1 => FrameType::Hello,
            2 => FrameType::HelloAck,
            3 => FrameType::Batch,
            4 => FrameType::Result,
            5 => FrameType::JobError,
            6 => FrameType::ShardDone,
            7 => FrameType::Revoke,
            8 => FrameType::Revoked,
            9 => FrameType::Heartbeat,
            10 => FrameType::Shutdown,
            _ => return None,
        })
    }
}

/// Writes one frame with a single `write_all` (type byte, length,
/// payload in one buffer) so concurrent writers guarded by a lock can
/// never interleave partial frames.
///
/// Does NOT flush: on a bare `TcpStream` the bytes hit the socket
/// immediately anyway, and a worker streaming results through a
/// `BufWriter` relies on that to coalesce several result frames into
/// one syscall — it flushes explicitly at shard boundaries and before
/// going idle.
///
/// # Errors
///
/// Propagates I/O errors from the underlying stream.
pub fn write_frame(w: &mut impl Write, ty: FrameType, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .ok()
        .filter(|&l| l <= MAX_FRAME)
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "frame payload too large"))?;
    let mut buf = Vec::with_capacity(5 + payload.len());
    buf.push(ty as u8);
    buf.extend_from_slice(&len.to_le_bytes());
    buf.extend_from_slice(payload);
    w.write_all(&buf)
}

/// Reads one complete frame, blocking until it arrives.
///
/// # Errors
///
/// Propagates I/O errors (including clean EOF as
/// [`io::ErrorKind::UnexpectedEof`]) and rejects unknown type bytes or
/// oversized lengths as [`io::ErrorKind::InvalidData`].
pub fn read_frame(r: &mut impl Read) -> io::Result<(FrameType, Vec<u8>)> {
    let mut head = [0u8; 5];
    r.read_exact(&mut head)?;
    let ty = FrameType::from_byte(head[0])
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "unknown frame type"))?;
    let len = u32::from_le_bytes([head[1], head[2], head[3], head[4]]);
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame length exceeds MAX_FRAME",
        ));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok((ty, payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_each_type() {
        for (ty, payload) in [
            (FrameType::Hello, &b"{\"proto\":1}"[..]),
            (FrameType::Result, b"header\nraw bytes"),
            (FrameType::Heartbeat, b""),
        ] {
            let mut buf = Vec::new();
            write_frame(&mut buf, ty, payload).unwrap();
            let (got_ty, got) = read_frame(&mut buf.as_slice()).unwrap();
            assert_eq!(got_ty, ty);
            assert_eq!(got, payload);
        }
    }

    #[test]
    fn back_to_back_frames_do_not_bleed() {
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameType::Batch, b"abc").unwrap();
        write_frame(&mut buf, FrameType::ShardDone, b"{}").unwrap();
        let mut r = buf.as_slice();
        assert_eq!(
            read_frame(&mut r).unwrap(),
            (FrameType::Batch, b"abc".to_vec())
        );
        assert_eq!(
            read_frame(&mut r).unwrap(),
            (FrameType::ShardDone, b"{}".to_vec())
        );
        assert!(read_frame(&mut r).is_err(), "EOF after the last frame");
    }

    #[test]
    fn rejects_unknown_type_and_oversize() {
        let mut bogus = vec![0xEEu8];
        bogus.extend_from_slice(&0u32.to_le_bytes());
        assert_eq!(
            read_frame(&mut bogus.as_slice()).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
        let mut huge = vec![FrameType::Batch as u8];
        huge.extend_from_slice(&(MAX_FRAME + 1).to_le_bytes());
        assert_eq!(
            read_frame(&mut huge.as_slice()).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
    }

    #[test]
    fn truncated_payload_is_eof() {
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameType::Batch, b"abcdef").unwrap();
        buf.truncate(buf.len() - 2);
        assert_eq!(
            read_frame(&mut buf.as_slice()).unwrap_err().kind(),
            io::ErrorKind::UnexpectedEof
        );
    }
}
