//! The coordinator: partitions each batch of cache misses into
//! hash-range shards, streams them to workers, merges results
//! exactly-once, and migrates or reissues shards when workers idle,
//! slow, or die.
//!
//! ## Shard lifecycle
//!
//! ```text
//!   assigned ──(results stream in)──▶ draining ──▶ complete
//!      │                                 │
//!      │ (owner dies / times out)        │ (owner goes idle elsewhere:
//!      ▼                                 ▼  Revoke → Revoked)
//!   reissued (new shard, live worker) migrated (new shard, idle worker)
//! ```
//!
//! Every transition preserves two invariants: a job's result is merged
//! **exactly once** (content-hash dedup — a duplicate completion is
//! counted and dropped), and every entry that reaches the cache passed
//! the same self-validating decode a local store would have (a corrupt
//! wire entry is counted, discarded, and recomputed locally).
//!
//! The coordinator plugs into the scheduler as a
//! [`syncperf_sched::ExecBackend`] (see [`Coordinator::attach`]):
//! cache consultation, checkpointing,
//! and the deterministic index-ordered merge stay in
//! `Scheduler::run_jobs`, so distributed output is byte-identical to
//! `--jobs N` serial output by construction.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::io::{self, Read};
use std::net::{TcpListener, TcpStream};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use syncperf_core::obs::{self, json, GaugeMode, Histogram, Snapshot};
use syncperf_core::Measurement;

use syncperf_sched::{
    decode_measurement, execute_job_with_retry, BackendExec, Cache, JobSpec, Scheduler, SCHED_SALT,
};

use crate::codec::encode_job;
use crate::frame::{read_frame, write_frame, FrameType, PROTO_VERSION};

/// Coordinator configuration.
#[derive(Debug, Clone)]
pub struct DistConfig {
    /// Worker processes to spawn locally (ignored when `connect` is
    /// non-empty).
    pub workers: usize,
    /// Addresses of pre-started workers to connect to instead of
    /// spawning.
    pub connect: Vec<String>,
    /// How long a worker may stay silent (no frames at all) before it
    /// is declared dead and its shards reissued.
    pub heartbeat_timeout: Duration,
    /// Minimum remaining jobs in a shard for it to be worth migrating
    /// to an idle worker.
    pub rebalance_threshold: usize,
    /// Extra hash salt, forwarded to workers in the handshake (must
    /// match the scheduler's `salt_extra`).
    pub salt_extra: u64,
    /// Chaos hook: after this many results have been received, SIGKILL
    /// one spawned worker (spawn mode only; `None` = never).
    pub chaos_kill_one_after: Option<u64>,
    /// Override argv for spawned workers (`None` = re-exec the current
    /// binary with `__dist-worker --connect <addr>` appended).
    pub worker_cmd: Option<Vec<String>>,
}

impl DistConfig {
    /// A spawn-mode config with `workers` local worker processes and
    /// default timeouts.
    #[must_use]
    pub fn new(workers: usize) -> Self {
        DistConfig {
            workers: workers.max(1),
            connect: Vec::new(),
            heartbeat_timeout: Duration::from_secs(10),
            rebalance_threshold: 4,
            salt_extra: 0,
            chaos_kill_one_after: None,
            worker_cmd: None,
        }
    }

    /// Connect-mode: use these pre-started workers.
    #[must_use]
    pub fn with_connect(mut self, addrs: Vec<String>) -> Self {
        self.connect = addrs;
        self
    }

    /// Replaces the extra hash salt.
    #[must_use]
    pub fn with_salt_extra(mut self, salt: u64) -> Self {
        self.salt_extra = salt;
        self
    }

    /// Arms the kill-one-worker chaos hook.
    #[must_use]
    pub fn with_chaos_kill_one_after(mut self, results: u64) -> Self {
        self.chaos_kill_one_after = Some(results);
        self
    }

    /// Replaces the heartbeat timeout.
    #[must_use]
    pub fn with_heartbeat_timeout(mut self, t: Duration) -> Self {
        self.heartbeat_timeout = t;
        self
    }
}

/// Atomic tally cells behind [`DistStats`].
#[derive(Debug, Default)]
struct DistCells {
    batches_streamed: AtomicU64,
    jobs_sent: AtomicU64,
    results_received: AtomicU64,
    shard_reissues: AtomicU64,
    migrations: AtomicU64,
    worker_deaths: AtomicU64,
    corrupt_entries: AtomicU64,
    duplicate_results: AtomicU64,
    local_jobs: AtomicU64,
    coordinator_jobs: AtomicU64,
    worker_errors: AtomicU64,
    retries: AtomicU64,
    bytes_sent: AtomicU64,
}

/// A point-in-time view of the coordinator's counters and latency
/// quantiles — the `dist.*` analog of `SchedStats`, recoverable from
/// any obs [`Snapshot`] via [`DistStats::from_snapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DistStats {
    /// Batch frames streamed to workers (initial shards + reissues +
    /// migrations).
    pub batches_streamed: u64,
    /// Jobs shipped over the wire (a reissued job counts again).
    pub jobs_sent: u64,
    /// Result frames received (before dedup/validation).
    pub results_received: u64,
    /// Shards reissued after a worker death or heartbeat timeout.
    pub shard_reissues: u64,
    /// Shards migrated from a busy worker to an idle one.
    pub migrations: u64,
    /// Workers declared dead.
    pub worker_deaths: u64,
    /// Wire entries that failed the self-validating decode and were
    /// recomputed locally.
    pub corrupt_entries: u64,
    /// Results for an already-merged hash, dropped by the
    /// exactly-once dedup.
    pub duplicate_results: u64,
    /// Jobs not wire-serializable (real-thread / model-override),
    /// executed on the coordinator.
    pub local_jobs: u64,
    /// Backlog jobs the work-conserving coordinator executed inline
    /// while its event queue was idle (throughput self-balancing; see
    /// [`Coordinator::run_batch`]).
    pub coordinator_jobs: u64,
    /// Jobs a worker reported as failed (recomputed locally).
    pub worker_errors: u64,
    /// Worker-side retry attempts reported in result headers.
    pub retries: u64,
    /// Payload bytes streamed to workers (batches, revokes, control).
    pub bytes_sent: u64,
    /// Payload bytes received from workers (results, control).
    pub bytes_received: u64,
    /// Configured worker count.
    pub workers: u64,
    /// Workers currently alive.
    pub workers_live: u64,
    /// Median coordinator-side queue wait (dispatch → result arrival,
    /// minus worker service time), microseconds.
    pub wait_us_p50: u64,
    /// p99 queue wait, microseconds.
    pub wait_us_p99: u64,
    /// Median worker service time per job, microseconds.
    pub service_us_p50: u64,
    /// p99 worker service time, microseconds.
    pub service_us_p99: u64,
}

impl DistStats {
    /// Extracts the `dist.*` counters, gauges, and histograms from an
    /// obs snapshot.
    #[must_use]
    pub fn from_snapshot(snap: &Snapshot) -> Self {
        let wait = snap.histogram("dist.wait_us");
        let service = snap.histogram("dist.service_us");
        DistStats {
            batches_streamed: snap.counter("dist.batches_streamed"),
            jobs_sent: snap.counter("dist.jobs_sent"),
            results_received: snap.counter("dist.results_received"),
            shard_reissues: snap.counter("dist.shard_reissues"),
            migrations: snap.counter("dist.migrations"),
            worker_deaths: snap.counter("dist.worker_deaths"),
            corrupt_entries: snap.counter("dist.corrupt_entries"),
            duplicate_results: snap.counter("dist.duplicate_results"),
            local_jobs: snap.counter("dist.local_jobs"),
            coordinator_jobs: snap.counter("dist.coordinator_jobs"),
            worker_errors: snap.counter("dist.worker_errors"),
            retries: snap.counter("dist.retries"),
            bytes_sent: snap.counter("dist.bytes_sent"),
            bytes_received: snap.counter("dist.bytes_received"),
            workers: snap.counter("dist.workers"),
            workers_live: snap.gauge("dist.workers_live"),
            wait_us_p50: wait.quantile(0.50),
            wait_us_p99: wait.quantile(0.99),
            service_us_p50: service.quantile(0.50),
            service_us_p99: service.quantile(0.99),
        }
    }
}

/// One connected worker.
struct WorkerHandle {
    /// Send half (whole frames under the lock, so writers never
    /// interleave).
    writer: Mutex<TcpStream>,
    /// Cleared when the connection dies or is declared dead.
    alive: AtomicBool,
    /// Last instant any frame arrived (updated by the reader thread,
    /// so it stays fresh even between batches).
    last_seen: Mutex<Instant>,
    /// The spawned child process, in spawn mode.
    child: Mutex<Option<Child>>,
}

/// Events funneled from all reader threads into the drain loop.
enum Event {
    Frame(usize, FrameType, Vec<u8>),
    /// A Result frame, already parsed and hash-verified by the reader
    /// thread so the single-threaded drain loop only does bookkeeping
    /// — with N workers the (comparatively expensive) JSON decode and
    /// content-hash check run N-way parallel.
    Result(usize, Box<DecodedResult>),
    Dead(usize),
}

/// A Result frame after reader-side parsing.
struct DecodedResult {
    shard: u64,
    hash: u64,
    /// Worker-side wall time and retry count, from the header.
    micros: u64,
    retries: u64,
    /// The raw cache-entry bytes, ready for the store thread.
    entry: String,
    /// `Some` iff the entry passed the self-validating load against
    /// the expected content hash ([`decode_measurement`]).
    measurement: Option<Measurement>,
}

/// A shard in flight: who owns it and which hashes are still unmerged.
struct Shard {
    worker: usize,
    remaining: BTreeSet<u64>,
    /// A Revoke is outstanding; don't revoke again or double-assign.
    revoking: bool,
}

/// One pending (dispatched, unmerged) job.
struct Pending {
    index: usize,
    job: JobSpec,
    /// The `{"hash":..,"job":..}` batch item, kept for reissue.
    payload: String,
    dispatched: Instant,
}

/// The coordinator. Create with [`Coordinator::start`] (spawn or
/// connect mode per the config) or [`Coordinator::from_streams`]
/// (pre-established connections, used by in-process tests), then
/// [`Coordinator::attach`] it to a scheduler.
pub struct Coordinator {
    cfg: DistConfig,
    workers: Vec<Arc<WorkerHandle>>,
    /// Receiver end of the shared event channel. Locked for the whole
    /// of every batch — the lock doubles as the one-batch-at-a-time
    /// guard.
    events: Mutex<mpsc::Receiver<Event>>,
    stats: DistCells,
    wait_us: Histogram,
    service_us: Histogram,
    shard_counter: AtomicU64,
    chaos_armed: AtomicBool,
    inflight_shards: AtomicU64,
    /// Sender half of the persistent cache-writer thread (present iff
    /// a cache is configured). Validated entries are queued here so the
    /// merge loop never blocks on the filesystem; [`Coordinator::shutdown`]
    /// drops the sender and joins the writer, flushing every queued
    /// entry to disk.
    store_tx: Mutex<Option<mpsc::Sender<(u64, String)>>>,
    store_join: Mutex<Option<std::thread::JoinHandle<()>>>,
    /// Payload bytes received across all reader threads (shared with
    /// them, so it keeps counting while a batch is idle).
    bytes_received: Arc<AtomicU64>,
    /// Spawn mode on a host with one hardware thread: the local worker
    /// fleet cannot add parallelism, so dispatch keeps shards small and
    /// prefetch shallow and the work-conserving loop carries the bulk.
    /// Never set in connect mode — remote workers are real parallelism
    /// regardless of this host's core count.
    starved_host: bool,
    /// Monotonic batch number, used to rotate starved-host priming
    /// through the fleet.
    batch_seq: AtomicU64,
}

impl std::fmt::Debug for Coordinator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Coordinator")
            .field("cfg", &self.cfg)
            .field("workers", &self.workers.len())
            .finish()
    }
}

impl Coordinator {
    /// Starts a coordinator per `cfg`: connects to `cfg.connect`
    /// workers when given, otherwise binds a loopback listener and
    /// spawns `cfg.workers` local worker processes that dial back in.
    ///
    /// # Errors
    ///
    /// Fails when workers cannot be spawned/connected or a handshake
    /// is refused (version or salt skew).
    pub fn start(cfg: DistConfig, cache: Option<Cache>) -> io::Result<Arc<Coordinator>> {
        let mut streams: Vec<TcpStream> = Vec::new();
        let mut children: Vec<Child> = Vec::new();
        if cfg.connect.is_empty() {
            let listener = TcpListener::bind("127.0.0.1:0")?;
            let addr = listener.local_addr()?.to_string();
            listener.set_nonblocking(true)?;
            children = (0..cfg.workers)
                .map(|_| spawn_worker(cfg.worker_cmd.as_deref(), &addr))
                .collect::<io::Result<_>>()?;
            let deadline = Instant::now() + Duration::from_secs(10);
            while streams.len() < cfg.workers {
                match listener.accept() {
                    Ok((s, _)) => {
                        s.set_nonblocking(false)?;
                        streams.push(s);
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        for c in &mut children {
                            if let Ok(Some(status)) = c.try_wait() {
                                return Err(io::Error::new(
                                    io::ErrorKind::BrokenPipe,
                                    format!("worker exited during startup: {status}"),
                                ));
                            }
                        }
                        if Instant::now() > deadline {
                            return Err(io::Error::new(
                                io::ErrorKind::TimedOut,
                                "workers did not connect within 10s",
                            ));
                        }
                        std::thread::sleep(Duration::from_millis(10));
                    }
                    Err(e) => return Err(e),
                }
            }
        } else {
            for addr in &cfg.connect {
                streams.push(TcpStream::connect(addr)?);
            }
        }
        Self::from_parts(cfg, cache, streams, children)
    }

    /// Builds a coordinator over already-connected worker streams (the
    /// in-process test entry point; the far ends run
    /// [`crate::worker::serve_stream`]).
    ///
    /// # Errors
    ///
    /// Fails when a handshake is refused.
    pub fn from_streams(
        cfg: DistConfig,
        cache: Option<Cache>,
        streams: Vec<TcpStream>,
    ) -> io::Result<Arc<Coordinator>> {
        Self::from_parts(cfg, cache, streams, Vec::new())
    }

    fn from_parts(
        cfg: DistConfig,
        cache: Option<Cache>,
        streams: Vec<TcpStream>,
        mut children: Vec<Child>,
    ) -> io::Result<Arc<Coordinator>> {
        // Children imply spawn mode: the fleet shares this host's
        // cores. (`from_streams` test rigs and connect-mode fleets are
        // never treated as starved — their workers may well be remote.)
        let spawned = !children.is_empty();
        let (tx, rx) = mpsc::channel();
        let bytes_received = Arc::new(AtomicU64::new(0));
        let mut workers = Vec::new();
        for (i, stream) in streams.into_iter().enumerate() {
            stream.set_nodelay(true).ok();
            let mut writer = stream.try_clone()?;
            let hello = format!(
                "{{\"proto\":{PROTO_VERSION},\"salt\":\"{SCHED_SALT}\",\"salt_extra\":\"{:016x}\"}}",
                cfg.salt_extra
            );
            write_frame(&mut writer, FrameType::Hello, hello.as_bytes())?;
            let (ty, ack) = read_frame(&mut &stream)?;
            if ty != FrameType::HelloAck {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "worker refused handshake",
                ));
            }
            // Pair this connection with the child process that owns it
            // (the ack carries the worker's PID; accept order is not
            // spawn order, so positional pairing would kill the wrong
            // process on heartbeat timeout or chaos injection).
            let pid = json::parse(&String::from_utf8_lossy(&ack))
                .ok()
                .and_then(|d| d.get("pid").and_then(json::Value::as_f64))
                .map(|p| p as u32);
            let child = pid
                .and_then(|p| children.iter().position(|c| c.id() == p))
                .map(|at| children.remove(at));
            let handle = Arc::new(WorkerHandle {
                writer: Mutex::new(writer),
                alive: AtomicBool::new(true),
                last_seen: Mutex::new(Instant::now()),
                child: Mutex::new(child),
            });
            spawn_reader(
                i,
                stream,
                Arc::clone(&handle),
                tx.clone(),
                Arc::clone(&bytes_received),
            );
            workers.push(handle);
        }
        // Any child left unmatched (e.g. a worker whose ack did not
        // carry a usable PID) still needs reaping at shutdown: hand the
        // leftovers to handles that have none, in order.
        let mut leftovers = children.into_iter();
        for h in &workers {
            let mut slot = h.child.lock().unwrap();
            if slot.is_none() {
                *slot = leftovers.next();
            }
        }
        // Persistent cache-writer thread: one per coordinator, not one
        // per batch, so batch completion never waits on fsync tails.
        let (store_tx, store_join) = match &cache {
            Some(c) => {
                let dir = c.dir().to_path_buf();
                let (stx, srx) = mpsc::channel::<(u64, String)>();
                let handle = std::thread::spawn(move || {
                    let cache = Cache::new(dir);
                    for (hash, text) in srx {
                        let _ = cache.store_raw(hash, &text);
                    }
                });
                (Some(stx), Some(handle))
            }
            None => (None, None),
        };
        Ok(Arc::new(Coordinator {
            cfg,
            workers,
            events: Mutex::new(rx),
            stats: DistCells::default(),
            wait_us: Histogram::standalone(),
            service_us: Histogram::standalone(),
            shard_counter: AtomicU64::new(0),
            chaos_armed: AtomicBool::new(true),
            inflight_shards: AtomicU64::new(0),
            store_tx: Mutex::new(store_tx),
            store_join: Mutex::new(store_join),
            bytes_received,
            starved_host: spawned
                && std::thread::available_parallelism().is_ok_and(|n| n.get() == 1),
            batch_seq: AtomicU64::new(0),
        }))
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> &DistConfig {
        &self.cfg
    }

    /// Workers currently alive.
    #[must_use]
    pub fn live_workers(&self) -> usize {
        self.workers
            .iter()
            .filter(|w| w.alive.load(Ordering::Relaxed))
            .count()
    }

    /// A point-in-time view of the counters and latency quantiles.
    #[must_use]
    pub fn stats(&self) -> DistStats {
        let wait = self.wait_us.snapshot();
        let service = self.service_us.snapshot();
        DistStats {
            batches_streamed: self.stats.batches_streamed.load(Ordering::Relaxed),
            jobs_sent: self.stats.jobs_sent.load(Ordering::Relaxed),
            results_received: self.stats.results_received.load(Ordering::Relaxed),
            shard_reissues: self.stats.shard_reissues.load(Ordering::Relaxed),
            migrations: self.stats.migrations.load(Ordering::Relaxed),
            worker_deaths: self.stats.worker_deaths.load(Ordering::Relaxed),
            corrupt_entries: self.stats.corrupt_entries.load(Ordering::Relaxed),
            duplicate_results: self.stats.duplicate_results.load(Ordering::Relaxed),
            local_jobs: self.stats.local_jobs.load(Ordering::Relaxed),
            coordinator_jobs: self.stats.coordinator_jobs.load(Ordering::Relaxed),
            worker_errors: self.stats.worker_errors.load(Ordering::Relaxed),
            retries: self.stats.retries.load(Ordering::Relaxed),
            bytes_sent: self.stats.bytes_sent.load(Ordering::Relaxed),
            bytes_received: self.bytes_received.load(Ordering::Relaxed),
            workers: self.workers.len() as u64,
            workers_live: self.live_workers() as u64,
            wait_us_p50: wait.quantile(0.50),
            wait_us_p99: wait.quantile(0.99),
            service_us_p50: service.quantile(0.50),
            service_us_p99: service.quantile(0.99),
        }
    }

    /// Injects the coordinator's live telemetry — `dist.*` counters,
    /// live-worker/in-flight gauges, and wait/service histograms —
    /// into `snap`. Wired into `Scheduler::export_into` by
    /// [`Coordinator::attach`], so `--cache-stats`, `--metrics`, and
    /// any `/metrics` endpoint pick it up automatically.
    pub fn export_into(&self, snap: &mut Snapshot) {
        let st = self.stats();
        for (name, v) in [
            ("dist.batches_streamed", st.batches_streamed),
            ("dist.jobs_sent", st.jobs_sent),
            ("dist.results_received", st.results_received),
            ("dist.shard_reissues", st.shard_reissues),
            ("dist.migrations", st.migrations),
            ("dist.worker_deaths", st.worker_deaths),
            ("dist.corrupt_entries", st.corrupt_entries),
            ("dist.duplicate_results", st.duplicate_results),
            ("dist.local_jobs", st.local_jobs),
            ("dist.coordinator_jobs", st.coordinator_jobs),
            ("dist.worker_errors", st.worker_errors),
            ("dist.retries", st.retries),
            ("dist.bytes_sent", st.bytes_sent),
            ("dist.bytes_received", st.bytes_received),
            ("dist.workers", st.workers),
        ] {
            snap.counters.insert(name.to_string(), v);
        }
        snap.gauges
            .insert("dist.workers_live".to_string(), st.workers_live);
        snap.gauge_modes
            .insert("dist.workers_live".to_string(), GaugeMode::Set);
        snap.gauges.insert(
            "dist.batches_inflight".to_string(),
            self.inflight_shards.load(Ordering::Relaxed),
        );
        snap.gauge_modes
            .insert("dist.batches_inflight".to_string(), GaugeMode::Set);
        snap.histograms
            .insert("dist.wait_us".to_string(), self.wait_us.snapshot());
        snap.histograms
            .insert("dist.service_us".to_string(), self.service_us.snapshot());
    }

    /// Installs this coordinator as `sched`'s execution backend and
    /// telemetry export hook: every cache miss the scheduler sees is
    /// routed through [`Coordinator::run_batch`], and every telemetry
    /// export carries the `dist.*` metrics.
    pub fn attach(self: &Arc<Self>, sched: &Scheduler) {
        let c = Arc::clone(self);
        sched.set_exec_backend(move |todo| c.run_batch(todo));
        let c = Arc::clone(self);
        sched.set_export_hook(move |snap| c.export_into(snap));
    }

    /// Executes one batch of cache misses across the worker fleet.
    /// This is the [`syncperf_sched::ExecBackend`] entry point; see the
    /// module docs for the shard lifecycle.
    #[allow(clippy::too_many_lines)]
    pub fn run_batch(&self, todo: &[(usize, JobSpec, u64)]) -> Vec<BackendExec> {
        let rec = obs::global();
        let events = self.events.lock().unwrap();
        // Absorb anything that happened between batches (worker deaths;
        // stray frames from a chaos-killed worker's last gasp).
        while let Ok(ev) = events.try_recv() {
            if let Event::Dead(w) = ev {
                self.mark_dead(w);
            }
        }

        let mut out: Vec<BackendExec> = Vec::with_capacity(todo.len());
        let mut pending: BTreeMap<u64, Pending> = BTreeMap::new();
        let mut local: Vec<(usize, JobSpec, u64)> = Vec::new();
        for (index, job, hash) in todo {
            if pending.contains_key(hash) {
                // Identical job submitted twice in one batch (the
                // scheduler's own collision guard makes this unlikely);
                // run the duplicate locally rather than double-issue.
                local.push((*index, job.clone(), *hash));
                continue;
            }
            match encode_job(job) {
                Some(encoded) => {
                    let payload = format!("{{\"hash\":\"{hash:016x}\",\"job\":{encoded}}}");
                    pending.insert(
                        *hash,
                        Pending {
                            index: *index,
                            job: job.clone(),
                            payload,
                            dispatched: Instant::now(),
                        },
                    );
                }
                None => local.push((*index, job.clone(), *hash)),
            }
        }

        // Cache stores go to the coordinator-lifetime writer thread so
        // the merge loop never blocks on the filesystem (entries are
        // validated before they are queued; writes from this batch may
        // still be in flight when it returns — shutdown flushes them).
        let store_guard = self.store_tx.lock().unwrap();
        let store_tx = store_guard.as_ref();

        // Partition the serializable jobs into small contiguous
        // hash-range chunks (the pending map is hash-ordered). Each
        // live worker is primed with two chunks — one executing, one
        // queued so it never starves between waves — and the rest wait
        // in a coordinator-side backlog that idle workers drain. This
        // self-balances without re-sending jobs; the Revoke/migrate
        // path only fires at the tail, once the backlog is dry.
        let live: Vec<usize> = (0..self.workers.len())
            .filter(|&w| self.workers[w].alive.load(Ordering::Relaxed))
            .collect();
        let mut shards: BTreeMap<u64, Shard> = BTreeMap::new();
        let mut backlog: VecDeque<BTreeSet<u64>> = VecDeque::new();
        if live.is_empty() {
            // Total fleet loss: everything runs locally.
            let drained: Vec<(u64, Pending)> = std::mem::take(&mut pending).into_iter().collect();
            for (hash, p) in drained {
                out.push(self.execute_locally(p.index, &p.job, hash));
            }
        } else {
            let hashes: Vec<u64> = pending.keys().copied().collect();
            let waves = 8;
            let ideal = hashes.len().div_ceil(live.len() * waves);
            // Small batches still amortize a round-trip over a few
            // jobs instead of paying one per job.
            let floor = 4usize.min(hashes.len().div_ceil(live.len()).max(1));
            // On a one-core host, every wire job costs codec overhead
            // and buys no parallelism: keep shards tiny so the fleet
            // stays exercised while the coordinator does the bulk.
            let chunk = if self.starved_host {
                2
            } else {
                ideal.max(floor)
            };
            for c in hashes.chunks(chunk) {
                backlog.push_back(c.iter().copied().collect());
            }
            // Prime workers with one chunk each; the refill path tops
            // them up as they make progress. The rest of the backlog
            // is drained from the front by worker refills and from the
            // back by the coordinator's own work-conserving loop below.
            //
            // Starved host: any wire work in flight when a batch ends
            // adds a synchronization tail (one worker round-trip), and
            // the scheduler issues many small batches — so only every
            // sixteenth batch primes, rotating through the fleet,
            // which keeps every worker (and the whole protocol)
            // exercised without paying the tail on each batch.
            let seq = self.batch_seq.fetch_add(1, Ordering::Relaxed);
            let prime: Vec<usize> = if self.starved_host {
                if seq.is_multiple_of(16) {
                    vec![live[(seq / 16) as usize % live.len()]]
                } else {
                    Vec::new()
                }
            } else {
                live.clone()
            };
            for w in prime {
                let Some(remaining) = backlog.pop_front() else {
                    break;
                };
                if let Some(unsent) = self.send_shard(w, remaining, &mut shards, &pending) {
                    backlog.push_front(unsent);
                }
            }
        }
        self.inflight_shards
            .store((shards.len() + backlog.len()) as u64, Ordering::Relaxed);

        // Unserializable jobs execute on the coordinator while workers
        // chew on their shards.
        self.stats
            .local_jobs
            .fetch_add(local.len() as u64, Ordering::Relaxed);
        rec.counter("dist.local_jobs").add(local.len() as u64);
        for (index, job, hash) in local {
            out.push(self.execute_locally(index, &job, hash));
        }

        // Drain until every dispatched job is merged.
        while !pending.is_empty() {
            // Reissue any shard whose owner died before this iteration.
            let orphaned: Vec<u64> = shards
                .iter()
                .filter(|(_, s)| !self.workers[s.worker].alive.load(Ordering::Relaxed))
                .map(|(&id, _)| id)
                .collect();
            for id in orphaned {
                let shard = shards.remove(&id).unwrap();
                self.reissue(
                    shard.remaining,
                    &mut shards,
                    &mut pending,
                    &mut backlog,
                    &mut out,
                );
            }
            // A dead fleet can leave work stranded in the backlog with
            // no ShardDone ever coming: run it locally.
            if shards.is_empty()
                && !backlog.is_empty()
                && !self.workers.iter().any(|h| h.alive.load(Ordering::Relaxed))
            {
                for chunk in backlog.drain(..) {
                    for h in chunk {
                        if let Some(p) = pending.remove(&h) {
                            out.push(self.execute_locally(p.index, &p.job, h));
                        }
                    }
                }
            }
            self.inflight_shards
                .store((shards.len() + backlog.len()) as u64, Ordering::Relaxed);
            if pending.is_empty() {
                break;
            }

            // Work-conserving coordinator: when no worker traffic is
            // waiting, execute one backlog job inline instead of
            // blocking. Workers drain the backlog from the front (in
            // whole chunks), the coordinator from the back (one job at
            // a time), so the split self-balances with the fleet's
            // real throughput: on a many-core host workers win most of
            // the backlog; on a starved or single-core host the
            // coordinator degrades gracefully toward serial speed
            // instead of stalling on round-trips.
            let mut ev = events.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => mpsc::RecvTimeoutError::Timeout,
                mpsc::TryRecvError::Disconnected => mpsc::RecvTimeoutError::Disconnected,
            });
            if matches!(ev, Err(mpsc::RecvTimeoutError::Timeout)) {
                if let Some(hash) = take_back(&mut backlog) {
                    if let Some(p) = pending.remove(&hash) {
                        self.stats.coordinator_jobs.fetch_add(1, Ordering::Relaxed);
                        rec.counter("dist.coordinator_jobs").inc();
                        out.push(self.execute_locally(p.index, &p.job, hash));
                    }
                    continue;
                }
                // Backlog dry, wire jobs still out. On a starved host
                // the batch tail must not wait a full worker round-trip
                // on one core: hedge the oldest straggler locally (the
                // slower copy lands as a counted duplicate). The age
                // gate is a handful of job-execution times — long
                // enough that a healthy in-flight result usually beats
                // it, short enough that the per-batch tail stays well
                // under a round-trip.
                if self.starved_host {
                    let aged = pending
                        .iter()
                        .filter(|(_, p)| p.dispatched.elapsed() > Duration::from_micros(200))
                        .min_by_key(|(_, p)| p.dispatched)
                        .map(|(&h, _)| h);
                    if let Some(hash) = aged {
                        let p = pending.remove(&hash).unwrap();
                        self.stats.coordinator_jobs.fetch_add(1, Ordering::Relaxed);
                        rec.counter("dist.coordinator_jobs").inc();
                        out.push(self.execute_locally(p.index, &p.job, hash));
                        continue;
                    }
                }
                let wait = if self.starved_host {
                    // Short enough to re-check the hedge age gate
                    // promptly when the wire goes silent.
                    Duration::from_micros(500)
                } else {
                    Duration::from_millis(100)
                };
                ev = events.recv_timeout(wait);
            }
            match ev {
                Ok(Event::Dead(w)) => self.mark_dead(w),
                Ok(Event::Result(w, r)) => {
                    self.handle_result(
                        w,
                        *r,
                        &mut shards,
                        &mut pending,
                        &mut backlog,
                        store_tx,
                        &mut out,
                    );
                }
                Ok(Event::Frame(w, ty, payload)) => {
                    self.handle_worker_frame(
                        w,
                        ty,
                        &payload,
                        &mut shards,
                        &mut pending,
                        &mut backlog,
                        &mut out,
                    );
                }
                Err(mpsc::RecvTimeoutError::Timeout) => self.check_heartbeats(),
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    // All reader threads gone: finish locally.
                    for w in 0..self.workers.len() {
                        self.mark_dead(w);
                    }
                }
            }
        }
        self.inflight_shards.store(0, Ordering::Relaxed);
        out
    }

    /// Merges one reader-decoded Result: exactly-once dedup against the
    /// pending map, cross-check of the already-verified measurement
    /// against the expected job, then handoff to the store thread.
    #[allow(clippy::too_many_arguments)]
    fn handle_result(
        &self,
        w: usize,
        r: DecodedResult,
        shards: &mut BTreeMap<u64, Shard>,
        pending: &mut BTreeMap<u64, Pending>,
        backlog: &mut VecDeque<BTreeSet<u64>>,
        store_tx: Option<&mpsc::Sender<(u64, String)>>,
        out: &mut Vec<BackendExec>,
    ) {
        let rec = obs::global();
        self.stats.results_received.fetch_add(1, Ordering::Relaxed);
        rec.counter("dist.results_received").inc();
        self.maybe_chaos_kill();
        if let Some(s) = shards.get_mut(&r.shard) {
            s.remaining.remove(&r.hash);
        }
        let Some(p) = pending.get(&r.hash) else {
            // Already merged (duplicate completion after a
            // migration/reissue race): exactly-once dedup.
            self.stats.duplicate_results.fetch_add(1, Ordering::Relaxed);
            rec.counter("dist.duplicate_results").inc();
            return;
        };
        let validated = r
            .measurement
            .filter(|m| m.kernel_name == p.job.kernel_name() && m.params == *p.job.params());
        if let Some(m) = validated {
            self.stats.retries.fetch_add(r.retries, Ordering::Relaxed);
            rec.counter("dist.retries").add(r.retries);
            let total_us = p.dispatched.elapsed().as_micros() as u64;
            self.service_us.observe(r.micros);
            rec.histogram("dist.service_us").observe(r.micros);
            let wait = total_us.saturating_sub(r.micros);
            self.wait_us.observe(wait);
            rec.histogram("dist.wait_us").observe(wait);
            let stored = store_tx.is_some_and(|tx| tx.send((r.hash, r.entry)).is_ok());
            let p = pending.remove(&r.hash).unwrap();
            out.push(BackendExec {
                index: p.index,
                hash: r.hash,
                result: Ok(m),
                stored,
            });
        } else {
            // The bytes failed the same self-validating load a local
            // cache read would apply (or named the wrong job): count,
            // discard, recompute.
            self.stats.corrupt_entries.fetch_add(1, Ordering::Relaxed);
            rec.counter("dist.corrupt_entries").inc();
            let p = pending.remove(&r.hash).unwrap();
            out.push(self.execute_locally(p.index, &p.job, r.hash));
        }
        self.maybe_rebalance(w, shards, pending, backlog);
    }

    /// Handles one worker control frame inside the drain loop.
    #[allow(clippy::too_many_arguments)]
    fn handle_worker_frame(
        &self,
        w: usize,
        ty: FrameType,
        payload: &[u8],
        shards: &mut BTreeMap<u64, Shard>,
        pending: &mut BTreeMap<u64, Pending>,
        backlog: &mut VecDeque<BTreeSet<u64>>,
        out: &mut Vec<BackendExec>,
    ) {
        let rec = obs::global();
        match ty {
            FrameType::Result => {
                // Only reached when the reader thread could not parse
                // the payload at all (no header line / bad hash): there
                // is nothing to attribute it to, so it is dropped and
                // the job completes via reissue or heartbeat timeout.
                self.stats.results_received.fetch_add(1, Ordering::Relaxed);
                rec.counter("dist.results_received").inc();
                self.stats.corrupt_entries.fetch_add(1, Ordering::Relaxed);
                rec.counter("dist.corrupt_entries").inc();
            }
            FrameType::JobError => {
                let Ok(doc) = json::parse(&String::from_utf8_lossy(payload)) else {
                    return;
                };
                let Some(hash) = get_hash(&doc) else { return };
                if let Some(s) = shards.get_mut(&get_shard(&doc)) {
                    s.remaining.remove(&hash);
                }
                self.stats.worker_errors.fetch_add(1, Ordering::Relaxed);
                rec.counter("dist.worker_errors").inc();
                if let Some(p) = pending.remove(&hash) {
                    // Recompute locally so the error surfaced to the
                    // scheduler (if it persists) is the exact local
                    // error, not a stringified remote one.
                    out.push(self.execute_locally(p.index, &p.job, hash));
                }
                self.maybe_rebalance(w, shards, pending, backlog);
            }
            FrameType::ShardDone => {
                let shard_id = shard_id_of(payload);
                if let Some(s) = shards.remove(&shard_id) {
                    // Frames from one worker arrive in order, so every
                    // result for this shard has already been merged;
                    // anything left produced no usable result (e.g. an
                    // unattributable corrupt frame) and is reissued.
                    if !s.remaining.is_empty() {
                        self.reissue(s.remaining, shards, pending, backlog, out);
                    }
                }
                self.maybe_rebalance(w, shards, pending, backlog);
            }
            FrameType::Revoked => {
                let Ok(doc) = json::parse(&String::from_utf8_lossy(payload)) else {
                    return;
                };
                let shard_id = get_shard(&doc);
                shards.remove(&shard_id);
                let remaining: BTreeSet<u64> = doc
                    .get("remaining")
                    .and_then(json::Value::as_array)
                    .unwrap_or(&[])
                    .iter()
                    .filter_map(|v| v.as_str())
                    .filter_map(|s| u64::from_str_radix(s, 16).ok())
                    .filter(|h| pending.contains_key(h))
                    .collect();
                if !remaining.is_empty() {
                    self.stats.migrations.fetch_add(1, Ordering::Relaxed);
                    rec.counter("dist.migrations").inc();
                    self.assign_shard(remaining, shards, pending, backlog, out, true);
                }
            }
            // Heartbeats are consumed by the reader thread; anything
            // else is protocol chatter we can ignore.
            _ => {}
        }
    }

    /// After worker `w` made progress, feed it more work if it has
    /// gone idle: first from the coordinator-side backlog (free — no
    /// job is re-sent), then — once the backlog is dry — by revoking
    /// part of a busy peer's deepest shard (the migration path).
    fn maybe_rebalance(
        &self,
        w: usize,
        shards: &mut BTreeMap<u64, Shard>,
        pending: &BTreeMap<u64, Pending>,
        backlog: &mut VecDeque<BTreeSet<u64>>,
    ) {
        if !self.workers[w].alive.load(Ordering::Relaxed) {
            return;
        }
        // Keep the worker double-buffered: one chunk executing, one
        // queued behind it, so the refill round-trip hides behind
        // execution instead of stalling the worker after every chunk.
        // (Depth 1 on a starved host — prefetch there only moves work
        // away from the faster work-conserving coordinator.)
        let depth = if self.starved_host { 1 } else { 2 };
        let outstanding = shards
            .values()
            .filter(|s| s.worker == w && !s.remaining.is_empty())
            .count();
        if outstanding >= depth {
            return;
        }
        let mut need = depth - outstanding;
        while need > 0 {
            let Some(chunk) = backlog.pop_front() else {
                break;
            };
            let remaining: BTreeSet<u64> = chunk
                .into_iter()
                .filter(|h| pending.contains_key(h))
                .collect();
            if remaining.is_empty() {
                continue;
            }
            if let Some(unsent) = self.send_shard(w, remaining, shards, pending) {
                // Worker just died mid-assignment; keep the chunk.
                backlog.push_front(unsent);
                return;
            }
            need -= 1;
        }
        if need < depth - outstanding || outstanding > 0 {
            // Fed from the backlog (or still executing): no migration.
            return;
        }
        // Backlog dry: steal from the deepest revocable shard on
        // another live worker.
        let candidate = shards
            .iter_mut()
            .filter(|(_, s)| {
                s.worker != w
                    && !s.revoking
                    && s.remaining.len() > self.cfg.rebalance_threshold
                    && self.workers[s.worker].alive.load(Ordering::Relaxed)
            })
            .max_by_key(|(_, s)| s.remaining.len());
        if let Some((&id, s)) = candidate {
            s.revoking = true;
            let doc = format!("{{\"shard\":{id}}}");
            let owner = s.worker;
            if !self.send(owner, FrameType::Revoke, doc.as_bytes()) {
                self.mark_dead(owner);
            }
        }
    }

    /// Reissues orphaned hashes (dead worker) as a fresh shard.
    fn reissue(
        &self,
        remaining: BTreeSet<u64>,
        shards: &mut BTreeMap<u64, Shard>,
        pending: &mut BTreeMap<u64, Pending>,
        backlog: &mut VecDeque<BTreeSet<u64>>,
        out: &mut Vec<BackendExec>,
    ) {
        let remaining: BTreeSet<u64> = remaining
            .into_iter()
            .filter(|h| pending.contains_key(h))
            .collect();
        if remaining.is_empty() {
            return;
        }
        self.stats.shard_reissues.fetch_add(1, Ordering::Relaxed);
        obs::global().counter("dist.shard_reissues").inc();
        self.assign_shard(remaining, shards, pending, backlog, out, false);
    }

    /// Ships `remaining` as a new shard to the least-loaded live
    /// worker, or executes locally when the fleet is gone.
    /// `prefer_idle` (the migration path) requires a fully idle target
    /// and parks the shard in the backlog when nobody is idle.
    fn assign_shard(
        &self,
        remaining: BTreeSet<u64>,
        shards: &mut BTreeMap<u64, Shard>,
        pending: &mut BTreeMap<u64, Pending>,
        backlog: &mut VecDeque<BTreeSet<u64>>,
        out: &mut Vec<BackendExec>,
        prefer_idle: bool,
    ) {
        let mut remaining = remaining;
        loop {
            let load = |w: usize| -> usize {
                shards
                    .values()
                    .filter(|s| s.worker == w)
                    .map(|s| s.remaining.len())
                    .sum()
            };
            let target = (0..self.workers.len())
                .filter(|&w| self.workers[w].alive.load(Ordering::Relaxed))
                .filter(|&w| !prefer_idle || load(w) == 0)
                .min_by_key(|&w| load(w));
            match target {
                Some(w) => match self.send_shard(w, remaining, shards, pending) {
                    None => return,
                    // That worker died mid-send: try the next one.
                    Some(unsent) => remaining = unsent,
                },
                None if prefer_idle => {
                    // Nobody idle right now: the next worker to drain
                    // its queue picks this up from the backlog.
                    backlog.push_front(remaining);
                    return;
                }
                None => {
                    for h in remaining {
                        if let Some(p) = pending.remove(&h) {
                            out.push(self.execute_locally(p.index, &p.job, h));
                        }
                    }
                    return;
                }
            }
        }
    }

    /// Streams `remaining` to worker `w` as a fresh shard. Returns the
    /// set back when the send fails (the worker is then marked dead).
    fn send_shard(
        &self,
        w: usize,
        remaining: BTreeSet<u64>,
        shards: &mut BTreeMap<u64, Shard>,
        pending: &BTreeMap<u64, Pending>,
    ) -> Option<BTreeSet<u64>> {
        let rec = obs::global();
        let shard = self.shard_counter.fetch_add(1, Ordering::Relaxed);
        let items: Vec<&str> = remaining
            .iter()
            .filter_map(|h| pending.get(h).map(|p| p.payload.as_str()))
            .collect();
        let doc = format!("{{\"shard\":{shard},\"jobs\":[{}]}}", items.join(","));
        if self.send(w, FrameType::Batch, doc.as_bytes()) {
            self.stats.batches_streamed.fetch_add(1, Ordering::Relaxed);
            rec.counter("dist.batches_streamed").inc();
            self.stats
                .jobs_sent
                .fetch_add(remaining.len() as u64, Ordering::Relaxed);
            rec.counter("dist.jobs_sent").add(remaining.len() as u64);
            shards.insert(
                shard,
                Shard {
                    worker: w,
                    remaining,
                    revoking: false,
                },
            );
            None
        } else {
            self.mark_dead(w);
            Some(remaining)
        }
    }

    /// Runs a job on the coordinator with the standard retry ladder.
    fn execute_locally(&self, index: usize, job: &JobSpec, hash: u64) -> BackendExec {
        let result = execute_job_with_retry(job, hash, |_| {
            self.stats.retries.fetch_add(1, Ordering::Relaxed);
            obs::global().counter("dist.retries").inc();
        });
        BackendExec {
            index,
            hash,
            result,
            stored: false,
        }
    }

    /// Declares workers dead when they exceed the heartbeat timeout
    /// (the reader thread refreshes `last_seen` on every frame,
    /// heartbeats included).
    fn check_heartbeats(&self) {
        for w in 0..self.workers.len() {
            let h = &self.workers[w];
            if h.alive.load(Ordering::Relaxed)
                && h.last_seen.lock().unwrap().elapsed() > self.cfg.heartbeat_timeout
            {
                self.mark_dead(w);
            }
        }
    }

    /// Marks a worker dead: closes its socket (unblocking its reader),
    /// kills its child process, counts the death. Idempotent.
    fn mark_dead(&self, w: usize) {
        let h = &self.workers[w];
        if !h.alive.swap(false, Ordering::Relaxed) {
            return;
        }
        self.stats.worker_deaths.fetch_add(1, Ordering::Relaxed);
        obs::global().counter("dist.worker_deaths").inc();
        if let Ok(s) = h.writer.lock() {
            s.shutdown(std::net::Shutdown::Both).ok();
        }
        if let Some(c) = h.child.lock().unwrap().as_mut() {
            c.kill().ok();
            c.wait().ok();
        }
    }

    /// Fires the kill-one-worker chaos hook once the configured result
    /// count is reached (spawn mode only).
    fn maybe_chaos_kill(&self) {
        let Some(after) = self.cfg.chaos_kill_one_after else {
            return;
        };
        if self.stats.results_received.load(Ordering::Relaxed) < after {
            return;
        }
        if !self.chaos_armed.swap(false, Ordering::Relaxed) {
            return;
        }
        // SIGKILL the first live spawned worker — no goodbye frames,
        // exactly the crash the reissue path must absorb.
        for h in &self.workers {
            if h.alive.load(Ordering::Relaxed) {
                if let Some(c) = h.child.lock().unwrap().as_mut() {
                    c.kill().ok();
                    return;
                }
            }
        }
    }

    /// Sends one frame to worker `w`; `false` means the connection is
    /// broken.
    fn send(&self, w: usize, ty: FrameType, payload: &[u8]) -> bool {
        self.stats
            .bytes_sent
            .fetch_add(payload.len() as u64 + 5, Ordering::Relaxed);
        let mut stream = self.workers[w].writer.lock().unwrap();
        write_frame(&mut *stream, ty, payload).is_ok()
    }

    /// Graceful shutdown: flushes the cache-writer queue, sends
    /// Shutdown frames to live workers, then reaps children (killing
    /// any that linger past 2 s). Idempotent.
    pub fn shutdown(&self) {
        drop(self.store_tx.lock().unwrap().take());
        if let Some(handle) = self.store_join.lock().unwrap().take() {
            let _ = handle.join();
        }
        for (w, h) in self.workers.iter().enumerate() {
            if h.alive.load(Ordering::Relaxed) {
                self.send(w, FrameType::Shutdown, b"{}");
            }
        }
        let deadline = Instant::now() + Duration::from_secs(2);
        for h in &self.workers {
            let mut child = h.child.lock().unwrap();
            if let Some(c) = child.as_mut() {
                loop {
                    match c.try_wait() {
                        Ok(Some(_)) => break,
                        Ok(None) if Instant::now() < deadline => {
                            std::thread::sleep(Duration::from_millis(20));
                        }
                        _ => {
                            c.kill().ok();
                            c.wait().ok();
                            break;
                        }
                    }
                }
            }
        }
    }
}

impl Drop for Coordinator {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn spawn_worker(cmd: Option<&[String]>, addr: &str) -> io::Result<Child> {
    let mut command = if let Some([prog, args @ ..]) = cmd {
        let mut c = Command::new(prog);
        c.args(args);
        c
    } else {
        let mut c = Command::new(std::env::current_exe()?);
        c.arg("__dist-worker");
        c
    };
    command
        .arg("--connect")
        .arg(addr)
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .spawn()
}

/// Reader thread: owns the receive half, refreshes liveness, forwards
/// semantic frames, reports death on EOF/error.
fn spawn_reader(
    id: usize,
    stream: TcpStream,
    handle: Arc<WorkerHandle>,
    tx: mpsc::Sender<Event>,
    bytes_received: Arc<AtomicU64>,
) {
    std::thread::spawn(move || {
        // Buffered: a worker's flush delivers several frames in one
        // recv; read_frame then costs no syscall for most of them.
        let mut r = io::BufReader::new(stream);
        loop {
            if let Ok((ty, payload)) = read_frame(&mut r) {
                *handle.last_seen.lock().unwrap() = Instant::now();
                bytes_received.fetch_add(payload.len() as u64 + 5, Ordering::Relaxed);
                if ty == FrameType::Heartbeat {
                    continue;
                }
                let event = if ty == FrameType::Result {
                    // Decode and hash-verify here, off the drain loop's
                    // critical path; an unparseable payload falls
                    // through as a raw frame the drain loop discards.
                    match decode_result(&payload) {
                        Some(r) => Event::Result(id, Box::new(r)),
                        None => Event::Frame(id, ty, payload),
                    }
                } else {
                    Event::Frame(id, ty, payload)
                };
                if tx.send(event).is_err() {
                    return;
                }
            } else {
                let _ = tx.send(Event::Dead(id));
                return;
            }
        }
    });
}

/// Reader-side parse of a Result payload: header fields plus the
/// self-validating load of the entry against its expected hash.
fn decode_result(payload: &[u8]) -> Option<DecodedResult> {
    let (header, entry) = split_result(payload)?;
    let hash = get_hash(&header)?;
    let field = |name: &str| {
        header
            .get(name)
            .and_then(json::Value::as_f64)
            .map_or(0, |x| x as u64)
    };
    Some(DecodedResult {
        shard: get_shard(&header),
        hash,
        micros: field("micros"),
        retries: field("retries"),
        measurement: decode_measurement(hash, entry),
        entry: entry.to_string(),
    })
}

/// Splits a Result payload into its parsed JSON header and the raw
/// entry text.
fn split_result(payload: &[u8]) -> Option<(json::Value, &str)> {
    let text = std::str::from_utf8(payload).ok()?;
    let (header, entry) = text.split_once('\n')?;
    Some((json::parse(header).ok()?, entry))
}

fn get_shard(doc: &json::Value) -> u64 {
    doc.get("shard")
        .and_then(json::Value::as_f64)
        .map_or(0, |s| s as u64)
}

fn get_hash(doc: &json::Value) -> Option<u64> {
    doc.get("hash")
        .and_then(json::Value::as_str)
        .and_then(|s| u64::from_str_radix(s, 16).ok())
}

/// Pops one hash off the back of the backlog (the coordinator's end —
/// worker refills take whole chunks from the front), dropping chunks it
/// empties.
fn take_back(backlog: &mut VecDeque<BTreeSet<u64>>) -> Option<u64> {
    loop {
        let chunk = backlog.back_mut()?;
        if let Some(h) = chunk.pop_last() {
            if chunk.is_empty() {
                backlog.pop_back();
            }
            return Some(h);
        }
        backlog.pop_back();
    }
}

fn shard_id_of(payload: &[u8]) -> u64 {
    json::parse(&String::from_utf8_lossy(payload))
        .ok()
        .map_or(0, |d| get_shard(&d))
}

/// Serves a minimal `GET /metrics` endpoint (Prometheus exposition
/// 0.0.4, same renderer as `syncperf-serve`) on `addr` from a detached
/// thread; `make` produces each scrape's snapshot. Returns the bound
/// address. `syncperf_dist --metrics-addr` uses this so `syncperf_top`
/// can watch a live coordinator.
///
/// # Errors
///
/// Fails when the address cannot be bound.
pub fn serve_metrics(
    addr: &str,
    make: impl Fn() -> Snapshot + Send + 'static,
) -> io::Result<std::net::SocketAddr> {
    let listener = TcpListener::bind(addr)?;
    let bound = listener.local_addr()?;
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(mut s) = stream else { continue };
            // Read (and discard) the request line + headers.
            let mut buf = [0u8; 4096];
            let _ = s.read(&mut buf);
            let body = obs::metrics::render(&make());
            let resp = format!(
                "HTTP/1.1 200 OK\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
                body.len(),
                body
            );
            use std::io::Write as _;
            let _ = s.write_all(resp.as_bytes());
        }
    });
    Ok(bound)
}
