//! Ad-hoc codec cost probe (run with `--nocapture --ignored`): times
//! the per-job wire-path pieces over a representative job so the
//! coordinator's overhead budget is measurable, not guessed.

use std::time::Instant;

use syncperf_core::{kernel, Protocol, SYSTEM3};
use syncperf_dist::{decode_job, encode_job};
use syncperf_sched::{decode_measurement, encode_measurement, job_hash_with_salt, JobSpec};

#[test]
#[ignore = "manual profiling aid"]
fn per_job_codec_costs() {
    let job = JobSpec::cpu_sim(
        &SYSTEM3,
        kernel::omp_barrier(),
        syncperf_core::ExecParams::new(8).with_loops(50, 4),
        Protocol::SIM,
    );
    let jobs: Vec<JobSpec> = (0..3000).map(|_| job.clone()).collect();
    let n = jobs.len() as f64;

    let t = Instant::now();
    let encoded: Vec<String> = jobs.iter().filter_map(encode_job).collect();
    println!(
        "encode_job:        {:6.1} us/job ({} bytes avg)",
        t.elapsed().as_secs_f64() * 1e6 / n,
        encoded.iter().map(String::len).sum::<usize>() / encoded.len()
    );

    let t = Instant::now();
    let docs: Vec<_> = encoded
        .iter()
        .map(|e| syncperf_core::obs::json::parse(e).unwrap())
        .collect();
    println!(
        "parse_job_json:    {:6.1} us/job",
        t.elapsed().as_secs_f64() * 1e6 / n
    );
    let t = Instant::now();
    let decoded: Vec<JobSpec> = docs.iter().filter_map(decode_job).collect();
    println!(
        "decode_job:        {:6.1} us/job ({} decoded)",
        t.elapsed().as_secs_f64() * 1e6 / n,
        decoded.len()
    );

    let hash = job_hash_with_salt(&job, 0);
    let m = job.execute(hash).unwrap();
    let t = Instant::now();
    let entries: Vec<String> = (0..3000).map(|_| encode_measurement(hash, &m)).collect();
    println!(
        "encode_measurement:{:6.1} us/job ({} bytes)",
        t.elapsed().as_secs_f64() * 1e6 / n,
        entries[0].len()
    );

    let t = Instant::now();
    let mut ok = 0;
    for e in &entries {
        if decode_measurement(hash, e).is_some() {
            ok += 1;
        }
    }
    println!(
        "decode_measurement:{:6.1} us/job ({} ok)",
        t.elapsed().as_secs_f64() * 1e6 / n,
        ok
    );

    let t = Instant::now();
    let mut total = 0u64;
    for j in &jobs {
        total = total.wrapping_add(job_hash_with_salt(j, 0));
    }
    println!(
        "job_hash:          {:6.1} us/job ({total:x})",
        t.elapsed().as_secs_f64() * 1e6 / n
    );

    let t = Instant::now();
    let mut sum = 0u64;
    for _ in 0..3000 {
        sum = sum.wrapping_add(u64::from(job.execute(hash).unwrap().exhausted_runs));
    }
    println!(
        "execute:           {:6.1} us/job ({sum})",
        t.elapsed().as_secs_f64() * 1e6 / n
    );
}
