//! Merge-correctness tests for the coordinator/worker protocol.
//!
//! Two rigs are used. Real-worker tests drive [`serve_stream`] over a
//! localhost socket pair and check the results (and the persisted cache
//! entries) are byte-identical to local execution. Fake-worker tests
//! speak the wire protocol by hand to force the manifest-merge edge
//! cases that a healthy worker never produces: overlapping hash ranges
//! from a reissued shard, corrupt cache-entry bytes over the wire,
//! duplicate completion of the same job hash, and mid-shard death.

use std::collections::BTreeSet;
use std::net::{TcpListener, TcpStream};
use std::thread;

use syncperf_core::obs::json;
use syncperf_core::{kernel, ExecParams, Protocol, SYSTEM3};
use syncperf_dist::{
    decode_job, read_frame, serve_stream, write_frame, Coordinator, DistConfig, FrameType,
};
use syncperf_sched::{
    encode_measurement, execute_job_with_retry, job_hash_with_salt, Cache, JobSpec,
};

/// `n` distinct simulator jobs, cheap enough to execute many times.
fn make_jobs(n: usize) -> Vec<(usize, JobSpec, u64)> {
    (0..n)
        .map(|i| {
            let job = JobSpec::cpu_sim(
                &SYSTEM3,
                kernel::omp_barrier(),
                ExecParams::new(i as u32 + 2).with_loops(20, 4),
                Protocol::SIM,
            );
            let hash = job_hash_with_salt(&job, 0);
            (i, job, hash)
        })
        .collect()
}

/// A connected localhost pair: (coordinator side, worker side).
fn socket_pair() -> (TcpStream, TcpStream) {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let client = TcpStream::connect(addr).unwrap();
    let (server, _) = listener.accept().unwrap();
    (client, server)
}

/// Every index appears exactly once and every result is `Ok` — the
/// exactly-once merge invariant.
fn assert_exactly_once(out: &[syncperf_sched::BackendExec], n: usize) {
    assert_eq!(out.len(), n, "one BackendExec per submitted job");
    let indexes: BTreeSet<usize> = out.iter().map(|b| b.index).collect();
    assert_eq!(indexes.len(), n, "no index merged twice");
    for b in out {
        assert!(b.result.is_ok(), "job {} failed: {:?}", b.index, b.result);
    }
}

// ---- fake-worker wire helpers -------------------------------------

fn handshake(stream: &TcpStream) {
    let (ty, _) = read_frame(&mut &*stream).unwrap();
    assert_eq!(ty, FrameType::Hello);
    write_frame(&mut &*stream, FrameType::HelloAck, b"{\"pid\":0}").unwrap();
}

/// Skips protocol chatter until the next Batch frame, returning its
/// shard id and decoded `(hash, job)` list.
fn next_batch(stream: &TcpStream) -> (u64, Vec<(u64, JobSpec)>) {
    loop {
        let (ty, payload) = read_frame(&mut &*stream).unwrap();
        if ty != FrameType::Batch {
            continue;
        }
        let doc = json::parse(&String::from_utf8_lossy(&payload)).unwrap();
        let shard = doc
            .get("shard")
            .and_then(json::Value::as_f64)
            .map_or(0, |s| s as u64);
        let jobs = doc
            .get("jobs")
            .and_then(json::Value::as_array)
            .unwrap()
            .iter()
            .map(|entry| {
                let hash = entry
                    .get("hash")
                    .and_then(json::Value::as_str)
                    .and_then(|s| u64::from_str_radix(s, 16).ok())
                    .unwrap();
                (hash, entry.get("job").and_then(decode_job).unwrap())
            })
            .collect();
        return (shard, jobs);
    }
}

/// A well-formed Result frame payload: header line + raw entry bytes.
fn result_payload(shard: u64, hash: u64, entry: &str) -> Vec<u8> {
    let header =
        format!("{{\"shard\":{shard},\"hash\":\"{hash:016x}\",\"micros\":5,\"retries\":0}}");
    let mut payload = header.into_bytes();
    payload.push(b'\n');
    payload.extend_from_slice(entry.as_bytes());
    payload
}

/// Executes the job exactly as a real worker would and returns the
/// cache-entry bytes it would put on the wire.
fn real_entry(job: &JobSpec, hash: u64) -> String {
    let m = execute_job_with_retry(job, hash, |_| {}).unwrap();
    encode_measurement(hash, &m)
}

fn send_result(stream: &TcpStream, shard: u64, hash: u64, entry: &str) {
    let payload = result_payload(shard, hash, entry);
    write_frame(&mut &*stream, FrameType::Result, &payload).unwrap();
}

fn send_shard_done(stream: &TcpStream, shard: u64) {
    let doc = format!("{{\"shard\":{shard}}}");
    write_frame(&mut &*stream, FrameType::ShardDone, doc.as_bytes()).unwrap();
}

/// Absorbs coordinator frames until Shutdown (or the socket closes) so
/// the script thread exits cleanly.
fn drain_until_shutdown(stream: &TcpStream) {
    loop {
        match read_frame(&mut &*stream) {
            Ok((FrameType::Shutdown, _)) | Err(_) => return,
            Ok(_) => {}
        }
    }
}

// ---- real-worker tests --------------------------------------------

#[test]
fn wire_results_and_cache_entries_match_local_execution_bytes() {
    let dir = std::env::temp_dir().join(format!(
        "syncperf_dist_bytes_{}_{:?}",
        std::process::id(),
        thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);

    let (c0, w0) = socket_pair();
    let (c1, w1) = socket_pair();
    let h0 = thread::spawn(move || serve_stream(w0));
    let h1 = thread::spawn(move || serve_stream(w1));
    let coord = Coordinator::from_streams(DistConfig::new(2), Some(Cache::new(&dir)), vec![c0, c1])
        .unwrap();

    let todo = make_jobs(8);
    let out = coord.run_batch(&todo);
    assert_exactly_once(&out, todo.len());
    for (index, job, hash) in &todo {
        let got = out.iter().find(|b| b.index == *index).unwrap();
        let local = execute_job_with_retry(job, *hash, |_| {}).unwrap();
        // Byte-level determinism: the entry the worker shipped encodes
        // to exactly what a serial run would have written.
        assert_eq!(
            encode_measurement(*hash, got.result.as_ref().unwrap()),
            encode_measurement(*hash, &local),
        );
    }

    let st = coord.stats();
    assert_eq!(st.jobs_sent, 8, "both primed chunks travel the wire");
    assert_eq!(
        st.results_received + st.coordinator_jobs + st.local_jobs,
        8,
        "every job accounted to exactly one execution site"
    );
    assert_eq!(st.corrupt_entries, 0);
    assert_eq!(st.duplicate_results, 0);

    // Shutdown flushes the store thread; the persisted entries must be
    // the same bytes, and a restarted run must see them as cache hits.
    coord.shutdown();
    h0.join().unwrap().unwrap();
    h1.join().unwrap().unwrap();
    let resumed = Cache::new(&dir);
    for (_, job, hash) in &todo {
        let entry = std::fs::read_to_string(resumed.entry_path(*hash)).unwrap();
        assert_eq!(entry, real_entry(job, *hash), "cache entry bytes differ");
        assert!(resumed.load(*hash).is_some(), "resume would miss {hash:x}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

// ---- fake-worker edge-case tests ----------------------------------

#[test]
fn duplicate_completion_of_same_hash_merges_exactly_once() {
    let (c, w) = socket_pair();
    let script = thread::spawn(move || {
        handshake(&w);
        let (shard, jobs) = next_batch(&w);
        let entries: Vec<(u64, String)> =
            jobs.iter().map(|(h, j)| (*h, real_entry(j, *h))).collect();
        // First job completes twice — a migration-race double send.
        send_result(&w, shard, entries[0].0, &entries[0].1);
        send_result(&w, shard, entries[0].0, &entries[0].1);
        for (h, e) in &entries[1..] {
            send_result(&w, shard, *h, e);
        }
        send_shard_done(&w, shard);
        drain_until_shutdown(&w);
    });

    let coord = Coordinator::from_streams(DistConfig::new(1), None, vec![c]).unwrap();
    let todo = make_jobs(4);
    let out = coord.run_batch(&todo);
    assert_exactly_once(&out, todo.len());
    let st = coord.stats();
    assert_eq!(
        st.duplicate_results, 1,
        "second completion counted, dropped"
    );
    assert_eq!(st.results_received, 5, "all five Result frames observed");
    coord.shutdown();
    script.join().unwrap();
}

#[test]
fn corrupt_wire_entry_is_counted_and_recomputed() {
    let (c, w) = socket_pair();
    let script = thread::spawn(move || {
        handshake(&w);
        let (shard, jobs) = next_batch(&w);
        // First job's entry bytes are garbage: the header attributes
        // it, but the self-validating load must reject the payload.
        send_result(&w, shard, jobs[0].0, "not a cache entry");
        for (h, j) in &jobs[1..] {
            send_result(&w, shard, *h, &real_entry(j, *h));
        }
        send_shard_done(&w, shard);
        drain_until_shutdown(&w);
    });

    let coord = Coordinator::from_streams(DistConfig::new(1), None, vec![c]).unwrap();
    let todo = make_jobs(4);
    let out = coord.run_batch(&todo);
    assert_exactly_once(&out, todo.len());
    // The corrupted job was recomputed locally and still matches.
    let (_, job, hash) = &todo[0];
    let got = out.iter().find(|b| b.hash == *hash).unwrap();
    assert_eq!(
        encode_measurement(*hash, got.result.as_ref().unwrap()),
        real_entry(job, *hash),
    );
    let st = coord.stats();
    assert_eq!(st.corrupt_entries, 1);
    coord.shutdown();
    script.join().unwrap();
}

#[test]
fn reissued_shard_with_overlapping_range_converges_exactly_once() {
    let (c, w) = socket_pair();
    let script = thread::spawn(move || {
        handshake(&w);
        let (first, jobs) = next_batch(&w);
        let entries: Vec<(u64, String)> =
            jobs.iter().map(|(h, j)| (*h, real_entry(j, *h))).collect();
        // One result, then a premature ShardDone: the coordinator must
        // reissue the unfinished remainder as a fresh shard whose hash
        // range overlaps the one it just retired.
        send_result(&w, first, entries[0].0, &entries[0].1);
        send_shard_done(&w, first);
        let (second, reissued) = next_batch(&w);
        assert_ne!(first, second, "reissue must mint a new shard id");
        let reissued_hashes: BTreeSet<u64> = reissued.iter().map(|(h, _)| *h).collect();
        let original: BTreeSet<u64> = entries.iter().map(|(h, _)| *h).collect();
        assert!(
            reissued_hashes.is_subset(&original),
            "reissued range lies inside the retired shard's range"
        );
        // Complete one overlapped job under BOTH shard ids (the old
        // attribution races the reissue), then finish the rest.
        send_result(&w, first, entries[1].0, &entries[1].1);
        send_result(&w, second, entries[1].0, &entries[1].1);
        for (h, e) in &entries[2..] {
            send_result(&w, second, *h, e);
        }
        send_shard_done(&w, second);
        drain_until_shutdown(&w);
    });

    let coord = Coordinator::from_streams(DistConfig::new(1), None, vec![c]).unwrap();
    let todo = make_jobs(4);
    let out = coord.run_batch(&todo);
    assert_exactly_once(&out, todo.len());
    let st = coord.stats();
    assert_eq!(st.shard_reissues, 1);
    assert_eq!(st.duplicate_results, 1, "overlap deduped by content hash");
    coord.shutdown();
    script.join().unwrap();
}

#[test]
fn worker_death_mid_shard_reissues_and_finishes_locally() {
    let (c, w) = socket_pair();
    let script = thread::spawn(move || {
        handshake(&w);
        let (shard, jobs) = next_batch(&w);
        // One result, then vanish without a manifest — the reader's
        // EOF is the death signal; no heartbeat timeout needed.
        send_result(&w, shard, jobs[0].0, &real_entry(&jobs[0].1, jobs[0].0));
        drop(w);
    });

    let coord = Coordinator::from_streams(DistConfig::new(1), None, vec![c]).unwrap();
    let todo = make_jobs(4);
    let out = coord.run_batch(&todo);
    assert_exactly_once(&out, todo.len());
    let st = coord.stats();
    assert_eq!(st.worker_deaths, 1);
    assert_eq!(st.shard_reissues, 1, "orphaned remainder reissued");
    assert_eq!(st.results_received, 1, "only the pre-death result arrived");
    assert_eq!(coord.live_workers(), 0);
    coord.shutdown();
    script.join().unwrap();
}

#[test]
fn metrics_endpoint_serves_prometheus_exposition() {
    use std::io::{Read as _, Write as _};
    let rec = syncperf_core::obs::Recorder::enabled();
    rec.counter("dist.workers").add(3);
    rec.counter("dist.jobs_sent").add(42);
    let bound = syncperf_dist::serve_metrics("127.0.0.1:0", move || rec.snapshot()).unwrap();
    // Two sequential scrapes: the endpoint must survive its first client.
    for _ in 0..2 {
        let mut s = TcpStream::connect(bound).unwrap();
        s.write_all(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap();
        let mut body = String::new();
        s.read_to_string(&mut body).unwrap();
        assert!(body.starts_with("HTTP/1.1 200 OK"), "got: {body}");
        assert!(body.contains("dist_workers 3"), "got: {body}");
        assert!(body.contains("dist_jobs_sent 42"), "got: {body}");
    }
}
