//! Offline stand-in for the `criterion` crate.
//!
//! The workspace builds without network access, so this local package
//! provides the subset of criterion's API the `crates/bench` benches
//! use: [`Criterion`], benchmark groups with
//! `measurement_time`/`warm_up_time`/`sample_size`,
//! `bench_function`/`bench_with_input`, [`BenchmarkId`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Measurement model: each benchmark first calibrates how many
//! iterations fit in a fraction of the warm-up budget, then runs
//! `sample_size` samples of that batch size within the measurement
//! budget and reports the per-iteration median, minimum, and maximum in
//! nanoseconds. It is deliberately simple — statistically robust enough
//! to compare orders of magnitude and catch regressions, tiny enough to
//! vendor.

// The API mirrors the real criterion crate, so some names clash with
// pedantic style lints by construction.
#![allow(clippy::used_underscore_binding, clippy::iter_not_returning_iterator)]

use std::fmt;
use std::time::{Duration, Instant};

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    filter: Option<String>,
}

impl Criterion {
    /// Applies command-line arguments (`bench [filter]`); recognises a
    /// plain substring filter and ignores criterion-specific flags.
    #[must_use]
    pub fn configure_from_args(mut self) -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        self.filter = args
            .into_iter()
            .find(|a| !a.starts_with('-') && a != "--bench");
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
            sample_size: 20,
        }
    }

    fn matches(&self, id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| id.contains(f))
    }
}

/// Identifier for a parameterised benchmark (`name/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    #[must_use]
    pub fn new<P: fmt::Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            full: format!("{function_name}/{parameter}"),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.full)
    }
}

/// A group of benchmarks sharing timing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a Criterion,
    name: String,
    measurement_time: Duration,
    warm_up_time: Duration,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-benchmark measurement budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Sets the per-benchmark warm-up budget.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(id, |b| f(b));
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.full, |b| f(b, input));
        self
    }

    /// Ends the group (printing nothing extra; kept for API parity).
    pub fn finish(&mut self) {}

    fn run<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        let full = format!("{}/{id}", self.name);
        if !self._criterion.matches(&full) {
            return;
        }
        // `SYNCPERF_BENCH_QUICK=1` clamps every budget so a CI smoke
        // run exercises each benchmark body in milliseconds; the
        // numbers it prints are not comparison-grade.
        let quick = std::env::var_os("SYNCPERF_BENCH_QUICK").is_some();
        let mut b = Bencher {
            warm_up_time: if quick {
                self.warm_up_time.min(Duration::from_millis(20))
            } else {
                self.warm_up_time
            },
            measurement_time: if quick {
                self.measurement_time.min(Duration::from_millis(50))
            } else {
                self.measurement_time
            },
            sample_size: if quick { 2 } else { self.sample_size },
            report: None,
        };
        f(&mut b);
        match b.report {
            Some(r) => println!(
                "{full:<56} {:>12}/iter  (min {}, max {}, {} samples)",
                fmt_ns(r.median_ns),
                fmt_ns(r.min_ns),
                fmt_ns(r.max_ns),
                r.samples,
            ),
            None => println!("{full:<56} (no iterations run)"),
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Report {
    median_ns: f64,
    min_ns: f64,
    max_ns: f64,
    samples: usize,
}

/// Timing harness passed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    report: Option<Report>,
}

impl Bencher {
    /// Times `routine`, storing a per-iteration summary.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up and calibrate: how many iterations fit in ~1/5 of the
        // warm-up budget?
        let warm_deadline = Instant::now() + self.warm_up_time;
        let mut batch = 1u64;
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            let took = t0.elapsed();
            if took * 5 >= self.warm_up_time || Instant::now() >= warm_deadline {
                break;
            }
            batch = batch.saturating_mul(2);
        }

        // Measure `sample_size` samples of `batch` iterations, bounded
        // by the measurement budget.
        let deadline = Instant::now() + self.measurement_time;
        let mut per_iter: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            per_iter.push(t0.elapsed().as_secs_f64() * 1e9 / batch as f64);
            if Instant::now() >= deadline {
                break;
            }
        }
        per_iter.sort_by(f64::total_cmp);
        if per_iter.is_empty() {
            return;
        }
        self.report = Some(Report {
            median_ns: per_iter[per_iter.len() / 2],
            min_ns: per_iter[0],
            max_ns: per_iter[per_iter.len() - 1],
            samples: per_iter.len(),
        });
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        /// Runs every benchmark registered in this group.
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_produces_report() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.measurement_time(Duration::from_millis(50));
        g.warm_up_time(Duration::from_millis(10));
        g.sample_size(5);
        let mut ran = 0u64;
        g.bench_function("noop", |b| {
            b.iter(|| {
                ran += 1;
            })
        });
        g.finish();
        assert!(ran > 0, "the routine must actually run");
    }

    #[test]
    fn benchmark_id_formats_like_criterion() {
        assert_eq!(BenchmarkId::new("sense", 8).to_string(), "sense/8");
    }

    #[test]
    fn fmt_ns_scales() {
        assert!(fmt_ns(12.3).contains("ns"));
        assert!(fmt_ns(12_300.0).contains("µs"));
        assert!(fmt_ns(12_300_000.0).contains("ms"));
    }
}
