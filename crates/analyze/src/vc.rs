//! Dynamic happens-before race detection via vector clocks.
//!
//! The detector replays a kernel body over a small SPMD thread grid —
//! the same element-granular access streams the cpu-sim MESI directory
//! replays — tracking one vector clock per thread and four per-location
//! access clocks (plain/atomic × read/write). Two accesses to the same
//! element race when they are unordered by happens-before, at least one
//! writes, and at least one is (effectively) non-atomic.
//!
//! Happens-before edges:
//!
//! * **Barriers** (`BarrierAll`/`BarrierBlock`/`BarrierWarp`) join the
//!   clocks of every thread in the group.
//! * **Fences** chain through a scope-wide fence clock in thread order
//!   within a round: a fence publishes the thread's clock and acquires
//!   everything published before it. This deliberately leaves at least
//!   one cross-thread pair unordered per round — a fence is not a
//!   barrier — matching the static linter's rule that fences do not
//!   protect symmetric SPMD conflicts.
//! * **Critical-section locks** (one clock per lock id) serialize
//!   `CriticalAdd` bodies and bracketed `CriticalBegin`/`CriticalEnd`
//!   regions; a multi-op region executes as one per-thread super-op so
//!   the replay never interleaves inside a region it would serialize.
//!
//! Replays run [`AUDIT_ITERATIONS`] body iterations so wrap-around
//! hazards (a barrier protecting one direction but not the other) are
//! observed, exactly as the measurement loops would hit them.

use std::collections::BTreeMap;

use syncperf_core::{CpuOp, DType, GpuOp, Target};

use crate::trace::{lower_cpu_op, lower_gpu_op, AccessKind, FenceScope, Geometry, Loc, TraceEvent};

/// Body iterations per replay: enough for every circular (wrap-around)
/// pairing of accesses to occur at least once.
pub const AUDIT_ITERATIONS: usize = 3;

/// One detected race, keyed by location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RaceFinding {
    /// The raced element.
    pub loc: Loc,
    /// Operand type of the access that exposed the race.
    pub dtype: DType,
    /// IR-level target of that access.
    pub target: Target,
    /// Body op index of the access that exposed the race.
    pub op_index: usize,
}

/// The outcome of one body replay.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DynReport {
    /// Detected races, one finding per raced location.
    pub races: BTreeMap<Loc, RaceFinding>,
    /// Whether a block barrier executed in the shadow of a divergent
    /// branch (deadlock on real hardware).
    pub barrier_divergence: bool,
}

impl DynReport {
    /// Whether the replay observed neither races nor barrier
    /// divergence.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.races.is_empty() && !self.barrier_divergence
    }

    /// The raced locations.
    #[must_use]
    pub fn race_locs(&self) -> std::collections::BTreeSet<Loc> {
        self.races.keys().copied().collect()
    }
}

type Vc = Vec<u32>;

fn join_into(dst: &mut Vc, src: &Vc) {
    for (d, s) in dst.iter_mut().zip(src) {
        *d = (*d).max(*s);
    }
}

/// `true` when some *other* thread's component of `x` is ahead of `c`,
/// i.e. the accesses recorded in `x` are not all ordered before the
/// current event of the thread owning `c`.
fn concurrent(x: &Vc, c: &Vc, me: usize) -> bool {
    x.iter()
        .zip(c)
        .enumerate()
        .any(|(u, (xv, cv))| u != me && xv > cv)
}

#[derive(Debug, Clone, Default)]
struct LocClocks {
    plain_write: Vc,
    plain_read: Vc,
    atomic_write: Vc,
    atomic_read: Vc,
}

struct Replay {
    geom: Geometry,
    clocks: Vec<Vc>,
    fence_global: Vc,
    fence_block: Vec<Vc>,
    locks: BTreeMap<u8, Vc>,
    locs: BTreeMap<Loc, LocClocks>,
    diverged: Vec<Option<u32>>,
    report: DynReport,
}

impl Replay {
    fn new(geom: Geometry) -> Self {
        let n = geom.total_threads();
        let mut clocks = vec![vec![0; n]; n];
        for (t, c) in clocks.iter_mut().enumerate() {
            c[t] = 1;
        }
        Replay {
            geom,
            clocks,
            fence_global: vec![0; n],
            fence_block: vec![vec![0; n]; geom.blocks],
            locks: BTreeMap::new(),
            locs: BTreeMap::new(),
            diverged: vec![None; n],
            report: DynReport::default(),
        }
    }

    fn n(&self) -> usize {
        self.geom.total_threads()
    }

    /// Joins the clocks of a thread group at a barrier.
    fn barrier_join(&mut self, members: &[usize]) {
        let n = self.n();
        let mut joined = vec![0; n];
        for &t in members {
            join_into(&mut joined, &self.clocks[t]);
        }
        for &t in members {
            self.clocks[t].copy_from_slice(&joined);
            self.clocks[t][t] += 1;
        }
    }

    fn access(
        &mut self,
        t: usize,
        op_index: usize,
        loc: Loc,
        kind: AccessKind,
        dtype: DType,
        target: Target,
    ) {
        let n = self.n();
        let lc = self.locs.entry(loc).or_insert_with(|| LocClocks {
            plain_write: vec![0; n],
            plain_read: vec![0; n],
            atomic_write: vec![0; n],
            atomic_read: vec![0; n],
        });
        let c = &self.clocks[t];
        let raced = match kind {
            AccessKind::PlainRead => {
                concurrent(&lc.plain_write, c, t) || concurrent(&lc.atomic_write, c, t)
            }
            AccessKind::PlainWrite => {
                concurrent(&lc.plain_write, c, t)
                    || concurrent(&lc.plain_read, c, t)
                    || concurrent(&lc.atomic_write, c, t)
                    || concurrent(&lc.atomic_read, c, t)
            }
            AccessKind::AtomicRead => concurrent(&lc.plain_write, c, t),
            AccessKind::AtomicWrite => {
                concurrent(&lc.plain_write, c, t) || concurrent(&lc.plain_read, c, t)
            }
        };
        let epoch = c[t];
        match kind {
            AccessKind::PlainRead => lc.plain_read[t] = epoch,
            AccessKind::PlainWrite => lc.plain_write[t] = epoch,
            AccessKind::AtomicRead => lc.atomic_read[t] = epoch,
            AccessKind::AtomicWrite => lc.atomic_write[t] = epoch,
        }
        if raced {
            self.report.races.entry(loc).or_insert(RaceFinding {
                loc,
                dtype,
                target,
                op_index,
            });
        }
    }

    fn fence(&mut self, t: usize, scope: FenceScope) {
        let f = match scope {
            FenceScope::Global => &mut self.fence_global,
            FenceScope::Block => &mut self.fence_block[self.geom.block_of(t)],
        };
        join_into(&mut self.clocks[t], f);
        join_into(f, &self.clocks[t]);
        self.clocks[t][t] += 1;
    }

    fn step(&mut self, t: usize, op_index: usize, ev: TraceEvent) {
        match ev {
            TraceEvent::Access {
                loc,
                kind,
                dtype,
                target,
            } => self.access(t, op_index, loc, kind, dtype, target),
            TraceEvent::Fence(scope) => self.fence(t, scope),
            TraceEvent::LockAcquire(l) => {
                let n = self.n();
                let lock = self.locks.entry(l).or_insert_with(|| vec![0; n]).clone();
                join_into(&mut self.clocks[t], &lock);
            }
            TraceEvent::LockRelease(l) => {
                let n = self.n();
                let c = self.clocks[t].clone();
                let lock = self.locks.entry(l).or_insert_with(|| vec![0; n]);
                join_into(lock, &c);
                self.clocks[t][t] += 1;
            }
            TraceEvent::Diverge(_) | TraceEvent::Nop => {}
            // Group barriers are handled at op granularity by the
            // driver, never through per-thread stepping.
            TraceEvent::BarrierAll | TraceEvent::BarrierBlock | TraceEvent::BarrierWarp => {
                unreachable!("barriers are op-level events")
            }
        }
    }

    /// Runs one op across all threads.
    fn run_op<F>(&mut self, op_index: usize, lower: F)
    where
        F: Fn(usize) -> Vec<TraceEvent>,
    {
        let shape = lower(0);
        match shape.first() {
            Some(TraceEvent::BarrierAll) => {
                let all: Vec<usize> = (0..self.n()).collect();
                self.barrier_join(&all);
            }
            Some(TraceEvent::BarrierBlock) => {
                if self.diverged.iter().any(|d| matches!(d, Some(p) if *p > 1)) {
                    self.report.barrier_divergence = true;
                }
                for b in 0..self.geom.blocks {
                    let members: Vec<usize> = (0..self.n())
                        .filter(|&t| self.geom.block_of(t) == b)
                        .collect();
                    self.barrier_join(&members);
                }
            }
            Some(TraceEvent::BarrierWarp) => {
                let warps = self.geom.blocks * self.geom.warps_per_block;
                for w in 0..warps {
                    let members: Vec<usize> = (0..self.n())
                        .filter(|&t| self.geom.warp_of(t) == w)
                        .collect();
                    self.barrier_join(&members);
                }
            }
            _ => {
                for t in 0..self.n() {
                    for ev in lower(t) {
                        self.step(t, op_index, ev);
                    }
                }
            }
        }
        // Divergence taints exactly the next op slot.
        let paths = match shape.first() {
            Some(TraceEvent::Diverge(p)) if *p > 1 => Some(*p),
            _ => None,
        };
        for d in &mut self.diverged {
            *d = paths;
        }
    }
}

/// Replays a CPU body over `geom` for `iterations` body repetitions.
///
/// Balanced barrier-free `CriticalBegin`/`CriticalEnd` regions
/// ([`crate::interp::critical_regions`]) execute as per-thread
/// super-ops: each thread runs the whole region's events before the
/// next thread enters, exactly as the lock serializes it at run time.
/// Unbalanced bodies (which wedge — the explorer flags them) fall back
/// to plain op-level stepping.
#[must_use]
pub fn replay_cpu(body: &[CpuOp], geom: Geometry, iterations: usize) -> DynReport {
    let mut r = Replay::new(geom);
    let regions = crate::interp::critical_regions(body);
    for _ in 0..iterations {
        let mut i = 0;
        while i < body.len() {
            if let Some(&(s, e)) = regions.iter().find(|&&(s, _)| s == i) {
                for t in 0..r.n() {
                    for (off, &op) in body[s..=e].iter().enumerate() {
                        for ev in lower_cpu_op(op, t) {
                            r.step(t, s + off, ev);
                        }
                    }
                }
                i = e + 1;
            } else {
                let op = body[i];
                r.run_op(i, |tid| lower_cpu_op(op, tid));
                i += 1;
            }
        }
    }
    r.report
}

/// Replays a GPU body over `geom` for `iterations` body repetitions.
#[must_use]
pub fn replay_gpu(body: &[GpuOp], geom: Geometry, iterations: usize) -> DynReport {
    let mut r = Replay::new(geom);
    for _ in 0..iterations {
        for (i, &op) in body.iter().enumerate() {
            r.run_op(i, |tid| lower_gpu_op(op, tid));
        }
    }
    r.report
}

/// CPU replay with the default audit geometry and iteration count.
#[must_use]
pub fn replay_cpu_body(body: &[CpuOp]) -> DynReport {
    replay_cpu(body, Geometry::CPU_AUDIT, AUDIT_ITERATIONS)
}

/// GPU replay with the default audit geometry and iteration count.
#[must_use]
pub fn replay_gpu_body(body: &[GpuOp]) -> DynReport {
    replay_gpu(body, Geometry::GPU_AUDIT, AUDIT_ITERATIONS)
}

#[cfg(test)]
mod tests {
    use super::*;
    use syncperf_core::{kernel, DType, Scope};

    fn upd(target: Target) -> CpuOp {
        CpuOp::Update {
            dtype: DType::I32,
            target,
        }
    }

    fn aupd(target: Target) -> CpuOp {
        CpuOp::AtomicUpdate {
            dtype: DType::I32,
            target,
        }
    }

    fn rd(target: Target) -> CpuOp {
        CpuOp::Read {
            dtype: DType::I32,
            target,
        }
    }

    #[test]
    fn plain_shared_update_races() {
        let rep = replay_cpu_body(&[upd(Target::SHARED)]);
        assert_eq!(rep.races.len(), 1);
    }

    #[test]
    fn atomic_shared_update_is_clean() {
        let rep = replay_cpu_body(&[aupd(Target::SHARED)]);
        assert!(rep.is_clean());
    }

    #[test]
    fn private_updates_never_race() {
        let rep = replay_cpu_body(&[upd(Target::private(1)), upd(Target::private(16))]);
        assert!(rep.is_clean());
    }

    #[test]
    fn stride_zero_aliases_every_thread() {
        let rep = replay_cpu_body(&[upd(Target::private(0))]);
        assert_eq!(rep.races.len(), 1);
    }

    #[test]
    fn barrier_does_not_order_symmetric_writes() {
        // Both threads write at the same op position; a barrier before
        // or after cannot order those instances against each other.
        let rep = replay_cpu_body(&[CpuOp::Barrier, upd(Target::SHARED), CpuOp::Barrier]);
        assert_eq!(rep.races.len(), 1);
    }

    #[test]
    fn barrier_on_both_sides_orders_write_vs_read() {
        let body = [
            aupd(Target::SHARED),
            CpuOp::Barrier,
            rd(Target::SHARED),
            CpuOp::Barrier,
        ];
        assert!(replay_cpu_body(&body).is_clean());
    }

    #[test]
    fn single_barrier_leaves_wraparound_race() {
        // Ordered test → read, but the next iteration's write is not
        // ordered against this iteration's read.
        let body = [aupd(Target::SHARED), CpuOp::Barrier, rd(Target::SHARED)];
        assert_eq!(replay_cpu_body(&body).races.len(), 1);
    }

    #[test]
    fn flush_is_not_a_barrier() {
        let body = [aupd(Target::SHARED), CpuOp::Flush, rd(Target::SHARED)];
        assert_eq!(replay_cpu_body(&body).races.len(), 1);
    }

    #[test]
    fn critical_sections_serialize() {
        let body = [CpuOp::CriticalAdd {
            dtype: DType::I32,
            target: Target::SHARED,
        }];
        assert!(replay_cpu_body(&body).is_clean());
    }

    #[test]
    fn critical_plus_plain_read_races() {
        let body = [
            CpuOp::CriticalAdd {
                dtype: DType::I32,
                target: Target::SHARED,
            },
            rd(Target::SHARED),
        ];
        assert_eq!(replay_cpu_body(&body).races.len(), 1);
    }

    #[test]
    fn flush_kernel_bodies_are_race_free() {
        for stride in [1, 4, 8, 16] {
            let k = kernel::omp_flush(DType::F64, stride);
            assert!(replay_cpu_body(&k.baseline).is_clean(), "s{stride}");
            assert!(replay_cpu_body(&k.test).is_clean(), "s{stride}");
        }
    }

    #[test]
    fn gpu_device_atomics_clean_block_atomics_race() {
        let dev = GpuOp::AtomicAdd {
            dtype: DType::I32,
            scope: Scope::Device,
            target: Target::SHARED,
        };
        assert!(replay_gpu_body(&[dev]).is_clean());
        let blk = GpuOp::AtomicAdd {
            dtype: DType::I32,
            scope: Scope::Block,
            target: Target::SHARED,
        };
        assert_eq!(replay_gpu_body(&[blk]).races.len(), 1);
    }

    #[test]
    fn syncthreads_does_not_protect_across_blocks() {
        let body = [
            GpuOp::AtomicAdd {
                dtype: DType::I32,
                scope: Scope::Device,
                target: Target::SHARED,
            },
            GpuOp::SyncThreads,
            GpuOp::Read {
                dtype: DType::I32,
                target: Target::SHARED,
            },
            GpuOp::SyncThreads,
        ];
        assert_eq!(replay_gpu_body(&body).races.len(), 1);
    }

    #[test]
    fn divergent_barrier_detected() {
        let body = [
            GpuOp::Diverge {
                dtype: DType::I32,
                paths: 4,
            },
            GpuOp::SyncThreads,
        ];
        let rep = replay_gpu_body(&body);
        assert!(rep.barrier_divergence);
        // Uniform "divergence" (one path) is fine.
        let body = [
            GpuOp::Diverge {
                dtype: DType::I32,
                paths: 1,
            },
            GpuOp::SyncThreads,
        ];
        assert!(!replay_gpu_body(&body).barrier_divergence);
    }

    #[test]
    fn divergence_wraps_to_next_iteration() {
        // Diverge is the last op; the barrier it taints is the first op
        // of the next iteration.
        let body = [
            GpuOp::SyncThreads,
            GpuOp::Diverge {
                dtype: DType::I32,
                paths: 2,
            },
        ];
        assert!(replay_gpu_body(&body).barrier_divergence);
    }

    #[test]
    fn fence_kernel_bodies_are_race_free() {
        for scope in [Scope::Block, Scope::Device, Scope::System] {
            let k = kernel::cuda_threadfence(scope, DType::I32, 1);
            assert!(replay_gpu_body(&k.baseline).is_clean());
            assert!(replay_gpu_body(&k.test).is_clean());
        }
    }

    #[test]
    fn report_names_the_target() {
        let rep = replay_cpu_body(&[upd(Target::SHARED)]);
        let f = rep.races.values().next().unwrap();
        assert_eq!(f.target, Target::SHARED);
        assert_eq!(f.dtype, DType::I32);
    }
}
