//! Static ↔ dynamic cross-check.
//!
//! The static linter and the vector-clock replay are two independent
//! implementations of the same memory-model judgment; this module pins
//! them against each other. For every body:
//!
//! * the set of locations `SL001` fires for must equal the set of
//!   locations the replay reports as raced, and
//! * `SL002` must be present iff the replay observed a block barrier
//!   executing under divergence.
//!
//! A disagreement in either direction (static-says-race ∧
//! dynamic-says-clean, or vice versa) is a bug in one of the halves and
//! is reported as an [`Agreement`] failure — test suites and the
//! `sync_lint` CLI treat it as fatal.

use syncperf_core::{CpuOp, GpuOp};

use crate::explore::{explore_cpu_body, explore_gpu_body, ExploreStats};
use crate::lint::{divergent_barriers, static_race_locs_cpu, static_race_locs_gpu};
use crate::trace::Loc;
use crate::vc::{replay_cpu_body, replay_gpu_body, DynReport};

/// The outcome of cross-checking one body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Agreement {
    /// Locations only the static linter called raced.
    pub static_only: Vec<Loc>,
    /// Locations only the dynamic replay called raced.
    pub dynamic_only: Vec<Loc>,
    /// `SL002` verdicts: (static, dynamic).
    pub divergence: (bool, bool),
    /// The dynamic report, for callers that want the evidence.
    pub report: DynReport,
}

impl Agreement {
    /// Whether both halves reached the same verdict.
    #[must_use]
    pub fn holds(&self) -> bool {
        self.static_only.is_empty()
            && self.dynamic_only.is_empty()
            && self.divergence.0 == self.divergence.1
    }

    /// Human-readable explanation of a failed agreement.
    #[must_use]
    pub fn explain(&self) -> String {
        let mut parts = Vec::new();
        if !self.static_only.is_empty() {
            parts.push(format!(
                "static-only race locations: {:?}",
                self.static_only
            ));
        }
        if !self.dynamic_only.is_empty() {
            parts.push(format!(
                "dynamic-only race locations: {:?}",
                self.dynamic_only
            ));
        }
        if self.divergence.0 != self.divergence.1 {
            parts.push(format!(
                "divergence verdicts differ (static {}, dynamic {})",
                self.divergence.0, self.divergence.1
            ));
        }
        if parts.is_empty() {
            "static and dynamic verdicts agree".to_string()
        } else {
            parts.join("; ")
        }
    }

    fn from_parts(
        static_locs: std::collections::BTreeSet<Loc>,
        static_divergence: bool,
        report: DynReport,
    ) -> Agreement {
        let dyn_locs = report.race_locs();
        Agreement {
            static_only: static_locs.difference(&dyn_locs).copied().collect(),
            dynamic_only: dyn_locs.difference(&static_locs).copied().collect(),
            divergence: (static_divergence, report.barrier_divergence),
            report,
        }
    }
}

/// The outcome of cross-checking the explorer's race engine against
/// the vector-clock replay on one body.
///
/// The two engines replay the same lowering under the same
/// happens-before discipline but are independent implementations (the
/// explorer additionally drops fence edges); on every deadlock-free,
/// completely-explored body their raced-location sets must be equal.
/// Bodies that can wedge have no well-defined race verdict — the
/// contract holds vacuously there, with the wedge reported as
/// SL007/SL008 instead.
#[derive(Debug, Clone)]
pub struct EngineAgreement {
    /// Locations only the explorer's engine called raced.
    pub explorer_only: Vec<Loc>,
    /// Locations only the vector-clock replay called raced.
    pub vc_only: Vec<Loc>,
    /// Whether every explored schedule completed (no wedge).
    pub deadlock_free: bool,
    /// The exploration's counters.
    pub stats: ExploreStats,
}

impl EngineAgreement {
    /// Whether the contract holds.
    #[must_use]
    pub fn holds(&self) -> bool {
        !(self.deadlock_free && self.stats.complete)
            || (self.explorer_only.is_empty() && self.vc_only.is_empty())
    }

    /// Human-readable explanation of a failed agreement.
    #[must_use]
    pub fn explain(&self) -> String {
        if self.holds() {
            return "explorer and vector-clock race verdicts agree".to_string();
        }
        let mut parts = Vec::new();
        if !self.explorer_only.is_empty() {
            parts.push(format!(
                "explorer-only race locations: {:?}",
                self.explorer_only
            ));
        }
        if !self.vc_only.is_empty() {
            parts.push(format!("vc-only race locations: {:?}", self.vc_only));
        }
        parts.join("; ")
    }
}

fn engine_parts(
    explorer: &crate::explore::ExploreReport,
    vc_locs: &std::collections::BTreeSet<Loc>,
) -> EngineAgreement {
    let ex_locs = explorer.race_locs();
    EngineAgreement {
        explorer_only: ex_locs.difference(vc_locs).copied().collect(),
        vc_only: vc_locs.difference(&ex_locs).copied().collect(),
        deadlock_free: explorer.deadlock_free,
        stats: explorer.stats,
    }
}

/// Cross-checks the explorer's CPU race verdict against the
/// vector-clock replay's.
#[must_use]
pub fn crosscheck_engines_cpu(body: &[CpuOp]) -> EngineAgreement {
    engine_parts(&explore_cpu_body(body), &replay_cpu_body(body).race_locs())
}

/// Cross-checks the explorer's GPU race verdict against the
/// vector-clock replay's.
#[must_use]
pub fn crosscheck_engines_gpu(body: &[GpuOp]) -> EngineAgreement {
    engine_parts(&explore_gpu_body(body), &replay_gpu_body(body).race_locs())
}

/// Cross-checks a CPU body with the default audit geometry.
#[must_use]
pub fn check_cpu_body(body: &[CpuOp]) -> Agreement {
    Agreement::from_parts(static_race_locs_cpu(body), false, replay_cpu_body(body))
}

/// Cross-checks a GPU body with the default audit geometry.
#[must_use]
pub fn check_gpu_body(body: &[GpuOp]) -> Agreement {
    Agreement::from_parts(
        static_race_locs_gpu(body),
        !divergent_barriers(body).is_empty(),
        replay_gpu_body(body),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use syncperf_core::{DType, Scope, Target};

    #[test]
    fn seeded_cpu_race_caught_by_both_halves() {
        let body = [CpuOp::Update {
            dtype: DType::I32,
            target: Target::SHARED,
        }];
        let a = check_cpu_body(&body);
        assert!(a.holds(), "{}", a.explain());
        assert_eq!(a.report.races.len(), 1, "dynamic half must see the race");
        assert_eq!(
            crate::lint::static_race_locs_cpu(&body).len(),
            1,
            "static half must see the race"
        );
    }

    #[test]
    fn seeded_divergence_caught_by_both_halves() {
        let body = [
            GpuOp::Diverge {
                dtype: DType::I32,
                paths: 2,
            },
            GpuOp::SyncThreads,
        ];
        let a = check_gpu_body(&body);
        assert!(a.holds(), "{}", a.explain());
        assert!(a.divergence.0 && a.divergence.1);
    }

    #[test]
    fn seeded_scope_mismatch_races_dynamically() {
        // The block-scoped atomic is the racy half of an SL003 pair;
        // both halves must flag the location.
        let body = [
            GpuOp::AtomicAdd {
                dtype: DType::I32,
                scope: Scope::Block,
                target: Target::SHARED,
            },
            GpuOp::AtomicAdd {
                dtype: DType::I32,
                scope: Scope::Device,
                target: Target::SHARED,
            },
        ];
        let a = check_gpu_body(&body);
        assert!(a.holds(), "{}", a.explain());
        assert_eq!(a.report.races.len(), 1);
    }

    #[test]
    fn all_builtin_kernel_bodies_agree() {
        use syncperf_core::kernel;
        let cpu = [
            kernel::omp_barrier(),
            kernel::omp_atomic_update_scalar(DType::F64),
            kernel::omp_atomic_update_array(DType::I32, 0),
            kernel::omp_atomic_capture_scalar(DType::U64),
            kernel::omp_atomic_write(DType::F32),
            kernel::omp_atomic_read(DType::I32),
            kernel::omp_critical_add(DType::I32),
            kernel::omp_flush(DType::F64, 1),
        ];
        for k in cpu {
            for body in [&k.baseline, &k.test] {
                let a = check_cpu_body(body);
                assert!(a.holds(), "{}: {}", k.name, a.explain());
            }
        }
        let gpu = [
            kernel::cuda_syncthreads(),
            kernel::cuda_syncwarp(),
            kernel::cuda_atomic_add_scalar(DType::F32),
            kernel::cuda_atomic_add_array(DType::I32, 0),
            kernel::cuda_atomic_cas_scalar(DType::I32),
            kernel::cuda_atomic_exch(DType::U64),
            kernel::cuda_threadfence(Scope::System, DType::I32, 1),
            kernel::cuda_divergence(DType::I32, 8),
        ];
        for k in gpu {
            for body in [&k.baseline, &k.test] {
                let a = check_gpu_body(body);
                assert!(a.holds(), "{}: {}", k.name, a.explain());
            }
        }
    }
}
