//! Static ↔ dynamic cross-check.
//!
//! The static linter and the vector-clock replay are two independent
//! implementations of the same memory-model judgment; this module pins
//! them against each other. For every body:
//!
//! * the set of locations `SL001` fires for must equal the set of
//!   locations the replay reports as raced, and
//! * `SL002` must be present iff the replay observed a block barrier
//!   executing under divergence.
//!
//! A disagreement in either direction (static-says-race ∧
//! dynamic-says-clean, or vice versa) is a bug in one of the halves and
//! is reported as an [`Agreement`] failure — test suites and the
//! `sync_lint` CLI treat it as fatal.

use syncperf_core::{CpuOp, GpuOp};

use crate::lint::{divergent_barriers, static_race_locs_cpu, static_race_locs_gpu};
use crate::trace::Loc;
use crate::vc::{replay_cpu_body, replay_gpu_body, DynReport};

/// The outcome of cross-checking one body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Agreement {
    /// Locations only the static linter called raced.
    pub static_only: Vec<Loc>,
    /// Locations only the dynamic replay called raced.
    pub dynamic_only: Vec<Loc>,
    /// `SL002` verdicts: (static, dynamic).
    pub divergence: (bool, bool),
    /// The dynamic report, for callers that want the evidence.
    pub report: DynReport,
}

impl Agreement {
    /// Whether both halves reached the same verdict.
    #[must_use]
    pub fn holds(&self) -> bool {
        self.static_only.is_empty()
            && self.dynamic_only.is_empty()
            && self.divergence.0 == self.divergence.1
    }

    /// Human-readable explanation of a failed agreement.
    #[must_use]
    pub fn explain(&self) -> String {
        let mut parts = Vec::new();
        if !self.static_only.is_empty() {
            parts.push(format!(
                "static-only race locations: {:?}",
                self.static_only
            ));
        }
        if !self.dynamic_only.is_empty() {
            parts.push(format!(
                "dynamic-only race locations: {:?}",
                self.dynamic_only
            ));
        }
        if self.divergence.0 != self.divergence.1 {
            parts.push(format!(
                "divergence verdicts differ (static {}, dynamic {})",
                self.divergence.0, self.divergence.1
            ));
        }
        if parts.is_empty() {
            "static and dynamic verdicts agree".to_string()
        } else {
            parts.join("; ")
        }
    }

    fn from_parts(
        static_locs: std::collections::BTreeSet<Loc>,
        static_divergence: bool,
        report: DynReport,
    ) -> Agreement {
        let dyn_locs = report.race_locs();
        Agreement {
            static_only: static_locs.difference(&dyn_locs).copied().collect(),
            dynamic_only: dyn_locs.difference(&static_locs).copied().collect(),
            divergence: (static_divergence, report.barrier_divergence),
            report,
        }
    }
}

/// Cross-checks a CPU body with the default audit geometry.
#[must_use]
pub fn check_cpu_body(body: &[CpuOp]) -> Agreement {
    Agreement::from_parts(static_race_locs_cpu(body), false, replay_cpu_body(body))
}

/// Cross-checks a GPU body with the default audit geometry.
#[must_use]
pub fn check_gpu_body(body: &[GpuOp]) -> Agreement {
    Agreement::from_parts(
        static_race_locs_gpu(body),
        !divergent_barriers(body).is_empty(),
        replay_gpu_body(body),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use syncperf_core::{DType, Scope, Target};

    #[test]
    fn seeded_cpu_race_caught_by_both_halves() {
        let body = [CpuOp::Update {
            dtype: DType::I32,
            target: Target::SHARED,
        }];
        let a = check_cpu_body(&body);
        assert!(a.holds(), "{}", a.explain());
        assert_eq!(a.report.races.len(), 1, "dynamic half must see the race");
        assert_eq!(
            crate::lint::static_race_locs_cpu(&body).len(),
            1,
            "static half must see the race"
        );
    }

    #[test]
    fn seeded_divergence_caught_by_both_halves() {
        let body = [
            GpuOp::Diverge {
                dtype: DType::I32,
                paths: 2,
            },
            GpuOp::SyncThreads,
        ];
        let a = check_gpu_body(&body);
        assert!(a.holds(), "{}", a.explain());
        assert!(a.divergence.0 && a.divergence.1);
    }

    #[test]
    fn seeded_scope_mismatch_races_dynamically() {
        // The block-scoped atomic is the racy half of an SL003 pair;
        // both halves must flag the location.
        let body = [
            GpuOp::AtomicAdd {
                dtype: DType::I32,
                scope: Scope::Block,
                target: Target::SHARED,
            },
            GpuOp::AtomicAdd {
                dtype: DType::I32,
                scope: Scope::Device,
                target: Target::SHARED,
            },
        ];
        let a = check_gpu_body(&body);
        assert!(a.holds(), "{}", a.explain());
        assert_eq!(a.report.races.len(), 1);
    }

    #[test]
    fn all_builtin_kernel_bodies_agree() {
        use syncperf_core::kernel;
        let cpu = [
            kernel::omp_barrier(),
            kernel::omp_atomic_update_scalar(DType::F64),
            kernel::omp_atomic_update_array(DType::I32, 0),
            kernel::omp_atomic_capture_scalar(DType::U64),
            kernel::omp_atomic_write(DType::F32),
            kernel::omp_atomic_read(DType::I32),
            kernel::omp_critical_add(DType::I32),
            kernel::omp_flush(DType::F64, 1),
        ];
        for k in cpu {
            for body in [&k.baseline, &k.test] {
                let a = check_cpu_body(body);
                assert!(a.holds(), "{}: {}", k.name, a.explain());
            }
        }
        let gpu = [
            kernel::cuda_syncthreads(),
            kernel::cuda_syncwarp(),
            kernel::cuda_atomic_add_scalar(DType::F32),
            kernel::cuda_atomic_add_array(DType::I32, 0),
            kernel::cuda_atomic_cas_scalar(DType::I32),
            kernel::cuda_atomic_exch(DType::U64),
            kernel::cuda_threadfence(Scope::System, DType::I32, 1),
            kernel::cuda_divergence(DType::I32, 8),
        ];
        for k in gpu {
            for body in [&k.baseline, &k.test] {
                let a = check_gpu_body(body);
                assert!(a.holds(), "{}: {}", k.name, a.explain());
            }
        }
    }
}
