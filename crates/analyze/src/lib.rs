//! Static and dynamic analysis of syncperf kernel bodies.
//!
//! This crate implements `syncperf-analyze`, the repo's sync-lint and
//! race-detection layer. It has two independent halves that check each
//! other:
//!
//! 1. **The static linter** ([`lint`]) walks a kernel body (the same
//!    [`syncperf_core::CpuOp`]/[`syncperf_core::GpuOp`] IR every
//!    executor interprets) and emits structured [`diag::Diagnostic`]s
//!    with stable `SL00x` codes: data races, barriers under divergent
//!    control flow, mixed atomic scopes, fence-free publishes,
//!    redundant synchronization, and CAS-lowered float atomics.
//! 2. **The dynamic detector** ([`vc`]) replays the body's per-thread
//!    access streams — the same streams the cpu-sim MESI engine
//!    replays — under a vector-clock happens-before model and reports
//!    the races it actually observes.
//!
//! The [`agree`] module pins the two halves together: for every body,
//! `SL001`'s location set must equal the replay's raced-location set,
//! and `SL002` must match the replay's divergence observation. The
//! workspace test suite and the `sync_lint` CLI treat any disagreement
//! as a fatal bug in the analyzer itself.
//!
//! Diagnostic codes, the allowlist format, and the agreement contract
//! are documented in `docs/ANALYSIS.md`.

pub mod agree;
pub mod allow;
pub mod diag;
pub mod lint;
pub mod record;
pub mod trace;
pub mod vc;

pub use agree::{check_cpu_body, check_gpu_body, Agreement};
pub use allow::{allowed_by, glob_match, AllowEntry, BUILTIN as BUILTIN_ALLOWLIST};
pub use diag::{BodyKind, DiagCode, Diagnostic, Severity};
pub use lint::{lint_cpu_body, lint_gpu_body};
pub use trace::{Geometry, Loc};
pub use vc::{replay_cpu_body, replay_gpu_body, DynReport, RaceFinding};
