//! Static and dynamic analysis of syncperf kernel bodies.
//!
//! This crate implements `syncperf-analyze`, the repo's sync-lint and
//! race-detection layer. It has three independent engines that check
//! each other:
//!
//! 1. **The static linter** ([`lint`]) walks a kernel body (the same
//!    [`syncperf_core::CpuOp`]/[`syncperf_core::GpuOp`] IR every
//!    executor interprets) and emits structured [`diag::Diagnostic`]s
//!    with stable `SL00x` codes: data races, barriers under divergent
//!    control flow, mixed atomic scopes, fence-free publishes,
//!    redundant synchronization, and CAS-lowered float atomics.
//! 2. **The dynamic detector** ([`vc`]) replays the body's per-thread
//!    access streams — the same streams the cpu-sim MESI engine
//!    replays — under a vector-clock happens-before model and reports
//!    the races it actually observes.
//! 3. **The model checker** ([`interp`] + [`explore`]) exhaustively
//!    explores every sync-granularity interleaving and every
//!    warp-divergence path assignment of the audit geometry (with
//!    partial-order reduction), proving deadlock freedom or reporting
//!    path-sensitive wedges (`SL007`/`SL008`) plus abstract-domain
//!    atomicity (`SL009`) and store-buffer fence (`SL010`) findings.
//!
//! The [`agree`] module pins the engines together: for every body,
//! `SL001`'s location set must equal the replay's raced-location set,
//! `SL002` must match the replay's divergence observation, and the
//! explorer's race verdict must equal the replay's on every
//! deadlock-free body. The workspace test suite and the `sync_lint`
//! CLI treat any disagreement as a fatal bug in the analyzer itself.
//!
//! Findings render as text, JSON, or SARIF 2.1.0 ([`sarif`]) for
//! inline PR annotation.
//!
//! Diagnostic codes, the allowlist format, and the agreement contract
//! are documented in `docs/ANALYSIS.md`.

pub mod agree;
pub mod allow;
pub mod diag;
pub mod explore;
pub mod interp;
pub mod lint;
pub mod record;
pub mod sarif;
pub mod trace;
pub mod vc;

pub use agree::{
    check_cpu_body, check_gpu_body, crosscheck_engines_cpu, crosscheck_engines_gpu, Agreement,
    EngineAgreement,
};
pub use allow::{allowed_by, glob_match, AllowEntry, BUILTIN as BUILTIN_ALLOWLIST};
pub use diag::{BodyKind, DiagCode, Diagnostic, Severity};
pub use explore::{explore_cpu_body, explore_gpu_body, ExploreReport, ExploreStats};
pub use lint::{lint_cpu_body, lint_gpu_body};
pub use sarif::{render_sarif, SarifFinding};
pub use trace::{Geometry, Loc};
pub use vc::{replay_cpu_body, replay_gpu_body, DynReport, RaceFinding};
