//! Bounded exhaustive exploration of kernel bodies: the model checker.
//!
//! Where [`crate::lint`] pattern-matches op sequences and [`crate::vc`]
//! replays one canonical schedule, this module *explores*:
//!
//! * **CPU bodies** — a memoized depth-first search over every
//!   sync-granularity interleaving of the audit geometry's threads.
//!   The partial-order reduction lives in [`crate::interp::advance`]:
//!   thread-local events are macro-stepped, barriers fire as soon as
//!   everyone arrives (the only enabled transition at that point), and
//!   the search branches solely on *lock grants* — which waiting
//!   thread gets a free lock. A state where no thread can move is a
//!   wedge: `SL007` if anyone is parked at a barrier, else `SL008`.
//! * **GPU bodies** — locks do not exist, so schedules collapse to one
//!   path per *divergence assignment*: every data-dependent branch
//!   (`Diverge`) independently either diverges or stays uniform. The
//!   explorer enumerates all `2^sites` assignments and tracks
//!   reconvergence (uniform ALU work, `__syncwarp`, and block
//!   barriers reconverge; memory accesses and fences do not — the
//!   independent-thread-scheduling model), flagging any block barrier
//!   reachable while divergent as `SL007`. This supersedes the SL002
//!   adjacency heuristic, which only sees a barrier *immediately*
//!   after the branch.
//!
//! On deadlock-free bodies the explorer also reruns the races with its
//! own round-lockstep clock engine — same lowering, same race matrix,
//! per-lock clocks, but **no fence edges** (a fence is not a barrier;
//! dropping its asymmetric chaining cannot hide a symmetric SPMD race
//! at location granularity). [`crate::agree::crosscheck_engines_cpu`]
//! pins this verdict against the vector-clock replay's on every body.
//!
//! Two straight-line abstract-domain passes ride along:
//!
//! * `SL009` — a read of a thread-shared element followed by a write
//!   to it in the same iteration with no common lock held across the
//!   window: a split read-modify-write another thread can interleave.
//! * `SL010` — a plain store still pending in the store-buffer domain
//!   (only a *global* fence drains it, exactly like the cpu-sim's
//!   `Flush`) when a later atomic write publishes a different shared
//!   element.

use std::collections::{BTreeMap, BTreeSet, HashSet};

use syncperf_core::{CpuOp, GpuOp};

use crate::diag::{DiagCode, Diagnostic};
use crate::interp::{advance, cpu_streams, critical_regions, Stop, Stream};
use crate::trace::{
    loc_of, lower_cpu_op, lower_gpu_op, AccessKind, FenceScope, Geometry, Loc, TraceEvent,
};
use crate::vc::{RaceFinding, AUDIT_ITERATIONS};

/// Hard ceiling on memoized scheduler states per body. Registry
/// kernels stay orders of magnitude below this; hitting it marks the
/// exploration incomplete rather than hanging CI.
const STATE_CAP: usize = 1 << 20;

/// Hard ceiling on GPU divergence sites (assignments are `2^sites`).
const SITE_CAP: usize = 16;

/// Counters describing one body's exploration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExploreStats {
    /// Scheduler states visited (closure rounds plus memoized branch
    /// states; for GPU bodies, simulated op-steps).
    pub states: u64,
    /// Branch alternatives taken (lock grants / divergence
    /// assignments beyond the first).
    pub branches: u64,
    /// Whether the search ran to exhaustion. `false` only when a cap
    /// was hit; incomplete explorations assert nothing.
    pub complete: bool,
}

/// The outcome of exploring one body.
#[derive(Debug, Clone)]
pub struct ExploreReport {
    /// Path-sensitive findings: SL007/SL008 wedges, SL009 atomicity
    /// windows, SL010 store-buffer leaks.
    pub diagnostics: Vec<Diagnostic>,
    /// Raced locations from the explorer's own clock engine. Empty
    /// (and meaningless) when the body can wedge.
    pub races: BTreeMap<Loc, RaceFinding>,
    /// Whether every explored schedule ran to completion.
    pub deadlock_free: bool,
    /// Search counters.
    pub stats: ExploreStats,
}

impl ExploreReport {
    /// The raced locations.
    #[must_use]
    pub fn race_locs(&self) -> BTreeSet<Loc> {
        self.races.keys().copied().collect()
    }
}

// ---------------------------------------------------------------------
// CPU: memoized DFS over lock-grant choices.
// ---------------------------------------------------------------------

/// One memoized search state: per-thread stream positions plus the
/// sorted (lock, owner) list.
type SearchState = (Vec<usize>, Vec<(u8, usize)>);

struct CpuSearch<'a> {
    streams: &'a [Stream],
    visited: HashSet<SearchState>,
    wedges: BTreeMap<(DiagCode, Option<usize>), Diagnostic>,
    states: u64,
    branches: u64,
    complete: bool,
    any_wedge: bool,
}

impl CpuSearch<'_> {
    fn dfs(&mut self, mut pos: Vec<usize>, mut locks: BTreeMap<u8, usize>) {
        let n = self.streams.len();
        loop {
            if !self.complete {
                return;
            }
            self.states += 1;
            // Closure: macro-advance everyone past their local events
            // (releases free locks eagerly inside `advance`).
            let stops: Vec<Stop> = (0..n)
                .map(|t| advance(&self.streams[t], &mut pos[t], t, &mut locks))
                .collect();
            if stops.iter().all(|s| matches!(s, Stop::Done)) {
                return;
            }
            // A barrier fires the moment every thread is parked at
            // one; nothing else is enabled then, so firing eagerly is
            // not even a reduction — it is determinism.
            if stops.iter().all(|s| matches!(s, Stop::Barrier { .. })) {
                for p in &mut pos {
                    *p += 1;
                }
                continue;
            }
            let grants: Vec<(usize, u8)> = stops
                .iter()
                .enumerate()
                .filter_map(|(t, s)| match s {
                    Stop::Acquire { lock, .. } if !locks.contains_key(lock) => Some((t, *lock)),
                    _ => None,
                })
                .collect();
            if grants.is_empty() {
                self.record_wedge(&stops, &locks);
                return;
            }
            if grants.len() == 1 {
                // The sole enabled transition: take it in place.
                let (t, l) = grants[0];
                locks.insert(l, t);
                pos[t] += 1;
                continue;
            }
            // A real choice: memoize and branch over every grant.
            let key = (
                pos.clone(),
                locks.iter().map(|(&l, &t)| (l, t)).collect::<Vec<_>>(),
            );
            if !self.visited.insert(key) {
                return;
            }
            if self.visited.len() > STATE_CAP {
                self.complete = false;
                return;
            }
            for (t, l) in grants {
                self.branches += 1;
                let mut pos2 = pos.clone();
                let mut locks2 = locks.clone();
                locks2.insert(l, t);
                pos2[t] += 1;
                self.dfs(pos2, locks2);
            }
            return;
        }
    }

    fn record_wedge(&mut self, stops: &[Stop], locks: &BTreeMap<u8, usize>) {
        self.any_wedge = true;
        let waiting_barrier: Vec<usize> = stops
            .iter()
            .enumerate()
            .filter_map(|(t, s)| matches!(s, Stop::Barrier { .. }).then_some(t))
            .collect();
        let waiting_lock: Vec<(usize, u8)> = stops
            .iter()
            .enumerate()
            .filter_map(|(t, s)| match s {
                Stop::Acquire { lock, .. } => Some((t, *lock)),
                _ => None,
            })
            .collect();
        let describe_locks = |list: &[(usize, u8)]| {
            list.iter()
                .map(|(t, l)| {
                    let owner = locks
                        .get(l)
                        .map_or_else(|| "no one".to_string(), |o| format!("thread {o}"));
                    format!("thread {t} waits for lock {l} (held by {owner})")
                })
                .collect::<Vec<_>>()
                .join("; ")
        };
        let (code, op_index, message) = if waiting_barrier.is_empty() {
            let op = waiting_lock.iter().find_map(|(t, _)| match stops[*t] {
                Stop::Acquire { op_index, .. } => Some(op_index),
                _ => None,
            });
            (
                DiagCode::LockCycle,
                op,
                format!(
                    "explored schedule wedges with no barrier involved: {}",
                    describe_locks(&waiting_lock)
                ),
            )
        } else {
            let op = waiting_barrier.iter().find_map(|t| match stops[*t] {
                Stop::Barrier { op_index } => Some(op_index),
                _ => None,
            });
            let mut msg = format!(
                "explored schedule wedges at a barrier: threads {waiting_barrier:?} wait at the \
                 barrier while the rest can never arrive"
            );
            if !waiting_lock.is_empty() {
                msg.push_str(&format!(" ({})", describe_locks(&waiting_lock)));
            }
            let done: Vec<usize> = stops
                .iter()
                .enumerate()
                .filter_map(|(t, s)| matches!(s, Stop::Done).then_some(t))
                .collect();
            if !done.is_empty() {
                msg.push_str(&format!(" (threads {done:?} already terminated)"));
            }
            (DiagCode::BarrierDeadlock, op, msg)
        };
        self.wedges
            .entry((code, op_index))
            .or_insert_with(|| Diagnostic::new(code, op_index, message));
    }
}

/// Explores every sync-granularity interleaving of a CPU body over
/// `geom` × `iterations`.
#[must_use]
pub fn explore_cpu(body: &[CpuOp], geom: Geometry, iterations: usize) -> ExploreReport {
    let streams = cpu_streams(body, geom, iterations);
    let mut search = CpuSearch {
        streams: &streams,
        visited: HashSet::new(),
        wedges: BTreeMap::new(),
        states: 0,
        branches: 0,
        complete: true,
        any_wedge: false,
    };
    search.dfs(vec![0; streams.len()], BTreeMap::new());
    let deadlock_free = search.complete && !search.any_wedge;
    let mut diagnostics: Vec<Diagnostic> = search.wedges.into_values().collect();
    diagnostics.extend(atomicity_pass(body, geom));
    diagnostics.extend(fence_pass_cpu(body, geom));
    let races = if deadlock_free {
        race_replay_cpu(body, geom, iterations)
    } else {
        BTreeMap::new()
    };
    ExploreReport {
        diagnostics,
        races,
        deadlock_free,
        stats: ExploreStats {
            states: search.states,
            branches: search.branches,
            complete: search.complete,
        },
    }
}

// ---------------------------------------------------------------------
// GPU: one deterministic path per divergence assignment.
// ---------------------------------------------------------------------

/// Explores every warp-divergence path assignment of a GPU body.
#[must_use]
pub fn explore_gpu(body: &[GpuOp], geom: Geometry, iterations: usize) -> ExploreReport {
    let shapes: Vec<Vec<TraceEvent>> = body.iter().map(|&op| lower_gpu_op(op, 0)).collect();
    let sites: Vec<usize> = shapes
        .iter()
        .enumerate()
        .filter_map(|(i, s)| match s.first() {
            Some(TraceEvent::Diverge(p)) if *p > 1 => Some(i),
            _ => None,
        })
        .collect();
    let complete = sites.len() <= SITE_CAP;
    let masks: u64 = 1 << sites.len().min(SITE_CAP);
    let mut states = 0u64;
    let mut branches = 0u64;
    // op index of the hazardous barrier -> op index of the divergence.
    let mut hazards: BTreeMap<usize, usize> = BTreeMap::new();
    for mask in 0..masks {
        branches += 1;
        let mut diverged: Option<usize> = None;
        for _ in 0..iterations {
            for (i, shape) in shapes.iter().enumerate() {
                states += 1;
                for ev in shape {
                    match ev {
                        TraceEvent::Diverge(p) => {
                            let site = sites.iter().position(|&s| s == i);
                            let takes = site.is_some_and(|s| mask >> s & 1 == 1);
                            if *p > 1 && takes {
                                diverged = Some(i);
                            }
                        }
                        // Uniform register work and warp-level syncs
                        // are reconvergence points.
                        TraceEvent::Nop | TraceEvent::BarrierWarp => diverged = None,
                        TraceEvent::BarrierBlock => {
                            if let Some(src) = diverged {
                                hazards.entry(i).or_insert(src);
                            }
                            diverged = None;
                        }
                        // Memory traffic and fences execute fine on a
                        // divergent warp (independent thread
                        // scheduling) and do not reconverge it.
                        TraceEvent::Access { .. } | TraceEvent::Fence(_) => {}
                        TraceEvent::BarrierAll
                        | TraceEvent::LockAcquire(_)
                        | TraceEvent::LockRelease(_) => {
                            unreachable!("GPU lowering emits no {ev:?}")
                        }
                    }
                }
            }
        }
    }
    let mut diagnostics: Vec<Diagnostic> = hazards
        .iter()
        .map(|(&bar, &src)| {
            Diagnostic::new(
                DiagCode::BarrierDeadlock,
                Some(bar),
                format!(
                    "block barrier at op #{bar} is reachable with the warp still divergent from \
                     the branch at op #{src}: part of the warp can wait forever"
                ),
            )
        })
        .collect();
    diagnostics.extend(atomicity_pass_gpu(body, geom));
    diagnostics.extend(fence_pass_gpu(body, geom));
    let deadlock_free = complete && hazards.is_empty();
    ExploreReport {
        races: race_replay_gpu(body, geom, iterations),
        diagnostics,
        deadlock_free,
        stats: ExploreStats {
            states,
            branches,
            complete,
        },
    }
}

/// CPU exploration with the default audit geometry and iterations.
#[must_use]
pub fn explore_cpu_body(body: &[CpuOp]) -> ExploreReport {
    explore_cpu(body, Geometry::CPU_AUDIT, AUDIT_ITERATIONS)
}

/// GPU exploration with the default audit geometry and iterations.
#[must_use]
pub fn explore_gpu_body(body: &[GpuOp]) -> ExploreReport {
    explore_gpu(body, Geometry::GPU_AUDIT, AUDIT_ITERATIONS)
}

// ---------------------------------------------------------------------
// The explorer's own race engine: round-lockstep, per-lock clocks, no
// fence edges. Independent of crate::vc on purpose — agreement between
// the two is asserted, not assumed.
// ---------------------------------------------------------------------

type Clock = Vec<u32>;

fn join(dst: &mut Clock, src: &Clock) {
    for (d, s) in dst.iter_mut().zip(src) {
        *d = (*d).max(*s);
    }
}

fn unordered(past: &Clock, now: &Clock, me: usize) -> bool {
    past.iter()
        .zip(now)
        .enumerate()
        .any(|(u, (p, c))| u != me && p > c)
}

#[derive(Default, Clone)]
struct LocState {
    plain_write: Clock,
    plain_read: Clock,
    atomic_write: Clock,
    atomic_read: Clock,
}

struct RaceEngine {
    geom: Geometry,
    clocks: Vec<Clock>,
    locks: BTreeMap<u8, Clock>,
    locs: BTreeMap<Loc, LocState>,
    races: BTreeMap<Loc, RaceFinding>,
}

impl RaceEngine {
    fn new(geom: Geometry) -> Self {
        let n = geom.total_threads();
        let mut clocks = vec![vec![0; n]; n];
        for (t, c) in clocks.iter_mut().enumerate() {
            c[t] = 1;
        }
        RaceEngine {
            geom,
            clocks,
            locks: BTreeMap::new(),
            locs: BTreeMap::new(),
            races: BTreeMap::new(),
        }
    }

    fn n(&self) -> usize {
        self.geom.total_threads()
    }

    fn barrier(&mut self, members: &[usize]) {
        let mut joined = vec![0; self.n()];
        for &t in members {
            join(&mut joined, &self.clocks[t]);
        }
        for &t in members {
            self.clocks[t].copy_from_slice(&joined);
            self.clocks[t][t] += 1;
        }
    }

    fn step(&mut self, t: usize, op_index: usize, ev: TraceEvent) {
        match ev {
            TraceEvent::Access {
                loc,
                kind,
                dtype,
                target,
            } => {
                let n = self.n();
                let lc = self.locs.entry(loc).or_insert_with(|| LocState {
                    plain_write: vec![0; n],
                    plain_read: vec![0; n],
                    atomic_write: vec![0; n],
                    atomic_read: vec![0; n],
                });
                let c = &self.clocks[t];
                let raced = match kind {
                    AccessKind::PlainRead => {
                        unordered(&lc.plain_write, c, t) || unordered(&lc.atomic_write, c, t)
                    }
                    AccessKind::PlainWrite => {
                        unordered(&lc.plain_write, c, t)
                            || unordered(&lc.plain_read, c, t)
                            || unordered(&lc.atomic_write, c, t)
                            || unordered(&lc.atomic_read, c, t)
                    }
                    AccessKind::AtomicRead => unordered(&lc.plain_write, c, t),
                    AccessKind::AtomicWrite => {
                        unordered(&lc.plain_write, c, t) || unordered(&lc.plain_read, c, t)
                    }
                };
                let epoch = c[t];
                match kind {
                    AccessKind::PlainRead => lc.plain_read[t] = epoch,
                    AccessKind::PlainWrite => lc.plain_write[t] = epoch,
                    AccessKind::AtomicRead => lc.atomic_read[t] = epoch,
                    AccessKind::AtomicWrite => lc.atomic_write[t] = epoch,
                }
                if raced {
                    self.races.entry(loc).or_insert(RaceFinding {
                        loc,
                        dtype,
                        target,
                        op_index,
                    });
                }
            }
            TraceEvent::LockAcquire(l) => {
                let n = self.n();
                let lock = self.locks.entry(l).or_insert_with(|| vec![0; n]).clone();
                join(&mut self.clocks[t], &lock);
            }
            TraceEvent::LockRelease(l) => {
                let n = self.n();
                let c = self.clocks[t].clone();
                join(self.locks.entry(l).or_insert_with(|| vec![0; n]), &c);
                self.clocks[t][t] += 1;
            }
            // No fence edges: a fence is not a barrier, and in
            // symmetric SPMD its asymmetric chaining never changes the
            // raced-location set — asserted against crate::vc by the
            // engine-agreement tests.
            TraceEvent::Fence(_) | TraceEvent::Diverge(_) | TraceEvent::Nop => {}
            TraceEvent::BarrierAll | TraceEvent::BarrierBlock | TraceEvent::BarrierWarp => {
                unreachable!("barriers run at op level")
            }
        }
    }

    fn run_op(&mut self, op_index: usize, lower: &dyn Fn(usize) -> Vec<TraceEvent>) {
        let shape = lower(0);
        match shape.first() {
            Some(TraceEvent::BarrierAll) => {
                let all: Vec<usize> = (0..self.n()).collect();
                self.barrier(&all);
            }
            Some(TraceEvent::BarrierBlock) => {
                for b in 0..self.geom.blocks {
                    let members: Vec<usize> = (0..self.n())
                        .filter(|&t| self.geom.block_of(t) == b)
                        .collect();
                    self.barrier(&members);
                }
            }
            Some(TraceEvent::BarrierWarp) => {
                let warps = self.geom.blocks * self.geom.warps_per_block;
                for w in 0..warps {
                    let members: Vec<usize> = (0..self.n())
                        .filter(|&t| self.geom.warp_of(t) == w)
                        .collect();
                    self.barrier(&members);
                }
            }
            _ => {
                for t in 0..self.n() {
                    for ev in lower(t) {
                        self.step(t, op_index, ev);
                    }
                }
            }
        }
    }
}

fn race_replay_cpu(
    body: &[CpuOp],
    geom: Geometry,
    iterations: usize,
) -> BTreeMap<Loc, RaceFinding> {
    let mut e = RaceEngine::new(geom);
    let regions = critical_regions(body);
    for _ in 0..iterations {
        let mut i = 0;
        while i < body.len() {
            if let Some(&(s, end)) = regions.iter().find(|&&(s, _)| s == i) {
                // The outermost lock serializes the whole region:
                // each thread runs it as one super-op, in tid order.
                for t in 0..e.n() {
                    for (off, &op) in body[s..=end].iter().enumerate() {
                        for ev in lower_cpu_op(op, t) {
                            e.step(t, s + off, ev);
                        }
                    }
                }
                i = end + 1;
            } else {
                let op = body[i];
                e.run_op(i, &|tid| lower_cpu_op(op, tid));
                i += 1;
            }
        }
    }
    e.races
}

fn race_replay_gpu(
    body: &[GpuOp],
    geom: Geometry,
    iterations: usize,
) -> BTreeMap<Loc, RaceFinding> {
    let mut e = RaceEngine::new(geom);
    for _ in 0..iterations {
        for (i, &op) in body.iter().enumerate() {
            e.run_op(i, &|tid| lower_gpu_op(op, tid));
        }
    }
    e.races
}

// ---------------------------------------------------------------------
// Straight-line abstract-domain passes: SL009 and SL010.
// ---------------------------------------------------------------------

/// Whether a location is the same element for every thread.
fn is_shared(ev: &TraceEvent) -> Option<Loc> {
    if let TraceEvent::Access {
        loc, dtype, target, ..
    } = ev
    {
        (loc_of(*dtype, *target, 0) == loc_of(*dtype, *target, 1)).then_some(*loc)
    } else {
        None
    }
}

/// Per-thread events of one body iteration (thread 0 is
/// representative: bodies are SPMD-symmetric).
fn one_iteration<Op: Copy>(
    body: &[Op],
    lower: impl Fn(Op, usize) -> Vec<TraceEvent>,
) -> Vec<(usize, TraceEvent)> {
    let mut evs = Vec::new();
    for (i, &op) in body.iter().enumerate() {
        for ev in lower(op, 0) {
            evs.push((i, ev));
        }
    }
    evs
}

/// SL009: a read of a thread-shared element opens a window that a
/// later same-thread write to the element closes; if no lock spans the
/// whole window, another thread's write can interleave. Barriers close
/// windows benignly (staged phases are intentional).
fn atomicity_windows(events: &[(usize, TraceEvent)]) -> Vec<Diagnostic> {
    let mut held: BTreeSet<u8> = BTreeSet::new();
    // loc -> (op index of the opening read, locks held at the read)
    let mut open: BTreeMap<Loc, (usize, BTreeSet<u8>)> = BTreeMap::new();
    let mut out = Vec::new();
    for &(i, ev) in events {
        match ev {
            TraceEvent::LockAcquire(l) => {
                held.insert(l);
            }
            TraceEvent::LockRelease(l) => {
                held.remove(&l);
            }
            TraceEvent::BarrierAll | TraceEvent::BarrierBlock | TraceEvent::BarrierWarp => {
                open.clear();
            }
            TraceEvent::Access { kind, .. } => {
                let Some(loc) = is_shared(&ev) else { continue };
                match kind {
                    AccessKind::PlainRead | AccessKind::AtomicRead => {
                        open.entry(loc).or_insert_with(|| (i, held.clone()));
                    }
                    AccessKind::PlainWrite | AccessKind::AtomicWrite => {
                        if let Some((read_op, read_locks)) = open.remove(&loc) {
                            if read_locks.intersection(&held).next().is_none() {
                                out.push(Diagnostic::new(
                                    DiagCode::AtomicityViolation,
                                    Some(i),
                                    format!(
                                        "read-modify-write of a shared element is split: read at \
                                         op #{read_op}, write at op #{i}, no common lock held \
                                         across the window — another thread's write can \
                                         interleave"
                                    ),
                                ));
                            }
                        }
                    }
                }
            }
            TraceEvent::Fence(_) | TraceEvent::Diverge(_) | TraceEvent::Nop => {}
        }
    }
    out
}

/// SL010: plain stores sit in the store buffer until a *global* fence
/// drains them (the cpu-sim's `Flush`; block-scoped GPU fences do not
/// order across blocks). An atomic publish of a different shared
/// element while stores are pending can be observed before the data.
fn fence_windows(events: &[(usize, TraceEvent)]) -> Vec<Diagnostic> {
    let mut pending: BTreeMap<Loc, usize> = BTreeMap::new();
    let mut out = Vec::new();
    for &(i, ev) in events {
        match ev {
            TraceEvent::Fence(FenceScope::Global) => pending.clear(),
            TraceEvent::Access { loc, kind, .. } => match kind {
                AccessKind::PlainWrite => {
                    pending.insert(loc, i);
                }
                AccessKind::AtomicWrite => {
                    let Some(shared) = is_shared(&ev) else {
                        continue;
                    };
                    if let Some((&sloc, &sop)) = pending.iter().find(|&(&l, _)| l != shared) {
                        out.push(Diagnostic::new(
                            DiagCode::InsufficientFence,
                            Some(i),
                            format!(
                                "atomic publish at op #{i} while the plain store at op #{sop} \
                                 (loc {sloc:?}) is still in the store buffer: only a global \
                                 fence (flush / device-scope threadfence) drains it before the \
                                 publish"
                            ),
                        ));
                        pending.clear();
                    }
                }
                AccessKind::PlainRead | AccessKind::AtomicRead => {}
            },
            _ => {}
        }
    }
    out
}

fn atomicity_pass(body: &[CpuOp], _geom: Geometry) -> Vec<Diagnostic> {
    atomicity_windows(&one_iteration(body, lower_cpu_op))
}

fn atomicity_pass_gpu(body: &[GpuOp], _geom: Geometry) -> Vec<Diagnostic> {
    atomicity_windows(&one_iteration(body, lower_gpu_op))
}

fn fence_pass_cpu(body: &[CpuOp], _geom: Geometry) -> Vec<Diagnostic> {
    fence_windows(&one_iteration(body, lower_cpu_op))
}

fn fence_pass_gpu(body: &[GpuOp], _geom: Geometry) -> Vec<Diagnostic> {
    fence_windows(&one_iteration(body, lower_gpu_op))
}

#[cfg(test)]
mod tests {
    use super::*;
    use syncperf_core::{kernel, DType, Scope, Target};

    fn codes(r: &ExploreReport) -> Vec<&'static str> {
        r.diagnostics.iter().map(|d| d.code.code()).collect()
    }

    #[test]
    fn clean_cpu_bodies_explore_clean() {
        for k in [
            kernel::omp_barrier(),
            kernel::omp_critical_add(DType::I32),
            kernel::omp_critical_section(DType::I32),
            kernel::omp_flush(DType::F64, 4),
        ] {
            for body in [&k.baseline, &k.test] {
                let r = explore_cpu_body(body);
                assert!(r.deadlock_free, "{}: {:?}", k.name, r.diagnostics);
                assert!(r.stats.complete);
                assert!(codes(&r).is_empty(), "{}: {:?}", k.name, r.diagnostics);
            }
        }
    }

    #[test]
    fn barrier_inside_critical_wedges_as_sl007() {
        let body = [
            CpuOp::CriticalBegin { lock: 0 },
            CpuOp::Barrier,
            CpuOp::CriticalEnd { lock: 0 },
        ];
        let r = explore_cpu_body(&body);
        assert!(!r.deadlock_free);
        assert!(r.stats.complete);
        assert!(codes(&r).contains(&"SL007"), "{:?}", r.diagnostics);
    }

    #[test]
    fn unreleased_lock_self_reentry_is_sl008() {
        let body = [CpuOp::CriticalBegin { lock: 0 }];
        let r = explore_cpu_body(&body);
        assert!(!r.deadlock_free);
        assert!(codes(&r).contains(&"SL008"), "{:?}", r.diagnostics);
    }

    #[test]
    fn hand_over_hand_wraparound_is_sl008() {
        // Acquire 0, acquire 1, release 0 — each iteration carries
        // lock 1 into the next iteration's acquire of lock 0, so two
        // threads can grab the locks in opposite orders.
        let body = [
            CpuOp::CriticalBegin { lock: 0 },
            CpuOp::CriticalBegin { lock: 1 },
            CpuOp::CriticalEnd { lock: 0 },
        ];
        let r = explore_cpu_body(&body);
        assert!(!r.deadlock_free);
        assert!(r.stats.complete);
        assert!(codes(&r).contains(&"SL008"), "{:?}", r.diagnostics);
    }

    #[test]
    fn divergent_barrier_far_downstream_is_sl007() {
        // SL002's adjacency window misses this (the read sits between
        // the branch and the barrier); the explorer does not.
        let k = kernel::cuda_divergent_barrier(DType::I32, 2);
        let r = explore_gpu_body(&k.test);
        assert!(codes(&r).contains(&"SL007"), "{:?}", r.diagnostics);
        assert!(!r.deadlock_free);
        // The baseline (no barrier) is clean.
        let rb = explore_gpu_body(&k.baseline);
        assert!(rb.deadlock_free, "{:?}", rb.diagnostics);
    }

    #[test]
    fn reconvergence_points_clear_divergence() {
        // Uniform ALU work between branch and barrier reconverges —
        // the SL002 pinned clean case stays clean under SL007 too.
        let alu = GpuOp::Alu { dtype: DType::I32 };
        let div = GpuOp::Diverge {
            dtype: DType::I32,
            paths: 4,
        };
        let r = explore_gpu_body(&[div, alu, GpuOp::SyncThreads]);
        assert!(r.deadlock_free, "{:?}", r.diagnostics);
        // __syncwarp also reconverges.
        let r = explore_gpu_body(&[div, GpuOp::SyncWarp, GpuOp::SyncThreads]);
        assert!(r.deadlock_free, "{:?}", r.diagnostics);
    }

    #[test]
    fn divergence_wraps_into_next_iteration_barrier() {
        // Diverge as the *last* op: the hazard is the barrier at the
        // top of the next iteration.
        let div = GpuOp::Diverge {
            dtype: DType::I32,
            paths: 2,
        };
        let r = explore_gpu_body(&[GpuOp::SyncThreads, div]);
        assert!(codes(&r).contains(&"SL007"), "{:?}", r.diagnostics);
    }

    #[test]
    fn split_rmw_is_sl009_and_lock_protected_is_not() {
        let read = CpuOp::Read {
            dtype: DType::I32,
            target: Target::SHARED,
        };
        let write = CpuOp::Update {
            dtype: DType::I32,
            target: Target::SHARED,
        };
        let r = explore_cpu_body(&[read, write]);
        assert!(codes(&r).contains(&"SL009"), "{:?}", r.diagnostics);
        // The same window under a lock is a correct critical section.
        let r = explore_cpu_body(&[
            CpuOp::CriticalBegin { lock: 0 },
            read,
            write,
            CpuOp::CriticalEnd { lock: 0 },
        ]);
        assert!(!codes(&r).contains(&"SL009"), "{:?}", r.diagnostics);
        // A barrier between read and write is staging, not a split.
        let r = explore_cpu_body(&[read, CpuOp::Barrier, write]);
        assert!(!codes(&r).contains(&"SL009"), "{:?}", r.diagnostics);
    }

    #[test]
    fn unflushed_publish_is_sl010_and_flushed_is_not() {
        let data = CpuOp::Update {
            dtype: DType::I32,
            target: Target::SHARED,
        };
        let publish = CpuOp::AtomicWrite {
            dtype: DType::I32,
            target: Target::SHARED2,
        };
        let r = explore_cpu_body(&[data, publish]);
        assert!(codes(&r).contains(&"SL010"), "{:?}", r.diagnostics);
        let r = explore_cpu_body(&[data, CpuOp::Flush, publish]);
        assert!(!codes(&r).contains(&"SL010"), "{:?}", r.diagnostics);
    }

    #[test]
    fn block_fence_does_not_drain_for_publish() {
        let data = GpuOp::Update {
            dtype: DType::I32,
            target: Target::SHARED,
        };
        let publish = GpuOp::AtomicExch {
            dtype: DType::I32,
            scope: Scope::Device,
            target: Target::SHARED2,
        };
        let block_fence = GpuOp::ThreadFence {
            scope: Scope::Block,
        };
        let device_fence = GpuOp::ThreadFence {
            scope: Scope::Device,
        };
        let r = explore_gpu_body(&[data, block_fence, publish]);
        assert!(
            r.diagnostics
                .iter()
                .any(|d| d.code == DiagCode::InsufficientFence),
            "{:?}",
            r.diagnostics
        );
        let r = explore_gpu_body(&[data, device_fence, publish]);
        assert!(
            !r.diagnostics
                .iter()
                .any(|d| d.code == DiagCode::InsufficientFence),
            "{:?}",
            r.diagnostics
        );
    }

    #[test]
    fn critical_add_explores_all_grant_orders() {
        // 4 threads x 3 iterations of lock 0: plenty of branch points,
        // all of which complete.
        let k = kernel::omp_critical_add(DType::I32);
        let r = explore_cpu_body(&k.test);
        assert!(r.deadlock_free);
        assert!(r.stats.branches > 0, "{:?}", r.stats);
        assert!(r.stats.complete);
    }
}
