//! Structured diagnostics with stable codes.
//!
//! Every finding of the static linter (and every dynamic cross-check
//! failure) is reported as a [`Diagnostic`] carrying one of the stable
//! [`DiagCode`]s documented in `docs/ANALYSIS.md`. Codes are stable so
//! that allowlists, CI gates, and downstream tooling can match on them.

use std::fmt;

/// Stable diagnostic codes emitted by the sync linter.
///
/// The numeric part never changes meaning; retired codes are not
/// reused. Each code is documented with examples in `docs/ANALYSIS.md`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DiagCode {
    /// `SL001` — data race: a plain (or effectively plain) access to a
    /// thread-shared location conflicts with a write without any
    /// protecting atomicity or barrier ordering.
    DataRace,
    /// `SL002` — barrier divergence: a block-wide barrier executes in
    /// the shadow of a divergent branch, which deadlocks (or is
    /// undefined) on real hardware.
    BarrierDivergence,
    /// `SL003` — scope mismatch: block-scoped and device/system-scoped
    /// atomics address the same target, so the narrower atomics do not
    /// order against the wider ones.
    ScopeMismatch,
    /// `SL004` — fence-free publish: plain updates to a shared array
    /// are never followed by a flush/fence/barrier, so other threads
    /// have no defined point at which they may observe them.
    UnfencedPublish,
    /// `SL005` — redundant synchronization: back-to-back barriers, or a
    /// fence immediately after an equal-or-stronger fence, where the
    /// second can be removed.
    RedundantSync,
    /// `SL006` — floating-point atomic lowered to a CAS retry loop:
    /// correct but costly; the paper recommends integer atomics where
    /// possible.
    FpAtomicCas,
    /// `SL007` — barrier deadlock / arity mismatch: the bounded
    /// exhaustive explorer found a schedule (or a warp-divergence path
    /// assignment) in which some threads wait at a barrier that the
    /// remaining threads can never reach.
    BarrierDeadlock,
    /// `SL008` — lock-order deadlock: the explorer found a schedule in
    /// which every blocked thread waits for a critical-section lock
    /// that is never released (a wait-for cycle, including
    /// self-re-entry of a non-reentrant lock).
    LockCycle,
    /// `SL009` — atomicity violation: a read-modify-write of a
    /// thread-shared location is split across plain ops with no common
    /// lock held across the window, so another thread's write can
    /// interleave between the read and the write.
    AtomicityViolation,
    /// `SL010` — insufficient fence: a plain store is still pending in
    /// the store-buffer abstract domain when a later atomic publish to
    /// a different shared location executes, so other threads can
    /// observe the publish before the data it advertises.
    InsufficientFence,
}

impl DiagCode {
    /// Every code, in numeric order.
    pub const ALL: [DiagCode; 10] = [
        DiagCode::DataRace,
        DiagCode::BarrierDivergence,
        DiagCode::ScopeMismatch,
        DiagCode::UnfencedPublish,
        DiagCode::RedundantSync,
        DiagCode::FpAtomicCas,
        DiagCode::BarrierDeadlock,
        DiagCode::LockCycle,
        DiagCode::AtomicityViolation,
        DiagCode::InsufficientFence,
    ];

    /// The stable code string, e.g. `"SL001"`.
    #[must_use]
    pub const fn code(self) -> &'static str {
        match self {
            DiagCode::DataRace => "SL001",
            DiagCode::BarrierDivergence => "SL002",
            DiagCode::ScopeMismatch => "SL003",
            DiagCode::UnfencedPublish => "SL004",
            DiagCode::RedundantSync => "SL005",
            DiagCode::FpAtomicCas => "SL006",
            DiagCode::BarrierDeadlock => "SL007",
            DiagCode::LockCycle => "SL008",
            DiagCode::AtomicityViolation => "SL009",
            DiagCode::InsufficientFence => "SL010",
        }
    }

    /// Short human-readable title.
    #[must_use]
    pub const fn title(self) -> &'static str {
        match self {
            DiagCode::DataRace => "data race",
            DiagCode::BarrierDivergence => "barrier under divergence",
            DiagCode::ScopeMismatch => "mixed atomic scopes on one target",
            DiagCode::UnfencedPublish => "fence-free publish",
            DiagCode::RedundantSync => "redundant synchronization",
            DiagCode::FpAtomicCas => "floating-point atomic via CAS loop",
            DiagCode::BarrierDeadlock => "barrier deadlock (path-sensitive)",
            DiagCode::LockCycle => "lock-order deadlock cycle",
            DiagCode::AtomicityViolation => "split read-modify-write",
            DiagCode::InsufficientFence => "publish outruns unflushed store",
        }
    }

    /// The severity this code is reported at.
    #[must_use]
    pub const fn severity(self) -> Severity {
        match self {
            DiagCode::DataRace
            | DiagCode::BarrierDivergence
            | DiagCode::ScopeMismatch
            | DiagCode::BarrierDeadlock
            | DiagCode::LockCycle
            | DiagCode::AtomicityViolation => Severity::Error,
            DiagCode::UnfencedPublish | DiagCode::RedundantSync | DiagCode::InsufficientFence => {
                Severity::Warning
            }
            DiagCode::FpAtomicCas => Severity::Info,
        }
    }

    /// A paragraph-length explanation of what the code means, what
    /// evidence triggers it, and which engine produces it. Surfaced by
    /// `sync_lint --explain SL00x` and as the SARIF rule
    /// `fullDescription`.
    #[must_use]
    pub const fn explain(self) -> &'static str {
        match self {
            DiagCode::DataRace => {
                "Two threads access the same element, at least one access writes, and at least \
                 one side is plain (or a block-scoped GPU atomic, which is effectively plain \
                 across blocks), with no barrier or atomicity ordering the pair. Produced by the \
                 static linter from the lowered access streams and independently confirmed by \
                 the vector-clock replay; the two verdicts must agree."
            }
            DiagCode::BarrierDivergence => {
                "A block-wide barrier is the op immediately after a divergent branch, so part of \
                 the warp may arrive while the rest takes another path — a deadlock (or \
                 undefined behavior) on real hardware. This is the fast adjacency pre-pass; the \
                 explorer's SL007 covers the general any-distance case."
            }
            DiagCode::ScopeMismatch => {
                "The same target is accessed with both block-scoped and device/system-scoped \
                 atomics. The narrower scope does not order against the wider one, so the \
                 atomics silently fail to serialize across blocks."
            }
            DiagCode::UnfencedPublish => {
                "Plain updates to a shared array are never followed by a flush, fence, or \
                 barrier anywhere in the body, so no other thread has a defined point at which \
                 it may observe the values."
            }
            DiagCode::RedundantSync => {
                "Back-to-back barriers, or a fence immediately following an equal-or-stronger \
                 fence: the second primitive orders nothing new and only costs time."
            }
            DiagCode::FpAtomicCas => {
                "A floating-point atomic read-modify-write lowers to a compare-and-swap retry \
                 loop on this hardware. It is correct, but under contention it retries; the \
                 paper recommends integer atomics where the algorithm permits."
            }
            DiagCode::BarrierDeadlock => {
                "The bounded exhaustive explorer found a reachable state in which at least one \
                 thread waits at a barrier that the remaining threads can never reach — because \
                 they already terminated (arity mismatch), are blocked on a lock held by a \
                 waiting thread, or (on the GPU) sit on the other side of an unreconverged \
                 divergent branch. Path-sensitive: the barrier may be any distance from the \
                 divergence point, superseding the SL002 adjacency heuristic."
            }
            DiagCode::LockCycle => {
                "The explorer found a reachable state in which every blocked thread waits for a \
                 critical-section lock that will never be released: a lock-order cycle across \
                 threads, or a thread re-entering a non-reentrant lock it already holds \
                 (including across the measurement loop's iteration boundary)."
            }
            DiagCode::AtomicityViolation => {
                "Within one body iteration a thread reads a thread-shared location and later \
                 writes it with plain ops, with no lock held across the whole window. Another \
                 thread's write can interleave between the read and the write, losing an \
                 update. A barrier inside the window closes it: staged phases are not a \
                 violation."
            }
            DiagCode::InsufficientFence => {
                "In the store-buffer abstract domain (the same model the cpu-sim executes), a \
                 plain store is still buffered when a later atomic write publishes a different \
                 shared location. Only a global fence (flush / __threadfence) drains the \
                 buffer, so a reader that observes the publish may still read stale data. \
                 Block-scoped GPU fences do not order across blocks."
            }
        }
    }
}

impl fmt::Display for DiagCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// How serious a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Advisory: correct but likely slower than an alternative.
    Info,
    /// Suspicious: probably unintended, but not undefined behavior.
    Warning,
    /// A correctness bug (race, deadlock, broken atomicity).
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// Which body of a kernel a diagnostic refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum BodyKind {
    /// The baseline loop body.
    Baseline,
    /// The test loop body.
    Test,
}

impl fmt::Display for BodyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BodyKind::Baseline => "baseline",
            BodyKind::Test => "test",
        })
    }
}

/// One linter finding.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// The stable code.
    pub code: DiagCode,
    /// Severity (always `code.severity()`).
    pub severity: Severity,
    /// Index of the primary offending op within the body, when the
    /// finding is tied to one op rather than a whole-body pattern.
    pub op_index: Option<usize>,
    /// Human-readable explanation, including the evidence.
    pub message: String,
}

impl Diagnostic {
    /// Builds a diagnostic for `code` with the canonical severity.
    #[must_use]
    pub fn new(code: DiagCode, op_index: Option<usize>, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: code.severity(),
            op_index,
            message: message.into(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}] {}", self.code, self.severity, self.message)?;
        if let Some(i) = self.op_index {
            write!(f, " (op #{i})")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_unique_and_sequential() {
        let codes: Vec<&str> = DiagCode::ALL.iter().map(|c| c.code()).collect();
        let mut sorted = codes.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), DiagCode::ALL.len());
        for (i, c) in codes.iter().enumerate() {
            assert_eq!(*c, format!("SL{:03}", i + 1));
        }
    }

    #[test]
    fn severity_ordering_supports_gating() {
        assert!(Severity::Error > Severity::Warning);
        assert!(Severity::Warning > Severity::Info);
    }

    #[test]
    fn display_carries_code_and_op() {
        let d = Diagnostic::new(DiagCode::DataRace, Some(2), "plain update on shared int");
        let s = d.to_string();
        assert!(s.contains("SL001") && s.contains("error") && s.contains("op #2"));
    }
}
