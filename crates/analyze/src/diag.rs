//! Structured diagnostics with stable codes.
//!
//! Every finding of the static linter (and every dynamic cross-check
//! failure) is reported as a [`Diagnostic`] carrying one of the stable
//! [`DiagCode`]s documented in `docs/ANALYSIS.md`. Codes are stable so
//! that allowlists, CI gates, and downstream tooling can match on them.

use std::fmt;

/// Stable diagnostic codes emitted by the sync linter.
///
/// The numeric part never changes meaning; retired codes are not
/// reused. Each code is documented with examples in `docs/ANALYSIS.md`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DiagCode {
    /// `SL001` — data race: a plain (or effectively plain) access to a
    /// thread-shared location conflicts with a write without any
    /// protecting atomicity or barrier ordering.
    DataRace,
    /// `SL002` — barrier divergence: a block-wide barrier executes in
    /// the shadow of a divergent branch, which deadlocks (or is
    /// undefined) on real hardware.
    BarrierDivergence,
    /// `SL003` — scope mismatch: block-scoped and device/system-scoped
    /// atomics address the same target, so the narrower atomics do not
    /// order against the wider ones.
    ScopeMismatch,
    /// `SL004` — fence-free publish: plain updates to a shared array
    /// are never followed by a flush/fence/barrier, so other threads
    /// have no defined point at which they may observe them.
    UnfencedPublish,
    /// `SL005` — redundant synchronization: back-to-back barriers, or a
    /// fence immediately after an equal-or-stronger fence, where the
    /// second can be removed.
    RedundantSync,
    /// `SL006` — floating-point atomic lowered to a CAS retry loop:
    /// correct but costly; the paper recommends integer atomics where
    /// possible.
    FpAtomicCas,
}

impl DiagCode {
    /// Every code, in numeric order.
    pub const ALL: [DiagCode; 6] = [
        DiagCode::DataRace,
        DiagCode::BarrierDivergence,
        DiagCode::ScopeMismatch,
        DiagCode::UnfencedPublish,
        DiagCode::RedundantSync,
        DiagCode::FpAtomicCas,
    ];

    /// The stable code string, e.g. `"SL001"`.
    #[must_use]
    pub const fn code(self) -> &'static str {
        match self {
            DiagCode::DataRace => "SL001",
            DiagCode::BarrierDivergence => "SL002",
            DiagCode::ScopeMismatch => "SL003",
            DiagCode::UnfencedPublish => "SL004",
            DiagCode::RedundantSync => "SL005",
            DiagCode::FpAtomicCas => "SL006",
        }
    }

    /// Short human-readable title.
    #[must_use]
    pub const fn title(self) -> &'static str {
        match self {
            DiagCode::DataRace => "data race",
            DiagCode::BarrierDivergence => "barrier under divergence",
            DiagCode::ScopeMismatch => "mixed atomic scopes on one target",
            DiagCode::UnfencedPublish => "fence-free publish",
            DiagCode::RedundantSync => "redundant synchronization",
            DiagCode::FpAtomicCas => "floating-point atomic via CAS loop",
        }
    }

    /// The severity this code is reported at.
    #[must_use]
    pub const fn severity(self) -> Severity {
        match self {
            DiagCode::DataRace | DiagCode::BarrierDivergence | DiagCode::ScopeMismatch => {
                Severity::Error
            }
            DiagCode::UnfencedPublish | DiagCode::RedundantSync => Severity::Warning,
            DiagCode::FpAtomicCas => Severity::Info,
        }
    }
}

impl fmt::Display for DiagCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// How serious a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Advisory: correct but likely slower than an alternative.
    Info,
    /// Suspicious: probably unintended, but not undefined behavior.
    Warning,
    /// A correctness bug (race, deadlock, broken atomicity).
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// Which body of a kernel a diagnostic refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum BodyKind {
    /// The baseline loop body.
    Baseline,
    /// The test loop body.
    Test,
}

impl fmt::Display for BodyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BodyKind::Baseline => "baseline",
            BodyKind::Test => "test",
        })
    }
}

/// One linter finding.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// The stable code.
    pub code: DiagCode,
    /// Severity (always `code.severity()`).
    pub severity: Severity,
    /// Index of the primary offending op within the body, when the
    /// finding is tied to one op rather than a whole-body pattern.
    pub op_index: Option<usize>,
    /// Human-readable explanation, including the evidence.
    pub message: String,
}

impl Diagnostic {
    /// Builds a diagnostic for `code` with the canonical severity.
    #[must_use]
    pub fn new(code: DiagCode, op_index: Option<usize>, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: code.severity(),
            op_index,
            message: message.into(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}] {}", self.code, self.severity, self.message)?;
        if let Some(i) = self.op_index {
            write!(f, " (op #{i})")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_unique_and_sequential() {
        let codes: Vec<&str> = DiagCode::ALL.iter().map(|c| c.code()).collect();
        let mut sorted = codes.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), DiagCode::ALL.len());
        for (i, c) in codes.iter().enumerate() {
            assert_eq!(*c, format!("SL{:03}", i + 1));
        }
    }

    #[test]
    fn severity_ordering_supports_gating() {
        assert!(Severity::Error > Severity::Warning);
        assert!(Severity::Warning > Severity::Info);
    }

    #[test]
    fn display_carries_code_and_op() {
        let d = Diagnostic::new(DiagCode::DataRace, Some(2), "plain update on shared int");
        let s = d.to_string();
        assert!(s.contains("SL001") && s.contains("error") && s.contains("op #2"));
    }
}
