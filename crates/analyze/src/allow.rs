//! Allowlist for intentionally-flagged built-in kernels.
//!
//! Several registry kernels *deliberately* contain patterns the linter
//! flags — the `omp_barrier` test body is two back-to-back barriers
//! because the barrier is the thing being measured. The CI gate treats
//! a diagnostic as a failure only when no allowlist entry covers it;
//! every entry carries the reason it exists. Entries are documented in
//! `docs/ANALYSIS.md`.

use crate::diag::{BodyKind, DiagCode, Diagnostic};

/// One allowlist entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllowEntry {
    /// Kernel-name pattern; `*` matches any (possibly empty) substring.
    pub kernel_glob: &'static str,
    /// The code this entry tolerates.
    pub code: DiagCode,
    /// Restrict to one body of the kernel, or `None` for either.
    pub body: Option<BodyKind>,
    /// Why the diagnostic is intentional.
    pub reason: &'static str,
}

/// Minimal `*`-glob match (no character classes, no escaping — kernel
/// names are plain identifiers).
#[must_use]
pub fn glob_match(pattern: &str, name: &str) -> bool {
    fn inner(p: &[u8], n: &[u8]) -> bool {
        match p.first() {
            None => n.is_empty(),
            Some(b'*') => (0..=n.len()).any(|skip| inner(&p[1..], &n[skip..])),
            Some(c) => n.first() == Some(c) && inner(&p[1..], &n[1..]),
        }
    }
    inner(pattern.as_bytes(), name.as_bytes())
}

impl AllowEntry {
    /// Whether this entry covers `diag` on body `body` of kernel
    /// `kernel`.
    #[must_use]
    pub fn covers(&self, kernel: &str, body: BodyKind, diag: &Diagnostic) -> bool {
        self.code == diag.code
            && self.body.is_none_or(|b| b == body)
            && glob_match(self.kernel_glob, kernel)
    }
}

/// The built-in allowlist for the kernel registry.
///
/// Measurement kernels isolate a primitive by running it back-to-back
/// (`SL005`) or by measuring the *absence* of a fence against its
/// presence (`SL004` on the baselines); the float-atomic kernels exist
/// precisely to measure the CAS-loop cost (`SL006`).
pub const BUILTIN: &[AllowEntry] = &[
    AllowEntry {
        kernel_glob: "omp_barrier",
        code: DiagCode::RedundantSync,
        body: Some(BodyKind::Test),
        reason: "the test body is barrier;barrier by construction — the second barrier is the measured primitive",
    },
    AllowEntry {
        kernel_glob: "cuda_syncthreads",
        code: DiagCode::RedundantSync,
        body: Some(BodyKind::Test),
        reason: "the test body is syncthreads;syncthreads by construction",
    },
    AllowEntry {
        kernel_glob: "cuda_syncwarp",
        code: DiagCode::RedundantSync,
        body: Some(BodyKind::Test),
        reason: "the test body is syncwarp;syncwarp by construction",
    },
    AllowEntry {
        kernel_glob: "cuda_syncthreads_*",
        code: DiagCode::RedundantSync,
        body: Some(BodyKind::Test),
        reason: "reducing-barrier kernels substitute the reduce variant; harmless if flagged",
    },
    AllowEntry {
        kernel_glob: "omp_flush_*",
        code: DiagCode::UnfencedPublish,
        body: Some(BodyKind::Baseline),
        reason: "the baseline intentionally omits the flush; the test body adds it — their difference is the flush cost",
    },
    AllowEntry {
        kernel_glob: "cuda_threadfence_*",
        code: DiagCode::UnfencedPublish,
        body: Some(BodyKind::Baseline),
        reason: "the baseline intentionally omits the fence; the test body adds it",
    },
    AllowEntry {
        kernel_glob: "omp_atomicadd_*_float*",
        code: DiagCode::FpAtomicCas,
        body: None,
        reason: "the float atomic-update kernels exist to measure the CAS-loop cost (paper Fig. 2)",
    },
    AllowEntry {
        kernel_glob: "omp_atomicadd_*_double*",
        code: DiagCode::FpAtomicCas,
        body: None,
        reason: "the double atomic-update kernels exist to measure the CAS-loop cost (paper Fig. 2)",
    },
    AllowEntry {
        kernel_glob: "omp_atomiccapture_*_float*",
        code: DiagCode::FpAtomicCas,
        body: None,
        reason: "atomic-capture float kernels measure the same CAS lowering",
    },
    AllowEntry {
        kernel_glob: "omp_atomiccapture_*_double*",
        code: DiagCode::FpAtomicCas,
        body: None,
        reason: "atomic-capture double kernels measure the same CAS lowering",
    },
];

/// The allowlist entry covering `diag`, if any.
#[must_use]
pub fn allowed_by(kernel: &str, body: BodyKind, diag: &Diagnostic) -> Option<&'static AllowEntry> {
    BUILTIN.iter().find(|e| e.covers(kernel, body, diag))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn glob_semantics() {
        assert!(glob_match("omp_flush_*", "omp_flush_double_s4"));
        assert!(glob_match("*", ""));
        assert!(glob_match("omp_barrier", "omp_barrier"));
        assert!(!glob_match("omp_barrier", "omp_barrier2"));
        assert!(!glob_match("cuda_*", "omp_flush_int_s1"));
        assert!(glob_match(
            "omp_atomicadd_*_float*",
            "omp_atomicadd_scalar_float"
        ));
        assert!(glob_match(
            "omp_atomicadd_*_float*",
            "omp_atomicadd_array_float_s8"
        ));
    }

    #[test]
    fn entry_respects_body_restriction() {
        let d = Diagnostic::new(DiagCode::UnfencedPublish, Some(0), "x");
        assert!(allowed_by("omp_flush_double_s4", BodyKind::Baseline, &d).is_some());
        assert!(allowed_by("omp_flush_double_s4", BodyKind::Test, &d).is_none());
    }

    #[test]
    fn races_are_never_allowlisted() {
        for e in BUILTIN {
            assert_ne!(e.code, DiagCode::DataRace);
            assert_ne!(e.code, DiagCode::BarrierDivergence);
            assert_ne!(e.code, DiagCode::ScopeMismatch);
            // Explorer verdicts are proofs over the bounded model, not
            // heuristics — suppressing one hides a real deadlock/race.
            assert_ne!(e.code, DiagCode::BarrierDeadlock);
            assert_ne!(e.code, DiagCode::LockCycle);
            assert_ne!(e.code, DiagCode::AtomicityViolation);
        }
    }
}
