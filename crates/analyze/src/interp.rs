//! Small-step abstract interpreter over the microkernel IR.
//!
//! This module is the substrate of the bounded exhaustive explorer
//! ([`crate::explore`]): it flattens a body into per-thread event
//! *streams* using the very same lowering ([`crate::trace`]) the
//! simulators and the vector-clock replay consume — so the explorer
//! cannot drift from them — and provides the *macro-advance* step that
//! is the explorer's partial-order reduction.
//!
//! In the abstract domain only two event classes interact across
//! threads in a way that affects reachability: **lock acquires**
//! (a scheduling choice — who gets the lock next) and **barriers**
//! (a rendezvous). Everything else (accesses, fences, divergence
//! markers, register work, and even lock *releases*, which are always
//! enabled) is thread-local, so [`advance`] consumes events greedily
//! until the next visible stop. Exploring only the visible stops
//! visits exactly one representative of every Mazurkiewicz trace.

use std::collections::BTreeMap;

use syncperf_core::CpuOp;

use crate::trace::{lower_cpu_op, Geometry, TraceEvent};

/// One thread's flattened event stream: `(body_op_index, event)` per
/// lowered event, over every replayed body iteration.
pub type Stream = Vec<(usize, TraceEvent)>;

/// Flattens `body` into per-thread event streams over `geom` for
/// `iterations` body repetitions.
#[must_use]
pub fn cpu_streams(body: &[CpuOp], geom: Geometry, iterations: usize) -> Vec<Stream> {
    (0..geom.total_threads())
        .map(|tid| {
            let mut s = Stream::new();
            for _ in 0..iterations {
                for (i, &op) in body.iter().enumerate() {
                    for ev in lower_cpu_op(op, tid) {
                        s.push((i, ev));
                    }
                }
            }
            s
        })
        .collect()
}

/// Why a thread's macro-advance stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stop {
    /// The stream is exhausted.
    Done,
    /// The thread is about to acquire `lock` (a scheduling choice
    /// point — the explorer decides who gets it).
    Acquire {
        /// The lock the thread is waiting for.
        lock: u8,
        /// Body op index of the acquiring op.
        op_index: usize,
    },
    /// The thread arrived at an all-thread barrier.
    Barrier {
        /// Body op index of the barrier op.
        op_index: usize,
    },
}

/// Advances thread `tid` through its stream, consuming thread-local
/// events, until the next visible stop. `pos` is the stream cursor and
/// is left *on* the stopping event (re-entrant: calling again without
/// consuming the stop returns the same [`Stop`]).
///
/// Lock releases are always enabled, so they execute eagerly here:
/// releasing a lock the thread does not hold is a permissive no-op
/// (the runtime's `unset` behaves the same way).
pub fn advance(
    stream: &[(usize, TraceEvent)],
    pos: &mut usize,
    tid: usize,
    locks: &mut BTreeMap<u8, usize>,
) -> Stop {
    while let Some(&(op_index, ev)) = stream.get(*pos) {
        match ev {
            TraceEvent::LockAcquire(lock) => return Stop::Acquire { lock, op_index },
            TraceEvent::BarrierAll | TraceEvent::BarrierBlock | TraceEvent::BarrierWarp => {
                return Stop::Barrier { op_index }
            }
            TraceEvent::LockRelease(lock) => {
                if locks.get(&lock) == Some(&tid) {
                    locks.remove(&lock);
                }
                *pos += 1;
            }
            TraceEvent::Access { .. }
            | TraceEvent::Fence(_)
            | TraceEvent::Diverge(_)
            | TraceEvent::Nop => *pos += 1,
        }
    }
    Stop::Done
}

/// Finds the balanced, barrier-free critical regions of a CPU body:
/// maximal spans `[begin..=end]` where a `CriticalBegin` opens at
/// depth 0 and the matching `CriticalEnd` returns to depth 0, with no
/// `Barrier` inside. Such a region executes atomically per thread (the
/// outermost lock serializes it), so replays may treat it as one
/// per-thread super-op. Regions containing a barrier, or bodies whose
/// bracketing never balances, are not groupable — those wedge at run
/// time, which the explorer reports separately.
#[must_use]
pub fn critical_regions(body: &[CpuOp]) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let mut depth = 0usize;
    let mut start = 0usize;
    let mut has_barrier = false;
    for (i, op) in body.iter().enumerate() {
        match op {
            CpuOp::CriticalBegin { .. } => {
                if depth == 0 {
                    start = i;
                    has_barrier = false;
                }
                depth += 1;
            }
            CpuOp::CriticalEnd { .. } => {
                // An End with no open Begin: unbalanced, nothing groups.
                if depth == 0 {
                    return Vec::new();
                }
                depth -= 1;
                if depth == 0 && !has_barrier {
                    regions.push((start, i));
                }
            }
            CpuOp::Barrier if depth > 0 => has_barrier = true,
            _ => {}
        }
    }
    regions
}

#[cfg(test)]
mod tests {
    use super::*;
    use syncperf_core::{DType, Target};

    fn upd() -> CpuOp {
        CpuOp::Update {
            dtype: DType::I32,
            target: Target::SHARED,
        }
    }

    #[test]
    fn regions_find_balanced_spans() {
        let body = [
            CpuOp::CriticalBegin { lock: 0 },
            upd(),
            CpuOp::CriticalEnd { lock: 0 },
            CpuOp::Barrier,
            CpuOp::CriticalBegin { lock: 1 },
            CpuOp::CriticalEnd { lock: 1 },
        ];
        assert_eq!(critical_regions(&body), vec![(0, 2), (4, 5)]);
    }

    #[test]
    fn region_with_inner_barrier_is_not_groupable() {
        let body = [
            CpuOp::CriticalBegin { lock: 0 },
            CpuOp::Barrier,
            CpuOp::CriticalEnd { lock: 0 },
        ];
        assert!(critical_regions(&body).is_empty());
    }

    #[test]
    fn unbalanced_bodies_do_not_group() {
        assert!(critical_regions(&[CpuOp::CriticalBegin { lock: 0 }]).is_empty());
        assert!(critical_regions(&[CpuOp::CriticalEnd { lock: 0 }, upd()]).is_empty());
        // Nesting balances through depth, regardless of lock ids.
        let nested = [
            CpuOp::CriticalBegin { lock: 0 },
            CpuOp::CriticalBegin { lock: 1 },
            upd(),
            CpuOp::CriticalEnd { lock: 1 },
            CpuOp::CriticalEnd { lock: 0 },
        ];
        assert_eq!(critical_regions(&nested), vec![(0, 4)]);
    }

    #[test]
    fn advance_consumes_local_events_and_stops_at_sync() {
        let body = [
            upd(),
            CpuOp::Flush,
            CpuOp::CriticalAdd {
                dtype: DType::I32,
                target: Target::SHARED,
            },
        ];
        let streams = cpu_streams(&body, Geometry::CPU_AUDIT, 1);
        let mut locks = BTreeMap::new();
        let mut pos = 0;
        // Stops on the CriticalAdd's acquire, having consumed the
        // update and the fence.
        let stop = advance(&streams[0], &mut pos, 0, &mut locks);
        assert_eq!(
            stop,
            Stop::Acquire {
                lock: 0,
                op_index: 2
            }
        );
        // Re-entrant: same answer until the caller consumes it.
        assert_eq!(advance(&streams[0], &mut pos, 0, &mut locks), stop);
        // Granting and stepping past runs the protected write and the
        // release to the end of the stream.
        locks.insert(0, 0);
        pos += 1;
        assert_eq!(advance(&streams[0], &mut pos, 0, &mut locks), Stop::Done);
        assert!(locks.is_empty(), "release freed the lock eagerly");
    }
}
