//! Lowering from kernel IR to per-thread memory/synchronization traces.
//!
//! Both halves of the analyzer speak this vocabulary: the static linter
//! reasons about the events a body *would* generate, and the dynamic
//! detector ([`crate::vc`]) replays the events each thread *does*
//! generate — the same per-thread access streams the cpu-sim MESI
//! engine replays (element-granular rather than line-granular, because
//! races are a property of memory elements, not cache lines).
//!
//! The lowering fixes the conventions the two halves must share:
//!
//! * **Block-scoped atomics on device-visible memory are plain
//!   accesses.** Every replay spans at least two blocks, and an
//!   `atomicAdd_block()` provides no atomicity against another block's
//!   accesses, so cross-block it behaves like an unordered update.
//! * **`Diverge` taints the immediately following op.** The flat IR
//!   serializes a divergent region into a single `Diverge` op; the op
//!   right after it is treated as still under the divergent mask, which
//!   is how `if (divergent) __syncthreads();` is expressed.
//! * **Warp-synchronous ops** (`Shfl`, `Vote`, `WarpReduce`,
//!   `SyncWarp`) are warp barriers; they order nothing across warps.

use syncperf_core::{CpuOp, DType, GpuOp, Scope, Target};

/// One memory element of the simulated address space.
///
/// Mirrors `syncperf_cpu_sim::memline::line_of` but at element
/// granularity: scalars and each `(dtype, array)` pair live in disjoint
/// regions, and a private element sits at index `tid × stride`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Loc {
    region: u32,
    elem: u64,
}

const fn dtype_idx(dtype: DType) -> u32 {
    match dtype {
        DType::I32 => 0,
        DType::U64 => 1,
        DType::F32 => 2,
        DType::F64 => 3,
    }
}

/// The element `(dtype, target)` resolves to for thread `tid`.
#[must_use]
pub fn loc_of(dtype: DType, target: Target, tid: usize) -> Loc {
    match target {
        Target::SharedScalar(i) => Loc {
            region: 0x1000 + u32::from(i),
            elem: u64::from(dtype_idx(dtype)),
        },
        Target::Private { array, stride } => Loc {
            region: 0x2000 + dtype_idx(dtype) * 16 + u32::from(array),
            elem: tid as u64 * u64::from(stride),
        },
    }
}

/// How an access touches its element.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Non-atomic load.
    PlainRead,
    /// Non-atomic store / read-modify-write.
    PlainWrite,
    /// Atomic load.
    AtomicRead,
    /// Atomic store / read-modify-write (including lock-protected).
    AtomicWrite,
}

impl AccessKind {
    /// Whether the access writes the element.
    #[must_use]
    pub const fn is_write(self) -> bool {
        matches!(self, AccessKind::PlainWrite | AccessKind::AtomicWrite)
    }

    /// Whether the access is atomic.
    #[must_use]
    pub const fn is_atomic(self) -> bool {
        matches!(self, AccessKind::AtomicRead | AccessKind::AtomicWrite)
    }
}

/// Fence width in the replay's two-level (block / device) hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FenceScope {
    /// Orders only against threads of the same block.
    Block,
    /// Orders against every thread on the device (and host).
    Global,
}

/// One lowered per-thread event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A memory access to `loc`. The originating `(dtype, target)` is
    /// kept so reports and the MESI cross-check can name the location.
    Access {
        /// The element accessed.
        loc: Loc,
        /// Access kind after scope lowering.
        kind: AccessKind,
        /// Operand type.
        dtype: DType,
        /// IR-level target.
        target: Target,
    },
    /// Barrier across every replayed thread (`#pragma omp barrier`).
    BarrierAll,
    /// Barrier across the thread's block (`__syncthreads()` family).
    BarrierBlock,
    /// Barrier across the thread's warp.
    BarrierWarp,
    /// Memory fence of the given width (`flush` / `__threadfence*`).
    Fence(FenceScope),
    /// Acquire the critical-section lock with the given id. The
    /// unnamed `#pragma omp critical` lock is id 0; named sections
    /// ([`CpuOp::CriticalBegin`]) carry their own ids.
    LockAcquire(u8),
    /// Release the critical-section lock with the given id.
    LockRelease(u8),
    /// Divergent branch: taints the next op slot with `paths`-way
    /// divergence.
    Diverge(u32),
    /// No observable effect (register ALU work).
    Nop,
}

/// Lowers one CPU op to the events thread `tid` generates for it.
#[must_use]
pub fn lower_cpu_op(op: CpuOp, tid: usize) -> Vec<TraceEvent> {
    let access = |dtype, target, kind| TraceEvent::Access {
        loc: loc_of(dtype, target, tid),
        kind,
        dtype,
        target,
    };
    match op {
        CpuOp::Barrier => vec![TraceEvent::BarrierAll],
        CpuOp::Flush => vec![TraceEvent::Fence(FenceScope::Global)],
        CpuOp::Read { dtype, target } => vec![access(dtype, target, AccessKind::PlainRead)],
        CpuOp::Update { dtype, target } => vec![access(dtype, target, AccessKind::PlainWrite)],
        CpuOp::AtomicRead { dtype, target } => vec![access(dtype, target, AccessKind::AtomicRead)],
        CpuOp::AtomicUpdate { dtype, target }
        | CpuOp::AtomicCapture { dtype, target }
        | CpuOp::AtomicWrite { dtype, target } => {
            vec![access(dtype, target, AccessKind::AtomicWrite)]
        }
        CpuOp::CriticalAdd { dtype, target } => vec![
            TraceEvent::LockAcquire(0),
            access(dtype, target, AccessKind::AtomicWrite),
            TraceEvent::LockRelease(0),
        ],
        CpuOp::CriticalBegin { lock } => vec![TraceEvent::LockAcquire(lock)],
        CpuOp::CriticalEnd { lock } => vec![TraceEvent::LockRelease(lock)],
    }
}

/// Lowers one GPU op to the events thread `tid` generates for it.
///
/// Block-scoped atomics lower to *plain* accesses (see module docs):
/// the replay always spans multiple blocks, and so does every
/// device-visible location they could legally target.
#[must_use]
pub fn lower_gpu_op(op: GpuOp, tid: usize) -> Vec<TraceEvent> {
    let access = |dtype, target, kind| TraceEvent::Access {
        loc: loc_of(dtype, target, tid),
        kind,
        dtype,
        target,
    };
    let atomic_kind = |scope| match scope {
        Scope::Block => AccessKind::PlainWrite,
        Scope::Device | Scope::System => AccessKind::AtomicWrite,
    };
    match op {
        GpuOp::SyncThreads | GpuOp::SyncThreadsReduce { .. } => vec![TraceEvent::BarrierBlock],
        GpuOp::SyncWarp | GpuOp::Shfl { .. } | GpuOp::Vote { .. } | GpuOp::WarpReduce { .. } => {
            vec![TraceEvent::BarrierWarp]
        }
        GpuOp::ThreadFence { scope } => vec![TraceEvent::Fence(match scope {
            Scope::Block => FenceScope::Block,
            Scope::Device | Scope::System => FenceScope::Global,
        })],
        GpuOp::AtomicAdd {
            dtype,
            scope,
            target,
        }
        | GpuOp::AtomicCas {
            dtype,
            scope,
            target,
        }
        | GpuOp::AtomicExch {
            dtype,
            scope,
            target,
        }
        | GpuOp::AtomicMax {
            dtype,
            scope,
            target,
        }
        | GpuOp::AtomicRmw {
            dtype,
            scope,
            target,
            ..
        } => vec![access(dtype, target, atomic_kind(scope))],
        GpuOp::Update { dtype, target } => vec![access(dtype, target, AccessKind::PlainWrite)],
        GpuOp::Read { dtype, target } => vec![access(dtype, target, AccessKind::PlainRead)],
        GpuOp::Alu { .. } => vec![TraceEvent::Nop],
        GpuOp::Diverge { paths, .. } => vec![TraceEvent::Diverge(paths)],
    }
}

/// Thread geometry of a replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Geometry {
    /// Number of blocks (1 for CPU teams).
    pub blocks: usize,
    /// Warps per block (irrelevant for CPU bodies, which never emit
    /// warp barriers).
    pub warps_per_block: usize,
    /// Threads (lanes) per warp.
    pub lanes_per_warp: usize,
}

impl Geometry {
    /// Default CPU replay geometry: one team of four threads.
    pub const CPU_AUDIT: Geometry = Geometry {
        blocks: 1,
        warps_per_block: 1,
        lanes_per_warp: 4,
    };

    /// Default GPU replay geometry: two blocks of two warps of four
    /// lanes. Two blocks so cross-block hazards (block-scoped atomics,
    /// `__syncthreads()` non-ordering) are observable; two warps so
    /// `__syncwarp()` never masquerades as a block barrier.
    pub const GPU_AUDIT: Geometry = Geometry {
        blocks: 2,
        warps_per_block: 2,
        lanes_per_warp: 4,
    };

    /// Total threads.
    #[must_use]
    pub const fn total_threads(&self) -> usize {
        self.blocks * self.warps_per_block * self.lanes_per_warp
    }

    /// Threads per block.
    #[must_use]
    pub const fn threads_per_block(&self) -> usize {
        self.warps_per_block * self.lanes_per_warp
    }

    /// The block a global thread id belongs to.
    #[must_use]
    pub const fn block_of(&self, tid: usize) -> usize {
        tid / self.threads_per_block()
    }

    /// The global warp id a thread belongs to.
    #[must_use]
    pub const fn warp_of(&self, tid: usize) -> usize {
        tid / self.lanes_per_warp
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_scalar_loc_is_tid_independent() {
        let a = loc_of(DType::I32, Target::SHARED, 0);
        let b = loc_of(DType::I32, Target::SHARED, 7);
        assert_eq!(a, b);
        assert_ne!(a, loc_of(DType::I32, Target::SHARED2, 0));
        assert_ne!(a, loc_of(DType::F64, Target::SHARED, 0));
    }

    #[test]
    fn private_elements_disjoint_unless_stride_zero() {
        let a = loc_of(DType::I32, Target::private(1), 0);
        let b = loc_of(DType::I32, Target::private(1), 1);
        assert_ne!(a, b);
        let z0 = loc_of(DType::I32, Target::private(0), 0);
        let z9 = loc_of(DType::I32, Target::private(0), 9);
        assert_eq!(z0, z9);
    }

    #[test]
    fn critical_lowering_brackets_the_write() {
        let ev = lower_cpu_op(
            CpuOp::CriticalAdd {
                dtype: DType::I32,
                target: Target::SHARED,
            },
            0,
        );
        assert_eq!(ev.len(), 3);
        assert_eq!(ev[0], TraceEvent::LockAcquire(0));
        assert!(matches!(
            ev[1],
            TraceEvent::Access {
                kind: AccessKind::AtomicWrite,
                ..
            }
        ));
        assert_eq!(ev[2], TraceEvent::LockRelease(0));
    }

    #[test]
    fn block_scoped_atomic_lowers_to_plain_write() {
        let ev = lower_gpu_op(
            GpuOp::AtomicAdd {
                dtype: DType::I32,
                scope: Scope::Block,
                target: Target::SHARED,
            },
            3,
        );
        assert!(matches!(
            ev[0],
            TraceEvent::Access {
                kind: AccessKind::PlainWrite,
                ..
            }
        ));
        let ev = lower_gpu_op(
            GpuOp::AtomicAdd {
                dtype: DType::I32,
                scope: Scope::Device,
                target: Target::SHARED,
            },
            3,
        );
        assert!(matches!(
            ev[0],
            TraceEvent::Access {
                kind: AccessKind::AtomicWrite,
                ..
            }
        ));
    }

    #[test]
    fn geometry_maps_threads() {
        let g = Geometry::GPU_AUDIT;
        assert_eq!(g.total_threads(), 16);
        assert_eq!(g.block_of(0), 0);
        assert_eq!(g.block_of(8), 1);
        assert_eq!(g.warp_of(3), 0);
        assert_eq!(g.warp_of(4), 1);
    }
}
