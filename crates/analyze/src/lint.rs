//! The static sync linter.
//!
//! Each rule reasons over the same lowering ([`crate::trace`]) the
//! dynamic detector replays, which is what makes the static verdicts
//! checkable: for every body, `SL001` findings must name exactly the
//! locations the vector-clock replay reports as raced, and `SL002` must
//! fire iff the replay observes a barrier executing under divergence
//! (see [`crate::agree`]).
//!
//! The race rule exploits the SPMD structure of kernel bodies — every
//! thread runs the same op sequence — so "is there a racing pair?"
//! reduces to per-location bookkeeping over one body:
//!
//! * A **plain write** to a thread-shared location always races:
//!   every thread performs that write at the same position, and no
//!   amount of barriers orders two different threads' instances of the
//!   same op occurrence.
//! * An **atomic write plus a plain read** races unless a barrier
//!   separates them on *both* sides of the loop — i.e. unless they sit
//!   in different segments of the circular, barrier-delimited body.
//!   Fences don't help: a fence chain is asymmetric and always leaves
//!   at least one cross-thread pair unordered.
//! * On the GPU the segment refinement is unavailable entirely:
//!   `__syncthreads()` orders nothing across blocks, and every
//!   device-visible location is reachable from at least two blocks.

use std::collections::{BTreeMap, BTreeSet};

use syncperf_core::{CpuOp, DType, GpuOp, Scope, Target};

use crate::diag::{DiagCode, Diagnostic};
use crate::trace::{lower_cpu_op, lower_gpu_op, AccessKind, Loc, TraceEvent};

/// Formats a target for diagnostics.
fn describe(dtype: DType, target: Target) -> String {
    match target {
        Target::SharedScalar(i) => format!("shared scalar #{i} ({dtype})"),
        Target::Private { array, stride } => {
            format!("array {array} at stride {stride} ({dtype})")
        }
    }
}

/// Per-location access indexes gathered from one body.
#[derive(Debug)]
struct LocAccesses {
    dtype: DType,
    target: Target,
    plain_writes: Vec<usize>,
    plain_reads: Vec<usize>,
    atomic_writes: Vec<usize>,
}

/// Collects thread-shared accesses per location. The lowering for
/// thread 0 is representative: thread-shared locations resolve to the
/// same element for every tid.
fn collect_shared<F>(len: usize, lower: F) -> BTreeMap<Loc, LocAccesses>
where
    F: Fn(usize) -> Vec<TraceEvent>,
{
    let mut map: BTreeMap<Loc, LocAccesses> = BTreeMap::new();
    for i in 0..len {
        for ev in lower(i) {
            if let TraceEvent::Access {
                loc,
                kind,
                dtype,
                target,
            } = ev
            {
                if !target.is_thread_shared() {
                    continue;
                }
                let acc = map.entry(loc).or_insert_with(|| LocAccesses {
                    dtype,
                    target,
                    plain_writes: Vec::new(),
                    plain_reads: Vec::new(),
                    atomic_writes: Vec::new(),
                });
                match kind {
                    AccessKind::PlainWrite => acc.plain_writes.push(i),
                    AccessKind::PlainRead => acc.plain_reads.push(i),
                    AccessKind::AtomicWrite => acc.atomic_writes.push(i),
                    // Atomic reads race only against plain writes, and
                    // any plain write already races on its own.
                    AccessKind::AtomicRead => {}
                }
            }
        }
    }
    map
}

/// One race verdict: the raced location plus the op to point at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct StaticRace {
    loc: Loc,
    dtype: DType,
    target: Target,
    op_index: usize,
}

/// CPU race analysis. `barriers` are the body indexes of `Barrier` ops;
/// the body is circular (it is run in a loop), so segments wrap.
fn cpu_races(body: &[CpuOp]) -> Vec<StaticRace> {
    let barriers: Vec<usize> = body
        .iter()
        .enumerate()
        .filter(|(_, op)| matches!(op, CpuOp::Barrier))
        .map(|(i, _)| i)
        .collect();
    // Circular segment id of a non-barrier op index: ops before the
    // first barrier and after the last barrier share a segment.
    let seg = |idx: usize| -> usize {
        if barriers.is_empty() {
            0
        } else {
            barriers.iter().take_while(|&&b| b < idx).count() % barriers.len()
        }
    };
    let shared = collect_shared(body.len(), |i| lower_cpu_op(body[i], 0));
    let mut races = Vec::new();
    for (loc, acc) in shared {
        if let Some(&w) = acc.plain_writes.first() {
            races.push(StaticRace {
                loc,
                dtype: acc.dtype,
                target: acc.target,
                op_index: w,
            });
        } else if let Some((&w, _)) = acc
            .atomic_writes
            .iter()
            .flat_map(|w| acc.plain_reads.iter().map(move |r| (w, r)))
            .find(|(w, r)| seg(**w) == seg(**r))
        {
            races.push(StaticRace {
                loc,
                dtype: acc.dtype,
                target: acc.target,
                op_index: w,
            });
        }
    }
    races
}

/// GPU race analysis: no segment refinement (see module docs).
fn gpu_races(body: &[GpuOp]) -> Vec<StaticRace> {
    let shared = collect_shared(body.len(), |i| lower_gpu_op(body[i], 0));
    let mut races = Vec::new();
    for (loc, acc) in shared {
        let verdict = if let Some(&w) = acc.plain_writes.first() {
            Some(w)
        } else if !acc.plain_reads.is_empty() {
            acc.atomic_writes.first().copied()
        } else {
            None
        };
        if let Some(w) = verdict {
            races.push(StaticRace {
                loc,
                dtype: acc.dtype,
                target: acc.target,
                op_index: w,
            });
        }
    }
    races
}

/// Locations `SL001` fires for on a CPU body (the static half of the
/// agreement contract).
#[must_use]
pub fn static_race_locs_cpu(body: &[CpuOp]) -> BTreeSet<Loc> {
    cpu_races(body).into_iter().map(|r| r.loc).collect()
}

/// Locations `SL001` fires for on a GPU body.
#[must_use]
pub fn static_race_locs_gpu(body: &[GpuOp]) -> BTreeSet<Loc> {
    gpu_races(body).into_iter().map(|r| r.loc).collect()
}

/// Body indexes of block barriers statically reachable under a
/// divergent mask: `Diverge { paths > 1 }` immediately (circularly)
/// followed by a block barrier.
#[must_use]
pub fn divergent_barriers(body: &[GpuOp]) -> Vec<usize> {
    let mut hits = Vec::new();
    for (i, op) in body.iter().enumerate() {
        if let GpuOp::Diverge { paths, .. } = op {
            if *paths > 1 {
                let next = (i + 1) % body.len();
                if body[next].is_block_barrier() && next != i {
                    hits.push(next);
                }
            }
        }
    }
    hits.sort_unstable();
    hits.dedup();
    hits
}

fn race_diag(r: &StaticRace, detail: &str) -> Diagnostic {
    Diagnostic::new(
        DiagCode::DataRace,
        Some(r.op_index),
        format!("{} on {}", detail, describe(r.dtype, r.target)),
    )
}

/// Fence width order for the redundant-fence rule.
const fn fence_width(scope: Scope) -> u8 {
    match scope {
        Scope::Block => 0,
        Scope::Device => 1,
        Scope::System => 2,
    }
}

/// Lints a CPU (OpenMP) body.
#[must_use]
pub fn lint_cpu_body(body: &[CpuOp]) -> Vec<Diagnostic> {
    let mut out = Vec::new();

    // SL001 — data races.
    for r in cpu_races(body) {
        let detail = if matches!(body[r.op_index], CpuOp::Update { .. }) {
            "unprotected plain update"
        } else {
            "atomic write vs. plain read without a barrier on both sides"
        };
        out.push(race_diag(&r, detail));
    }

    // SL004 — plain array updates with no flush or barrier anywhere.
    let has_publish_point = body
        .iter()
        .any(|op| matches!(op, CpuOp::Barrier | CpuOp::Flush));
    if !has_publish_point {
        if let Some((i, (dtype, target))) = body.iter().enumerate().find_map(|(i, op)| match op {
            CpuOp::Update { dtype, target }
                if matches!(target, Target::Private { stride, .. } if *stride > 0) =>
            {
                Some((i, (*dtype, *target)))
            }
            _ => None,
        }) {
            out.push(Diagnostic::new(
                DiagCode::UnfencedPublish,
                Some(i),
                format!(
                    "plain updates to {} are never published: body contains no flush or barrier",
                    describe(dtype, target)
                ),
            ));
        }
    }

    // SL005 — redundant adjacent synchronization.
    for (i, pair) in body.windows(2).enumerate() {
        let redundant = matches!(
            pair,
            [CpuOp::Barrier, CpuOp::Barrier] | [CpuOp::Flush, CpuOp::Flush]
        );
        if redundant {
            out.push(Diagnostic::new(
                DiagCode::RedundantSync,
                Some(i + 1),
                format!(
                    "{:?} immediately repeats the previous op; the second is redundant",
                    pair[1]
                ),
            ));
        }
    }

    // SL006 — float atomic update/capture lowers to a CAS retry loop
    // (paper Fig. 2: float/double atomic updates cost far more than
    // int/ull on CPUs). One diagnostic per (dtype, target).
    let mut seen = std::collections::HashSet::new();
    for (i, op) in body.iter().enumerate() {
        if let CpuOp::AtomicUpdate { dtype, target } | CpuOp::AtomicCapture { dtype, target } = op {
            if dtype.is_float() && seen.insert((dtype.label(), *target)) {
                out.push(Diagnostic::new(
                    DiagCode::FpAtomicCas,
                    Some(i),
                    format!(
                        "atomic update of {} lowers to a CAS retry loop; prefer integer atomics where possible",
                        describe(*dtype, *target)
                    ),
                ));
            }
        }
    }

    out
}

/// Lints a GPU (CUDA) body.
#[must_use]
pub fn lint_gpu_body(body: &[GpuOp]) -> Vec<Diagnostic> {
    let mut out = Vec::new();

    // SL001 — data races.
    for r in gpu_races(body) {
        let detail = match body[r.op_index] {
            GpuOp::Update { .. } => "unprotected plain update",
            op if op.sync_scope() == Some(Scope::Block) => {
                "block-scoped atomic on device-visible memory (no atomicity across blocks)"
            }
            _ => "atomic write vs. plain read (__syncthreads orders nothing across blocks)",
        };
        out.push(race_diag(&r, detail));
    }

    // SL002 — block barrier under a divergent branch.
    for i in divergent_barriers(body) {
        out.push(Diagnostic::new(
            DiagCode::BarrierDivergence,
            Some(i),
            "block-wide barrier executes under a divergent branch; this deadlocks on hardware"
                .to_string(),
        ));
    }

    // SL003 — mixed atomic scopes on one target.
    let mut scopes: BTreeMap<String, (Target, BTreeSet<&'static str>, bool, bool, usize)> =
        BTreeMap::new();
    for (i, op) in body.iter().enumerate() {
        if op.is_atomic_access() {
            if let (Some((_, target)), Some(scope)) = (op.memory_operand(), op.sync_scope()) {
                let entry = scopes.entry(format!("{target:?}")).or_insert((
                    target,
                    BTreeSet::new(),
                    false,
                    false,
                    i,
                ));
                entry.1.insert(match scope {
                    Scope::Block => "block",
                    Scope::Device => "device",
                    Scope::System => "system",
                });
                match scope {
                    Scope::Block => entry.2 = true,
                    Scope::Device | Scope::System => entry.3 = true,
                }
            }
        }
    }
    for (_, (target, names, narrow, wide, first)) in scopes {
        if narrow && wide {
            out.push(Diagnostic::new(
                DiagCode::ScopeMismatch,
                Some(first),
                format!(
                    "target {target:?} is accessed with mixed atomic scopes ({}); block-scoped atomics do not order against wider ones",
                    names.into_iter().collect::<Vec<_>>().join(", ")
                ),
            ));
        }
    }

    // SL004 — plain array updates with no fence or block barrier.
    let has_publish_point = body
        .iter()
        .any(|op| matches!(op, GpuOp::ThreadFence { .. }) || op.is_block_barrier());
    if !has_publish_point {
        if let Some((i, (dtype, target))) = body.iter().enumerate().find_map(|(i, op)| match op {
            GpuOp::Update { dtype, target }
                if matches!(target, Target::Private { stride, .. } if *stride > 0) =>
            {
                Some((i, (*dtype, *target)))
            }
            _ => None,
        }) {
            out.push(Diagnostic::new(
                DiagCode::UnfencedPublish,
                Some(i),
                format!(
                    "plain updates to {} are never published: body contains no __threadfence or __syncthreads",
                    describe(dtype, target)
                ),
            ));
        }
    }

    // SL005 — redundant adjacent synchronization.
    for (i, pair) in body.windows(2).enumerate() {
        let redundant = match (pair[0], pair[1]) {
            // A bare __syncthreads right after any block barrier adds
            // nothing (a SyncThreadsReduce second would still do work).
            (a, GpuOp::SyncThreads) if a.is_block_barrier() => true,
            (GpuOp::SyncWarp, GpuOp::SyncWarp) => true,
            // A warp sync is wholly implied by a block barrier.
            (a, GpuOp::SyncWarp) if a.is_block_barrier() => true,
            (GpuOp::ThreadFence { scope: s1 }, GpuOp::ThreadFence { scope: s2 }) => {
                fence_width(s2) <= fence_width(s1)
            }
            _ => false,
        };
        if redundant {
            out.push(Diagnostic::new(
                DiagCode::RedundantSync,
                Some(i + 1),
                format!(
                    "{:?} immediately follows {:?}, which already provides its ordering",
                    pair[1], pair[0]
                ),
            ));
        }
    }

    // SL006 — float atomicMax has no hardware instruction and lowers to
    // a CAS loop (the paper recommends int atomic adds / CAS over other
    // data types).
    let mut seen = std::collections::HashSet::new();
    for (i, op) in body.iter().enumerate() {
        if let GpuOp::AtomicMax { dtype, target, .. } = op {
            if dtype.is_float() && seen.insert((dtype.label(), *target)) {
                out.push(Diagnostic::new(
                    DiagCode::FpAtomicCas,
                    Some(i),
                    format!(
                        "atomicMax on {} lowers to a CAS retry loop; prefer int atomic adds and CAS over other data types",
                        describe(*dtype, *target)
                    ),
                ));
            }
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use syncperf_core::kernel;

    fn codes(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.code.code()).collect()
    }

    #[test]
    fn plain_shared_update_is_sl001() {
        let body = [CpuOp::Update {
            dtype: DType::I32,
            target: Target::SHARED,
        }];
        assert_eq!(codes(&lint_cpu_body(&body)), ["SL001"]);
    }

    #[test]
    fn atomic_bodies_are_clean() {
        for dt in [DType::I32, DType::U64] {
            let k = kernel::omp_atomic_update_scalar(dt);
            assert!(lint_cpu_body(&k.baseline).is_empty());
            assert!(lint_cpu_body(&k.test).is_empty());
        }
    }

    #[test]
    fn barrier_segments_gate_write_read_pairs() {
        let aw = CpuOp::AtomicUpdate {
            dtype: DType::I32,
            target: Target::SHARED,
        };
        let r = CpuOp::Read {
            dtype: DType::I32,
            target: Target::SHARED,
        };
        let clean = [aw, CpuOp::Barrier, r, CpuOp::Barrier];
        assert!(static_race_locs_cpu(&clean).is_empty());
        // One barrier only: the wrap-around direction is unprotected.
        let racy = [aw, CpuOp::Barrier, r];
        assert_eq!(static_race_locs_cpu(&racy).len(), 1);
        // Flushes do not create segments.
        let flushy = [aw, CpuOp::Flush, r, CpuOp::Flush];
        assert_eq!(static_race_locs_cpu(&flushy).len(), 1);
    }

    #[test]
    fn divergence_before_barrier_is_sl002() {
        let body = [
            GpuOp::Diverge {
                dtype: DType::I32,
                paths: 4,
            },
            GpuOp::SyncThreads,
        ];
        assert!(codes(&lint_gpu_body(&body)).contains(&"SL002"));
        // A divergent region that reconverges before the barrier is ok.
        let body = [
            GpuOp::Diverge {
                dtype: DType::I32,
                paths: 4,
            },
            GpuOp::Alu { dtype: DType::I32 },
            GpuOp::SyncThreads,
        ];
        assert!(!codes(&lint_gpu_body(&body)).contains(&"SL002"));
    }

    #[test]
    fn mixed_scopes_are_sl003() {
        let body = [
            GpuOp::AtomicAdd {
                dtype: DType::I32,
                scope: Scope::Block,
                target: Target::SHARED,
            },
            GpuOp::AtomicAdd {
                dtype: DType::I32,
                scope: Scope::Device,
                target: Target::SHARED,
            },
        ];
        assert!(codes(&lint_gpu_body(&body)).contains(&"SL003"));
    }

    #[test]
    fn unfenced_publish_fires_on_flush_baselines() {
        let k = kernel::omp_flush(DType::F64, 4);
        assert_eq!(codes(&lint_cpu_body(&k.baseline)), ["SL004"]);
        // The test body adds the flush, which is the publish point.
        assert!(lint_cpu_body(&k.test).is_empty());
    }

    #[test]
    fn back_to_back_barriers_are_sl005() {
        let k = kernel::omp_barrier();
        assert!(lint_cpu_body(&k.baseline).is_empty());
        assert_eq!(codes(&lint_cpu_body(&k.test)), ["SL005"]);
        let g = kernel::cuda_syncthreads();
        assert_eq!(codes(&lint_gpu_body(&g.test)), ["SL005"]);
    }

    #[test]
    fn fence_ladder_redundancy_respects_width() {
        let strong_then_weak = [
            GpuOp::ThreadFence {
                scope: Scope::System,
            },
            GpuOp::ThreadFence {
                scope: Scope::Block,
            },
        ];
        assert_eq!(codes(&lint_gpu_body(&strong_then_weak)), ["SL005"]);
        let weak_then_strong = [
            GpuOp::ThreadFence {
                scope: Scope::Block,
            },
            GpuOp::ThreadFence {
                scope: Scope::Device,
            },
        ];
        assert!(lint_gpu_body(&weak_then_strong).is_empty());
    }

    #[test]
    fn float_atomics_are_sl006() {
        let k = kernel::omp_atomic_update_scalar(DType::F64);
        assert_eq!(codes(&lint_cpu_body(&k.test)), ["SL006"]);
        let body = [GpuOp::AtomicMax {
            dtype: DType::F32,
            scope: Scope::Device,
            target: Target::SHARED,
        }];
        assert_eq!(codes(&lint_gpu_body(&body)), ["SL006"]);
    }
}
