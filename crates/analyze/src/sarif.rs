//! SARIF 2.1.0 rendering of linter/explorer findings.
//!
//! [Static Analysis Results Interchange Format] is what code hosts
//! ingest to annotate pull requests inline. One run is emitted, with
//! one reporting descriptor per stable [`DiagCode`] (title, long
//! explanation, default level) and one result per finding. Allowlisted
//! findings are carried as *suppressed* results (`kind: "external"`)
//! rather than dropped, so the annotation layer can show them greyed
//! out instead of losing them.
//!
//! The output is fully deterministic — no timestamps, no absolute
//! paths, no tool version beyond the crate version — so a report can
//! be golden-pinned byte-for-byte in tests.
//!
//! [Static Analysis Results Interchange Format]:
//!     https://docs.oasis-open.org/sarif/sarif/v2.1.0/sarif-v2.1.0.html

use std::fmt::Write as _;

use crate::diag::{BodyKind, DiagCode, Diagnostic, Severity};

/// One finding to render: a diagnostic plus where it came from and
/// whether the allowlist suppresses it.
#[derive(Debug, Clone)]
pub struct SarifFinding {
    /// Registry kernel name (or synthetic body label).
    pub kernel: String,
    /// Which of the kernel's two bodies.
    pub body: BodyKind,
    /// The finding itself.
    pub diagnostic: Diagnostic,
    /// The allowlist justification, when the finding is allowlisted.
    pub allowed_reason: Option<String>,
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

const fn level(sev: Severity) -> &'static str {
    match sev {
        Severity::Error => "error",
        Severity::Warning => "warning",
        Severity::Info => "note",
    }
}

/// Renders `findings` as a SARIF 2.1.0 log with a single run.
///
/// Rules are emitted for every stable code (not just the ones that
/// fired) so `ruleIndex` is stable across reports.
#[must_use]
pub fn render_sarif(findings: &[SarifFinding]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(
        "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n  \"version\": \
         \"2.1.0\",\n  \"runs\": [\n    {\n      \"tool\": {\n        \"driver\": {\n          \
         \"name\": \"sync_lint\",\n          \"informationUri\": \
         \"https://example.invalid/syncperf/docs/ANALYSIS.md\",\n          \"rules\": [\n",
    );
    for (i, code) in DiagCode::ALL.iter().enumerate() {
        let comma = if i + 1 < DiagCode::ALL.len() { "," } else { "" };
        let _ = write!(
            s,
            "            {{\n              \"id\": \"{id}\",\n              \"name\": \
             \"{name:?}\",\n              \"shortDescription\": {{ \"text\": \"{title}\" \
             }},\n              \"fullDescription\": {{ \"text\": \"{full}\" }},\n              \
             \"defaultConfiguration\": {{ \"level\": \"{lvl}\" }}\n            }}{comma}\n",
            id = code.code(),
            name = code,
            title = esc(code.title()),
            full = esc(code.explain()),
            lvl = level(code.severity()),
        );
    }
    s.push_str("          ]\n        }\n      },\n      \"results\": [\n");
    for (i, f) in findings.iter().enumerate() {
        let comma = if i + 1 < findings.len() { "," } else { "" };
        let rule_index = DiagCode::ALL
            .iter()
            .position(|c| *c == f.diagnostic.code)
            .unwrap_or(0);
        let fq = match f.diagnostic.op_index {
            Some(op) => format!("{}.{}.op{op}", f.kernel, f.body),
            None => format!("{}.{}", f.kernel, f.body),
        };
        let suppressions = match &f.allowed_reason {
            Some(reason) => format!(
                "[\n            {{ \"kind\": \"external\", \"justification\": \"{}\" }}\n          \
                 ]",
                esc(reason)
            ),
            None => "[]".to_string(),
        };
        let _ = write!(
            s,
            "        {{\n          \"ruleId\": \"{id}\",\n          \"ruleIndex\": \
             {rule_index},\n          \"level\": \"{lvl}\",\n          \"message\": {{ \"text\": \
             \"{msg}\" }},\n          \"locations\": [\n            {{\n              \
             \"logicalLocations\": [\n                {{ \"fullyQualifiedName\": \"{fq}\" \
             }}\n              ]\n            }}\n          ],\n          \"suppressions\": \
             {suppressions},\n          \"properties\": {{ \"kernel\": \"{kernel}\", \"body\": \
             \"{body}\" }}\n        }}{comma}\n",
            id = f.diagnostic.code.code(),
            lvl = level(f.diagnostic.severity),
            msg = esc(&f.diagnostic.message),
            fq = esc(&fq),
            kernel = esc(&f.kernel),
            body = f.body,
        );
    }
    s.push_str("      ]\n    }\n  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(code: DiagCode, allowed: Option<&str>) -> SarifFinding {
        SarifFinding {
            kernel: "omp_barrier".to_string(),
            body: BodyKind::Test,
            diagnostic: Diagnostic::new(code, Some(1), "evidence \"quoted\""),
            allowed_reason: allowed.map(str::to_string),
        }
    }

    #[test]
    fn report_is_schema_shaped_and_escaped() {
        let out = render_sarif(&[
            finding(
                DiagCode::RedundantSync,
                Some("intentional: measures the primitive"),
            ),
            finding(DiagCode::BarrierDeadlock, None),
        ]);
        assert!(out.contains("\"version\": \"2.1.0\""));
        assert!(out.contains("\"id\": \"SL010\""), "all rules present");
        assert!(out.contains("\"name\": \"BarrierDeadlock\""));
        assert!(out.contains("evidence \\\"quoted\\\""));
        assert!(out.contains("omp_barrier.test.op1"));
        assert!(out.contains("\"kind\": \"external\""));
        // One suppressed, one live result.
        assert_eq!(out.matches("\"justification\"").count(), 1);
    }

    #[test]
    fn empty_report_still_lists_every_rule() {
        let out = render_sarif(&[]);
        for code in DiagCode::ALL {
            assert!(out.contains(code.code()));
        }
        assert!(out.contains("\"results\": [\n      ]"));
    }

    #[test]
    fn rule_indices_match_all_order() {
        let out = render_sarif(&[finding(DiagCode::DataRace, None)]);
        assert!(out.contains("\"ruleIndex\": 0"));
    }
}
