//! Bridge from analyzer findings to the observability layer.
//!
//! Every diagnostic (and every agreement failure) can be recorded
//! through an [`obs`] `Recorder` so that `--trace` runs of the bench
//! CLI and the `sync_lint` tool leave the findings in the same Chrome
//! trace / counter stream as everything else.

use syncperf_core::obs::{ArgValue, Recorder};

use crate::agree::Agreement;
use crate::diag::{BodyKind, Diagnostic};

/// Records one diagnostic as an instant event plus counters.
pub fn record_diagnostic(rec: &Recorder, kernel: &str, body: BodyKind, diag: &Diagnostic) {
    let mut args = vec![
        ("kernel", ArgValue::Str(kernel.to_string().into())),
        ("body", ArgValue::Str(body.to_string().into())),
        ("severity", ArgValue::Str(diag.severity.to_string().into())),
        ("message", ArgValue::Str(diag.message.clone().into())),
    ];
    if let Some(i) = diag.op_index {
        args.push(("op_index", ArgValue::U64(i as u64)));
    }
    rec.instant_args("analyze", diag.code.code(), args);
    rec.counter("analyze.diagnostics").inc();
    rec.counter(&format!("analyze.diagnostics.{}", diag.code.code()))
        .inc();
}

/// Records the outcome of a static↔dynamic cross-check.
pub fn record_agreement(rec: &Recorder, kernel: &str, body: BodyKind, agreement: &Agreement) {
    if agreement.holds() {
        rec.counter("analyze.crosscheck.agree").inc();
    } else {
        rec.instant_args(
            "analyze",
            "crosscheck-disagreement",
            vec![
                ("kernel", ArgValue::Str(kernel.to_string().into())),
                ("body", ArgValue::Str(body.to_string().into())),
                ("detail", ArgValue::Str(agreement.explain().into())),
            ],
        );
        rec.counter("analyze.crosscheck.disagree").inc();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agree::check_cpu_body;
    use crate::diag::DiagCode;
    use syncperf_core::obs;

    #[test]
    fn diagnostics_land_in_the_recorder() {
        let rec = obs::Recorder::enabled();
        let d = Diagnostic::new(DiagCode::RedundantSync, Some(1), "x");
        record_diagnostic(&rec, "omp_barrier", BodyKind::Test, &d);
        record_agreement(&rec, "omp_barrier", BodyKind::Test, &check_cpu_body(&[]));
        let snap = rec.snapshot();
        assert_eq!(snap.counter("analyze.diagnostics"), 1);
        assert_eq!(snap.counter("analyze.diagnostics.SL005"), 1);
        assert_eq!(snap.counter("analyze.crosscheck.agree"), 1);
        let events = rec.drain_events();
        assert!(events.iter().any(|e| e.name == "SL005"));
    }
}
