//! Per-hash in-flight compute deduplication: the single-writer-per-
//! entry protocol.
//!
//! The first request for a missing hash becomes that hash's *owner*
//! and runs the computation; every concurrent identical request
//! becomes a *waiter* blocked on the owner's condvar. When the owner
//! finishes (success or failure), waiters wake and re-consult the
//! index — on success they find the freshly stored entry, on failure
//! one of them claims ownership and retries. At most one scheduler
//! job per hash is ever in flight.

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

#[derive(Debug, Default)]
struct Slot {
    state: Mutex<bool>, // true once the owner finished
    cv: Condvar,
}

/// The in-flight compute table.
#[derive(Debug, Default)]
pub struct Inflight {
    map: Mutex<HashMap<u64, Arc<Slot>>>,
}

/// Outcome of [`Inflight::claim_or_wait`].
#[derive(Debug)]
pub enum Claim {
    /// This caller owns the computation for the hash; it must run the
    /// job and then drop (or [`OwnerGuard::complete`]) the guard.
    Owner(OwnerGuard),
    /// Another request owned the computation and has since finished;
    /// the caller should re-consult the index.
    Waited,
    /// The owner did not finish within the caller's patience budget.
    TimedOut,
}

/// RAII ownership of one hash's computation. Dropping it (on any
/// path, including a panic unwinding through the compute call) marks
/// the computation finished and wakes all waiters.
#[derive(Debug)]
pub struct OwnerGuard {
    table: Arc<Inflight>,
    hash: u64,
    slot: Arc<Slot>,
}

impl OwnerGuard {
    /// Explicitly finish (equivalent to dropping the guard).
    pub fn complete(self) {}
}

impl Drop for OwnerGuard {
    fn drop(&mut self) {
        *self.slot.state.lock().unwrap() = true;
        self.table.map.lock().unwrap().remove(&self.hash);
        self.slot.cv.notify_all();
    }
}

impl Inflight {
    /// New empty table.
    #[must_use]
    pub fn new() -> Arc<Self> {
        Arc::new(Inflight::default())
    }

    /// Whether `hash` currently has an in-flight writer (used by the
    /// eviction policy: such an entry must not be evicted).
    #[must_use]
    pub fn contains(&self, hash: u64) -> bool {
        self.map.lock().unwrap().contains_key(&hash)
    }

    /// Number of in-flight computations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.lock().unwrap().len()
    }

    /// Whether nothing is in flight.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Claims the computation for `hash`, or waits up to `patience`
    /// for the current owner to finish.
    #[must_use]
    pub fn claim_or_wait(self: &Arc<Self>, hash: u64, patience: Duration) -> Claim {
        let slot = {
            let mut map = self.map.lock().unwrap();
            if let Some(slot) = map.get(&hash) {
                Arc::clone(slot)
            } else {
                let slot = Arc::new(Slot::default());
                map.insert(hash, Arc::clone(&slot));
                return Claim::Owner(OwnerGuard {
                    table: Arc::clone(self),
                    hash,
                    slot,
                });
            }
        };
        let done = slot.state.lock().unwrap();
        let (done, timeout) = slot
            .cv
            .wait_timeout_while(done, patience, |finished| !*finished)
            .unwrap();
        drop(done);
        if timeout.timed_out() {
            Claim::TimedOut
        } else {
            Claim::Waited
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    #[test]
    fn second_claim_waits_for_the_owner() {
        let table = Inflight::new();
        let Claim::Owner(guard) = table.claim_or_wait(7, Duration::from_secs(1)) else {
            panic!("first claim must own");
        };
        assert!(table.contains(7));

        let computed = Arc::new(AtomicU32::new(0));
        let waiters: Vec<_> = (0..4)
            .map(|_| {
                let table = Arc::clone(&table);
                let computed = Arc::clone(&computed);
                std::thread::spawn(
                    move || match table.claim_or_wait(7, Duration::from_secs(5)) {
                        Claim::Owner(g) => {
                            computed.fetch_add(1, Ordering::Relaxed);
                            g.complete();
                        }
                        Claim::Waited => {}
                        Claim::TimedOut => panic!("owner finished within patience"),
                    },
                )
            })
            .collect();
        std::thread::sleep(Duration::from_millis(30));
        guard.complete();
        for w in waiters {
            w.join().unwrap();
        }
        // Anyone who raced in after the owner released may have become
        // a new owner, but while the owner held the slot, nobody did.
        assert!(table.is_empty());
        assert!(computed.load(Ordering::Relaxed) <= 4);
    }

    #[test]
    fn waiters_time_out_when_the_owner_stalls() {
        let table = Inflight::new();
        let Claim::Owner(_guard) = table.claim_or_wait(9, Duration::from_secs(1)) else {
            panic!("first claim must own");
        };
        match table.claim_or_wait(9, Duration::from_millis(20)) {
            Claim::TimedOut => {}
            other => panic!("expected timeout, got {other:?}"),
        }
    }

    #[test]
    fn distinct_hashes_do_not_serialize() {
        let table = Inflight::new();
        let a = table.claim_or_wait(1, Duration::from_millis(1));
        let b = table.claim_or_wait(2, Duration::from_millis(1));
        assert!(matches!(a, Claim::Owner(_)) && matches!(b, Claim::Owner(_)));
        assert_eq!(table.len(), 2);
    }
}
